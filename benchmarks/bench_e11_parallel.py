"""E11 — Section 7's multiprocessor direction, built out: the parallel
dynamic component scheduler.  Shape: speedup scales with P until the
component graph's width is exhausted; total misses stay within a small
factor of P=1 (cache efficiency survives parallelization)."""

from repro.analysis.experiments import experiment_e11_parallel_scaling


def test_e11_parallel_scaling(benchmark, show):
    rows = benchmark.pedantic(experiment_e11_parallel_scaling, rounds=1, iterations=1)
    show(rows, "E11: parallel dynamic scheduling, P sweep")
    assert rows[1]["speedup"] > 1.5, "P=2 should give real speedup"
    for r in rows:
        assert r["miss_inflation_vs_P1"] < 1.5, "parallelism should not inflate misses"
    # saturation: P=8 no better than P=4 on this width-4 dag
    assert rows[3]["speedup"] <= rows[2]["speedup"] * 1.2
