"""Micro-benchmarks of the substrates: cache-simulator and vectorized-replay
throughput, executor firing rate, and partitioner scaling.  These guard the
simulation's own performance (the whole harness rests on them being fast).
The stepwise-model benchmarks stay alongside the replay ones: the stepwise
engines are the differential oracles, and their throughput bounds how long
the oracle suites take."""

import numpy as np

from repro.cache.base import CacheGeometry
from repro.cache.lru import LRUCache
from repro.cache.opt import simulate_opt
from repro.core.dagpart import exact_min_bandwidth_partition, interval_dp_partition
from repro.core.pipeline import optimal_pipeline_partition, theorem5_partition
from repro.core.partition_sched import pipeline_dynamic_schedule
from repro.graphs.topologies import diamond, random_pipeline
from repro.runtime.executor import Executor
from repro.runtime.replay import replay_misses
from repro.runtime.schedule import Schedule


def test_lru_touch_throughput(benchmark):
    geo = CacheGeometry(size=512, block=8)
    rng = np.random.default_rng(0)
    trace = rng.integers(0, 256, size=20_000).tolist()

    def run():
        c = LRUCache(geo)
        for b in trace:
            c.access_block(b)
        return c.stats.misses

    misses = benchmark(run)
    assert misses > 0


def test_set_assoc_lru_touch_throughput(benchmark):
    geo = CacheGeometry(size=512, block=8, ways=4)
    rng = np.random.default_rng(0)
    trace = rng.integers(0, 256, size=20_000).tolist()

    def run():
        c = LRUCache(geo)
        for b in trace:
            c.access_block(b)
        return c.stats.misses

    misses = benchmark(run)
    assert misses > 0


def test_opt_replay_throughput(benchmark):
    geo = CacheGeometry(size=256, block=8)
    rng = np.random.default_rng(1)
    trace = rng.integers(0, 128, size=20_000).tolist()
    stats = benchmark(simulate_opt, trace, geo)
    assert stats.misses > 0


def test_opt_vectorized_sweep_throughput(benchmark):
    # one priority-stack pass answering a 6-size sweep; compare against
    # test_opt_replay_throughput x 6 for the stepwise cost of the same sweep
    rng = np.random.default_rng(1)
    trace = rng.integers(0, 128, size=20_000)
    geoms = [CacheGeometry(size=s, block=8) for s in (64, 128, 256, 512, 768, 1024)]
    misses = benchmark(replay_misses, trace, geoms, "opt")
    assert misses == sorted(misses, reverse=True)  # OPT inclusion


def test_direct_vectorized_sweep_throughput(benchmark):
    rng = np.random.default_rng(2)
    trace = rng.integers(0, 256, size=20_000)
    geoms = [CacheGeometry(size=s, block=8) for s in (64, 128, 256, 512, 768, 1024)]
    misses = benchmark(replay_misses, trace, geoms, "direct")
    assert all(m > 0 for m in misses)


def test_set_assoc_vectorized_sweep_throughput(benchmark):
    # ways sweep at a fixed set count: the whole sweep shares one
    # set-grouped stack-distance pass
    rng = np.random.default_rng(3)
    trace = rng.integers(0, 256, size=20_000)
    geoms = [CacheGeometry(size=16 * w * 8, block=8, ways=w) for w in (1, 2, 4, 8, 16)]
    misses = benchmark(replay_misses, trace, geoms, "lru")
    assert misses == sorted(misses, reverse=True)  # more ways never hurt LRU


def test_two_level_vectorized_sweep_throughput(benchmark):
    # L2 capacity sweep behind one fixed L1: the whole grid shares a single
    # L1 pass, and every L2 replays only the (short) L1 miss sub-trace
    from repro.cache.hierarchy import TwoLevelGeometry

    rng = np.random.default_rng(4)
    trace = rng.integers(0, 256, size=20_000)
    l1 = CacheGeometry(size=256, block=8)
    geoms = [
        TwoLevelGeometry(l1, CacheGeometry(size=s, block=8))
        for s in (256, 512, 1024, 1536, 2048)
    ]
    misses = benchmark(replay_misses, trace, geoms, "two_level")
    assert misses == sorted(misses, reverse=True)  # larger L2 never hurts


def test_executor_firing_rate(benchmark):
    g = random_pipeline(12, 32, seed=3)
    geo = CacheGeometry(size=256, block=8)
    sched = Schedule([n for _ in range(300) for n in g.pipeline_order()])

    def run():
        return Executor.measure(g, geo, sched).misses

    assert benchmark(run) > 0


def test_pipeline_dp_scaling_n256(benchmark):
    g = random_pipeline(256, 24, seed=5, rate_choices=[(1, 1), (2, 1), (1, 2)])
    p = benchmark(optimal_pipeline_partition, g, 64, 3.0)
    assert p.is_well_ordered()


def test_theorem5_scaling_n1024(benchmark):
    g = random_pipeline(1024, 24, seed=6)
    p = benchmark(theorem5_partition, g, 64)
    assert p.max_component_state() <= 8 * 64


def test_interval_dp_on_wide_dag(benchmark):
    from repro.graphs.topologies import layered_random_dag

    g = layered_random_dag(10, 8, 24, seed=7)
    p = benchmark(interval_dp_partition, g, 96, 2.0)
    assert p.is_well_ordered()


def test_exact_search_12_modules(benchmark):
    g = diamond(branch_len=5, ways=2, state=12)  # 12 modules
    p = benchmark(exact_min_bandwidth_partition, g, 24, 3.0)
    assert p.is_well_ordered()


def test_dynamic_scheduler_generation(benchmark):
    g = random_pipeline(20, 32, seed=8)
    geo = CacheGeometry(size=96, block=8)
    part = optimal_pipeline_partition(g, geo.size, c=1.0)
    sched = benchmark(pipeline_dynamic_schedule, g, part, geo, 2000)
    assert len(sched) > 2000
