"""E8 — Corollary 6/9 augmentation: a partition built for cache M, executed
on c'M caches — misses fall steeply until the components fit, then plateau."""

from repro.analysis.experiments import experiment_e8_augmentation


def test_e8_augmentation(benchmark, show):
    rows = benchmark.pedantic(
        experiment_e8_augmentation, kwargs={"n_outputs": 1000}, rounds=1, iterations=1
    )
    show(rows, "E8: cache-augmentation sweep")
    assert rows[0]["misses"] > 2 * rows[2]["misses"], "no steep fall observed"
    assert rows[-2]["misses"] <= 1.4 * rows[-1]["misses"] + 1, "no plateau observed"
