"""Ablations A1-A4: cut choice, cross-buffer sizing, LRU-vs-OPT, degree
limits — the non-obvious design choices DESIGN.md calls out, each isolated."""

from repro.analysis.experiments import (
    ablation_a1_cut_choice,
    ablation_a2_cross_buffer_size,
    ablation_a3_lru_vs_opt,
    ablation_a4_degree_limits,
)


def test_a1_cut_choice(benchmark, show):
    rows = benchmark.pedantic(
        ablation_a1_cut_choice, kwargs={"n_outputs": 800}, rounds=1, iterations=1
    )
    show(rows, "A1: Theorem 5 cut at gain-min vs gain-max edge")
    by = {r["cut_rule"]: r for r in rows}
    assert by["gain-min (paper)"]["misses"] < by["gain-max (ablated)"]["misses"]


def test_a2_cross_buffer_size(benchmark, show):
    rows = benchmark.pedantic(
        ablation_a2_cross_buffer_size, kwargs={"n_outputs": 800}, rounds=1, iterations=1
    )
    show(rows, "A2: cross-edge buffer capacity sweep (why Theta(M))")
    assert rows[0]["misses"] > 3 * rows[3]["misses"]


def test_a3_lru_vs_opt(benchmark, show):
    rows = benchmark.pedantic(
        ablation_a3_lru_vs_opt, kwargs={"n_outputs": 500}, rounds=1, iterations=1
    )
    show(rows, "A3: LRU vs Belady OPT on the partitioned schedule's trace")
    lru = next(r for r in rows if r["policy"] == "LRU")
    opt = next(r for r in rows if "OPT" in r["policy"])
    assert opt["misses"] <= lru["misses"] <= 3 * opt["misses"]


def test_a4_degree_limits(benchmark, show):
    rows = benchmark.pedantic(ablation_a4_degree_limits, rounds=1, iterations=1)
    show(rows, "A4: degree-limited vs unlimited partitions (beamformer)")
    assert any(r["degree_limited"] for r in rows)


def test_a6_layout_order(benchmark, show):
    from repro.analysis.sweeps import ablation_a6_layout_order

    rows = benchmark.pedantic(ablation_a6_layout_order, rounds=1, iterations=1)
    show(rows, "A6: layout sensitivity (LRU invariant; direct-mapped is not)")
    assert len({r["lru_misses"] for r in rows}) == 1
