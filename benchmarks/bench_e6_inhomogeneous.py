"""E6 — Section 3 'Scheduling inhomogeneous graphs': the T-granularity
scheduler is feasible on rate-changing dags and beats single-appearance."""

from repro.analysis.experiments import experiment_e6_inhomogeneous


def test_e6_inhomogeneous(benchmark, show):
    rows = benchmark.pedantic(experiment_e6_inhomogeneous, rounds=1, iterations=1)
    show(rows, "E6: inhomogeneous dags, partitioned vs single-appearance")
    for r in rows:
        assert r["improvement"] >= 1.0
