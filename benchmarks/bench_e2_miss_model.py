"""E2 — Lemma 4: the analytic miss model (state loads + cross traffic +
streams, all /B) tracks the simulator within a small constant."""

from repro.analysis.experiments import experiment_e2_miss_model


def test_e2_miss_model(benchmark, show):
    rows = benchmark.pedantic(experiment_e2_miss_model, rounds=1, iterations=1)
    show(rows, "E2: measured vs Lemma-4 predicted misses")
    for r in rows:
        assert 0.4 <= r["ratio"] <= 2.5, f"model off at {r}"
