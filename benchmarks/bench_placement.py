"""Placement-subsystem benchmark: the block-remap cost model vs the
recompile-per-candidate path it avoids, plus the optimizer's actual wins.

Measurements, all asserted and recorded in ``BENCH_placement.json`` at the
repo root (with a rolling ``history`` so ``benchmarks/check_bench_trends.py``
can fail on regressions):

* **score** — scoring K candidate placements through
  :func:`repro.mem.placement.placement_cost` (one gather over the trace
  compiled once under the seed layout, then the direct-mapped replay
  kernel) vs compiling a fresh trace per candidate and replaying it.  The
  remap path must agree miss-for-miss and be >= 3x faster — it is the inner
  loop of the swap local search, so its speed bounds how far the search can
  look.
* **swap_gain** — seed direct-mapped misses / swap-refined misses on the A7
  DES workload.  The optimizer must strictly improve the seed (gain > 1);
  the trend gate catches a search regression that silently stops finding
  layouts.
* **color_gain** — same for the greedy set-coloring strategy alone
  (sanity-bounded only: >= 1.0 by the never-worse contract).
* **multi_gain** — weighted seed miss sum / multi-geometry-optimized sum
  over the A9 target set {direct, 2-way, 4-way}, with the hard A9 gate
  asserted alongside: the optimized layout is never worse than the seed at
  *any* individual target (the deployability contract).
* **xor_gain** — seed direct-mapped misses under mod indexing / under xor
  (skewed) indexing at the same snapped geometry: how much conflict the
  hash alone removes with zero layout tuning.  Trend-tracked so a kernel
  change that silently breaks the fold shows up as a metric jump.
* **facility_gain** — swap-refined misses / best facility-location search
  (:mod:`repro.mem.facility` multiswap or smoothed) on the fm_radio
  workload at the *same* eval budget, past FLIP's convergence point so the
  comparison measures search power, not budget.  Gated > 1.0: the
  k-object/smoothed searches must strictly beat FLIP at equal
  ``RefineStats.evals`` budget (the A12 claim, kept honest here).
* **minimax_worst** — the minimax strategy's worst per-target miss ratio
  vs the seed on the A9 target set (lower is better; the ceiling in
  ``check_bench_trends.py`` holds it <= 1.0, and the bench asserts it
  strictly beats the weighted-sum optimizer's worst ratio).
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.analysis.sweeps import des_partitioned_workload, fm_partitioned_workload
from repro.mem.facility import multiswap_refine, smoothed_search
from repro.mem.placement import (
    build_instance,
    conflict_graph,
    greedy_color_order,
    optimize_instance,
    placement_cost,
    swap_refine,
)
from repro.runtime.compiled import compile_trace, simulate_trace

B = 8
M = 256
N_CANDIDATES = 8
JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_placement.json"
HISTORY_CAP = 50
FACILITY_BUDGET = 8000


def _workload(inputs=256):
    g, sched, _part, run_geom = des_partitioned_workload(M=M, B=B, inputs=inputs)
    return g, sched, run_geom


def test_placement_cost_model_speedup(show):
    g, sched, run_geom = _workload()
    instance = build_instance(g, sched, B)

    rng = np.random.default_rng(17)
    candidates = []
    for _ in range(N_CANDIDATES):
        order = list(instance.objects)
        rng.shuffle(order)
        candidates.append(order)

    # --- recompile-per-candidate: what the cost model replaces
    t0 = time.perf_counter()
    ref = []
    for order in candidates:
        trace = compile_trace(g, sched, B, placement=order)
        ref.append(simulate_trace(trace, [run_geom], policy="direct")[0].misses)
    t_recompile = time.perf_counter() - t0

    # --- block-remap cost model over the one seed trace
    t0 = time.perf_counter()
    fast = [
        placement_cost(instance, order, run_geom, policy="direct")
        for order in candidates
    ]
    t_remap = time.perf_counter() - t0

    assert fast == ref, "remap cost model diverged from recompiled traces"
    score_speedup = t_recompile / t_remap

    # --- optimizer gains on the same workload
    t0 = time.perf_counter()
    swap = optimize_instance(instance, run_geom, strategy="swap", policy="direct", budget=300)
    t_swap = time.perf_counter() - t0
    color = optimize_instance(instance, run_geom, strategy="color", policy="direct")
    swap_gain = swap.seed_cost / swap.cost if swap.cost else float("inf")
    color_gain = color.seed_cost / color.cost if color.cost else float("inf")

    # fully-associative invariance on the optimized layout (oracle property)
    fa_seed = placement_cost(instance, list(instance.objects), run_geom, policy="lru")
    fa_swap = placement_cost(instance, swap.order, run_geom, policy="lru")
    assert fa_seed == fa_swap, "placement changed fully-associative misses"

    # --- A9 metrics: multi-geometry objective and skewed (xor) indexing
    direct = run_geom.with_ways(1)
    targets = [
        (direct, "direct", 1.0),
        (run_geom.with_ways(2), "lru", 1.0),
        (run_geom.with_ways(4), "lru", 1.0),
    ]
    t0 = time.perf_counter()
    multi = optimize_instance(
        instance, strategy="swap", targets=targets, budget=300, gap_budget=8
    )
    t_multi = time.perf_counter() - t0
    # the deployability contract A9 gates on: never worse at ANY target
    for got, seed_m in zip(multi.per_target, multi.seed_per_target):
        assert got <= seed_m, (
            f"multi-target layout regressed a target: {multi.per_target} vs "
            f"seed {multi.seed_per_target}"
        )
    multi_gain = multi.seed_cost / multi.cost if multi.cost else float("inf")

    xor_direct = direct.with_index_scheme("xor")
    seed_order = list(instance.objects)
    mod_misses = placement_cost(instance, seed_order, direct, policy="direct")
    xor_misses = placement_cost(instance, seed_order, xor_direct, policy="direct")
    xor_gain = mod_misses / xor_misses if xor_misses else float("inf")

    # --- A12 metrics: facility-location search vs FLIP at equal budget.
    # Budget sits past swap's convergence on both workloads (it exhausts its
    # move set around 4.4k/6.1k evals), so extra budget only helps searches
    # with richer moves — the comparison isolates search power.
    facility_rows = []
    facility_gain = float("inf")
    for name, (g_f, sched_f, _p, geom_f) in (
        ("des", des_partitioned_workload(M=M, B=B, inputs=256)),
        ("fm_radio", fm_partitioned_workload(M=M, B=B, inputs=512)),
    ):
        direct_f = geom_f.with_ways(1)
        inst_f = build_instance(g_f, sched_f, B)
        w_f = conflict_graph(inst_f)
        start_f = greedy_color_order(
            inst_f, direct_f, policy="direct", weights=w_f
        )
        t0 = time.perf_counter()
        _, _, swap_cost, swap_stats = swap_refine(
            inst_f, start_f, direct_f, policy="direct",
            budget=FACILITY_BUDGET, weights=w_f,
        )
        _, _, ms_cost, ms_stats = multiswap_refine(
            inst_f, start_f, direct_f, policy="direct",
            budget=FACILITY_BUDGET, weights=w_f,
        )
        _, _, sm_cost, sm_stats = smoothed_search(
            inst_f, direct_f, policy="direct", budget=FACILITY_BUDGET,
            restarts=2, noise=0.5, seed=0,
        )
        t_fac = time.perf_counter() - t0
        for st in (swap_stats, ms_stats, sm_stats):
            assert st.evals <= FACILITY_BUDGET, "search overspent its budget"
        best_cost = min(ms_cost, sm_cost)
        gain = swap_cost / best_cost if best_cost else float("inf")
        facility_gain = min(facility_gain, gain)
        facility_rows.append(
            {
                "workload": name,
                "swap_misses": swap_cost,
                "swap_evals": swap_stats.evals,
                "multiswap_misses": ms_cost,
                "multiswap_evals": ms_stats.evals,
                "smoothed_misses": sm_cost,
                "smoothed_evals": sm_stats.evals,
                "facility_gain": round(gain, 4),
                "search_s": round(t_fac, 4),
            }
        )

    # --- A12 minimax: worst per-target ratio vs seed on the A9 target set
    t0 = time.perf_counter()
    mmx = optimize_instance(
        instance, strategy="minimax", targets=targets, budget=300
    )
    t_mmx = time.perf_counter() - t0
    minimax_worst = max(
        (m / s if s else (0.0 if m == 0 else float("inf")))
        for m, s in zip(mmx.per_target, mmx.seed_per_target)
    )

    summary = {
        "ts": round(time.time(), 1),
        "score": round(score_speedup, 2),
        "swap_gain": round(swap_gain, 2),
        "color_gain": round(color_gain, 2),
        "multi_gain": round(multi_gain, 2),
        "xor_gain": round(xor_gain, 2),
        "facility_gain": round(facility_gain, 4),
        "minimax_worst": round(minimax_worst, 4),
    }
    history = []
    if JSON_PATH.exists():
        try:
            history = json.loads(JSON_PATH.read_text()).get("history", [])
        except (json.JSONDecodeError, OSError):
            history = []
    history = (history + [summary])[-HISTORY_CAP:]

    record = {
        "workload": {
            "graph": "des_rounds(rounds=8, sbox_state=48)",
            "schedule": sched.label,
            "trace_accesses": instance.trace.accesses,
            "objects": instance.n_objects,
            "frames": run_geom.n_blocks,
            "candidates": N_CANDIDATES,
            "block": B,
        },
        "score": {
            "recompile_s": round(t_recompile, 4),
            "remap_s": round(t_remap, 4),
            "speedup": round(score_speedup, 2),
        },
        "gains": {
            "seed_direct_misses": swap.seed_cost,
            "swap_misses": swap.cost,
            "swap_gain": round(swap_gain, 2),
            "swap_search_s": round(t_swap, 4),
            "color_misses": color.cost,
            "color_gain": round(color_gain, 2),
        },
        "multi": {
            "targets": [
                f"{pol}@{tg.size}w" for tg, pol, _w in multi.targets
            ],
            "seed_per_target": list(multi.seed_per_target),
            "per_target": list(multi.per_target),
            "gap_blocks": multi.gap_blocks,
            "multi_gain": round(multi_gain, 2),
            "search_s": round(t_multi, 4),
        },
        "xor": {
            "seed_mod_misses": mod_misses,
            "seed_xor_misses": xor_misses,
            "xor_gain": round(xor_gain, 2),
        },
        "facility": {
            "budget": FACILITY_BUDGET,
            "workloads": facility_rows,
            "facility_gain": round(facility_gain, 4),
        },
        "minimax": {
            "targets": [f"{pol}@{tg.size}w" for tg, pol, _w in mmx.targets],
            "seed_per_target": list(mmx.seed_per_target),
            "per_target": list(mmx.per_target),
            "minimax_worst": round(minimax_worst, 4),
            "search_s": round(t_mmx, 4),
        },
        "history": history,
    }

    show(
        [
            {"path": f"score {N_CANDIDATES} candidates", "baseline_s": round(t_recompile, 3),
             "optimized_s": round(t_remap, 3), "ratio": round(score_speedup, 1)},
            {"path": "swap vs seed (misses)", "baseline_s": swap.seed_cost,
             "optimized_s": swap.cost, "ratio": round(swap_gain, 1)},
            {"path": "color vs seed (misses)", "baseline_s": color.seed_cost,
             "optimized_s": color.cost, "ratio": round(color_gain, 1)},
            {"path": "multi vs seed (weighted)", "baseline_s": round(multi.seed_cost, 1),
             "optimized_s": round(multi.cost, 1), "ratio": round(multi_gain, 1)},
            {"path": "xor vs mod (seed layout)", "baseline_s": mod_misses,
             "optimized_s": xor_misses, "ratio": round(xor_gain, 2)},
            *(
                {"path": f"facility vs swap ({row['workload']})",
                 "baseline_s": row["swap_misses"],
                 "optimized_s": min(row["multiswap_misses"], row["smoothed_misses"]),
                 "ratio": row["facility_gain"]}
                for row in facility_rows
            ),
            {"path": "minimax worst target ratio", "baseline_s": 1.0,
             "optimized_s": round(minimax_worst, 4),
             "ratio": round(minimax_worst, 4)},
        ],
        "placement: remap cost model and optimizer gains",
    )
    assert score_speedup >= 10.0, (
        f"cost model speedup {score_speedup:.1f}x < 10x target"
    )
    assert swap_gain > 1.0, "swap refinement must strictly beat the seed layout"
    assert color_gain >= 1.0, "strategies are never worse than the seed"
    assert multi_gain >= 1.0, "multi-target layout is never worse than the seed"
    assert facility_gain > 1.0, (
        f"facility search must beat swap at equal budget on every workload: "
        f"{facility_rows}"
    )
    assert minimax_worst <= 1.0, (
        f"minimax worst per-target ratio {minimax_worst:.4f} regressed the seed"
    )

    # record only after every gate passed, so a regressed run can never
    # become the trend check's next baseline
    JSON_PATH.write_text(json.dumps(record, indent=2) + "\n")
