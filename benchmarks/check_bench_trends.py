#!/usr/bin/env python
"""Fail when tracked benchmark metrics regress against their history.

``benchmarks/bench_trace_engine.py``, ``benchmarks/bench_placement.py``
and ``benchmarks/bench_service.py`` each append one summary per run to the
``history`` array of their JSON record (``BENCH_trace_engine.json`` /
``BENCH_placement.json`` / ``BENCH_service.json``).  This script compares
the latest entry against the previous one, per file, and exits non-zero
when any tracked metric fell by more than the tolerated fraction (default
30%).  The service record additionally carries *absolute* floors
(:data:`FLOORS_BY_FILE`) that hold from the very first run: the warm-cache
speedup must be >= 5x everywhere, while the pool-scaling and
search-speedup floors apply only when the entry's recorded ``cores`` says
the machine could parallelize at all (>= 4 cores) — a 1-core runner
records its honest ratios without failing.  Lower-is-better metrics get
absolute *ceilings* instead (:data:`CEILINGS_BY_FILE`): ``obs_overhead``
(the enabled/disabled instrumentation wall-time ratio) must stay <= 1.02x,
``streaming_overhead`` (chunked over monolithic replay wall time)
<= 1.25x, and ``streaming_rss_ratio`` (chunked over monolithic subprocess
peak RSS) <= 1.0 — all from the very first run.  Ceiling metrics are deliberately *not* in the
relative trend gate — a falling ratio is an improvement, never a
regression.  With fewer than two history entries there is
nothing to compare yet and the check passes (that is the "once history
exists" contract: the first run of a fresh clone seeds the baseline).

Before comparing, every record is validated against the explicit schema
(:func:`validate_record`): ``history`` must be a list of dicts, each entry
must carry a numeric non-decreasing ``ts``, and every tracked metric that
is present must be numeric.  Older entries may legitimately *lack* newer
metrics (``multi_gain`` and ``xor_gain`` post-date the placement record's
first runs) — absence is fine, a wrong type or a time-travelling timestamp
is a named error, never a traceback.

Usage::

    python benchmarks/check_bench_trends.py                  # both defaults
    python benchmarks/check_bench_trends.py BENCH_placement.json
    python benchmarks/check_bench_trends.py --tolerance 0.3
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent

#: metrics tracked per benchmark record (non-metric keys like ``ts`` ignored)
METRICS_BY_FILE = {
    "BENCH_trace_engine.json": (
        "sweep", "single", "direct", "opt", "set_assoc", "two_level",
    ),
    "BENCH_placement.json": (
        "score", "swap_gain", "color_gain", "multi_gain", "xor_gain",
        "facility_gain",
    ),
    "BENCH_service.json": (
        "warm_speedup", "dedup_factor", "pool_scaling", "search_speedup",
    ),
}
DEFAULT_JSONS = [_ROOT / name for name in METRICS_BY_FILE]

#: absolute floors on the *latest* entry: ``(metric, floor, min_cores)``.
#: Unlike the relative trend gate these hold from the very first run — but
#: pool metrics only mean anything with real parallelism, so a floor with
#: ``min_cores > 1`` is skipped (with a note) when the entry's recorded
#: ``cores`` is absent or below it.  A 1-core CI runner records honest
#: sub-1x pool ratios without failing; a 4-core runner is held to them.
FLOORS_BY_FILE = {
    "BENCH_service.json": (
        ("warm_speedup", 5.0, 1),
        ("pool_scaling", 1.5, 4),
        ("search_speedup", 2.0, 4),
    ),
}

#: absolute ceilings on the *latest* entry: ``(metric, ceiling)`` for
#: lower-is-better metrics.  Like the floors they hold from the very first
#: run; unlike the tracked metrics they are excluded from the relative
#: trend gate, where a *drop* (an improvement, for a ratio like
#: ``obs_overhead``) would be misread as a regression.
CEILINGS_BY_FILE = {
    "BENCH_trace_engine.json": (
        ("obs_overhead", 1.02),
        ("streaming_overhead", 1.25),
        ("streaming_rss_ratio", 1.0),
    ),
    "BENCH_placement.json": (
        # minimax's worst per-target miss ratio vs the seed: the
        # never-worse contract, held from the very first recorded run
        ("minimax_worst", 1.0),
    ),
}

#: keys every history entry must carry; everything else is optional
REQUIRED_ENTRY_KEYS = ("ts",)

#: entry keys that are optional but must be numeric when present (``cores``
#: is machine provenance, not a tracked metric — it gates floors, it is
#: never compared run-to-run)
OPTIONAL_NUMERIC_KEYS = ("cores",)


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_record(record: object, name: str, metrics: tuple) -> list:
    """Schema-check one benchmark record; return a list of named errors.

    Every message names the offending key (and entry index), so a corrupt
    record fails with ``history[3].ts: expected a number, got str`` instead
    of a ``KeyError`` five frames deep in the comparison loop.
    """
    errors = []
    if not isinstance(record, dict):
        return [f"{name}: top level must be a JSON object, got {type(record).__name__}"]
    history = record.get("history")
    if history is None:
        return [f"{name}: required key 'history' is missing"]
    if not isinstance(history, list):
        return [f"{name}: 'history' must be a list, got {type(history).__name__}"]
    prev_ts = None
    for i, entry in enumerate(history):
        where = f"{name}: history[{i}]"
        if not isinstance(entry, dict):
            errors.append(f"{where}: must be an object, got {type(entry).__name__}")
            continue
        for key in REQUIRED_ENTRY_KEYS:
            if key not in entry:
                errors.append(f"{where}.{key}: required key is missing")
            elif not _is_number(entry[key]):
                errors.append(
                    f"{where}.{key}: expected a number, "
                    f"got {type(entry[key]).__name__}"
                )
        ts = entry.get("ts")
        if _is_number(ts):
            if prev_ts is not None and ts < prev_ts:
                errors.append(
                    f"{where}.ts: timestamps must be non-decreasing "
                    f"({ts} after {prev_ts})"
                )
            prev_ts = ts
        # tracked metrics are optional per entry (older records predate
        # newer metrics) but must be numeric when present
        for metric in tuple(metrics) + OPTIONAL_NUMERIC_KEYS:
            if metric in entry and not _is_number(entry[metric]):
                errors.append(
                    f"{where}.{metric}: expected a number, "
                    f"got {type(entry[metric]).__name__}"
                )
    return errors


def check(path: Path, tolerance: float) -> int:
    if not path.exists():
        print(f"trend check: {path} does not exist yet - nothing to compare")
        return 0
    try:
        record = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        print(f"trend check: cannot parse {path}: {exc}")
        return 1
    known_metrics = METRICS_BY_FILE.get(path.name, ()) + tuple(
        metric for metric, _ceiling in CEILINGS_BY_FILE.get(path.name, ())
    )
    schema_errors = validate_record(record, path.name, known_metrics)
    if schema_errors:
        for err in schema_errors:
            print(f"trend check: schema error - {err}")
        return 1
    history = record.get("history", [])
    if len(history) < 2:
        print(
            f"trend check: {len(history)} history entr"
            f"{'y' if len(history) == 1 else 'ies'} in {path.name} - "
            "need two runs before regressions can be detected"
        )
        # the absolute floors and ceilings hold from the very first run
        failed = check_floors(path.name, history) + check_ceilings(
            path.name, history
        )
        return 1 if failed else 0
    prev, last = history[-2], history[-1]
    metrics = METRICS_BY_FILE.get(path.name)
    if metrics is None:
        # unknown record: track every numeric summary key except timestamps
        metrics = tuple(
            k for k, v in last.items()
            if k != "ts" and isinstance(v, (int, float)) and not isinstance(v, bool)
        )
    failures = []
    print(f"{path.name}:")
    for metric in metrics:
        if metric not in prev or metric not in last:
            continue
        floor = prev[metric] * (1.0 - tolerance)
        status = "ok" if last[metric] >= floor else "REGRESSED"
        print(
            f"  {metric:10s} {prev[metric]:8.2f}x -> {last[metric]:8.2f}x "
            f"(floor {floor:.2f}x)  {status}"
        )
        if last[metric] < floor:
            failures.append(metric)
    floor_failures = check_floors(path.name, history)
    ceiling_failures = check_ceilings(path.name, history)
    if failures:
        print(
            f"trend check: FAIL - {', '.join(failures)} fell more than "
            f"{tolerance:.0%} below the previous run"
        )
        return 1
    if floor_failures or ceiling_failures:
        return 1
    print(f"trend check: ok ({len(history)} runs tracked)")
    return 0


def check_floors(name: str, history: list) -> list:
    """Absolute floors on the newest entry; returns failed metric names."""
    floors = FLOORS_BY_FILE.get(name)
    if not floors or not history or not isinstance(history[-1], dict):
        return []
    last = history[-1]
    cores = last.get("cores")
    failures = []
    for metric, floor, min_cores in floors:
        value = last.get(metric)
        if not _is_number(value):
            continue
        if min_cores > 1 and (not _is_number(cores) or cores < min_cores):
            # legacy entries predate the ``cores`` key entirely; name that
            # case explicitly so the skip reads as provenance, not a bug
            have = (
                f"entry has {cores}" if _is_number(cores)
                else "entry records no 'cores' (legacy run)"
            )
            print(
                f"  {metric:14s} {value:8.2f}x  floor {floor:.2f}x skipped "
                f"(needs >= {min_cores} cores, {have})"
            )
            continue
        status = "ok" if value >= floor else "BELOW FLOOR"
        print(f"  {metric:14s} {value:8.2f}x  (absolute floor {floor:.2f}x)  {status}")
        if value < floor:
            failures.append(metric)
    if failures:
        print(
            f"trend check: FAIL - {', '.join(failures)} below the absolute "
            f"floor for {name}"
        )
    return failures


def check_ceilings(name: str, history: list) -> list:
    """Absolute ceilings on the newest entry; returns failed metric names.

    Lower is better for these metrics, so the check is ``value <=
    ceiling``; entries that predate a metric pass (absence is fine, same
    contract as the floors).
    """
    ceilings = CEILINGS_BY_FILE.get(name)
    if not ceilings or not history or not isinstance(history[-1], dict):
        return []
    last = history[-1]
    failures = []
    for metric, ceiling in ceilings:
        value = last.get(metric)
        if not _is_number(value):
            continue
        status = "ok" if value <= ceiling else "ABOVE CEILING"
        print(
            f"  {metric:14s} {value:8.3f}x  (absolute ceiling "
            f"{ceiling:.2f}x)  {status}"
        )
        if value > ceiling:
            failures.append(metric)
    if failures:
        print(
            f"trend check: FAIL - {', '.join(failures)} above the absolute "
            f"ceiling for {name}"
        )
    return failures


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "json_paths",
        nargs="*",
        default=[str(p) for p in DEFAULT_JSONS],
        help="benchmark records to check (default: every known BENCH_*.json)",
    )
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="tolerated fractional drop vs the previous run (default 0.30)",
    )
    args = ap.parse_args(argv)
    return max(check(Path(p), args.tolerance) for p in args.json_paths)


if __name__ == "__main__":
    sys.exit(main())
