"""E4 — Section 4: the DP-optimal c-bounded partition is never worse than
the Theorem 5 greedy construction (at the same state bound), and both run in
polynomial time."""

from repro.analysis.experiments import experiment_e4_partition_quality


def test_e4_partition_quality(benchmark, show):
    rows = benchmark.pedantic(experiment_e4_partition_quality, rounds=1, iterations=1)
    show(rows, "E4: Theorem-5 greedy vs optimal DP pipeline partitions")
    for r in rows:
        if r["dp8_bw"]:
            assert r["greedy_bw"] >= r["dp8_bw"]
    # quadratic DP: 2x modules => at most ~8x time (allow noise); definitely
    # not exponential
    times = [r["dp_ms"] for r in rows]
    assert times[-1] < 1000
