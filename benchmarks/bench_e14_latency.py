"""E14 — the cache-vs-latency Pareto frontier: what the Θ(M) batching of the
partitioned schedulers costs in responsiveness (the latency objective the
paper's introduction sets aside)."""

from repro.analysis.latency import experiment_e14_latency_tradeoff


def test_e14_latency_tradeoff(benchmark, show):
    rows = benchmark.pedantic(
        experiment_e14_latency_tradeoff, kwargs={"n_outputs": 600}, rounds=1, iterations=1
    )
    show(rows, "E14: misses/input vs mean latency across cross-buffer capacities")
    part = [r for r in rows if r["cross_capacity"] > 0]
    assert part[-1]["misses_per_input"] < part[0]["misses_per_input"]
    assert part[-1]["mean_latency"] > part[0]["mean_latency"]
