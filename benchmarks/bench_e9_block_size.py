"""E9 — every bound in the paper carries a 1/B factor: sweeping the block
size must scale the partitioned schedule's misses close to 1/B."""

from repro.analysis.experiments import experiment_e9_block_size


def test_e9_block_size(benchmark, show):
    rows = benchmark.pedantic(
        experiment_e9_block_size, kwargs={"n_outputs": 1000}, rounds=1, iterations=1
    )
    show(rows, "E9: block-size sweep (1/B scaling)")
    for a, b in zip(rows, rows[1:]):
        assert b["misses"] < a["misses"]
    assert rows[-1]["speedup_vs_B1"] > 8
