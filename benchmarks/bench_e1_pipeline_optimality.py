"""E1 — Theorem 5 / Corollary 6: the dynamic partitioned pipeline schedule
is O(1)-competitive with the Theorem 3 lower bound under O(1) cache
augmentation.  Regenerates the measured-vs-lower-bound table."""

from repro.analysis.experiments import experiment_e1_pipeline_optimality


def test_e1_pipeline_optimality(benchmark, show):
    rows = benchmark.pedantic(
        experiment_e1_pipeline_optimality, kwargs={"n_outputs": 1000}, rounds=1, iterations=1
    )
    show(rows, "E1: partitioned pipeline vs Theorem 3 lower bound")
    for r in rows:
        assert r["measured_misses"] >= r["lb_misses"], "lower bound violated"
        assert r["ratio_to_lb"] < 150, "competitive ratio should be a bounded constant"
