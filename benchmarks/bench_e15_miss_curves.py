"""E15 — full miss curves via Mattson stack distances: the paper's argument
as one figure.  The partitioned schedule's curve collapses to its
compulsory floor once one component (plus working buffers) fits, ~1.5M; the
naive schedule's stays an order of magnitude higher until the entire graph
is resident."""

from repro.analysis.misscurve import experiment_e15_miss_curves


def test_e15_miss_curves(benchmark, show):
    rows = benchmark.pedantic(
        experiment_e15_miss_curves, kwargs={"n_outputs": 300}, rounds=1, iterations=1
    )
    show(rows, "E15: misses(C) curves, partitioned vs naive")
    mid = [r for r in rows if 1.5 <= r["cache_over_M"] <= 3.0]
    assert all(r["naive_over_partitioned"] > 10 for r in mid)
