"""Benchmark-suite configuration.

Each bench target wraps one experiment driver from
:mod:`repro.analysis.experiments`, times it with pytest-benchmark, prints the
rows EXPERIMENTS.md records, and asserts the paper-predicted shape so a
regression in either performance or behavior fails the suite.
"""

import pytest


@pytest.fixture
def show():
    """Print a table under the benchmark output (with -s)."""

    def _show(rows, title):
        from repro.analysis.report import rows_to_table

        print()
        print(rows_to_table(rows, title=title))

    return _show
