"""Trace-engine benchmark: compiled single-pass sweeps vs the stepwise
Executor, on the geometry-sweep workload the engine was built for.

Two measurements, both asserted and both recorded in
``BENCH_trace_engine.json`` at the repo root so the perf trajectory is
tracked from this PR onward:

* **sweep**: answer N cache sizes for one partitioned schedule — the
  executor pays N full simulations, the engine one compile plus one
  vectorized stack-distance pass.  Acceptance: >= 5x.
* **single**: one geometry, drop-in ``measure_compiled`` vs
  ``Executor.measure`` — must not be slower than ~par (no regression for
  non-sweep callers).

Both paths must agree miss-for-miss at every size (the oracle property,
re-checked here on the benchmark workload itself).
"""

import json
import time
from pathlib import Path

from repro.cache.base import CacheGeometry
from repro.core.partition_sched import component_layout_order, pipeline_dynamic_schedule
from repro.core.pipeline import optimal_pipeline_partition
from repro.graphs.topologies import random_pipeline
from repro.runtime.compiled import compile_trace, measure_compiled, simulate_trace
from repro.runtime.executor import Executor

B = 8
SWEEP_SIZES = (64, 96, 128, 192, 256, 384, 512, 768, 1024)
JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_trace_engine.json"


def _workload(n_outputs=800):
    g = random_pipeline(18, 48, seed=11, rate_choices=((1, 1), (2, 1), (1, 2)))
    M = 128
    part = optimal_pipeline_partition(g, M, c=1.0)
    sched = pipeline_dynamic_schedule(
        g, part, CacheGeometry(size=M, block=B), target_outputs=n_outputs
    )
    return g, sched, component_layout_order(part)


def test_trace_engine_speedup(show):
    g, sched, order = _workload()
    geoms = [CacheGeometry(size=s, block=B) for s in SWEEP_SIZES]

    t0 = time.perf_counter()
    ref = [
        Executor.measure(g, geom, sched, layout_order=order).misses for geom in geoms
    ]
    t_executor_sweep = time.perf_counter() - t0

    t0 = time.perf_counter()
    trace = compile_trace(g, sched, B, layout_order=order)
    fast = [r.misses for r in simulate_trace(trace, geoms)]
    t_compiled_sweep = time.perf_counter() - t0

    assert fast == ref, "compiled sweep diverged from stepwise executor"
    sweep_speedup = t_executor_sweep / t_compiled_sweep

    one = geoms[len(geoms) // 2]
    t0 = time.perf_counter()
    ref_one = Executor.measure(g, one, sched, layout_order=order)
    t_executor_one = time.perf_counter() - t0
    t0 = time.perf_counter()
    fast_one = measure_compiled(g, one, sched, layout_order=order)
    t_compiled_one = time.perf_counter() - t0
    assert fast_one.misses == ref_one.misses
    single_speedup = t_executor_one / t_compiled_one

    record = {
        "workload": {
            "graph": "random_pipeline(18, 48, seed=11)",
            "schedule": sched.label,
            "firings": trace.firings,
            "trace_accesses": trace.accesses,
            "sweep_sizes": list(SWEEP_SIZES),
            "block": B,
        },
        "sweep": {
            "executor_s": round(t_executor_sweep, 4),
            "compiled_s": round(t_compiled_sweep, 4),
            "speedup": round(sweep_speedup, 2),
        },
        "single_geometry": {
            "executor_s": round(t_executor_one, 4),
            "compiled_s": round(t_compiled_one, 4),
            "speedup": round(single_speedup, 2),
        },
    }
    JSON_PATH.write_text(json.dumps(record, indent=2) + "\n")

    show(
        [
            {"path": "sweep (9 sizes)", "executor_s": round(t_executor_sweep, 3),
             "compiled_s": round(t_compiled_sweep, 3), "speedup": round(sweep_speedup, 1)},
            {"path": "single geometry", "executor_s": round(t_executor_one, 3),
             "compiled_s": round(t_compiled_one, 3), "speedup": round(single_speedup, 1)},
        ],
        "trace engine: compiled vs stepwise executor",
    )
    assert sweep_speedup >= 5.0, f"sweep speedup {sweep_speedup:.1f}x < 5x target"
    assert single_speedup >= 0.5, "compiled path regressed the single-geometry case"
