"""Trace-engine benchmark: compiled single-pass sweeps vs the stepwise
paths they replaced, on the geometry-sweep workload the engine was built
for — now per replacement policy.

Measurements, all asserted and all recorded in ``BENCH_trace_engine.json``
at the repo root (with a rolling ``history`` so
``benchmarks/check_bench_trends.py`` can fail on regressions):

* **sweep** (fully-associative LRU): answer N cache sizes for one
  partitioned schedule — the executor pays N full simulations, the engine
  one compile plus one vectorized stack-distance pass.  Acceptance: >= 5x.
* **single**: one geometry, drop-in ``measure_compiled`` vs
  ``Executor.measure`` — must not be slower than ~par (no regression for
  non-sweep callers).
* **direct**: the stepwise loop the E12/A6 rewiring replaced — a
  ``DirectMappedCache`` walked block by block per geometry — vs the
  per-frame last-block replay.  Acceptance: >= 5x on the sweep.
* **opt**: the stepwise loop the A3/E8 rewiring replaced — one heap-based
  ``simulate_opt`` per geometry — vs the single truncated priority-stack
  pass answering every capacity.  Acceptance: >= 5x on the sweep.
* **set_assoc**: a ways sweep at fixed set count through the stepwise
  set-associative ``LRUCache`` vs the shared set-grouped stack-distance
  pass.  New capability (no replaced path): recorded, sanity-bounded only.
* **two_level**: the stepwise loop the E12 hierarchy row replaced — a
  ``TwoLevelCache`` walked block by block per (L1, L2) pair — vs the
  hierarchical replay (one L1 pass per distinct L1, its miss sub-trace
  feeding one L2 pass per capacity).  Acceptance: >= 5x on the grid.
* **obs_overhead**: the LRU sweep with :mod:`repro.obs` instrumentation
  enabled vs disabled (best of N, interleaved) — the enabled/disabled
  wall-time *ratio*, lower is better.  Acceptance: <= 1.02x, enforced
  here and as an absolute ceiling by ``check_bench_trends.py``.
* **streaming_overhead**: the LRU sweep through the out-of-core streaming
  replay (``chunk_words = accesses // 8``) vs the monolithic replay
  (best of N, interleaved) — the chunked/monolithic wall-time *ratio*,
  lower is better.  Acceptance: <= 1.25x, enforced here and as an
  absolute ceiling by ``check_bench_trends.py``.
* **streaming_rss_ratio**: peak RSS (``ru_maxrss``) of a subprocess that
  compiles + replays a looped ~2x10^6-access schedule chunked, over the
  same workload monolithic — lower is better, < 1.0 means the streaming
  path really is the smaller footprint.  Acceptance: <= 1.0 (ceiling in
  ``check_bench_trends.py``; ``tools/streaming_smoke.py`` proves the
  harder absolute claim under ``RLIMIT_AS`` in its own CI job).

Every path must agree miss-for-miss with its stepwise oracle at every size
(the oracle property, re-checked here on the benchmark workload itself).
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

from repro.cache.base import CacheGeometry
from repro.cache.direct import DirectMappedCache
from repro.cache.hierarchy import TwoLevelCache, TwoLevelGeometry
from repro.cache.lru import LRUCache
from repro.cache.opt import simulate_opt
from repro.core.partition_sched import component_layout_order, pipeline_dynamic_schedule
from repro.core.pipeline import optimal_pipeline_partition
from repro.graphs.topologies import random_pipeline
from repro.runtime.compiled import compile_trace, measure_compiled, simulate_trace
from repro.runtime.executor import Executor

B = 8
SWEEP_SIZES = (64, 96, 128, 192, 256, 384, 512, 768, 1024)
SET_ASSOC_WAYS = (1, 2, 4, 8, 16, 32)
SET_ASSOC_SETS = 16
TWO_LEVEL_L1 = (96, 128, 192)
TWO_LEVEL_L2 = (256, 512, 768, 1024)
JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_trace_engine.json"
HISTORY_CAP = 50


#: the streaming RSS probe: a fresh interpreter compiles + replays a looped
#: ~1.5x10^6-access schedule and reports its own peak RSS.  Run once per
#: mode so neither pass inherits the other's high-water mark.
_RSS_CHILD = """\
import resource, sys, tempfile
from repro.cache.base import CacheGeometry
from repro.core.baselines import interleaved_schedule
from repro.graphs.topologies import pipeline
from repro.runtime.compiled import (
    compile_trace, compile_trace_uncached, simulate_trace,
)
from repro.runtime.looped import Loop, LoopedSchedule

mode = sys.argv[1]
g = pipeline([24, 16, 32, 8, 40, 16], name="bench-rss")
one = interleaved_schedule(g, n_iterations=1)
per_iter = compile_trace_uncached(g, one, 8, capacities=one.capacities).accesses
reps = -(-1_500_000 // per_iter)
sched = LoopedSchedule(
    loops=(Loop(count=reps, body=tuple(one.firings)),),
    capacities=one.capacities,
    label=f"bench-rss-x{reps}",
)
geom = CacheGeometry(size=16 * 8, block=8, ways=2)
if mode == "chunked":
    from repro.runtime.streaming import compile_trace_chunked
    from repro.runtime.trace_cache import TraceCache

    with tempfile.TemporaryDirectory(prefix="repro-bench-rss-") as tmp:
        cache = TraceCache(tmp, max_bytes=1 << 31)
        trace = compile_trace_chunked(g, sched, 8, chunk_words=1 << 15, cache=cache)
        result = simulate_trace(trace, [geom], policy="lru")[0]
else:
    trace = compile_trace(g, sched, 8)
    result = simulate_trace(trace, [geom], policy="lru")[0]
print(result.misses, resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
"""


def _streaming_rss(mode):
    """(misses, peak RSS in KB) of a fresh interpreter running the looped
    RSS workload in ``mode`` ('chunked' | 'monolithic')."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", _RSS_CHILD, mode],
        capture_output=True, text=True, env=env, check=True, timeout=600,
    )
    misses, maxrss = out.stdout.split()
    return int(misses), int(maxrss)


def _workload(n_outputs=800):
    g = random_pipeline(18, 48, seed=11, rate_choices=((1, 1), (2, 1), (1, 2)))
    M = 128
    part = optimal_pipeline_partition(g, M, c=1.0)
    sched = pipeline_dynamic_schedule(
        g, part, CacheGeometry(size=M, block=B), target_outputs=n_outputs
    )
    return g, sched, component_layout_order(part)


def _model_sweep_misses(trace_blocks, make_model, geoms):
    """The stepwise loop: feed the whole trace through a fresh model per
    geometry (this is what the rewired sweeps used to pay)."""
    out = []
    for geom in geoms:
        model = make_model(geom)
        access = model.access_block
        for b in trace_blocks:
            access(b)
        out.append(model.stats.misses)
    return out


def test_trace_engine_speedup(show):
    g, sched, order = _workload()
    geoms = [CacheGeometry(size=s, block=B) for s in SWEEP_SIZES]

    t0 = time.perf_counter()
    ref = [
        Executor.measure(g, geom, sched, layout_order=order).misses for geom in geoms
    ]
    t_executor_sweep = time.perf_counter() - t0

    t0 = time.perf_counter()
    trace = compile_trace(g, sched, B, layout_order=order)
    fast = [r.misses for r in simulate_trace(trace, geoms)]
    t_compiled_sweep = time.perf_counter() - t0

    assert fast == ref, "compiled sweep diverged from stepwise executor"
    sweep_speedup = t_executor_sweep / t_compiled_sweep

    one = geoms[len(geoms) // 2]
    t0 = time.perf_counter()
    ref_one = Executor.measure(g, one, sched, layout_order=order)
    t_executor_one = time.perf_counter() - t0
    t0 = time.perf_counter()
    fast_one = measure_compiled(g, one, sched, layout_order=order)
    t_compiled_one = time.perf_counter() - t0
    assert fast_one.misses == ref_one.misses
    single_speedup = t_executor_one / t_compiled_one

    blocks_list = trace.blocks.tolist()

    # --- direct-mapped: stepwise model loop vs per-frame last-block replay
    t0 = time.perf_counter()
    dm_ref = _model_sweep_misses(blocks_list, DirectMappedCache, geoms)
    t_dm_step = time.perf_counter() - t0
    t0 = time.perf_counter()
    dm_fast = [r.misses for r in simulate_trace(trace, geoms, policy="direct")]
    t_dm_replay = time.perf_counter() - t0
    assert dm_fast == dm_ref, "direct-mapped replay diverged from stepwise model"
    dm_speedup = t_dm_step / t_dm_replay

    # --- OPT: one heap simulation per size vs one priority-stack pass
    t0 = time.perf_counter()
    opt_ref = [simulate_opt(blocks_list, geom).misses for geom in geoms]
    t_opt_step = time.perf_counter() - t0
    t0 = time.perf_counter()
    opt_fast = [r.misses for r in simulate_trace(trace, geoms, policy="opt")]
    t_opt_replay = time.perf_counter() - t0
    assert opt_fast == opt_ref, "OPT replay diverged from stepwise simulate_opt"
    opt_speedup = t_opt_step / t_opt_replay

    # --- set-associative LRU: ways sweep at fixed set count
    sa_geoms = [
        CacheGeometry(size=SET_ASSOC_SETS * w * B, block=B, ways=w)
        for w in SET_ASSOC_WAYS
    ]
    t0 = time.perf_counter()
    sa_ref = _model_sweep_misses(blocks_list, LRUCache, sa_geoms)
    t_sa_step = time.perf_counter() - t0
    t0 = time.perf_counter()
    sa_fast = [r.misses for r in simulate_trace(trace, sa_geoms, policy="lru")]
    t_sa_replay = time.perf_counter() - t0
    assert sa_fast == sa_ref, "set-associative replay diverged from stepwise LRU"
    sa_speedup = t_sa_step / t_sa_replay

    # --- two-level hierarchy: stepwise TwoLevelCache per (L1, L2) pair vs
    # the hierarchical replay (the E12 rewiring); the grid shares one L1
    # pass per L1 size, so the sweep amortizes exactly where the stepwise
    # loop cannot
    tl_geoms = [
        TwoLevelGeometry(
            CacheGeometry(size=l1, block=B), CacheGeometry(size=l2, block=B)
        )
        for l1 in TWO_LEVEL_L1
        for l2 in TWO_LEVEL_L2
    ]
    t0 = time.perf_counter()
    tl_ref = _model_sweep_misses(
        blocks_list, lambda tg: TwoLevelCache(tg.l1, tg.l2), tl_geoms
    )
    t_tl_step = time.perf_counter() - t0
    t0 = time.perf_counter()
    tl_fast = [r.misses for r in simulate_trace(trace, tl_geoms, policy="two_level")]
    t_tl_replay = time.perf_counter() - t0
    assert tl_fast == tl_ref, "two-level replay diverged from stepwise TwoLevelCache"
    tl_speedup = t_tl_step / t_tl_replay

    # --- obs overhead: instrumentation must be ~free.  Enabled-vs-disabled
    # is the stricter proxy for the disabled-cost contract: whatever the
    # full emitters cost, the one-boolean disabled path costs less.  Runs
    # interleave (off, on, off, on, ...) so clock drift cancels; best-of-N
    # on each side rejects scheduler noise.
    from repro import obs

    t_obs_off = t_obs_on = float("inf")
    for _ in range(5):
        t0 = time.perf_counter()
        off_misses = [r.misses for r in simulate_trace(trace, geoms)]
        t_obs_off = min(t_obs_off, time.perf_counter() - t0)
        with obs.capture(enabled=True):
            t0 = time.perf_counter()
            on_misses = [r.misses for r in simulate_trace(trace, geoms)]
            t_obs_on = min(t_obs_on, time.perf_counter() - t0)
        assert on_misses == off_misses, "instrumentation changed the answers"
    obs_overhead = t_obs_on / t_obs_off

    # --- streaming: the out-of-core replay must stay near the monolithic
    # path's speed on an in-memory trace (same interleaved best-of-N
    # discipline as obs_overhead) and must beat it on peak footprint on a
    # large one (fresh subprocess per mode, ru_maxrss each).
    stream_words = max(1, trace.accesses // 8)
    t_stream_off = t_stream_on = float("inf")
    for _ in range(5):
        t0 = time.perf_counter()
        mono_misses = [r.misses for r in simulate_trace(trace, geoms)]
        t_stream_off = min(t_stream_off, time.perf_counter() - t0)
        t0 = time.perf_counter()
        chunk_misses = [
            r.misses
            for r in simulate_trace(trace, geoms, chunk_words=stream_words)
        ]
        t_stream_on = min(t_stream_on, time.perf_counter() - t0)
        assert chunk_misses == mono_misses, "chunked replay changed the answers"
    streaming_overhead = t_stream_on / t_stream_off

    rss_chunk_misses, rss_chunked_kb = _streaming_rss("chunked")
    rss_mono_misses, rss_mono_kb = _streaming_rss("monolithic")
    assert rss_chunk_misses == rss_mono_misses, (
        "chunked RSS probe disagreed with the monolithic one on misses"
    )
    streaming_rss_ratio = rss_chunked_kb / rss_mono_kb

    summary = {
        "ts": round(time.time(), 1),
        "sweep": round(sweep_speedup, 2),
        "single": round(single_speedup, 2),
        "direct": round(dm_speedup, 2),
        "opt": round(opt_speedup, 2),
        "set_assoc": round(sa_speedup, 2),
        "two_level": round(tl_speedup, 2),
        "obs_overhead": round(obs_overhead, 3),
        "streaming_overhead": round(streaming_overhead, 3),
        "streaming_rss_ratio": round(streaming_rss_ratio, 3),
    }
    history = []
    if JSON_PATH.exists():
        try:
            history = json.loads(JSON_PATH.read_text()).get("history", [])
        except (json.JSONDecodeError, OSError):
            history = []
    history = (history + [summary])[-HISTORY_CAP:]

    record = {
        "workload": {
            "graph": "random_pipeline(18, 48, seed=11)",
            "schedule": sched.label,
            "firings": trace.firings,
            "trace_accesses": trace.accesses,
            "sweep_sizes": list(SWEEP_SIZES),
            "set_assoc": {"sets": SET_ASSOC_SETS, "ways": list(SET_ASSOC_WAYS)},
            "two_level": {"l1": list(TWO_LEVEL_L1), "l2": list(TWO_LEVEL_L2)},
            "block": B,
        },
        "sweep": {
            "executor_s": round(t_executor_sweep, 4),
            "compiled_s": round(t_compiled_sweep, 4),
            "speedup": round(sweep_speedup, 2),
        },
        "single_geometry": {
            "executor_s": round(t_executor_one, 4),
            "compiled_s": round(t_compiled_one, 4),
            "speedup": round(single_speedup, 2),
        },
        "policies": {
            "direct": {
                "stepwise_s": round(t_dm_step, 4),
                "replay_s": round(t_dm_replay, 4),
                "speedup": round(dm_speedup, 2),
            },
            "opt": {
                "stepwise_s": round(t_opt_step, 4),
                "replay_s": round(t_opt_replay, 4),
                "speedup": round(opt_speedup, 2),
            },
            "set_assoc": {
                "stepwise_s": round(t_sa_step, 4),
                "replay_s": round(t_sa_replay, 4),
                "speedup": round(sa_speedup, 2),
            },
            "two_level": {
                "stepwise_s": round(t_tl_step, 4),
                "replay_s": round(t_tl_replay, 4),
                "speedup": round(tl_speedup, 2),
            },
        },
        "obs": {
            "disabled_s": round(t_obs_off, 4),
            "enabled_s": round(t_obs_on, 4),
            "obs_overhead": round(obs_overhead, 3),
        },
        "streaming": {
            "chunk_words": stream_words,
            "monolithic_s": round(t_stream_off, 4),
            "chunked_s": round(t_stream_on, 4),
            "streaming_overhead": round(streaming_overhead, 3),
            "rss_monolithic_kb": rss_mono_kb,
            "rss_chunked_kb": rss_chunked_kb,
            "streaming_rss_ratio": round(streaming_rss_ratio, 3),
        },
        "history": history,
    }

    show(
        [
            {"path": "lru sweep (9 sizes)", "stepwise_s": round(t_executor_sweep, 3),
             "replay_s": round(t_compiled_sweep, 3), "speedup": round(sweep_speedup, 1)},
            {"path": "single geometry", "stepwise_s": round(t_executor_one, 3),
             "replay_s": round(t_compiled_one, 3), "speedup": round(single_speedup, 1)},
            {"path": "direct sweep (9 sizes)", "stepwise_s": round(t_dm_step, 3),
             "replay_s": round(t_dm_replay, 3), "speedup": round(dm_speedup, 1)},
            {"path": "opt sweep (9 sizes)", "stepwise_s": round(t_opt_step, 3),
             "replay_s": round(t_opt_replay, 3), "speedup": round(opt_speedup, 1)},
            {"path": "set-assoc ways sweep (6)", "stepwise_s": round(t_sa_step, 3),
             "replay_s": round(t_sa_replay, 3), "speedup": round(sa_speedup, 1)},
            {"path": "two-level grid (3x4)", "stepwise_s": round(t_tl_step, 3),
             "replay_s": round(t_tl_replay, 3), "speedup": round(tl_speedup, 1)},
            {"path": "obs on vs off (lru sweep)", "stepwise_s": round(t_obs_off, 3),
             "replay_s": round(t_obs_on, 3), "speedup": round(obs_overhead, 3)},
            {"path": "chunked vs mono (lru sweep)",
             "stepwise_s": round(t_stream_off, 3),
             "replay_s": round(t_stream_on, 3),
             "speedup": round(streaming_overhead, 3)},
            {"path": "chunked vs mono peak RSS (MB)",
             "stepwise_s": round(rss_mono_kb / 1024, 1),
             "replay_s": round(rss_chunked_kb / 1024, 1),
             "speedup": round(streaming_rss_ratio, 3)},
        ],
        "trace engine: vectorized replay vs stepwise loops",
    )
    assert sweep_speedup >= 5.0, f"sweep speedup {sweep_speedup:.1f}x < 5x target"
    assert single_speedup >= 0.5, "compiled path regressed the single-geometry case"
    assert dm_speedup >= 5.0, f"direct-mapped sweep {dm_speedup:.1f}x < 5x target"
    assert opt_speedup >= 5.0, f"OPT sweep {opt_speedup:.1f}x < 5x target"
    assert sa_speedup >= 0.5, "set-associative replay should not be dramatically slower"
    assert tl_speedup >= 5.0, f"two-level grid {tl_speedup:.1f}x < 5x target"
    assert obs_overhead <= 1.02, (
        f"instrumentation overhead {obs_overhead:.3f}x > 1.02x ceiling"
    )
    assert streaming_overhead <= 1.25, (
        f"streaming replay overhead {streaming_overhead:.3f}x > 1.25x ceiling"
    )
    assert streaming_rss_ratio < 1.0, (
        f"streaming peak RSS {streaming_rss_ratio:.3f}x of monolithic — the "
        "out-of-core path should be the smaller footprint"
    )

    # record only after every gate passed, so a regressed run can never
    # become the trend check's next baseline
    JSON_PATH.write_text(json.dumps(record, indent=2) + "\n")
