"""E5 — Theorem 7 / Lemma 8 / Corollary 9: on homogeneous dags small enough
for the exact minBW_3 search, the heuristic partition is alpha-competitive
and the partition schedule's misses respect the dag lower bound."""

from repro.analysis.experiments import experiment_e5_dag_optimality


def test_e5_dag_optimality(benchmark, show):
    rows = benchmark.pedantic(experiment_e5_dag_optimality, rounds=1, iterations=1)
    show(rows, "E5: homogeneous dags vs exact minBW_3")
    for r in rows:
        assert r["heur_bw"] >= r["minBW3"]
        assert r["alpha"] <= 2.0, "heuristic should be near-optimal on these dags"
        assert r["measured"] >= r["lb"]
