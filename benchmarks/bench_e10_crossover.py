"""E10 — the crossover: below state ~ M all schedules tie (everything is
cache-resident); above it the partitioned schedule's advantage grows."""

from repro.analysis.experiments import experiment_e10_crossover


def test_e10_crossover(benchmark, show):
    rows = benchmark.pedantic(
        experiment_e10_crossover, kwargs={"n_outputs": 600}, rounds=1, iterations=1
    )
    show(rows, "E10: total state / M crossover")
    for r in rows:
        if r["state_over_M"] < 1:
            assert r["advantage"] <= 1.5
        if r["state_over_M"] >= 3:
            assert r["advantage"] > 10
