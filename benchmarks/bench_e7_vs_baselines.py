"""E7 — the headline application table: StreamIt-motivated workloads,
partitioned schedule vs single-appearance / Sermulins-scaled / interleaved.
Shape: partitioning wins by a growing factor once total state >> M (the
paper's Section 6 cites >4x on a real app; the DAM simulation shows tens)."""

from repro.analysis.experiments import experiment_e7_vs_baselines


def test_e7_vs_baselines(benchmark, show):
    rows = benchmark.pedantic(experiment_e7_vs_baselines, rounds=1, iterations=1)
    show(rows, "E7: applications — misses/input by scheduler")
    for r in rows:
        if r["state_over_M"] > 1.5:
            assert r["win_vs_single_app"] > 4, f"{r['app']} should win by >4x"
        assert r["partitioned"] <= r["interleaved"] + 1e-9
