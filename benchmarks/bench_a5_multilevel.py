"""A5 — the heuristic partitioner menu of Section 7: greedy first-fit vs
interval DP vs multilevel coarsen/refine (refs [10]/[14]).  Shape: greedy is
never best; DP and multilevel trade blows; all run in milliseconds."""

from repro.analysis.experiments import ablation_a5_multilevel


def test_a5_multilevel(benchmark, show):
    rows = benchmark.pedantic(ablation_a5_multilevel, rounds=1, iterations=1)
    show(rows, "A5: partitioner comparison (bandwidth and wall-clock)")
    for r in rows:
        best = min(r["greedy_bw"], r["dp_bw"], r["ml_bw"])
        assert min(r["dp_bw"], r["ml_bw"]) == best, "greedy should never be uniquely best"
        assert r["ml_ms"] < 1000
