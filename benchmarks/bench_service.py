#!/usr/bin/env python
"""Service-path benchmark: execution backends + persistent trace cache.

Measures the four wins PR 7's runtime backend exists for, on the A9 DES
workload, and appends one summary per run to ``BENCH_service.json`` (with a
rolling ``history`` so ``benchmarks/check_bench_trends.py`` can gate both
relative regressions and absolute floors):

* **warm_speedup** — one :func:`repro.runtime.backend.run_batch` query,
  cold (compile + evaluate) vs warm (persistent-cache hit + evaluate).
  Core-count independent; the trend checker enforces the >= 5x floor on
  every machine.
* **dedup_factor** — a batch of N identical queries through ``run_batch``
  vs N separate single-query batches (no persistent cache): intra-batch
  dedup plus shared replay passes.
* **pool_scaling** — a wide LRU geometry sweep through
  ``simulate_trace(backend="process")`` vs ``backend="serial"``.  Only
  meaningful with real cores; the floor (>= 1.5x) applies when the
  recorded ``cores`` is >= 4, so a laptop or a 1-core CI runner records
  the honest ratio without failing.
* **search_speedup** — batched placement search
  (:func:`repro.mem.placement.swap_refine`, ``batch > 1``) on the process
  backend vs the serial backend at the *same* eval budget, after asserting
  the two trajectories are identical (same order, gaps, cost, evals — the
  backend-invariance contract).  Floor (>= 2x) gated on ``cores >= 4``.

Every timed pair also asserts bit-identical results first — a fast wrong
answer must fail here, not in a downstream experiment.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py           # full, writes JSON
    PYTHONPATH=src python benchmarks/bench_service.py --smoke   # quick CI pass, no JSON
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
if str(_ROOT / "src") not in sys.path:  # runnable without PYTHONPATH too
    sys.path.insert(0, str(_ROOT / "src"))

from repro.analysis.sweeps import des_partitioned_workload
from repro.mem.placement import build_instance, normalize_targets, swap_refine
from repro.runtime.backend import ServiceQuery, geometry_sweep, run_batch
from repro.runtime.compiled import compile_trace_uncached, simulate_trace
from repro.runtime.trace_cache import TraceCache

B = 8
JSON_PATH = _ROOT / "BENCH_service.json"
HISTORY_CAP = 50


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_warm_cache(g, sched, repeats: int) -> tuple:
    """Cold compile (+ digest + store) vs warm hit (digest + load), same input.

    This times exactly what the persistent cache saves — trace compilation —
    not the downstream geometry evaluation, which runs identically either
    way and is measured by the other benchmarks here.
    """
    import numpy as np

    from repro.runtime.trace_cache import cached_compile_trace

    with tempfile.TemporaryDirectory() as tmp:
        cache = TraceCache(Path(tmp) / "traces")
        t0 = time.perf_counter()
        cold_trace, key, hit = cached_compile_trace(g, sched, B, cache=cache)
        t_cold = time.perf_counter() - t0
        assert not hit and len(cache) == 1

        def warm_run():
            warm_trace, wkey, whit = cached_compile_trace(g, sched, B, cache=cache)
            assert whit and wkey == key
            assert np.array_equal(warm_trace.blocks, cold_trace.blocks)

        t_warm = _best_of(warm_run, repeats)

        # the batch front door rides the same cache: one warm query must
        # report the hit it got (integration, not timing)
        geoms = geometry_sweep([64 * B], B)
        answer = run_batch([ServiceQuery(g, sched, B, geoms)], cache=cache)[0]
        assert answer.cache_hit and answer.trace_key == key
    return t_cold, t_warm


def bench_dedup(g, sched, n_queries: int, repeats: int) -> tuple:
    """One deduplicating batch vs the same queries answered one at a time."""
    geoms = geometry_sweep([32 * B, 64 * B, 128 * B], B)
    queries = [ServiceQuery(g, sched, B, geoms, policy="lru") for _ in range(n_queries)]

    batched = run_batch(queries)
    assert [a.deduped for a in batched] == [False] + [True] * (n_queries - 1)
    singles = [run_batch([q])[0] for q in queries]
    for a, b in zip(batched, singles):
        assert [r.misses for r in a.results] == [r.misses for r in b.results]

    t_batch = _best_of(lambda: run_batch(queries), repeats)
    t_single = _best_of(lambda: [run_batch([q]) for q in queries], repeats)
    return t_single, t_batch


def bench_pool_scaling(trace, sizes, cores: int, repeats: int) -> tuple:
    """Process-pool geometry sweep vs the serial replay, bit-checked."""
    geoms = geometry_sweep([s * B for s in sizes], B)
    serial = simulate_trace(trace, geoms, policy="lru", backend="serial")
    pooled = simulate_trace(
        trace, geoms, policy="lru", backend="process", workers=cores
    )
    assert [r.misses for r in serial] == [r.misses for r in pooled]
    assert [r.phase_misses for r in serial] == [r.phase_misses for r in pooled]

    t_serial = _best_of(
        lambda: simulate_trace(trace, geoms, policy="lru", backend="serial"), repeats
    )
    t_pool = _best_of(
        lambda: simulate_trace(
            trace, geoms, policy="lru", backend="process", workers=cores
        ),
        repeats,
    )
    return t_serial, t_pool


def bench_search(instance, run_geom, cores: int, budget: int, batch: int) -> tuple:
    """Batched placement search, serial vs process, equal eval budget."""
    targets = normalize_targets(
        [
            (run_geom.with_ways(1), "direct", 1.0),
            (run_geom.with_ways(2), "lru", 1.0),
            (run_geom.with_ways(4), "lru", 1.0),
        ],
        block=B,
    )
    order = list(instance.objects)
    kw = dict(targets=targets, budget=budget, batch=batch, gap_budget=4)

    t0 = time.perf_counter()
    s_order, s_gaps, s_cost, s_stats = swap_refine(
        instance, order, backend="serial", **kw
    )
    t_serial = time.perf_counter() - t0
    t0 = time.perf_counter()
    p_order, p_gaps, p_cost, p_stats = swap_refine(
        instance, order, backend="process", workers=cores, **kw
    )
    t_process = time.perf_counter() - t0
    assert (p_order, p_gaps, p_cost, p_stats) == (s_order, s_gaps, s_cost, s_stats), (
        "search trajectory changed with the backend"
    )
    return t_serial, t_process, s_stats.evals


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--smoke",
        action="store_true",
        help="small workload, correctness asserts only, no JSON written",
    )
    ap.add_argument(
        "--workers", type=int, default=None,
        help="pool width for the scaling measurements (default: cpu count)",
    )
    args = ap.parse_args(argv)

    cores = os.cpu_count() or 1
    workers = args.workers or cores
    if args.smoke:
        m, inputs, sizes, budget, batch, n_queries, repeats = (
            64, 96, (16, 32, 64, 128), 24, 3, 4, 1
        )
    else:
        m, inputs, sizes, budget, batch, n_queries, repeats = (
            256, 256, (16, 32, 64, 128, 256, 512, 1024, 2048), 120, 6, 8, 3
        )

    g, sched, _part, run_geom = des_partitioned_workload(M=m, B=B, inputs=inputs)
    trace = compile_trace_uncached(g, sched, B)
    instance = build_instance(g, sched, B)

    t_cold, t_warm = bench_warm_cache(g, sched, repeats)
    warm_speedup = t_cold / t_warm if t_warm else float("inf")
    t_single, t_batch = bench_dedup(g, sched, n_queries, repeats)
    dedup_factor = t_single / t_batch if t_batch else float("inf")
    t_serial, t_pool = bench_pool_scaling(trace, sizes, workers, repeats)
    pool_scaling = t_serial / t_pool if t_pool else float("inf")
    t_sser, t_sproc, evals = bench_search(instance, run_geom, workers, budget, batch)
    search_speedup = t_sser / t_sproc if t_sproc else float("inf")

    rows = [
        ("warm cache vs cold compile", t_cold, t_warm, warm_speedup),
        (f"batch of {n_queries} vs singles", t_single, t_batch, dedup_factor),
        (f"lru sweep x{len(sizes)}, {workers} workers", t_serial, t_pool, pool_scaling),
        (f"search ({evals} evals, batch={batch})", t_sser, t_sproc, search_speedup),
    ]
    width = max(len(r[0]) for r in rows)
    print(f"service benchmark on {cores} core(s), workers={workers}"
          f"{' [smoke]' if args.smoke else ''}")
    for name, base, opt, ratio in rows:
        print(f"  {name:{width}s}  {base:8.3f}s -> {opt:8.3f}s  ({ratio:6.2f}x)")

    if args.smoke:
        # correctness already asserted inside each bench_* helper; timing
        # floors are meaningless on shared CI runners at smoke scale
        print("smoke: correctness asserts passed, no record written")
        return 0

    assert warm_speedup >= 5.0, (
        f"warm-cache speedup {warm_speedup:.2f}x < 5x floor"
    )
    assert dedup_factor >= 1.0, (
        f"batch dedup slower than single queries ({dedup_factor:.2f}x)"
    )
    if cores >= 4:
        assert pool_scaling >= 1.5, (
            f"pool scaling {pool_scaling:.2f}x < 1.5x floor on {cores} cores"
        )
        assert search_speedup >= 2.0, (
            f"search speedup {search_speedup:.2f}x < 2x floor on {cores} cores"
        )

    summary = {
        "ts": round(time.time(), 1),
        "cores": cores,
        "warm_speedup": round(warm_speedup, 2),
        "dedup_factor": round(dedup_factor, 2),
        "pool_scaling": round(pool_scaling, 2),
        "search_speedup": round(search_speedup, 2),
    }
    history = []
    if JSON_PATH.exists():
        try:
            history = json.loads(JSON_PATH.read_text()).get("history", [])
        except (json.JSONDecodeError, OSError):
            history = []
    history = (history + [summary])[-HISTORY_CAP:]
    record = {
        "workload": {
            "graph": f"des_rounds(M={m})",
            "schedule": sched.label,
            "trace_accesses": trace.accesses,
            "block": B,
            "sweep_sizes": len(sizes),
            "batch_queries": n_queries,
            "search_budget": budget,
            "search_batch": batch,
        },
        "warm_cache": {
            "cold_s": round(t_cold, 4),
            "warm_s": round(t_warm, 4),
            "warm_speedup": round(warm_speedup, 2),
        },
        "dedup": {
            "singles_s": round(t_single, 4),
            "batch_s": round(t_batch, 4),
            "dedup_factor": round(dedup_factor, 2),
        },
        "pool": {
            "serial_s": round(t_serial, 4),
            "process_s": round(t_pool, 4),
            "workers": workers,
            "pool_scaling": round(pool_scaling, 2),
        },
        "search": {
            "serial_s": round(t_sser, 4),
            "process_s": round(t_sproc, 4),
            "evals": evals,
            "search_speedup": round(search_speedup, 2),
        },
        "history": history,
    }
    JSON_PATH.write_text(json.dumps(record, indent=1) + "\n")
    print(f"wrote {JSON_PATH.name} ({len(history)} history entries)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
