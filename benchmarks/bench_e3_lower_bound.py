"""E3 — Theorem 3: NO schedule (partitioned or baseline) undercuts the
segment lower bound; the partitioned schedule sits closest to it."""

from repro.analysis.experiments import experiment_e3_lower_bound


def test_e3_lower_bound(benchmark, show):
    rows = benchmark.pedantic(
        experiment_e3_lower_bound, kwargs={"n_outputs": 1000}, rounds=1, iterations=1
    )
    show(rows, "E3: every scheduler vs the Theorem 3 lower bound")
    for r in rows:
        assert r["measured_over_lb"] >= 1.0, f"{r['schedule']} beat the lower bound!"
    closest = min(rows, key=lambda r: r["measured_over_lb"])
    assert "dynamic" in closest["schedule"]
