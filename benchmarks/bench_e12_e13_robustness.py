"""E12/E13/A8 — robustness beyond the paper's model: cache organizations
the theorems don't cover (direct-mapped, two-level), seed-averaged
competitive-ratio statistics, and the hierarchy inclusion ratio."""

from repro.analysis.sweeps import (
    ablation_a8_inclusion,
    experiment_e12_cache_models,
    experiment_e13_seed_distribution,
)


def test_e12_cache_models(benchmark, show):
    rows = benchmark.pedantic(experiment_e12_cache_models, rounds=1, iterations=1)
    show(rows, "E12: partitioned vs single-appearance across cache models")
    for r in rows:
        assert r["win"] > 1.0, f"partitioning should win under {r['cache_model']}"


def test_e13_seed_distribution(benchmark, show):
    rows = benchmark.pedantic(
        experiment_e13_seed_distribution,
        kwargs={"n_seeds": 8, "workers": 4},  # per-seed multi-trace fan-out
        rounds=1,
        iterations=1,
    )
    show(rows, "E13: competitive-ratio distribution over random pipelines")
    stats = {r["statistic"]: r for r in rows}
    assert stats["max"]["ratio_to_lb"] < 50, "ratio band should be tight"
    assert stats["min"]["win_vs_single_app"] > 1.0


def test_a8_inclusion(benchmark, show):
    rows = benchmark.pedantic(ablation_a8_inclusion, rounds=1, iterations=1)
    show(rows, "A8: L2 miss rate as a function of L1 geometry (inclusion)")
    for r in rows:
        assert r["filter_rate"] > 0.5, f"L2 should absorb most L1 misses ({r['l1']})"
