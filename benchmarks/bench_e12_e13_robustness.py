"""E12/E13 — robustness beyond the paper's model: cache organizations the
theorems don't cover (direct-mapped, two-level) and seed-averaged
competitive-ratio statistics."""

from repro.analysis.sweeps import (
    experiment_e12_cache_models,
    experiment_e13_seed_distribution,
)


def test_e12_cache_models(benchmark, show):
    rows = benchmark.pedantic(experiment_e12_cache_models, rounds=1, iterations=1)
    show(rows, "E12: partitioned vs single-appearance across cache models")
    for r in rows:
        assert r["win"] > 1.0, f"partitioning should win under {r['cache_model']}"


def test_e13_seed_distribution(benchmark, show):
    rows = benchmark.pedantic(
        experiment_e13_seed_distribution,
        kwargs={"n_seeds": 8, "workers": 4},  # per-seed multi-trace fan-out
        rounds=1,
        iterations=1,
    )
    show(rows, "E13: competitive-ratio distribution over random pipelines")
    stats = {r["statistic"]: r for r in rows}
    assert stats["max"]["ratio_to_lb"] < 50, "ratio band should be tight"
    assert stats["min"]["win_vs_single_app"] > 1.0
