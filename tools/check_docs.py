#!/usr/bin/env python
"""Documentation checker: intra-repo link integrity + runnable snippets.

The docs are executable documentation, and this script is what keeps them
honest.  It walks ``README.md`` and every ``docs/*.md`` file and fails when

* an intra-repo markdown link (``[text](path)``) points at a file that does
  not exist — external ``scheme://`` and ``mailto:`` links are skipped, and
  ``#anchors`` are stripped before resolving;
* a fenced ``python`` snippet fails to run.  Snippets containing ``>>>``
  prompts run through :mod:`doctest` (so their printed outputs are
  checked, with ``ELLIPSIS`` and ``NORMALIZE_WHITESPACE`` enabled); plain
  ``python`` blocks are ``exec``-uted top to bottom.  Tag a fence
  ``python no-run`` to exempt illustrative pseudo-code.

Run it the way CI does::

    python tools/check_docs.py            # src/ is put on sys.path for you
    python tools/check_docs.py docs/REPLAY.md

Exit status 0 means every link resolves and every snippet ran clean.
"""

from __future__ import annotations

import doctest
import re
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

ROOT = Path(__file__).resolve().parent.parent

#: ``[text](target)`` — good enough for the flat markdown these docs use;
#: image links (``![..](..)``) match too, which is what we want.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

DOCTEST_FLAGS = doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE


def doc_files(argv: List[str]) -> List[Path]:
    if argv:
        return [Path(a).resolve() for a in argv]
    return [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]


def check_links(path: Path, text: str) -> List[str]:
    """Every intra-repo link target must exist on disk."""
    errors = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, https:, mailto:
                continue
            if target.startswith("#"):  # same-page anchor
                continue
            rel = target.split("#", 1)[0]
            resolved = (path.parent / rel).resolve()
            if not resolved.exists():
                errors.append(
                    f"{path.relative_to(ROOT)}:{lineno}: broken link "
                    f"{target!r} -> {resolved}"
                )
    return errors


def python_fences(text: str) -> Iterator[Tuple[int, str, str]]:
    """Yield ``(start_line, info_string, body)`` per fenced code block."""
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        stripped = lines[i].strip()
        if stripped.startswith("```") and stripped != "```":
            info = stripped[3:].strip()
            body: List[str] = []
            start = i + 1
            i += 1
            while i < len(lines) and lines[i].strip() != "```":
                body.append(lines[i])
                i += 1
            yield start, info, "\n".join(body)
        i += 1


def run_snippets(path: Path, text: str) -> List[str]:
    """Execute every ``python`` fence; return failure descriptions.

    Fences within one file share a namespace, in document order, so a
    tutorial can build state across prose — exactly how a reader runs it.
    """
    errors = []
    globs: dict = {"__name__": "__doc_snippet__"}
    for lineno, info, body in python_fences(text):
        words = info.split()
        if not words or words[0] != "python" or "no-run" in words[1:]:
            continue
        name = f"{path.relative_to(ROOT)}:{lineno}"
        try:
            if ">>>" in body:
                parser = doctest.DocTestParser()
                test = parser.get_doctest(body, globs, name, str(path), lineno)
                runner = doctest.DocTestRunner(optionflags=DOCTEST_FLAGS)
                runner.run(test, clear_globs=False)
                globs.update(test.globs)
                if runner.failures:
                    errors.append(f"{name}: {runner.failures} doctest failure(s)")
            else:
                exec(compile(body, name, "exec"), globs)
        except Exception as exc:  # noqa: BLE001 — report and keep checking
            errors.append(f"{name}: snippet raised {type(exc).__name__}: {exc}")
    return errors


def main(argv=None) -> int:
    src = ROOT / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))
    errors: List[str] = []
    files = doc_files(list(argv) if argv is not None else sys.argv[1:])
    for path in files:
        if not path.exists():
            errors.append(f"doc file missing: {path}")
            continue
        text = path.read_text(encoding="utf-8")
        link_errors = check_links(path, text)
        snip_errors = run_snippets(path, text)
        n_snips = sum(
            1 for _, info, _ in python_fences(text) if info.split()[:1] == ["python"]
        )
        status = "ok" if not (link_errors or snip_errors) else "FAIL"
        print(f"{path.relative_to(ROOT) if path.is_relative_to(ROOT) else path}: "
              f"{n_snips} python snippet(s)  {status}")
        errors.extend(link_errors)
        errors.extend(snip_errors)
    for e in errors:
        print(f"  {e}")
    if errors:
        print(f"docs check: FAIL ({len(errors)} problem(s))")
        return 1
    print(f"docs check: ok ({len(files)} file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
