#!/usr/bin/env python
"""Out-of-core smoke test: a ~10^7-access schedule under an RSS ceiling.

The streaming engine's reason to exist is a trace that does not fit in
memory; this script proves it holds, end to end, on a real schedule.  Two
subprocesses run the same workload under the same address-space ceiling
(``resource.setrlimit(RLIMIT_AS)`` — ``RLIMIT_RSS`` is not enforced on
Linux), calibrated at runtime to the interpreter's post-import footprint
plus a fixed margin far below the trace's own size:

* the **chunked** child (``compile_trace_chunked`` + ``simulate_trace``)
  must finish: its peak is O(chunk_words + carried state), the trace lives
  on disk as content-addressed segments;
* the **monolithic** child (``compile_trace`` + ``simulate_trace``) must
  die with ``MemoryError``: the block trace alone (int64 blocks + uint8
  phases, ~9 bytes/access) exceeds the margin before replay even starts.

CI runs this as the ``streaming-smoke`` job::

    PYTHONPATH=src python tools/streaming_smoke.py

Exit status 0 means both halves behaved: streamed result produced under
the ceiling, monolithic path provably over it.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: total accesses the looped schedule expands to (>= 10^7)
TARGET_ACCESSES = 12_000_000
#: address-space headroom granted over the post-import footprint: above
#: the streaming path's O(chunk) needs (the vectorized stack-distance pass
#: allocates several int64 temporaries per chunk), below the ~108 MB the
#: monolithic trace arrays alone require
MARGIN_MB = 96
#: streaming chunk size (accesses per segment)
CHUNK_WORDS = 1 << 16


def _workload():
    """A looped schedule expanding to >= TARGET_ACCESSES accesses over a
    bounded working set (so the carried state stays small)."""
    from repro.core.baselines import interleaved_schedule
    from repro.graphs.topologies import pipeline
    from repro.runtime.looped import Loop, LoopedSchedule

    g = pipeline([24, 16, 32, 8, 40, 16], name="smoke6")
    one = interleaved_schedule(g, n_iterations=1)
    from repro.runtime.compiled import compile_trace_uncached

    per_iter = compile_trace_uncached(g, one, 8, capacities=one.capacities).accesses
    reps = -(-TARGET_ACCESSES // per_iter)  # ceil
    sched = LoopedSchedule(
        loops=(Loop(count=reps, body=tuple(one.firings)),),
        capacities=one.capacities,
        label=f"smoke-x{reps}",
    )
    return g, sched


def _apply_ceiling(margin_mb: int) -> int:
    """Clamp this process's address space to its current VmSize plus
    ``margin_mb``; returns the limit in bytes."""
    import resource

    vm_kb = 0
    with open("/proc/self/status", encoding="ascii") as fh:
        for line in fh:
            if line.startswith("VmSize:"):
                vm_kb = int(line.split()[1])
                break
    limit = vm_kb * 1024 + margin_mb * (1 << 20)
    resource.setrlimit(resource.RLIMIT_AS, (limit, limit))
    return limit


def _run_child(mode: str, margin_mb: int) -> int:
    import tempfile

    from repro.cache.base import CacheGeometry

    g, sched = _workload()
    geom = CacheGeometry(size=16 * 8, block=8, ways=2)
    limit = _apply_ceiling(margin_mb)
    print(f"[{mode}] ceiling: {limit / (1 << 20):.0f} MB of address space",
          flush=True)
    from repro.runtime.compiled import compile_trace, simulate_trace

    if mode == "chunked":
        from repro.runtime.streaming import compile_trace_chunked
        from repro.runtime.trace_cache import TraceCache

        with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
            cache = TraceCache(tmp, max_bytes=1 << 31)
            trace = compile_trace_chunked(
                g, sched, 8, chunk_words=CHUNK_WORDS, cache=cache
            )
            result = simulate_trace(trace, [geom], policy="lru")[0]
    else:
        trace = compile_trace(g, sched, 8)
        result = simulate_trace(trace, [geom], policy="lru")[0]
    print(f"[{mode}] OK accesses={result.accesses} misses={result.misses}",
          flush=True)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--child", choices=("chunked", "monolithic"))
    parser.add_argument("--margin-mb", type=int, default=MARGIN_MB)
    args = parser.parse_args(argv)
    if args.child:
        return _run_child(args.child, args.margin_mb)

    def spawn(mode: str) -> subprocess.CompletedProcess:
        return subprocess.run(
            [sys.executable, str(Path(__file__).resolve()), "--child", mode,
             "--margin-mb", str(args.margin_mb)],
            cwd=ROOT, capture_output=True, text=True, timeout=1800,
        )

    chunked = spawn("chunked")
    sys.stdout.write(chunked.stdout)
    if chunked.returncode != 0:
        sys.stderr.write(chunked.stderr)
        print("FAIL: streaming run did not survive the memory ceiling")
        return 1
    mono = spawn("monolithic")
    sys.stdout.write(mono.stdout)
    if mono.returncode == 0:
        print("FAIL: monolithic run survived a ceiling meant to exclude it "
              "(raise TARGET_ACCESSES or lower MARGIN_MB)")
        return 1
    if "MemoryError" not in mono.stderr:
        sys.stderr.write(mono.stderr)
        print("FAIL: monolithic run died, but not from the memory ceiling")
        return 1
    print(f"[monolithic] exceeded the ceiling as expected (MemoryError)")
    print("streaming smoke: ok")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(ROOT / "src"))
    raise SystemExit(main())
