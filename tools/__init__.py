"""Repo tooling: ``python -m tools.check_docs`` / ``python -m tools.run_lint``.

Package-ness is only here so the tools are runnable with ``-m`` from the
repo root (the CI convention); each script still works as a plain
``python tools/<name>.py`` invocation too.
"""
