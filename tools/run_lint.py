#!/usr/bin/env python
"""Wrapper so the analyzer runs without PYTHONPATH gymnastics::

    python tools/run_lint.py [--rules R1,R5] [--list-rules] [--format json]

Equivalent to ``PYTHONPATH=src python -m repro.lint`` from the repo root;
all flags are forwarded (see :mod:`repro.lint.cli`).  Exit status: 0 clean,
1 violations, 2 usage error.
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.lint.cli import main  # noqa: E402 — needs src on sys.path first

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
