"""Tests for the LRU cache simulator and geometry."""

import pytest

from repro.cache.base import CacheGeometry
from repro.cache.lru import LRUCache
from repro.errors import CacheConfigError


class TestGeometry:
    def test_basic(self):
        g = CacheGeometry(size=64, block=8)
        assert g.n_blocks == 8
        assert g.block_of(0) == 0
        assert g.block_of(7) == 0
        assert g.block_of(8) == 1

    def test_blocks_spanned(self):
        g = CacheGeometry(size=64, block=8)
        assert list(g.blocks_spanned(0, 8)) == [0]
        assert list(g.blocks_spanned(4, 8)) == [0, 1]
        assert list(g.blocks_spanned(8, 16)) == [1, 2]
        assert list(g.blocks_spanned(5, 0)) == []

    def test_invalid_geometry_rejected(self):
        with pytest.raises(CacheConfigError):
            CacheGeometry(size=0, block=8)
        with pytest.raises(CacheConfigError):
            CacheGeometry(size=64, block=0)
        with pytest.raises(CacheConfigError):
            CacheGeometry(size=65, block=8)


class TestLRU:
    def g(self, blocks=4, block=8):
        return LRUCache(CacheGeometry(size=blocks * block, block=block))

    def test_cold_miss_then_hit(self):
        c = self.g()
        assert c.access(0) is True
        assert c.access(1) is False  # same block
        assert c.stats.misses == 1 and c.stats.accesses == 2

    def test_capacity_eviction_lru_order(self):
        c = self.g(blocks=2)
        c.access_block(0)
        c.access_block(1)
        c.access_block(2)  # evicts 0
        assert c.contains_block(1) and c.contains_block(2)
        assert not c.contains_block(0)
        assert c.stats.evictions == 1

    def test_touch_refreshes_recency(self):
        c = self.g(blocks=2)
        c.access_block(0)
        c.access_block(1)
        c.access_block(0)  # 1 is now LRU
        c.access_block(2)  # evicts 1
        assert c.contains_block(0) and not c.contains_block(1)

    def test_access_range_counts_blocks(self):
        c = self.g(blocks=8, block=8)
        misses = c.access_range(0, 64)
        assert misses == 8
        assert c.access_range(0, 64) == 0  # all hits

    def test_access_range_partial_blocks(self):
        c = self.g(blocks=8, block=8)
        assert c.access_range(6, 4) == 2  # spans blocks 0 and 1

    def test_flush_keeps_stats(self):
        c = self.g()
        c.access_block(0)
        c.flush()
        assert c.resident_blocks() == 0
        assert c.stats.misses == 1

    def test_reset_clears_stats(self):
        c = self.g()
        c.access_block(0)
        c.reset()
        assert c.stats.misses == 0 and c.resident_blocks() == 0

    def test_never_exceeds_capacity(self):
        c = self.g(blocks=3)
        for i in range(100):
            c.access_block(i % 17)
            assert c.resident_blocks() <= 3

    def test_working_set_within_capacity_no_steady_state_misses(self):
        c = self.g(blocks=4)
        for i in range(4):
            c.access_block(i)
        start = c.stats.misses
        for _ in range(10):
            for i in range(4):
                c.access_block(i)
        assert c.stats.misses == start

    def test_cyclic_scan_thrashes(self):
        # classic LRU pathology: cycling over capacity+1 blocks misses always
        c = self.g(blocks=4)
        for _ in range(3):
            for i in range(5):
                c.access_block(i)
        assert c.stats.misses == 15

    def test_phase_attribution(self):
        c = self.g()
        c.stats.set_phase("alpha")
        c.access_block(0)
        c.stats.set_phase("beta")
        c.access_block(1)
        c.access_block(1)
        assert c.stats.phase_misses == {"alpha": 1, "beta": 1}

    def test_stats_summary_and_merge(self):
        c = self.g()
        c.access_block(0)
        s = c.stats.merged_with(c.stats)
        assert s.misses == 2 and s.accesses == 2
        assert "miss_rate" in c.stats.summary()

    def test_miss_rate_empty(self):
        c = self.g()
        assert c.stats.miss_rate == 0.0
