"""Tests for latency analysis and the E14 tradeoff driver."""

import pytest

from repro.analysis.latency import (
    LatencyStats,
    experiment_e14_latency_tradeoff,
    pipeline_latency,
)
from repro.errors import GraphError
from repro.graphs.topologies import diamond, pipeline
from repro.runtime.schedule import Schedule


class TestPipelineLatency:
    def test_interleaved_chain_latency_is_depth(self):
        g = pipeline([1] * 4)
        sched = Schedule(["m0", "m1", "m2", "m3"] * 5)
        lat = pipeline_latency(g, sched)
        assert lat.n_outputs == 5
        assert lat.mean == 3.0  # source at t, sink at t+3
        assert lat.max == 3

    def test_batched_schedule_higher_latency(self):
        g = pipeline([1] * 3)
        B = 4
        batched = Schedule(["m0"] * B + ["m1"] * B + ["m2"] * B)
        lat = pipeline_latency(g, batched)
        # first input waits for the whole m0/m1 batch: latency 2B, last 2+B-1
        assert lat.max == 2 * B
        assert lat.mean > 2.0

    def test_latency_monotone_in_batch_size(self):
        g = pipeline([1] * 3)
        means = []
        for B in (1, 2, 8):
            s = Schedule((["m0"] * B + ["m1"] * B + ["m2"] * B) * 3)
            means.append(pipeline_latency(g, s).mean)
        assert means[0] < means[1] < means[2]

    def test_gain_mapping_downsampler(self):
        # m1 consumes 2 per firing: outputs 0 derives from input 1
        g = pipeline([1, 1], rates=[(1, 2)])
        sched = Schedule(["m0", "m0", "m1"] * 2)
        lat = pipeline_latency(g, sched)
        assert lat.n_outputs == 2
        # output 0 at pos 2 derives from input index ceil(1/(1/2))-1 = 1 (pos 1)
        assert lat.max >= 1

    def test_single_module_zero_latency(self):
        g = pipeline([4])
        lat = pipeline_latency(g, Schedule(["m0"] * 5))
        assert lat.mean == 0.0 and lat.n_outputs == 5

    def test_rejects_non_pipeline(self, simple_diamond):
        with pytest.raises(GraphError):
            pipeline_latency(simple_diamond, Schedule([]))

    def test_empty_schedule(self):
        g = pipeline([1, 1])
        lat = pipeline_latency(g, Schedule([]))
        assert lat.n_outputs == 0

    def test_summary(self):
        g = pipeline([1] * 2)
        lat = pipeline_latency(g, Schedule(["m0", "m1"]))
        assert "mean" in lat.summary()


class TestE14:
    def test_pareto_shape(self):
        rows = experiment_e14_latency_tradeoff(n_outputs=300)
        part_rows = [r for r in rows if r["cross_capacity"] > 0]
        # misses fall monotonically with capacity...
        for a, b in zip(part_rows, part_rows[1:]):
            assert b["misses_per_input"] <= a["misses_per_input"] + 1e-9
        # ...while latency rises
        for a, b in zip(part_rows, part_rows[1:]):
            assert b["mean_latency"] >= a["mean_latency"]
        # interleaved anchors minimum latency but maximum misses
        inter = rows[0]
        assert inter["mean_latency"] < part_rows[0]["mean_latency"]
        assert inter["misses_per_input"] > part_rows[-1]["misses_per_input"]
