"""Tests for deadlock analysis and demand-driven scheduling."""

import pytest

from repro.errors import DeadlockError
from repro.graphs.minbuf import min_buffers
from repro.graphs.repetition import repetition_vector
from repro.graphs.sdf import StreamGraph
from repro.graphs.topologies import diamond, pipeline
from repro.runtime.deadlock import can_fire, demand_driven_schedule, fireable_modules
from repro.runtime.schedule import Schedule, validate_schedule


class TestCanFire:
    def test_source_always_fireable_without_caps(self):
        g = pipeline([1, 1])
        assert can_fire(g, "m0", {0: 0})

    def test_source_excluded_when_disallowed(self):
        g = pipeline([1, 1])
        assert not can_fire(g, "m0", {0: 0}, allow_source=False)

    def test_input_requirement(self):
        g = pipeline([1, 1], rates=[(1, 3)])
        assert not can_fire(g, "m1", {0: 2})
        assert can_fire(g, "m1", {0: 3})

    def test_output_space_requirement(self):
        g = pipeline([1, 1], rates=[(2, 1)])
        assert not can_fire(g, "m0", {0: 3}, capacities={0: 4})
        assert can_fire(g, "m0", {0: 2}, capacities={0: 4})

    def test_fireable_modules_filter(self):
        g = pipeline([1, 1, 1])
        ready = fireable_modules(g, {0: 1, 1: 0}, among=["m1", "m2"])
        assert ready == ["m1"]


class TestDemandDriven:
    def test_single_iteration_chain(self):
        g = pipeline([1, 1, 1])
        firings = demand_driven_schedule(g, {"m0": 1, "m1": 1, "m2": 1}, min_buffers(g))
        assert firings == ["m0", "m1", "m2"]
        validate_schedule(g, Schedule(firings, capacities=min_buffers(g)))

    def test_downstream_preference_minimizes_occupancy(self):
        g = pipeline([1, 1, 1])
        firings = demand_driven_schedule(
            g, {n: 3 for n in ("m0", "m1", "m2")}, min_buffers(g)
        )
        # each item is carried to the sink before the next enters
        assert firings == ["m0", "m1", "m2"] * 3

    def test_upstream_preference_changes_order(self):
        g = pipeline([1, 1, 1])
        caps = {cid: 100 for cid in min_buffers(g)}
        firings = demand_driven_schedule(
            g, {n: 2 for n in ("m0", "m1", "m2")}, caps, prefer_downstream=False
        )
        assert firings[:2] == ["m0", "m0"]

    def test_rate_changing_chain(self):
        g = pipeline([1, 1, 1], rates=[(1, 2), (3, 1)])
        reps = repetition_vector(g)
        firings = demand_driven_schedule(
            g, {n: reps[n] for n in reps}, min_buffers(g)
        )
        validate_schedule(
            g,
            Schedule(firings, capacities=min_buffers(g)),
            require_drained=True,
        )

    def test_diamond_iteration(self):
        g = diamond(branch_len=2, ways=2)
        reps = repetition_vector(g)
        firings = demand_driven_schedule(g, reps, min_buffers(g))
        validate_schedule(
            g, Schedule(firings, capacities=min_buffers(g)), require_drained=True
        )

    def test_deadlock_reported_on_undersized_buffers(self):
        g = pipeline([1, 1], rates=[(4, 4)])
        # capacity 3 < producer burst of 4: guaranteed stuck
        with pytest.raises(DeadlockError):
            demand_driven_schedule(g, {"m0": 1, "m1": 1}, {0: 3})

    def test_inconsistent_targets_deadlock(self):
        g = pipeline([1, 1])
        # m1 wants 2 firings but m0 only supplies 1 token
        with pytest.raises(DeadlockError):
            demand_driven_schedule(g, {"m0": 1, "m1": 2}, min_buffers(g))

    def test_zero_targets_empty_schedule(self):
        g = pipeline([1, 1])
        assert demand_driven_schedule(g, {"m0": 0}, min_buffers(g)) == []

    def test_initial_tokens_honored(self):
        g = pipeline([1, 1])
        firings = demand_driven_schedule(
            g, {"m1": 1}, min_buffers(g), initial_tokens={0: 1}
        )
        assert firings == ["m1"]

    def test_multiple_iterations_drain(self):
        g = pipeline([1, 1, 1], rates=[(2, 1), (1, 2)])
        reps = repetition_vector(g)
        k = 4
        firings = demand_driven_schedule(
            g, {n: k * reps[n] for n in reps}, min_buffers(g)
        )
        validate_schedule(
            g, Schedule(firings, capacities=min_buffers(g)), require_drained=True
        )
