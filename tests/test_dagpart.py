"""Tests for dag partitioning: exact B&B, interval DP, greedy, refinement."""

from fractions import Fraction

import pytest

from repro.core.dagpart import (
    exact_min_bandwidth_partition,
    greedy_topological_partition,
    interval_dp_partition,
    min_bandwidth,
    refine_partition,
)
from repro.core.partition import Partition
from repro.errors import PartitionError
from repro.graphs.topologies import (
    diamond,
    layered_random_dag,
    pipeline,
    random_pipeline,
    split_join_tree,
)


class TestExactSearch:
    def test_whole_graph_when_it_fits(self, simple_diamond):
        p = exact_min_bandwidth_partition(simple_diamond, cache_size=1000, c=1.0)
        assert p.k == 1 and p.bandwidth() == 0

    def test_respects_state_bound(self, simple_diamond):
        p = exact_min_bandwidth_partition(simple_diamond, cache_size=16, c=2.0)
        assert p.max_component_state() <= 32
        assert p.is_well_ordered()

    def test_diamond_optimal_cuts_branches(self):
        # diamond with 2 branches of 2 modules, state 16 each; bound fits
        # exactly half the graph: optimal must cut >= 2 edges (bandwidth 2
        # is achievable by splitting at the branch midpoints... verify the
        # optimum against the known value 2)
        g = diamond(branch_len=2, ways=2, state=16)
        M = 16
        p = exact_min_bandwidth_partition(g, M, c=3.0)  # bound = 48 = 3 modules
        assert p.bandwidth() == 2
        assert p.is_well_ordered() and p.is_c_bounded(M, 3.0)

    def test_well_ordered_constraint_binds(self):
        # without well-orderedness the optimizer can sometimes do better;
        # at minimum it can never do worse
        g = diamond(branch_len=3, ways=2, state=10)
        M = 10
        with_wo = exact_min_bandwidth_partition(g, M, c=3.0)
        without = exact_min_bandwidth_partition(g, M, c=3.0, require_well_ordered=False)
        assert without.bandwidth() <= with_wo.bandwidth()

    def test_matches_pipeline_dp(self):
        for seed in range(3):
            g = random_pipeline(8, 12, seed=seed, rate_choices=[(1, 1), (2, 1), (1, 2)])
            M = 15
            exact = exact_min_bandwidth_partition(g, M, c=2.0)
            from repro.core.pipeline import optimal_pipeline_partition

            dp = optimal_pipeline_partition(g, M, c=2.0)
            assert exact.bandwidth() == dp.bandwidth()

    def test_too_large_graph_rejected(self):
        g = pipeline([1] * 20)
        with pytest.raises(PartitionError):
            exact_min_bandwidth_partition(g, 5, max_modules=10)

    def test_oversized_module_rejected(self):
        g = pipeline([100, 1])
        with pytest.raises(PartitionError):
            exact_min_bandwidth_partition(g, 10, c=1.0)

    def test_min_bandwidth_helper(self, simple_diamond):
        assert min_bandwidth(simple_diamond, 1000) == 0


class TestIntervalDP:
    def test_always_well_ordered(self):
        for seed in range(4):
            g = layered_random_dag(4, 3, 12, seed=seed)
            p = interval_dp_partition(g, cache_size=40, c=1.0)
            assert p.is_well_ordered()
            assert p.max_component_state() <= 40

    def test_equals_pipeline_dp_on_chains(self):
        from repro.core.pipeline import optimal_pipeline_partition

        for seed in range(3):
            g = random_pipeline(15, 20, seed=seed, rate_choices=[(1, 1), (3, 1), (1, 3)])
            M = 40
            assert (
                interval_dp_partition(g, M, c=1.5).bandwidth()
                == optimal_pipeline_partition(g, M, c=1.5).bandwidth()
            )

    def test_never_better_than_exact(self):
        g = diamond(branch_len=2, ways=2, state=8)
        M = 8
        exact = exact_min_bandwidth_partition(g, M, c=3.0)
        dp = interval_dp_partition(g, M, c=3.0)
        assert dp.bandwidth() >= exact.bandwidth()

    def test_custom_order(self, simple_diamond):
        order = simple_diamond.topological_order()
        p = interval_dp_partition(simple_diamond, 1000, c=10.0, order=order)
        assert p.k == 1

    def test_bad_order_rejected(self, simple_diamond):
        with pytest.raises(PartitionError):
            interval_dp_partition(simple_diamond, 100, order=["src"])

    def test_oversized_module_rejected(self):
        g = pipeline([100, 1])
        with pytest.raises(PartitionError):
            interval_dp_partition(g, 10, c=1.0)


class TestGreedy:
    def test_respects_bound_and_order(self):
        g = layered_random_dag(3, 4, 10, seed=11)
        p = greedy_topological_partition(g, cache_size=30, c=1.0)
        assert p.is_well_ordered()
        assert p.max_component_state() <= 30

    def test_single_component_when_fits(self, simple_diamond):
        p = greedy_topological_partition(simple_diamond, 1000)
        assert p.k == 1

    def test_oversized_module_rejected(self):
        g = pipeline([100])
        with pytest.raises(PartitionError):
            greedy_topological_partition(g, 10)

    def test_never_beats_interval_dp(self):
        for seed in range(4):
            g = layered_random_dag(4, 3, 10, seed=seed)
            M = 35
            assert (
                greedy_topological_partition(g, M, c=1.0).bandwidth()
                >= interval_dp_partition(g, M, c=1.0).bandwidth()
            )


class TestRefine:
    def test_never_worse(self):
        for seed in range(4):
            g = layered_random_dag(4, 3, 10, seed=seed)
            M = 35
            base = greedy_topological_partition(g, M, c=1.0)
            refined = refine_partition(base, M, c=1.0)
            assert refined.bandwidth() <= base.bandwidth()
            assert refined.is_well_ordered()
            assert refined.is_c_bounded(M, 1.0)

    def test_improves_a_bad_split(self):
        # split a branch across components; refinement should pull it back
        g = diamond(branch_len=2, ways=2, state=4)
        bad = Partition(
            g, [["src", "b0_0", "b1_0"], ["b0_1", "b1_1", "snk"]], label="bad"
        )
        refined = refine_partition(bad, cache_size=100, c=1.0)
        assert refined.bandwidth() <= bad.bandwidth()

    def test_fixed_point(self):
        g = diamond(branch_len=2, ways=2, state=4)
        p1 = refine_partition(greedy_topological_partition(g, 16, c=1.0), 16, c=1.0)
        p2 = refine_partition(p1, 16, c=1.0)
        assert p2.bandwidth() == p1.bandwidth()
