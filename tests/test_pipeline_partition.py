"""Tests for pipeline partitioning: Theorem 5 construction and the DP."""

from fractions import Fraction

import pytest

from repro.core.pipeline import (
    gain_min_edge,
    greedy_state_blocks,
    optimal_pipeline_partition,
    pipeline_chain,
    theorem5_partition,
)
from repro.errors import GraphError, PartitionError
from repro.graphs.repetition import compute_gains
from repro.graphs.topologies import pipeline, random_pipeline


class TestChainHelpers:
    def test_pipeline_chain(self, homog_pipeline):
        order, chans = pipeline_chain(homog_pipeline)
        assert len(order) == 10 and len(chans) == 9
        for ch, (a, b) in zip(chans, zip(order, order[1:])):
            assert (ch.src, ch.dst) == (a, b)

    def test_gain_min_edge_finds_minimum(self):
        g = pipeline([1] * 4, rates=[(2, 1), (1, 4), (1, 1)])
        order, chans = pipeline_chain(g)
        gains = compute_gains(g)
        # edge gains: m0->m1: 2; m1->m2: 2; m2->m3: 1/2
        idx, gmin = gain_min_edge(chans, gains, 0, 3)
        assert idx == 2 and gmin == Fraction(1, 2)

    def test_gain_min_tie_breaks_early(self):
        g = pipeline([1] * 3)
        order, chans = pipeline_chain(g)
        gains = compute_gains(g)
        idx, _ = gain_min_edge(chans, gains, 0, 2)
        assert idx == 0

    def test_gain_min_empty_segment_rejected(self):
        g = pipeline([1] * 3)
        _, chans = pipeline_chain(g)
        with pytest.raises(PartitionError):
            gain_min_edge(chans, compute_gains(g), 1, 1)


class TestGreedyStateBlocks:
    def test_blocks_partition_indices(self):
        g = pipeline([10] * 20)
        blocks = greedy_state_blocks(g, cache_size=25)
        assert blocks[0][0] == 0
        assert blocks[-1][1] == 20
        for (a, b), (c, d) in zip(blocks, blocks[1:]):
            assert b == c

    def test_closed_blocks_exceed_2m(self):
        g = pipeline([10] * 20)
        M = 25
        order = g.pipeline_order()
        blocks = greedy_state_blocks(g, M)
        for lo, hi in blocks:
            assert g.total_state(order[lo:hi]) > 2 * M

    def test_blocks_bounded_by_5m(self):
        # each module <= M, so closed <= 3M and absorbed tail <= 5M
        g = random_pipeline(30, 25, seed=2)
        M = 25
        order = g.pipeline_order()
        for lo, hi in greedy_state_blocks(g, M):
            assert g.total_state(order[lo:hi]) <= 5 * M

    def test_small_graph_single_block(self):
        g = pipeline([4, 4])
        assert greedy_state_blocks(g, cache_size=100) == [(0, 2)]


class TestTheorem5Partition:
    def test_small_graph_no_cuts(self):
        g = pipeline([4] * 4)
        p = theorem5_partition(g, cache_size=100)
        assert p.k == 1 and p.bandwidth() == 0

    def test_components_contiguous_and_well_ordered(self):
        g = random_pipeline(25, 30, seed=5)
        p = theorem5_partition(g, cache_size=30)
        assert p.is_well_ordered()
        order = g.pipeline_order()
        flat = [n for i in p.component_order() for n in p.components[i]]
        assert flat == order

    def test_8m_bounded(self):
        for seed in range(5):
            g = random_pipeline(40, 20, seed=seed)
            M = 20
            p = theorem5_partition(g, M)
            assert p.max_component_state() <= 8 * M

    def test_bandwidth_is_sum_of_block_min_gains(self):
        g = pipeline([10] * 9, rates=[(1, 1), (2, 1), (1, 2), (1, 1), (4, 1), (1, 4), (1, 1), (1, 1)])
        M = 12  # blocks of ~3 modules
        p = theorem5_partition(g, M)
        gains = compute_gains(g)
        _, chans = pipeline_chain(g)
        blocks = greedy_state_blocks(g, M)
        expected = Fraction(0)
        order = g.pipeline_order()
        for lo, hi in blocks:
            if g.total_state(order[lo:hi]) <= 2 * M or hi - lo < 2:
                continue
            _, gmin = gain_min_edge(chans, gains, lo, hi - 1)
            expected += gmin
        assert p.bandwidth() == expected

    def test_cuts_prefer_low_gain_edges(self):
        # m3 is a 2:1 compressor, so edges after it carry half the tokens;
        # the second state block (modules 3-5) must cut at the first
        # half-gain edge m3->m4 rather than anywhere else.
        g = pipeline([10] * 6, rates=[(1, 1), (1, 1), (1, 2), (1, 1), (1, 1)])
        p = theorem5_partition(g, cache_size=12)
        assert any(
            ch.src == "m3" and ch.dst == "m4" for ch in p.cross_channels()
        )

    def test_single_module_graph(self):
        g = pipeline([5])
        p = theorem5_partition(g, cache_size=2)
        assert p.k == 1

    def test_non_pipeline_rejected(self, simple_diamond):
        with pytest.raises(GraphError):
            theorem5_partition(simple_diamond, 10)


class TestOptimalDP:
    def test_respects_bound(self):
        g = random_pipeline(20, 30, seed=9)
        M = 60
        p = optimal_pipeline_partition(g, M, c=1.0)
        assert p.max_component_state() <= M
        assert p.is_well_ordered()

    def test_oversized_module_rejected(self):
        g = pipeline([10, 300, 10])
        with pytest.raises(PartitionError):
            optimal_pipeline_partition(g, 100, c=1.0)

    def test_single_component_when_everything_fits(self):
        g = pipeline([4] * 5)
        p = optimal_pipeline_partition(g, 100, c=1.0)
        assert p.k == 1 and p.bandwidth() == 0

    def test_optimal_vs_exhaustive_small(self):
        """Brute-force all 2^(n-1) segmentations and compare."""
        from itertools import product

        g = pipeline([7, 9, 5, 8, 6], rates=[(2, 1), (1, 3), (3, 1), (1, 2)])
        M, c = 12, 1.5
        gains = compute_gains(g)
        order, chans = pipeline_chain(g)
        states = [g.state(n) for n in order]
        best = None
        for cuts in product([0, 1], repeat=4):
            segs, cur = [], [0]
            for i, cut in enumerate(cuts):
                if cut:
                    segs.append(cur)
                    cur = []
                cur.append(i + 1)
            segs.append(cur)
            if any(sum(states[i] for i in seg) > c * M for seg in segs):
                continue
            bw = sum(
                (gains.edge_gain(chans[seg[0] - 1].cid) for seg in segs[1:]),
                Fraction(0),
            )
            if best is None or bw < best:
                best = bw
        p = optimal_pipeline_partition(g, M, c=c)
        assert p.bandwidth() == best

    @pytest.mark.parametrize("seed", range(4))
    def test_never_worse_than_theorem5_at_c8(self, seed):
        g = random_pipeline(30, 20, seed=seed, rate_choices=[(1, 1), (2, 1), (1, 2)])
        M = 20
        assert (
            optimal_pipeline_partition(g, M, c=8.0).bandwidth()
            <= theorem5_partition(g, M).bandwidth()
        )

    def test_components_in_chain_order(self):
        g = random_pipeline(15, 10, seed=1)
        p = optimal_pipeline_partition(g, 25, c=2.0)
        order = g.pipeline_order()
        flat = [n for comp in p.components for n in comp]
        assert flat == order
