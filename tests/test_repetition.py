"""Tests for gains and repetition vectors (Definition 1, balance equations)."""

from fractions import Fraction

import pytest

from repro.errors import GraphError, RateMismatchError
from repro.graphs.repetition import compute_gains, iteration_tokens, repetition_vector
from repro.graphs.sdf import StreamGraph
from repro.graphs.topologies import pipeline


class TestComputeGains:
    def test_homogeneous_chain_all_ones(self):
        g = pipeline([1] * 5)
        gains = compute_gains(g)
        assert all(v == 1 for v in gains.node.values())
        assert all(v == 1 for v in gains.edge.values())

    def test_upsampler_gain(self):
        # a emits 3 per firing, b consumes 1 -> b fires 3x per a firing
        g = StreamGraph()
        g.add_module("a")
        g.add_module("b")
        g.add_channel("a", "b", out_rate=3, in_rate=1)
        gains = compute_gains(g)
        assert gains.gain("b") == 3
        assert gains.edge_gain(0) == 3

    def test_downsampler_gain(self):
        g = StreamGraph()
        g.add_module("a")
        g.add_module("b")
        g.add_channel("a", "b", out_rate=1, in_rate=4)
        gains = compute_gains(g)
        assert gains.gain("b") == Fraction(1, 4)
        assert gains.edge_gain(0) == 1  # one token per source firing

    def test_edge_gain_is_gain_u_times_out(self):
        g = pipeline([1, 1, 1], rates=[(2, 1), (3, 2)])
        gains = compute_gains(g)
        # gain(m1) = 2; edge m1->m2 carries gain(m1)*3 = 6 per source firing
        assert gains.gain("m1") == 2
        assert gains.edge_gain(1) == 6

    def test_rate_matched_diamond_ok(self):
        g = StreamGraph()
        for n in "sabt":
            g.add_module(n)
        g.add_channel("s", "a", out_rate=2, in_rate=1)
        g.add_channel("s", "b", out_rate=1, in_rate=1)
        g.add_channel("a", "t", out_rate=1, in_rate=2)
        g.add_channel("b", "t", out_rate=1, in_rate=1)
        gains = compute_gains(g)
        assert gains.gain("t") == 1

    def test_rate_mismatch_detected(self):
        g = StreamGraph()
        for n in "sabt":
            g.add_module(n)
        g.add_channel("s", "a", out_rate=2, in_rate=1)  # a fires 2x
        g.add_channel("s", "b", out_rate=1, in_rate=1)  # b fires 1x
        g.add_channel("a", "t")  # t fires 2x via a
        g.add_channel("b", "t")  # t fires 1x via b -> mismatch
        with pytest.raises(RateMismatchError):
            compute_gains(g)

    def test_reference_rescaling(self):
        g = pipeline([1, 1], rates=[(2, 1)])
        gains = compute_gains(g, reference="m1")
        assert gains.gain("m1") == 1
        assert gains.gain("m0") == Fraction(1, 2)

    def test_rescale_method(self):
        g = pipeline([1, 1], rates=[(2, 1)])
        gains = compute_gains(g).rescale("m1")
        assert gains.gain("m1") == 1

    def test_unknown_reference_rejected(self):
        g = pipeline([1, 1])
        with pytest.raises(GraphError):
            compute_gains(g, reference="zz")

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            compute_gains(StreamGraph())

    def test_bandwidth_of_edges(self):
        g = pipeline([1, 1, 1], rates=[(2, 1), (1, 1)])
        gains = compute_gains(g)
        assert gains.bandwidth_of_edges([0, 1]) == 2 + 2


class TestRepetitionVector:
    def test_homogeneous_all_ones(self):
        g = pipeline([1] * 4)
        assert repetition_vector(g) == {f"m{i}": 1 for i in range(4)}

    def test_up_down_sampler(self, upsample_downsample):
        reps = repetition_vector(upsample_downsample)
        assert reps == {"a": 1, "b": 3, "c": 1}

    def test_fractional_gains_scaled_integral(self):
        g = pipeline([1, 1, 1], rates=[(1, 2), (1, 3)])
        reps = repetition_vector(g)
        # gains: m0=1, m1=1/2, m2=1/6 -> reps (6, 3, 1)
        assert reps == {"m0": 6, "m1": 3, "m2": 1}

    def test_minimality_gcd_one(self):
        g = pipeline([1, 1], rates=[(2, 2)])
        reps = repetition_vector(g)
        assert reps == {"m0": 1, "m1": 1}

    def test_iteration_tokens_balance(self, mixed_pipeline):
        reps = repetition_vector(mixed_pipeline)
        toks = iteration_tokens(mixed_pipeline, reps)
        for ch in mixed_pipeline.channels():
            assert toks[ch.cid] == reps[ch.src] * ch.out_rate
            assert toks[ch.cid] == reps[ch.dst] * ch.in_rate

    def test_iteration_tokens_computes_reps_if_missing(self, homog_pipeline):
        toks = iteration_tokens(homog_pipeline)
        assert all(t == 1 for t in toks.values())
