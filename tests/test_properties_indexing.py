"""Property suites for the widened placement search space: index schemes,
padding, and the multi-geometry objective.

These are the acceptance properties the ISSUE names, driven by the shared
strategies in :mod:`repro.testing.strategies` and the differential harness
in :mod:`repro.testing.harness`:

* xor-indexed fully-associative caches behave exactly like mod-indexed
  ones (one set: the hash is irrelevant), for every engine;
* replay kernels under ``index_scheme="xor"`` are bit-identical per access
  to the stepwise skewed oracles across a ≥100-point differential grid;
* padding with a zero budget degenerates to the pure permutation search;
* the multi-geometry objective never returns a layout worse than the seed
  at any individual target.

The ``slow``-marked twins re-run the heaviest properties for the nightly
CI job (``pytest --runslow`` with ``HYPOTHESIS_PROFILE=nightly`` raising
``max_examples`` to 500).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.base import CacheGeometry
from repro.core.baselines import single_appearance_schedule
from repro.graphs.topologies import pipeline
from repro.mem.placement import (
    available_placements,
    build_instance,
    optimize_instance,
    placement_costs,
    remap_blocks,
)
from repro.testing.harness import differential_grid, replay_kernel, stepwise_oracle
from repro.testing.strategies import geometry_strategy, placement_strategy

B = 8

_traces = st.lists(st.integers(0, 60), max_size=250)


_CACHED_INSTANCE = None


def _instance():
    """One shared, read-only PlacementInstance (remap never mutates it), so
    hypothesis examples do not pay a recompile each."""
    global _CACHED_INSTANCE
    if _CACHED_INSTANCE is None:
        g = pipeline([12, 20, 6, 28, 10])
        sched = single_appearance_schedule(g, n_iterations=8)
        _CACHED_INSTANCE = build_instance(g, sched, B)
    return _CACHED_INSTANCE


# ----------------------------------------------------------------------
# index schemes
# ----------------------------------------------------------------------
class TestIndexSchemeProperties:
    @given(trace=_traces, frames=st.sampled_from([1, 2, 4, 8, 16]),
           policy=st.sampled_from(["lru", "direct", "opt"]))
    @settings(max_examples=60, deadline=None)
    def test_xor_fully_associative_equals_mod(self, trace, frames, policy):
        """One set = no hash: xor and mod fully-assoc caches are identical
        per access, on both engines."""
        from repro.cache.policy import stepwise_trace_misses
        from repro.runtime.replay import replay_miss_masks

        mod = CacheGeometry(size=frames * B, block=B)
        xor = CacheGeometry(size=frames * B, block=B, index_scheme="xor")
        if policy == "direct":
            # the direct reading treats frames as classes: compare the
            # genuinely one-class corner only
            mod = CacheGeometry(size=B, block=B)
            xor = CacheGeometry(size=B, block=B, index_scheme="xor")
        arr = np.asarray(trace, dtype=np.int64)
        m_mask, x_mask = replay_miss_masks(arr, [mod, xor], policy)
        assert m_mask.tolist() == x_mask.tolist()
        assert list(stepwise_trace_misses(trace, mod, policy)) == list(
            stepwise_trace_misses(trace, xor, policy)
        )

    @given(trace=_traces, geom=geometry_strategy())
    @settings(max_examples=60, deadline=None)
    def test_any_geometry_kernel_matches_oracle(self, trace, geom):
        policy = "lru" if geom.ways not in (None, 1) else "direct"
        differential_grid(
            replay_kernel(policy), stepwise_oracle(policy), [geom], trace
        )

    @given(trace=_traces, ways=st.sampled_from([2, 4]),
           sets=st.sampled_from([4, 8, 16]))
    @settings(max_examples=40, deadline=None)
    def test_xor_same_capacity_same_compulsory_floor(self, trace, ways, sets):
        """Skewing redistributes conflicts, never compulsory misses: both
        schemes miss at least once per distinct block, and an infinite-
        capacity organization pins both to exactly that floor."""
        from repro.runtime.replay import replay_misses

        arr = np.asarray(trace, dtype=np.int64)
        floor = len(set(trace))
        for scheme in ("mod", "xor"):
            geom = CacheGeometry(
                size=sets * ways * B, block=B, ways=ways, index_scheme=scheme
            )
            (m,) = replay_misses(arr, [geom], "lru")
            assert m >= floor

    def test_xor_grid_is_bit_identical_over_100_points(self):
        """ISSUE acceptance: the xor replay kernels agree per access with
        the stepwise skewed oracles across a ≥100-point differential grid
        spanning every policy (lru, opt, direct, two_level)."""
        from repro.cache.hierarchy import TwoLevelGeometry

        rng = np.random.default_rng(42)
        trace = (rng.zipf(1.35, size=4_000) % 256).astype(np.int64)
        lru_grid = [
            CacheGeometry(size=s * w * B, block=B, ways=w, index_scheme="xor")
            for w in (1, 2, 3, 4, 6, 8)  # ways need not be a power of two
            for s in (1, 2, 4, 8, 16, 32, 64, 128)
        ]
        opt_grid = [
            CacheGeometry(size=s * w * B, block=B, ways=w, index_scheme="xor")
            for w in (1, 2, 3, 4)
            for s in (2, 4, 8, 16, 32)
        ]
        direct_grid = [
            CacheGeometry(size=s * B, block=B, ways=1, index_scheme="xor")
            for s in (1, 2, 4, 8, 16, 32, 64, 128, 256)
        ]
        l1s = [
            CacheGeometry(size=2 * B, block=B, index_scheme="xor"),
            CacheGeometry(size=4 * B, block=B, ways=1, index_scheme="xor"),
            CacheGeometry(size=8 * B, block=B, ways=2, index_scheme="xor"),
            CacheGeometry(size=16 * B, block=B, ways=4, index_scheme="xor"),
        ]
        l2s = [
            CacheGeometry(size=16 * B, block=B, index_scheme="xor"),
            CacheGeometry(size=32 * B, block=B, ways=4, index_scheme="xor"),
            CacheGeometry(size=32 * B, block=B, ways=2, index_scheme="xor"),
            CacheGeometry(size=64 * B, block=B, ways=1, index_scheme="xor"),
            CacheGeometry(size=64 * B, block=B, index_scheme="xor"),
            CacheGeometry(size=128 * B, block=B, ways=4, index_scheme="xor"),
        ]
        two_level_grid = [TwoLevelGeometry(l1, l2) for l1 in l1s for l2 in l2s]
        points = 0
        for policy, grid in (
            ("lru", lru_grid),
            ("opt", opt_grid),
            ("direct", direct_grid),
            ("two_level", two_level_grid),
        ):
            points += differential_grid(
                replay_kernel(policy), stepwise_oracle(policy), grid, trace
            )
        assert points >= 100, f"grid only covered {points} points"

    @pytest.mark.slow
    def test_xor_grid_long_trace_nightly(self):
        """Nightly-sized rerun: a much longer, hotter trace over the same
        grid shape (the tier-1 version keeps the trace short)."""
        rng = np.random.default_rng(1337)
        trace = (rng.zipf(1.25, size=40_000) % 512).astype(np.int64)
        grid = [
            CacheGeometry(size=s * w * B, block=B, ways=w, index_scheme=scheme)
            for w in (1, 2, 4, 8)
            for s in (1, 4, 16, 64)
            for scheme in ("mod", "xor")
        ]
        differential_grid(replay_kernel("lru"), stepwise_oracle("lru"), grid, trace)
        differential_grid(replay_kernel("opt"), stepwise_oracle("opt"), grid, trace)


# ----------------------------------------------------------------------
# padding & placement candidates
# ----------------------------------------------------------------------
class TestPlacementCandidateProperties:
    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_zero_budget_candidates_are_pure_permutations(self, data):
        inst = _instance()
        order, gaps = data.draw(
            placement_strategy(inst.objects, max_gap=3, gap_budget=0)
        )
        assert gaps == {}  # the budget truncates every gap away
        assert (remap_blocks(inst, order, gaps=gaps)
                == remap_blocks(inst, order)).all()

    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_candidates_respect_their_budget_and_stay_exact(self, data):
        inst = _instance()
        budget = data.draw(st.integers(0, 6))
        order, gaps = data.draw(
            placement_strategy(inst.objects, max_gap=3, gap_budget=budget)
        )
        assert sum(gaps.values()) <= budget
        # any candidate's remapped trace equals a fresh compile under it
        from repro.runtime.compiled import compile_trace

        fresh = compile_trace(
            inst.graph,
            single_appearance_schedule(inst.graph, n_iterations=8),
            B, placement=order, gaps=gaps,
        )
        assert (remap_blocks(inst, order, gaps=gaps) == fresh.blocks).all()

    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_fully_assoc_misses_are_candidate_invariant(self, data):
        """Padding or not, the paper's model cannot see layout."""
        from repro.runtime.replay import replay_misses

        inst = _instance()
        geom = CacheGeometry(size=16 * B, block=B)
        (seed_m,) = replay_misses(inst.trace.blocks, [geom], "lru")
        order, gaps = data.draw(
            placement_strategy(inst.objects, max_gap=2, gap_budget=4)
        )
        (m,) = replay_misses(remap_blocks(inst, order, gaps=gaps), [geom], "lru")
        assert m == seed_m


# ----------------------------------------------------------------------
# multi-geometry objective
# ----------------------------------------------------------------------
class TestMultiTargetProperties:
    @given(
        w1=st.floats(0.1, 10.0), w2=st.floats(0.1, 10.0), w3=st.floats(0.1, 10.0),
        strategy=st.sampled_from(sorted(available_placements())),
    )
    @settings(max_examples=10, deadline=None)
    def test_never_worse_than_seed_at_every_target(self, w1, w2, w3, strategy):
        """Every *registered* strategy — the seed trio and the A12 facility
        searches alike — honors the never-worse contract at every target."""
        inst = _instance()
        targets = [
            (CacheGeometry(size=16 * B, block=B), "direct", w1),
            (CacheGeometry(size=16 * B, block=B, ways=2), "lru", w2),
            (CacheGeometry(size=16 * B, block=B, ways=2, index_scheme="xor"),
             "lru", w3),
        ]
        res = optimize_instance(
            inst, strategy=strategy, targets=targets, budget=40, gap_budget=2,
            restarts=2, noise=0.5, seed=0,
        )
        for c, s in zip(res.per_target, res.seed_per_target):
            assert c <= s
        assert res.per_target == placement_costs(
            inst, res.order, targets, gaps=res.gaps
        )

    @pytest.mark.slow
    @given(
        weights=st.lists(st.floats(0.1, 10.0), min_size=3, max_size=3),
        strategy=st.sampled_from(sorted(available_placements())),
    )
    @settings(max_examples=25, deadline=None)
    def test_never_worse_nightly(self, weights, strategy):
        """Nightly high-examples twin over the full registry at a larger
        budget (``HYPOTHESIS_PROFILE=nightly`` raises max_examples)."""
        inst = _instance()
        targets = [
            (CacheGeometry(size=16 * B, block=B), "direct", weights[0]),
            (CacheGeometry(size=16 * B, block=B, ways=2), "lru", weights[1]),
            (CacheGeometry(size=32 * B, block=B, ways=4), "lru", weights[2]),
        ]
        res = optimize_instance(
            inst, strategy=strategy, targets=targets, budget=120, gap_budget=4,
            restarts=2, noise=0.5, seed=0,
        )
        for c, s in zip(res.per_target, res.seed_per_target):
            assert c <= s
