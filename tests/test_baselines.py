"""Tests for baseline schedulers."""

import pytest

from repro.cache.base import CacheGeometry
from repro.core.baselines import (
    interleaved_schedule,
    kohli_greedy_schedule,
    sermulins_scaled_schedule,
    single_appearance_schedule,
)
from repro.errors import GraphError, ScheduleError
from repro.graphs.repetition import repetition_vector
from repro.graphs.topologies import diamond, pipeline, random_pipeline
from repro.runtime.schedule import validate_schedule


class TestSingleAppearance:
    def test_feasible_and_drained(self, mixed_pipeline):
        s = single_appearance_schedule(mixed_pipeline, n_iterations=3)
        validate_schedule(mixed_pipeline, s, require_drained=True)

    def test_counts_are_iterations_times_reps(self, mixed_pipeline):
        reps = repetition_vector(mixed_pipeline)
        s = single_appearance_schedule(mixed_pipeline, n_iterations=4)
        counts = s.fire_counts()
        assert all(counts[n] == 4 * reps[n] for n in reps)

    def test_consecutive_appearance(self, mixed_pipeline):
        """All firings of one module are consecutive within an iteration."""
        reps = repetition_vector(mixed_pipeline)
        s = single_appearance_schedule(mixed_pipeline, n_iterations=1)
        seen = []
        for f in s.firings:
            if not seen or seen[-1] != f:
                seen.append(f)
        assert len(seen) == len(reps)  # each module appears once as a block

    def test_works_on_dags(self, simple_diamond):
        s = single_appearance_schedule(simple_diamond, n_iterations=2)
        validate_schedule(simple_diamond, s, require_drained=True)

    def test_bad_iterations_rejected(self, simple_diamond):
        with pytest.raises(ScheduleError):
            single_appearance_schedule(simple_diamond, n_iterations=0)


class TestInterleaved:
    def test_feasible_with_minbuf(self, mixed_pipeline):
        s = interleaved_schedule(mixed_pipeline, n_iterations=5)
        validate_schedule(mixed_pipeline, s, require_drained=True)

    def test_pushes_items_through_homogeneous_pipeline(self):
        g = pipeline([4] * 4)
        s = interleaved_schedule(g, n_iterations=3)
        assert s.firings == ["m0", "m1", "m2", "m3"] * 3

    def test_works_on_dags(self, simple_diamond):
        s = interleaved_schedule(simple_diamond, n_iterations=2)
        validate_schedule(simple_diamond, s, require_drained=True)

    def test_bad_iterations_rejected(self, simple_diamond):
        with pytest.raises(ScheduleError):
            interleaved_schedule(simple_diamond, n_iterations=-1)


class TestSermulins:
    def test_feasible(self, mixed_pipeline, geom):
        s = sermulins_scaled_schedule(mixed_pipeline, geom, n_macro_iterations=2)
        validate_schedule(mixed_pipeline, s, require_drained=True)

    def test_scaling_factor_grows_with_cache(self):
        g = pipeline([4] * 4)
        small = sermulins_scaled_schedule(g, CacheGeometry(size=32, block=8))
        big = sermulins_scaled_schedule(g, CacheGeometry(size=512, block=8))
        s_small = int(small.label.split("s=")[1].rstrip("]"))
        s_big = int(big.label.split("s=")[1].rstrip("]"))
        assert s_big > s_small

    def test_degrades_to_single_appearance_when_no_room(self):
        g = pipeline([1, 1], rates=[(64, 64)])  # one iteration needs 64 tokens
        s = sermulins_scaled_schedule(g, CacheGeometry(size=32, block=8))
        assert "s=1" in s.label

    def test_buffers_hold_scaled_iteration(self, geom):
        g = pipeline([2] * 3)
        s = sermulins_scaled_schedule(g, geom, n_macro_iterations=1)
        scale = int(s.label.split("s=")[1].rstrip("]"))
        for cid, cap in s.capacities.items():
            assert cap == scale  # homogeneous: iteration token = 1

    def test_bad_iterations_rejected(self, geom):
        with pytest.raises(ScheduleError):
            sermulins_scaled_schedule(pipeline([1, 1]), geom, n_macro_iterations=0)


class TestKohli:
    def test_produces_target_outputs(self, geom):
        g = pipeline([8] * 6)
        s = kohli_greedy_schedule(g, geom, target_outputs=50)
        validate_schedule(g, s)
        assert s.count("m5") == 50

    def test_feasible_on_rate_changing_pipeline(self, mixed_pipeline, geom):
        s = kohli_greedy_schedule(mixed_pipeline, geom, target_outputs=30)
        validate_schedule(mixed_pipeline, s)

    def test_batches_locally(self, geom):
        g = pipeline([8] * 3)
        s = kohli_greedy_schedule(g, geom, target_outputs=64, batch_fraction=0.25)
        # the first module should run a batch before the second starts
        first_m1 = s.firings.index("m1")
        assert s.firings[:first_m1].count("m0") > 1

    def test_rejects_dag(self, simple_diamond, geom):
        with pytest.raises(GraphError):
            kohli_greedy_schedule(simple_diamond, geom, target_outputs=5)

    def test_rejects_bad_target(self, geom):
        with pytest.raises(ScheduleError):
            kohli_greedy_schedule(pipeline([1, 1]), geom, target_outputs=0)


class TestPhased:
    def test_feasible_and_drained(self, mixed_pipeline):
        from repro.core.baselines import phased_schedule

        s = phased_schedule(mixed_pipeline, n_iterations=3)
        validate_schedule(mixed_pipeline, s, require_drained=True)

    def test_levels_fire_in_order(self, simple_diamond):
        from repro.core.baselines import phased_schedule

        s = phased_schedule(simple_diamond, n_iterations=1)
        pos = {name: i for i, name in enumerate(s.firings)}
        # src (level 0) before both branch heads, heads before tails
        assert pos["src"] < pos["b0_0"] < pos["b0_1"] < pos["snk"]
        assert pos["src"] < pos["b1_0"] < pos["b1_1"] < pos["snk"]

    def test_parallel_branches_interleave_by_level(self, simple_diamond):
        from repro.core.baselines import phased_schedule

        s = phased_schedule(simple_diamond, n_iterations=1)
        pos = {name: i for i, name in enumerate(s.firings)}
        # both level-1 modules precede both level-2 modules
        assert max(pos["b0_0"], pos["b1_0"]) < min(pos["b0_1"], pos["b1_1"])

    def test_works_with_rates(self, upsample_downsample):
        from repro.core.baselines import phased_schedule
        from repro.graphs.repetition import repetition_vector

        s = phased_schedule(upsample_downsample, n_iterations=2)
        validate_schedule(upsample_downsample, s, require_drained=True)
        reps = repetition_vector(upsample_downsample)
        assert s.count("b") == 2 * reps["b"]

    def test_bad_iterations_rejected(self, simple_diamond):
        from repro.core.baselines import phased_schedule

        with pytest.raises(ScheduleError):
            phased_schedule(simple_diamond, n_iterations=0)
