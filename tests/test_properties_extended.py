"""Extended property-based tests covering the extension modules: dynamic
dag scheduling, parallel simulation invariants, CSDF expansion, miss-curve
consistency, and loop-nest compression on generated schedules."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cache.base import CacheGeometry
from repro.core.dagpart import interval_dp_partition
from repro.core.dynamic_dag import dynamic_dag_schedule
from repro.core.parallel_sched import parallel_dynamic_simulation
from repro.errors import PartitionError
from repro.graphs.csdf import CsdfGraph, expand_csdf
from repro.graphs.repetition import repetition_vector
from repro.graphs.validate import validate_graph
from repro.runtime.looped import compress_schedule
from repro.runtime.schedule import Schedule, validate_schedule
from repro.testing.strategies import small_dags


class TestDynamicDagProperties:
    @given(g=small_dags(max_layers=3, max_width=2, max_state=12), outs=st.integers(1, 3))
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_always_feasible_and_meets_target(self, g, outs):
        geom = CacheGeometry(size=32, block=4)
        try:
            part = interval_dp_partition(g, geom.size, c=3.0)
        except PartitionError:
            return
        sched = dynamic_dag_schedule(g, part, geom, target_outputs=outs * geom.size)
        validate_schedule(g, sched)
        assert sched.count(g.sinks()[0]) >= outs * geom.size


class TestParallelProperties:
    @given(
        g=small_dags(max_layers=3, max_width=3, max_state=10),
        p=st.integers(1, 4),
    )
    @settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_conservation_and_speedup_bounds(self, g, p):
        geom = CacheGeometry(size=24, block=4)
        try:
            part = interval_dp_partition(g, geom.size, c=3.0)
        except PartitionError:
            return
        res = parallel_dynamic_simulation(g, part, geom, n_workers=p, target_outputs=64)
        # physics: speedup within [something positive, P]; work conserved
        assert 0 < res.speedup <= p + 1e-9
        assert res.total_work == sum(w.busy_time for w in res.workers)
        assert res.makespan <= res.total_work
        assert 0 < res.load_balance <= 1.0


class TestCsdfProperties:
    @given(
        phases=st.integers(1, 4),
        per_phase=st.lists(st.integers(0, 3), min_size=1, max_size=4),
        state=st.integers(0, 20),
    )
    @settings(max_examples=40, deadline=None)
    def test_two_module_expansion_valid(self, phases, per_phase, state):
        per_phase = (per_phase + [1] * phases)[:phases]
        if sum(per_phase) == 0:
            per_phase[0] = 1
        total = sum(per_phase)
        g = CsdfGraph("prop")
        g.add_module("a", phases=phases, state=state)
        g.add_module("b", phases=1, state=1)
        g.add_channel("a", "b", out_seq=per_phase, in_seq=[total])
        sdf, pm = expand_csdf(g)
        # fully idle phases may dangle as extra sources/sinks (documented);
        # the structural/rate checks must hold regardless, and normalization
        # repairs the endpoints.
        report = validate_graph(sdf, require_single_endpoints=False)
        assert report.ok, report.errors
        from repro.graphs.transforms import normalize_source_sink

        normalized = normalize_source_sink(sdf)
        assert validate_graph(normalized).ok
        # one cycle: every phase fires once; b consumes the cycle total
        reps = repetition_vector(sdf)
        phase_reps = {reps[n] for n in pm["a"]}
        assert len(phase_reps) == 1

    @given(phases=st.integers(2, 5))
    @settings(max_examples=20, deadline=None)
    def test_token_totals_preserved(self, phases):
        """Expanded graph moves the same number of tokens per cycle as the
        CSDF channel's cycle total."""
        seq = [1] * phases
        g = CsdfGraph("tok")
        g.add_module("a", phases=phases, state=2)
        g.add_module("b", phases=1, state=2)
        g.add_channel("a", "b", out_seq=seq, in_seq=[phases])
        sdf, pm = expand_csdf(g)
        reps = repetition_vector(sdf)
        from repro.graphs.repetition import iteration_tokens

        toks = iteration_tokens(sdf, reps)
        # tokens reaching b per iteration == cycle total == phases
        into_b = sum(
            toks[ch.cid] for ch in sdf.channels() if ch.dst == "b"
        )
        assert into_b == phases * reps["b"]


class TestMissCurveProperties:
    @given(trace=st.lists(st.integers(0, 15), max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_curve_bounded_by_opt_and_total(self, trace):
        from repro.analysis.misscurve import miss_curve
        from repro.cache.opt import simulate_opt

        if not trace:
            return
        curve = miss_curve(trace)
        n_distinct = len(set(trace))
        assert curve[-1] == n_distinct  # floor = compulsory
        assert curve[0] == len(trace)  # zero cache misses everything
        # LRU(c) >= OPT(c) at every size
        for c in (1, 2, 4):
            geo = CacheGeometry(size=c * 4, block=4)
            idx = min(c, len(curve) - 1)
            assert curve[idx] >= simulate_opt(trace, geo).misses


class TestCompressionProperties:
    @given(g=small_dags(max_layers=2, max_width=2, max_state=8), batches=st.integers(1, 3))
    @settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_partition_schedules_round_trip(self, g, batches):
        from repro.core.partition_sched import homogeneous_partition_schedule

        geom = CacheGeometry(size=16, block=4)
        try:
            part = interval_dp_partition(g, geom.size, c=3.0)
        except PartitionError:
            return
        sched = homogeneous_partition_schedule(g, part, geom, n_batches=batches)
        ls = compress_schedule(sched)
        assert list(ls.firings_iter()) == sched.firings
        assert ls.compression_ratio() >= 1.0
