"""Shared fixtures: canonical graphs and cache geometries used across the
test suite."""

from __future__ import annotations

import pytest

from repro.cache.base import CacheGeometry
from repro.graphs.sdf import StreamGraph
from repro.graphs.topologies import diamond, pipeline, random_pipeline


@pytest.fixture
def geom() -> CacheGeometry:
    """Default experiment geometry: M=128 words, B=8 words/block."""
    return CacheGeometry(size=128, block=8)


@pytest.fixture
def small_geom() -> CacheGeometry:
    return CacheGeometry(size=32, block=4)


@pytest.fixture
def homog_pipeline() -> StreamGraph:
    """10-module homogeneous pipeline, 24 words state each (240 total)."""
    return pipeline([24] * 10, name="homog10")


@pytest.fixture
def mixed_pipeline() -> StreamGraph:
    """Pipeline with up/down-samplers: rates 1:1, 2:1, 1:2, 3:1."""
    return pipeline(
        [16, 24, 8, 32, 24, 16],
        rates=[(1, 1), (2, 1), (1, 2), (3, 1), (1, 3)],
        name="mixed6",
    )


@pytest.fixture
def simple_diamond() -> StreamGraph:
    """src -> two 2-module branches -> snk, homogeneous."""
    return diamond(branch_len=2, ways=2, state=16)


@pytest.fixture
def upsample_downsample() -> StreamGraph:
    """Three modules: 1 -> 3 expander then 3 -> 1 decimator."""
    g = StreamGraph("updown")
    g.add_module("a", state=4)
    g.add_module("b", state=4)
    g.add_module("c", state=4)
    g.add_channel("a", "b", out_rate=3, in_rate=1)
    g.add_channel("b", "c", out_rate=1, in_rate=3)
    return g
