"""Tests for the Partition type (Definitions 2 and 3)."""

from fractions import Fraction

import pytest

from repro.core.partition import Partition, singleton_partition, whole_graph_partition
from repro.errors import NotWellOrderedError, PartitionError
from repro.graphs.topologies import diamond, pipeline


class TestConstruction:
    def test_valid(self, homog_pipeline):
        p = Partition(homog_pipeline, [[f"m{i}" for i in range(5)], [f"m{i}" for i in range(5, 10)]])
        assert p.k == 2
        assert p.component_of("m0") == 0 and p.component_of("m7") == 1

    def test_missing_module_rejected(self, homog_pipeline):
        with pytest.raises(PartitionError):
            Partition(homog_pipeline, [["m0"]])

    def test_duplicate_rejected(self, homog_pipeline):
        comps = [["m0", "m1"], ["m1"] + [f"m{i}" for i in range(2, 10)]]
        with pytest.raises(PartitionError):
            Partition(homog_pipeline, comps)

    def test_empty_component_rejected(self, homog_pipeline):
        with pytest.raises(PartitionError):
            Partition(homog_pipeline, [[], [f"m{i}" for i in range(10)]])

    def test_no_components_rejected(self, homog_pipeline):
        with pytest.raises(PartitionError):
            Partition(homog_pipeline, [])

    def test_unknown_module_rejected(self, homog_pipeline):
        with pytest.raises(Exception):
            Partition(homog_pipeline, [["zz"] + [f"m{i}" for i in range(10)]])


class TestMetrics:
    def test_cross_and_internal_channels(self, homog_pipeline):
        p = Partition(homog_pipeline, [[f"m{i}" for i in range(5)], [f"m{i}" for i in range(5, 10)]])
        assert len(p.cross_channels()) == 1
        assert len(p.internal_channels()) == 8
        assert len(p.internal_channels(0)) == 4

    def test_bandwidth_homogeneous_counts_edges(self, simple_diamond):
        p = singleton_partition(simple_diamond)
        assert p.bandwidth() == simple_diamond.n_channels

    def test_bandwidth_weighs_gains(self):
        g = pipeline([4, 4, 4], rates=[(4, 1), (1, 1)])
        p = Partition(g, [["m0"], ["m1", "m2"]])
        assert p.bandwidth() == 4  # edge m0->m1 carries 4 tokens/input
        p2 = Partition(g, [["m0", "m1"], ["m2"]])
        assert p2.bandwidth() == 4  # m1 fires 4x emitting 1 each

    def test_component_state(self, homog_pipeline):
        p = Partition(homog_pipeline, [[f"m{i}" for i in range(3)], [f"m{i}" for i in range(3, 10)]])
        assert p.component_state(0) == 3 * 24
        assert p.max_component_state() == 7 * 24

    def test_component_degree(self, simple_diamond):
        p = Partition(
            simple_diamond,
            [["src"], ["b0_0", "b0_1", "b1_0", "b1_1", "snk"]],
        )
        assert p.component_degree(0) == 2
        assert p.component_degree(1) == 2

    def test_whole_graph_zero_bandwidth(self, simple_diamond):
        assert whole_graph_partition(simple_diamond).bandwidth() == 0


class TestWellOrdered:
    def test_chain_segments_well_ordered(self, homog_pipeline):
        p = Partition(homog_pipeline, [[f"m{i}" for i in range(5)], [f"m{i}" for i in range(5, 10)]])
        assert p.is_well_ordered()
        assert p.component_order() == [0, 1]

    def test_interleaved_branches_not_well_ordered(self, simple_diamond):
        p = Partition(
            simple_diamond,
            [["src", "b0_0", "b1_1"], ["b1_0", "b0_1", "snk"]],
        )
        assert not p.is_well_ordered()
        with pytest.raises(NotWellOrderedError):
            p.component_order()

    def test_branch_split_well_ordered(self, simple_diamond):
        p = Partition(
            simple_diamond,
            [["src"], ["b0_0", "b0_1"], ["b1_0", "b1_1"], ["snk"]],
        )
        assert p.is_well_ordered()
        order = p.component_order()
        assert order[0] == 0 and order[-1] == 3

    def test_singletons_always_well_ordered(self, simple_diamond):
        assert singleton_partition(simple_diamond).is_well_ordered()


class TestBounds:
    def test_c_bounded(self, homog_pipeline):
        p = Partition(homog_pipeline, [[f"m{i}" for i in range(5)], [f"m{i}" for i in range(5, 10)]])
        assert p.is_c_bounded(cache_size=120)  # 5*24 == 120
        assert not p.is_c_bounded(cache_size=119)
        assert p.is_c_bounded(cache_size=60, c=2.0)

    def test_degree_limited(self, simple_diamond):
        p = Partition(simple_diamond, [["src"], ["b0_0", "b0_1", "b1_0", "b1_1", "snk"]])
        assert p.is_degree_limited(cache_size=16, block=8)  # limit 2 >= 2
        assert not p.is_degree_limited(cache_size=8, block=8)  # limit 1 < 2

    def test_validate_raises_appropriately(self, simple_diamond):
        good = Partition(simple_diamond, [["src"], ["b0_0", "b0_1", "b1_0", "b1_1", "snk"]])
        good.validate(cache_size=1000)
        with pytest.raises(PartitionError):
            good.validate(cache_size=10)
        bad = Partition(simple_diamond, [["src", "b0_0", "b1_1"], ["b1_0", "b0_1", "snk"]])
        with pytest.raises(NotWellOrderedError):
            bad.validate(cache_size=1000)

    def test_describe_and_repr(self, homog_pipeline):
        p = Partition(homog_pipeline, [[f"m{i}" for i in range(10)]], label="all")
        assert "all" in repr(p)
        assert "C0" in p.describe()
