"""Schema validation + regression detection of ``check_bench_trends``.

The trend checker is a CI gate: a corrupt ``BENCH_*.json`` must fail with
an error naming the offending key and entry, never an uncaught
``KeyError``/``TypeError`` — and legitimately sparse history (older runs
predating newer metrics) must stay green.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_bench_trends",
    Path(__file__).resolve().parent.parent / "benchmarks" / "check_bench_trends.py",
)
cbt = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(cbt)

PLACEMENT_METRICS = cbt.METRICS_BY_FILE["BENCH_placement.json"]


def _record(*entries):
    return {"history": list(entries)}


def _errors(record, metrics=PLACEMENT_METRICS):
    return cbt.validate_record(record, "BENCH_placement.json", metrics)


class TestValidateRecord:
    def test_well_formed_record_passes(self):
        rec = _record(
            {"ts": 1.0, "score": 20.0, "swap_gain": 5.0},
            {"ts": 2.0, "score": 21.0, "swap_gain": 6.0, "xor_gain": 1.2},
        )
        assert _errors(rec) == []

    def test_older_entries_may_lack_newer_metrics(self):
        # multi_gain/xor_gain post-date the record's first runs
        rec = _record({"ts": 1, "score": 20.0}, {"ts": 2, "score": 21.0,
                                                 "multi_gain": 6.4, "xor_gain": 1.1})
        assert _errors(rec) == []

    def test_non_dict_top_level_named(self):
        (err,) = _errors([1, 2, 3])
        assert "top level must be a JSON object" in err and "list" in err

    def test_missing_history_named(self):
        (err,) = _errors({"machine": "ci"})
        assert "'history' is missing" in err

    def test_non_list_history_named(self):
        (err,) = _errors({"history": {"ts": 1}})
        assert "'history' must be a list" in err and "dict" in err

    def test_non_dict_entry_names_index(self):
        (err,) = _errors(_record({"ts": 1}, "oops"))
        assert "history[1]" in err and "str" in err

    def test_missing_ts_names_entry_and_key(self):
        (err,) = _errors(_record({"ts": 1}, {"score": 2.0}))
        assert "history[1].ts" in err and "missing" in err

    def test_non_numeric_ts_named(self):
        (err,) = _errors(_record({"ts": "2026-08-08"}))
        assert "history[0].ts" in err and "expected a number, got str" in err

    def test_bool_is_not_a_number(self):
        (err,) = _errors(_record({"ts": True}))
        assert "history[0].ts" in err and "bool" in err

    def test_decreasing_timestamps_named(self):
        (err,) = _errors(_record({"ts": 5}, {"ts": 3}))
        assert "history[1].ts" in err and "non-decreasing" in err
        assert "3" in err and "5" in err

    def test_equal_timestamps_allowed(self):
        assert _errors(_record({"ts": 5}, {"ts": 5})) == []

    def test_non_numeric_metric_named(self):
        (err,) = _errors(_record({"ts": 1, "score": "fast"}))
        assert "history[0].score" in err and "got str" in err

    def test_multiple_errors_all_collected(self):
        errs = _errors(_record({"score": "x"}, {"ts": "y"}))
        assert len(errs) == 3  # missing ts, bad score, bad ts
        assert all("history[" in e for e in errs)


class TestCheckIntegration:
    def _write(self, tmp_path, payload, name="BENCH_placement.json"):
        p = tmp_path / name
        p.write_text(json.dumps(payload))
        return p

    def test_corrupt_record_fails_with_named_key(self, tmp_path, capsys):
        p = self._write(tmp_path, _record({"ts": 1, "score": 10.0},
                                          {"ts": 2, "score": None}))
        assert cbt.check(p, tolerance=0.3) == 1
        out = capsys.readouterr().out
        assert "schema error" in out and "history[1].score" in out

    def test_time_travel_fails_before_comparison(self, tmp_path, capsys):
        p = self._write(tmp_path, _record({"ts": 9, "score": 10.0},
                                          {"ts": 1, "score": 10.0}))
        assert cbt.check(p, tolerance=0.3) == 1
        assert "non-decreasing" in capsys.readouterr().out

    def test_valid_record_still_detects_regression(self, tmp_path, capsys):
        p = self._write(tmp_path, _record({"ts": 1, "score": 10.0},
                                          {"ts": 2, "score": 2.0}))
        assert cbt.check(p, tolerance=0.3) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_valid_record_within_tolerance_passes(self, tmp_path, capsys):
        p = self._write(tmp_path, _record({"ts": 1, "score": 10.0},
                                          {"ts": 2, "score": 9.0}))
        assert cbt.check(p, tolerance=0.3) == 0
        assert "ok" in capsys.readouterr().out

    def test_single_entry_seeds_baseline(self, tmp_path, capsys):
        p = self._write(tmp_path, _record({"ts": 1, "score": 10.0}))
        assert cbt.check(p, tolerance=0.3) == 0
        assert "need two runs" in capsys.readouterr().out

    def test_unknown_record_gets_generic_numeric_tracking(self, tmp_path):
        p = self._write(tmp_path, _record({"ts": 1, "foo": 10.0},
                                          {"ts": 2, "foo": 1.0}),
                        name="BENCH_custom.json")
        assert cbt.check(p, tolerance=0.3) == 1

    def test_live_records_validate(self):
        root = Path(__file__).resolve().parent.parent
        for name, metrics in cbt.METRICS_BY_FILE.items():
            path = root / name
            if not path.exists():
                continue
            record = json.loads(path.read_text())
            assert cbt.validate_record(record, name, metrics) == []


class TestServiceFloors:
    """Absolute floors on BENCH_service.json: warm cache everywhere, pool
    metrics only where the recorded ``cores`` says parallelism exists."""

    def _write(self, tmp_path, *entries):
        p = tmp_path / "BENCH_service.json"
        p.write_text(json.dumps({"history": list(entries)}))
        return p

    def test_warm_floor_holds_from_first_run(self, tmp_path, capsys):
        p = self._write(tmp_path, {"ts": 1, "cores": 1, "warm_speedup": 2.0})
        assert cbt.check(p, tolerance=0.3) == 1
        assert "BELOW FLOOR" in capsys.readouterr().out

    def test_warm_floor_passes_when_met(self, tmp_path, capsys):
        p = self._write(tmp_path, {"ts": 1, "cores": 1, "warm_speedup": 7.0})
        assert cbt.check(p, tolerance=0.3) == 0
        assert "absolute floor 5.00x" in capsys.readouterr().out

    def test_pool_floors_skipped_below_four_cores(self, tmp_path, capsys):
        p = self._write(
            tmp_path,
            {"ts": 1, "cores": 1, "warm_speedup": 9.0,
             "pool_scaling": 0.8, "search_speedup": 0.9},
        )
        assert cbt.check(p, tolerance=0.3) == 0
        out = capsys.readouterr().out
        assert out.count("skipped (needs >= 4 cores") == 2

    def test_pool_floors_enforced_at_four_cores(self, tmp_path, capsys):
        p = self._write(
            tmp_path,
            {"ts": 1, "cores": 4, "warm_speedup": 9.0,
             "pool_scaling": 1.1, "search_speedup": 2.5},
        )
        assert cbt.check(p, tolerance=0.3) == 1
        out = capsys.readouterr().out
        assert "pool_scaling" in out and "BELOW FLOOR" in out
        assert "search_speedup" in out

    def test_missing_cores_field_skips_pool_floors(self, tmp_path, capsys):
        # provenance-less entries (hand-edited, pre-cores) stay green on
        # pool metrics but are still held to the warm floor
        p = self._write(tmp_path, {"ts": 1, "warm_speedup": 9.0,
                                   "pool_scaling": 0.5})
        assert cbt.check(p, tolerance=0.3) == 0

    def test_legacy_entry_skip_note_names_the_missing_key(self, tmp_path, capsys):
        # the skip note must say the entry *records no cores* — not print
        # a bare "entry has None" that reads like a parsing bug
        p = self._write(tmp_path, {"ts": 1, "warm_speedup": 9.0,
                                   "pool_scaling": 0.5})
        assert cbt.check(p, tolerance=0.3) == 0
        out = capsys.readouterr().out
        assert "records no 'cores' (legacy run)" in out
        assert "None" not in out

    def test_low_cores_skip_note_still_reports_the_count(self, tmp_path, capsys):
        p = self._write(tmp_path, {"ts": 1, "cores": 2, "warm_speedup": 9.0,
                                   "pool_scaling": 0.5})
        assert cbt.check(p, tolerance=0.3) == 0
        assert "entry has 2" in capsys.readouterr().out

    def test_floors_also_apply_with_full_history(self, tmp_path, capsys):
        p = self._write(
            tmp_path,
            {"ts": 1, "cores": 4, "warm_speedup": 9.0, "pool_scaling": 2.0},
            {"ts": 2, "cores": 4, "warm_speedup": 8.5, "pool_scaling": 1.2},
        )
        # relative drop is within tolerance, but 1.2x is below the 1.5x floor
        assert cbt.check(p, tolerance=0.3) == 1
        assert "BELOW FLOOR" in capsys.readouterr().out

    def test_non_numeric_cores_is_a_schema_error(self, tmp_path, capsys):
        p = self._write(tmp_path, {"ts": 1, "cores": "one", "warm_speedup": 9.0})
        assert cbt.check(p, tolerance=0.3) == 1
        assert "history[0].cores" in capsys.readouterr().out

    def test_live_service_record_passes_floors(self):
        path = Path(__file__).resolve().parent.parent / "BENCH_service.json"
        if not path.exists():
            pytest.skip("no live service record")
        history = json.loads(path.read_text())["history"]
        assert cbt.check_floors("BENCH_service.json", history) == []


class TestTraceEngineCeilings:
    """Absolute ceilings on BENCH_trace_engine.json: ``obs_overhead`` is a
    lower-is-better ratio, gated at <= 1.02x from the first run and
    deliberately excluded from the relative trend comparison (a falling
    ratio is an improvement, never a regression)."""

    def _write(self, tmp_path, *entries):
        p = tmp_path / "BENCH_trace_engine.json"
        p.write_text(json.dumps({"history": list(entries)}))
        return p

    def test_ceiling_holds_from_first_run(self, tmp_path, capsys):
        p = self._write(tmp_path, {"ts": 1, "obs_overhead": 1.5})
        assert cbt.check(p, tolerance=0.3) == 1
        assert "ABOVE CEILING" in capsys.readouterr().out

    def test_ceiling_passes_when_met(self, tmp_path, capsys):
        p = self._write(tmp_path, {"ts": 1, "obs_overhead": 0.99})
        assert cbt.check(p, tolerance=0.3) == 0
        assert "absolute ceiling 1.02x" in capsys.readouterr().out

    def test_entries_predating_the_metric_pass(self, tmp_path):
        p = self._write(tmp_path, {"ts": 1, "sweep": 8.0})
        assert cbt.check(p, tolerance=0.3) == 0

    def test_ceiling_also_applies_with_full_history(self, tmp_path, capsys):
        p = self._write(
            tmp_path,
            {"ts": 1, "sweep": 8.0, "obs_overhead": 1.00},
            {"ts": 2, "sweep": 8.1, "obs_overhead": 1.10},
        )
        # every relative trend is fine, but 1.10x breaches the ceiling
        assert cbt.check(p, tolerance=0.3) == 1
        assert "ABOVE CEILING" in capsys.readouterr().out

    def test_falling_ratio_is_not_a_regression(self, tmp_path, capsys):
        # a >30% drop would trip the relative gate if obs_overhead were a
        # tracked metric; as a ceiling metric it is simply a better run
        p = self._write(
            tmp_path,
            {"ts": 1, "sweep": 8.0, "obs_overhead": 1.01},
            {"ts": 2, "sweep": 8.1, "obs_overhead": 0.50},
        )
        assert cbt.check(p, tolerance=0.3) == 0
        assert "REGRESSED" not in capsys.readouterr().out

    def test_non_numeric_obs_overhead_is_a_schema_error(self, tmp_path, capsys):
        p = self._write(tmp_path, {"ts": 1, "obs_overhead": "cheap"})
        assert cbt.check(p, tolerance=0.3) == 1
        assert "history[0].obs_overhead" in capsys.readouterr().out

    def test_live_trace_engine_record_passes_ceilings(self):
        path = Path(__file__).resolve().parent.parent / "BENCH_trace_engine.json"
        if not path.exists():
            pytest.skip("no live trace-engine record")
        history = json.loads(path.read_text())["history"]
        assert cbt.check_ceilings("BENCH_trace_engine.json", history) == []


class TestPlacementFacilityMetrics:
    """A12's bench metrics: ``facility_gain`` rides the relative trend
    gate like the other placement gains; ``minimax_worst`` is
    lower-is-better and held to the <= 1.0 never-worse ceiling."""

    def _write(self, tmp_path, *entries):
        p = tmp_path / "BENCH_placement.json"
        p.write_text(json.dumps({"history": list(entries)}))
        return p

    def test_facility_gain_is_trend_tracked(self, tmp_path, capsys):
        p = self._write(
            tmp_path,
            {"ts": 1, "facility_gain": 1.10},
            {"ts": 2, "facility_gain": 0.60},
        )
        assert cbt.check(p, tolerance=0.3) == 1
        out = capsys.readouterr().out
        assert "facility_gain" in out and "REGRESSED" in out

    def test_minimax_worst_ceiling_holds_from_first_run(self, tmp_path, capsys):
        p = self._write(tmp_path, {"ts": 1, "minimax_worst": 1.2})
        assert cbt.check(p, tolerance=0.3) == 1
        assert "ABOVE CEILING" in capsys.readouterr().out

    def test_minimax_worst_drop_is_an_improvement(self, tmp_path, capsys):
        # worst-target ratio falling 0.9 -> 0.5 must not trip the trend gate
        p = self._write(
            tmp_path,
            {"ts": 1, "facility_gain": 1.05, "minimax_worst": 0.9},
            {"ts": 2, "facility_gain": 1.06, "minimax_worst": 0.5},
        )
        assert cbt.check(p, tolerance=0.3) == 0
        assert "REGRESSED" not in capsys.readouterr().out

    def test_entries_predating_the_metrics_pass(self, tmp_path):
        p = self._write(
            tmp_path,
            {"ts": 1, "swap_gain": 6.0},
            {"ts": 2, "swap_gain": 6.1},
        )
        assert cbt.check(p, tolerance=0.3) == 0
