"""Tests for Theorem 3 / Theorem 7 lower bounds."""

from fractions import Fraction

import pytest

from repro.cache.base import CacheGeometry
from repro.core.lower_bound import (
    DAG_LB_CONSTANT,
    PIPELINE_LB_CONSTANT,
    dag_lower_bound,
    pipeline_lower_bound,
)
from repro.graphs.topologies import diamond, pipeline, random_pipeline


class TestPipelineLB:
    def test_zero_for_cache_resident_graph(self):
        g = pipeline([4] * 4)
        lb = pipeline_lower_bound(g, cache_size=100)
        assert lb.bandwidth == 0
        assert lb.misses(1000, CacheGeometry(64, 8)) == 0

    def test_homogeneous_counts_segments(self):
        g = pipeline([10] * 30)
        M = 25  # blocks of >50 state -> 6 modules each -> 5 segments
        lb = pipeline_lower_bound(g, M)
        assert len(lb.segments) == 5
        assert lb.bandwidth == 5  # all gains 1

    def test_min_gain_picked_per_segment(self):
        # compressor halves token rate after m2: second segment's min gain is 1/2
        g = pipeline([10] * 6, rates=[(1, 1), (1, 1), (1, 2), (1, 1), (1, 1)])
        lb = pipeline_lower_bound(g, cache_size=12)
        assert lb.min_gains == (Fraction(1), Fraction(1, 2))

    def test_misses_formula(self):
        g = pipeline([10] * 10)
        M = 12
        geom = CacheGeometry(size=M * 8, block=8)  # B=8 (size irrelevant here)
        lb = pipeline_lower_bound(g, M)
        T = 800
        assert lb.misses(T, geom) == PIPELINE_LB_CONSTANT * Fraction(T, 8) * lb.bandwidth
        assert lb.misses_per_input(geom) * T == lb.misses(T, geom)

    def test_segments_are_disjoint_and_large(self):
        g = random_pipeline(40, 20, seed=3)
        M = 20
        order = g.pipeline_order()
        lb = pipeline_lower_bound(g, M)
        seen = set()
        for lo, hi in lb.segments:
            assert g.total_state(order[lo:hi]) >= 2 * M
            span = set(range(lo, hi))
            assert not span & seen
            seen |= span

    def test_single_module_graph(self):
        g = pipeline([5])
        lb = pipeline_lower_bound(g, 2)
        assert lb.bandwidth == 0


class TestDagLB:
    def test_zero_when_graph_fits_3m(self, simple_diamond):
        lb = dag_lower_bound(simple_diamond, cache_size=1000)
        assert lb.min_bandwidth == 0 and lb.exact

    def test_exact_on_small_graph(self):
        g = diamond(branch_len=2, ways=2, state=16)
        lb = dag_lower_bound(g, cache_size=16, c=3.0)
        assert lb.exact
        assert lb.min_bandwidth == 2

    def test_trivial_on_large_graph(self):
        g = pipeline([10] * 30)
        lb = dag_lower_bound(g, cache_size=5, exact_limit=10)
        assert not lb.exact and lb.min_bandwidth == 0

    def test_miss_formula(self):
        g = diamond(branch_len=2, ways=2, state=16)
        geom = CacheGeometry(size=48, block=8)
        lb = dag_lower_bound(g, cache_size=16, c=3.0)
        assert lb.misses(160, geom) == DAG_LB_CONSTANT * Fraction(160, 8) * 2


class TestLowerBoundIsRespected:
    """The theorems say NO schedule beats the bound; execute several and check."""

    @pytest.mark.parametrize("seed", range(3))
    def test_all_schedulers_respect_pipeline_lb(self, seed):
        from repro.core.baselines import interleaved_schedule, single_appearance_schedule
        from repro.core.partition_sched import (
            component_layout_order,
            pipeline_dynamic_schedule,
        )
        from repro.core.pipeline import optimal_pipeline_partition
        from repro.core.tuning import required_geometry
        from repro.runtime.executor import Executor

        g = random_pipeline(15, 30, seed=seed, rate_choices=[(1, 1), (2, 1), (1, 2)])
        M = 48
        geom = CacheGeometry(size=M, block=8)
        lb = pipeline_lower_bound(g, M)
        part = optimal_pipeline_partition(g, M, c=1.0)
        aug = required_geometry(part, geom)

        runs = [
            Executor.measure(
                g,
                aug,
                pipeline_dynamic_schedule(g, part, geom, target_outputs=300),
                layout_order=component_layout_order(part),
            ),
            Executor.measure(g, aug, single_appearance_schedule(g, n_iterations=50)),
            Executor.measure(g, aug, interleaved_schedule(g, n_iterations=50)),
        ]
        for res in runs:
            bound = float(lb.misses(res.source_fires, geom))
            assert res.misses >= bound, f"{res.label}: {res.misses} < {bound}"
