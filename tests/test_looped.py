"""Tests for looped schedules (loop-nest representation + compressor)."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cache.base import CacheGeometry
from repro.core.dagpart import interval_dp_partition
from repro.core.partition_sched import (
    component_layout_order,
    homogeneous_partition_schedule,
)
from repro.core.tuning import required_geometry
from repro.errors import ScheduleError
from repro.graphs.topologies import diamond, pipeline
from repro.runtime.executor import Executor
from repro.runtime.looped import Loop, LoopedSchedule, compress_schedule
from repro.runtime.schedule import Schedule


class TestLoop:
    def test_expansion(self):
        l = Loop(count=3, body=("a", "b"))
        assert list(l.firings_iter()) == ["a", "b"] * 3
        assert len(l) == 6

    def test_nested(self):
        inner = Loop(count=2, body=("x",))
        outer = Loop(count=3, body=("a", inner))
        assert list(outer.firings_iter()) == ["a", "x", "x"] * 3
        assert len(outer) == 9

    def test_render(self):
        l = Loop(count=2, body=("a", Loop(count=3, body=("b",))))
        assert l.render() == "(2 a (3 b))"

    def test_invalid_rejected(self):
        with pytest.raises(ScheduleError):
            Loop(count=0, body=("a",))
        with pytest.raises(ScheduleError):
            Loop(count=1, body=())


class TestCompression:
    def test_pure_run(self):
        s = Schedule(["a"] * 100)
        ls = compress_schedule(s)
        assert ls.n_nodes <= 2
        assert list(ls.firings_iter()) == s.firings

    def test_periodic_pattern(self):
        s = Schedule(["a", "b", "c"] * 50)
        ls = compress_schedule(s)
        assert ls.n_nodes <= 5
        assert list(ls.firings_iter()) == s.firings

    def test_mixed_pattern(self):
        flat = (["a"] * 4 + ["b", "c"] * 3) * 10
        ls = compress_schedule(Schedule(flat))
        assert list(ls.firings_iter()) == flat
        assert ls.compression_ratio() > 5

    def test_incompressible(self):
        flat = ["a", "b", "a", "c", "b", "a", "c", "c", "b"]
        ls = compress_schedule(Schedule(flat))
        assert list(ls.firings_iter()) == flat

    def test_partition_schedule_compresses_massively(self):
        g = diamond(branch_len=3, ways=2, state=24)
        geom = CacheGeometry(size=64, block=8)
        part = interval_dp_partition(g, 64, c=2.0)
        sched = homogeneous_partition_schedule(g, part, geom, n_batches=4)
        ls = compress_schedule(sched)
        assert ls.compression_ratio() > 50
        assert list(ls.firings_iter()) == sched.firings

    def test_metadata_carried(self):
        s = Schedule(["a"] * 3, capacities={0: 7}, label="lbl")
        ls = compress_schedule(s)
        assert ls.capacities == {0: 7} and ls.label == "lbl"
        assert ls.to_flat().firings == s.firings

    @given(
        pattern=st.lists(st.sampled_from("abc"), min_size=1, max_size=6),
        reps=st.integers(1, 20),
        noise=st.lists(st.sampled_from("abc"), max_size=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip_property(self, pattern, reps, noise):
        flat = noise + pattern * reps + noise
        ls = compress_schedule(Schedule(flat))
        assert list(ls.firings_iter()) == flat


class TestExecutorRunsLooped:
    def test_same_misses_as_flat(self):
        g = pipeline([24] * 6)
        geom = CacheGeometry(size=64, block=8)
        part = interval_dp_partition(g, 64, c=2.0)
        sched = homogeneous_partition_schedule(g, part, geom, n_batches=3)
        order = component_layout_order(part)
        rg = required_geometry(part, geom)

        flat_res = Executor(
            g, rg, capacities=sched.capacities, layout_order=order
        ).run(sched)
        ls = compress_schedule(sched)
        looped_res = Executor(
            g, rg, capacities=ls.capacities, layout_order=order
        ).run(ls)
        assert looped_res.misses == flat_res.misses
        assert looped_res.fire_counts == flat_res.fire_counts
