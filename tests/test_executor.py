"""Tests for the firing engine (executor) — the measurement instrument."""

import pytest

from repro.cache.base import CacheGeometry
from repro.cache.lru import LRUCache
from repro.errors import ScheduleError
from repro.graphs.minbuf import min_buffers
from repro.graphs.sdf import StreamGraph
from repro.graphs.topologies import pipeline
from repro.mem.trace import TracingCache
from repro.runtime.executor import (
    Executor,
    sink_stream_words,
    source_stream_words,
)
from repro.runtime.schedule import Schedule


def make(graph, M=64, B=8, **kw):
    return Executor(graph, CacheGeometry(size=M, block=B), **kw)


class TestFire:
    def test_moves_tokens(self):
        g = pipeline([8, 8])
        ex = make(g)
        ex.fire("m0")
        assert ex.tokens()[0] == 1
        ex.fire("m1")
        assert ex.tokens()[0] == 0

    def test_insufficient_input_rejected(self):
        g = pipeline([8, 8])
        ex = make(g)
        with pytest.raises(ScheduleError):
            ex.fire("m1")

    def test_full_output_rejected(self):
        g = pipeline([8, 8])
        ex = make(g, capacities={0: 2})
        ex.fire("m0")
        ex.fire("m0")
        with pytest.raises(ScheduleError):
            ex.fire("m0")

    def test_state_touched_on_every_firing(self):
        g = pipeline([64, 0])
        ex = make(g, M=32, B=8)  # state 64 = 8 blocks > 4-frame cache
        ex.fire("m0")
        ex.fire("m0")
        # state cannot fit: every firing re-misses all 8 state blocks
        assert ex.cache.stats.phase_misses["state"] == 16

    def test_state_cached_when_fits(self):
        g = pipeline([16, 0])
        ex = make(g, M=64, B=8)
        for _ in range(10):
            ex.fire("m0")
            ex.fire("m1")
        assert ex.cache.stats.phase_misses["state"] == 2  # two cold blocks

    def test_external_stream_charged_per_block(self):
        g = pipeline([0, 0])
        ex = make(g, M=64, B=8)
        for _ in range(16):
            ex.fire("m0")
            ex.fire("m1")
        # 16 input words + 16 output words at 8 words/block = 2+2 misses
        assert ex.cache.stats.phase_misses["stream"] == 4

    def test_multirate_source_advances_stream_per_token(self):
        # source produces 4 tokens/firing: external input must advance by 4
        # words per firing, not 1 — the paper's per-data-item normalization
        g = StreamGraph("multirate")
        g.add_module("m0", state=0)
        g.add_module("m1", state=0)
        g.add_channel("m0", "m1", out_rate=4, in_rate=1)
        assert source_stream_words(g, "m0") == 4
        assert sink_stream_words(g, "m1") == 1
        ex = Executor(g, CacheGeometry(size=64, block=8))
        for _ in range(8):
            ex.fire("m0")
            for _ in range(4):
                ex.fire("m1")
        # 8 source firings x 4 words = 32 input words = 4 blocks; the sink
        # consumes 1/firing x 32 firings = 32 output words = 4 more blocks
        assert ex._ext_in_pos == 32
        assert ex._ext_out_pos == 32
        assert ex.cache.stats.phase_misses["stream"] == 8

    def test_multirate_sink_advances_stream_per_token(self):
        g = StreamGraph("downrate")
        g.add_module("m0", state=0)
        g.add_module("m1", state=0)
        g.add_channel("m0", "m1", out_rate=1, in_rate=4)
        assert source_stream_words(g, "m0") == 1
        assert sink_stream_words(g, "m1") == 4
        ex = Executor(g, CacheGeometry(size=64, block=8))
        for _ in range(4):
            for _ in range(4):
                ex.fire("m0")
            ex.fire("m1")
        assert ex._ext_in_pos == 16
        assert ex._ext_out_pos == 16

    def test_fanout_source_counts_broadcast_items_once(self):
        # duplicate-splitter convention: one item feeds every branch, so a
        # fan-out source reads max(out_rate), not the sum over channels
        g = StreamGraph("fanout")
        g.add_module("src", state=0)
        g.add_module("a", state=0)
        g.add_module("b", state=0)
        g.add_module("c", state=0)
        for branch in ("a", "b", "c"):
            g.add_channel("src", branch, out_rate=1, in_rate=1)
        assert source_stream_words(g, "src") == 1
        # mirror for a fan-in sink
        g2 = StreamGraph("fanin")
        g2.add_module("a", state=0)
        g2.add_module("b", state=0)
        g2.add_module("snk", state=0)
        g2.add_channel("a", "snk", out_rate=1, in_rate=2)
        g2.add_channel("b", "snk", out_rate=1, in_rate=1)
        assert sink_stream_words(g2, "snk") == 2

    def test_isolated_module_still_charges_one_word(self):
        g = StreamGraph("solo")
        g.add_module("m0", state=0)
        assert source_stream_words(g, "m0") == 1
        assert sink_stream_words(g, "m0") == 1

    def test_external_stream_disabled(self):
        g = pipeline([0, 0])
        ex = make(g, count_external=False)
        ex.fire("m0")
        assert "stream" not in ex.cache.stats.phase_misses

    def test_data_phase_counted(self):
        g = pipeline([0, 0])
        ex = make(g, count_external=False)
        ex.fire("m0")
        ex.fire("m1")
        assert ex.cache.stats.phase_misses.get("data", 0) >= 1


class TestRun:
    def test_run_returns_accounting(self):
        g = pipeline([8, 8, 8])
        sched = Schedule(["m0", "m1", "m2"] * 5, label="test")
        res = make(g).run(sched)
        assert res.label == "test"
        assert res.firings == 15
        assert res.source_fires == 5 and res.sink_fires == 5
        assert res.fire_counts == {"m0": 5, "m1": 5, "m2": 5}
        assert res.misses > 0
        assert res.misses_per_source_fire == res.misses / 5

    def test_misses_per_input_zero_when_nothing_happened(self):
        # no firings at all: zero misses cost zero, not inf
        g = pipeline([8, 8])
        res = make(g).result()
        assert res.misses_per_source_fire == 0.0

    def test_misses_per_input_inf_when_sourceless_misses(self):
        # misses without any source firing have no per-input normalization
        g = pipeline([8, 8])
        ex = make(g)
        ex.fire("m0")
        res = ex.result()
        res.source_fires = 0
        assert res.misses > 0
        assert res.misses_per_source_fire == float("inf")

    def test_summary_mentions_phases(self):
        g = pipeline([8, 8])
        res = make(g).run(Schedule(["m0", "m1"]))
        assert "misses" in res.summary()

    def test_measure_oneshot(self):
        g = pipeline([8, 8])
        res = Executor.measure(
            g, CacheGeometry(size=64, block=8), Schedule(["m0", "m1"], capacities={0: 4})
        )
        assert res.firings == 2

    def test_measure_with_tracing_cache(self):
        g = pipeline([8, 8])
        geo = CacheGeometry(size=64, block=8)
        cache = TracingCache(LRUCache(geo))
        Executor.measure(g, geo, Schedule(["m0", "m1"]), cache=cache)
        assert len(cache.recorder.blocks) > 0


class TestLayout:
    def test_capacities_merged_over_minbuf(self):
        g = pipeline([8, 8, 8])
        ex = make(g, capacities={0: 100})
        assert ex.capacities[0] == 100
        assert ex.capacities[1] == min_buffers(g)[1]

    def test_layout_order_changes_addresses(self):
        g = pipeline([8, 8])
        a = make(g)
        b = make(g, layout_order=["m1", "m0"])
        assert (
            a.layout.state_region("m0").start != b.layout.state_region("m0").start
        )

    def test_external_regions_disjoint_from_layout(self):
        g = pipeline([8, 8])
        ex = make(g)
        assert ex._ext_in_base >= ex.layout.footprint

    def test_layout_always_disjoint(self):
        g = pipeline([8, 8, 8])
        ex = make(g, capacities={0: 37, 1: 13})
        ex.layout.check_disjoint()


class TestCacheBehaviorEndToEnd:
    def test_small_graph_fits_no_steady_state_misses(self):
        g = pipeline([8, 8])
        ex = make(g, M=128, B=8, count_external=False)
        sched = ["m0", "m1"] * 50
        for name in sched:
            ex.fire(name)
        # after warmup, state and the 1-token buffers live in cache; the
        # only misses are the cold ones
        assert ex.cache.stats.misses <= 4

    def test_interleaved_large_graph_thrashes(self):
        n, s = 10, 32
        g = pipeline([s] * n)
        ex = make(g, M=64, B=8, count_external=False)
        per_pass = [f"m{i}" for i in range(n)]
        for _ in range(5):
            for name in per_pass:
                ex.fire(name)
        # every pass must reload essentially all state: 10 * 32/8 = 40/pass
        assert ex.cache.stats.misses >= 5 * (n * s // 8) * 0.8
