"""Differential tests: production implementations vs independent oracles.

These are the strongest correctness evidence in the suite — the oracle code
shares no data structures with production code, so agreement on thousands
of random cases rules out whole classes of bugs.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cache.base import CacheGeometry
from repro.cache.lru import LRUCache
from repro.core.pipeline import optimal_pipeline_partition
from repro.errors import PartitionError, ReproError
from repro.graphs.minbuf import min_buffers
from repro.graphs.repetition import repetition_vector
from repro.runtime.deadlock import demand_driven_schedule
from repro.runtime.schedule import Schedule, validate_schedule
from repro.testing.oracles import (
    NaiveLRU,
    bruteforce_pipeline_partition,
    reference_token_replay,
)
from repro.testing.strategies import rate_matched_pipelines, small_dags


class TestLRUDifferential:
    @given(
        trace=st.lists(st.integers(0, 24), max_size=400),
        capacity=st.integers(1, 10),
    )
    @settings(max_examples=80, deadline=None)
    def test_lru_agrees_with_naive_per_access(self, trace, capacity):
        fast = LRUCache(CacheGeometry(size=capacity * 4, block=4))
        slow = NaiveLRU(capacity)
        for b in trace:
            assert fast.access_block(b) == slow.access(b)
        assert fast.stats.misses == slow.misses

    def test_lru_agrees_on_long_random_trace(self):
        rng = np.random.default_rng(99)
        trace = rng.integers(0, 64, size=20_000).tolist()
        fast = LRUCache(CacheGeometry(size=16 * 8, block=8))
        slow = NaiveLRU(16)
        mismatches = sum(
            1 for b in trace if fast.access_block(b) != slow.access(b)
        )
        assert mismatches == 0


class TestPartitionDifferential:
    @given(g=rate_matched_pipelines(max_n=9, max_state=25), m=st.integers(5, 50))
    @settings(
        max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_dp_matches_bruteforce(self, g, m):
        c = 1.7
        oracle = bruteforce_pipeline_partition(g, m, c)
        if oracle is None:
            with pytest.raises(PartitionError):
                optimal_pipeline_partition(g, m, c=c)
        else:
            assert optimal_pipeline_partition(g, m, c=c).bandwidth() == oracle


class TestScheduleValidatorDifferential:
    @given(g=rate_matched_pipelines(max_n=8, with_delays=True), k=st.integers(1, 4))
    @settings(
        max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_demand_driven_feasible_under_both_validators(self, g, k):
        reps = repetition_vector(g)
        caps = min_buffers(g)
        firings = demand_driven_schedule(g, {n: k * r for n, r in reps.items()}, caps)
        # production validator: no raise
        validate_schedule(g, Schedule(firings, capacities=caps))
        # oracle replay: feasible, FIFO clean
        ok, _ = reference_token_replay(g, firings, caps)
        assert ok

    @given(g=rate_matched_pipelines(max_n=6))
    @settings(
        max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_infeasible_schedules_rejected_by_both(self, g):
        # fire the sink first: infeasible unless the sink is also the source
        order = g.pipeline_order()
        if len(order) < 2:
            return
        sched = [order[-1]]
        ok, _ = reference_token_replay(g, sched, min_buffers(g))
        raised = False
        try:
            validate_schedule(g, Schedule(sched, capacities=min_buffers(g)))
        except ReproError:
            raised = True
        assert ok == (not raised)

    @given(g=small_dags(), k=st.integers(1, 2))
    @settings(
        max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_dag_schedules_agree(self, g, k):
        reps = repetition_vector(g)
        caps = min_buffers(g)
        firings = demand_driven_schedule(g, {n: k * r for n, r in reps.items()}, caps)
        validate_schedule(g, Schedule(firings, capacities=caps), require_drained=True)
        ok, final = reference_token_replay(g, firings, caps)
        assert ok
        assert all(v == graph_delay for v, graph_delay in zip(final.values(), (ch.delay for ch in g.channels())))


class TestExecutorAgreesWithValidator:
    @given(g=rate_matched_pipelines(max_n=7, max_state=16), k=st.integers(1, 3))
    @settings(
        max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_final_occupancies_match(self, g, k):
        from repro.runtime.executor import Executor

        reps = repetition_vector(g)
        caps = min_buffers(g)
        firings = demand_driven_schedule(g, {n: k * r for n, r in reps.items()}, caps)
        sched = Schedule(firings, capacities=caps)
        final_counts = validate_schedule(g, sched)
        ex = Executor(g, CacheGeometry(size=64, block=4), capacities=caps)
        for name in firings:
            ex.fire(name)
        assert ex.tokens() == final_counts
