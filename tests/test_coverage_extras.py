"""Coverage-widening tests: edge cases and less-traveled paths across the
library (error handling, alternative cache models through the executor,
combined transforms, non-default experiment arguments)."""

import pytest

from repro.cache.base import CacheGeometry
from repro.cache.direct import DirectMappedCache
from repro.cache.hierarchy import TwoLevelCache
from repro.errors import GraphError, PartitionError, ScheduleError
from repro.graphs.sdf import StreamGraph
from repro.graphs.topologies import pipeline
from repro.runtime.executor import Executor
from repro.runtime.schedule import Schedule


class TestExecutorWithAlternativeCaches:
    def _run(self, cache_factory):
        g = pipeline([16] * 4)
        geom = CacheGeometry(size=64, block=8)
        sched = Schedule(["m0", "m1", "m2", "m3"] * 20)
        return Executor.measure(g, geom, sched, cache=cache_factory(geom))

    def test_direct_mapped_through_executor(self):
        res = self._run(DirectMappedCache)
        assert res.misses > 0

    def test_two_level_through_executor(self):
        res = self._run(
            lambda geo: TwoLevelCache(geo, CacheGeometry(size=4 * geo.size, block=geo.block))
        )
        assert res.misses > 0

    def test_direct_mapped_same_accesses_as_lru(self):
        # DM and LRU disagree on misses (either direction is possible on a
        # given trace) but must observe the identical access stream.
        from repro.cache.lru import LRUCache

        lru = self._run(LRUCache)
        dm = self._run(DirectMappedCache)
        assert dm.accesses == lru.accesses
        assert dm.misses > 0 and lru.misses > 0


class TestTransformCombinations:
    def test_normalize_multi_source_and_sink_together(self):
        from repro.graphs.transforms import SUPER_SINK, SUPER_SOURCE, normalize_source_sink
        from repro.graphs.validate import validate_graph

        g = StreamGraph("both")
        for n in ("a", "b", "m", "x", "y"):
            g.add_module(n, state=2)
        g.add_channel("a", "m")
        g.add_channel("b", "m")
        g.add_channel("m", "x", out_rate=2, in_rate=1)
        g.add_channel("m", "y", out_rate=2, in_rate=1)
        norm = normalize_source_sink(g)
        assert norm.sources() == [SUPER_SOURCE]
        assert norm.sinks() == [SUPER_SINK]
        assert validate_graph(norm).ok

    def test_induced_subgraph_empty_set(self):
        from repro.graphs.transforms import induced_subgraph

        g = pipeline([1, 1])
        sub = induced_subgraph(g, [])
        assert sub.n_modules == 0


class TestGainTableExtras:
    def test_rescale_round_trip(self):
        from repro.graphs.repetition import compute_gains

        g = pipeline([1] * 3, rates=[(2, 1), (3, 1)])
        gains = compute_gains(g)
        back = gains.rescale("m2").rescale("m0")
        assert back.node == gains.node

    def test_edge_gain_lookup(self):
        from repro.graphs.repetition import compute_gains

        g = pipeline([1, 1], rates=[(5, 1)])
        assert compute_gains(g).edge_gain(0) == 5


class TestSchedulerArgumentVariants:
    def test_dynamic_pipeline_buffer_factor(self):
        from repro.core.partition_sched import pipeline_dynamic_schedule
        from repro.core.pipeline import optimal_pipeline_partition

        g = pipeline([24] * 8)
        geom = CacheGeometry(size=64, block=8)
        part = optimal_pipeline_partition(g, 64, c=1.0)
        s2 = pipeline_dynamic_schedule(g, part, geom, target_outputs=50, buffer_factor=2)
        s4 = pipeline_dynamic_schedule(g, part, geom, target_outputs=50, buffer_factor=4)
        cid = part.cross_channels()[0].cid
        assert s4.capacities[cid] == 2 * s2.capacities[cid]

    def test_homog_scheduler_multi_batch_fire_counts(self):
        from repro.core.dagpart import interval_dp_partition
        from repro.core.partition_sched import homogeneous_partition_schedule

        g = pipeline([16] * 6)
        geom = CacheGeometry(size=48, block=8)
        part = interval_dp_partition(g, 48, c=1.0)
        s = homogeneous_partition_schedule(g, part, geom, n_batches=5)
        assert all(c == 5 * geom.size for c in s.fire_counts().values())

    def test_demand_driven_upstream_vs_downstream_same_counts(self):
        from repro.graphs.minbuf import min_buffers
        from repro.runtime.deadlock import demand_driven_schedule

        g = pipeline([1] * 4)
        caps = {cid: 100 for cid in min_buffers(g)}
        down = demand_driven_schedule(g, {f"m{i}": 3 for i in range(4)}, caps)
        up = demand_driven_schedule(
            g, {f"m{i}": 3 for i in range(4)}, caps, prefer_downstream=False
        )
        assert sorted(down) == sorted(up)
        assert down != up  # but genuinely different orders


class TestExperimentNonDefaultArgs:
    def test_e1_small(self):
        from repro.analysis.experiments import experiment_e1_pipeline_optimality

        rows = experiment_e1_pipeline_optimality(n_outputs=150, seed=99)
        assert len(rows) == 5

    def test_e8_small(self):
        from repro.analysis.experiments import experiment_e8_augmentation

        rows = experiment_e8_augmentation(seed=1, n_outputs=150)
        assert rows[0]["misses"] >= rows[-1]["misses"]

    def test_e13_two_seeds(self):
        from repro.analysis.sweeps import experiment_e13_seed_distribution

        rows = experiment_e13_seed_distribution(n_seeds=2, n_outputs=100)
        assert {r["statistic"] for r in rows} == {"seeds", "mean", "median", "max", "min"}


class TestCliExtras:
    def test_partition_json_graph(self, tmp_path, capsys):
        from repro.cli import main
        from repro.graphs.io import save_graph

        path = str(tmp_path / "p.json")
        save_graph(pipeline([30] * 8, name="filepipe"), path)
        assert main(["partition", path, "--cache", "64"]) == 0
        assert "well-ordered" in capsys.readouterr().out

    def test_schedule_json_pipeline(self, tmp_path, capsys):
        from repro.cli import main
        from repro.graphs.io import save_graph

        path = str(tmp_path / "p.json")
        save_graph(pipeline([30] * 6, name="filepipe"), path)
        assert main(["schedule", path, "--cache", "64", "--inputs", "100"]) == 0
        assert "misses" in capsys.readouterr().out


class TestDynamicDagExtras:
    def test_topo_policy_matches_fifo_counts(self):
        from repro.core.dagpart import interval_dp_partition
        from repro.core.dynamic_dag import dynamic_dag_schedule
        from repro.graphs.topologies import diamond

        g = diamond(branch_len=4, ways=2, state=12)
        geom = CacheGeometry(size=48, block=8)
        part = interval_dp_partition(g, 48, c=2.0)
        fifo = dynamic_dag_schedule(g, part, geom, target_outputs=96, policy="fifo")
        topo = dynamic_dag_schedule(g, part, geom, target_outputs=96, policy="topo")
        assert fifo.count("snk") == topo.count("snk")


class TestMultilevelExtras:
    def test_coarsen_target_extremes(self):
        from repro.core.multilevel import multilevel_partition
        from repro.graphs.topologies import random_pipeline

        g = random_pipeline(40, 12, seed=3)
        M = 48
        aggressive = multilevel_partition(g, M, c=2.0, coarsen_target=4)
        light = multilevel_partition(g, M, c=2.0, coarsen_target=39)
        for p in (aggressive, light):
            assert p.is_well_ordered()
            assert p.is_c_bounded(M, 2.0)
