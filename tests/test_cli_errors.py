"""CLI argument errors must be *diagnosable from the message alone*.

``tests/test_cli.py`` pins the exit-code contract (2, no traceback); this
suite pins the stricter message contract of lint issue 6's satellite: every
usage error names the offending **value** — the typo'd policy, the exact
bad ``--layout-targets`` chunk — not just the flag that carried it, so a
user (or a CI log reader) never has to re-run with echo debugging.
"""

from __future__ import annotations

import pytest

from repro.cli import main


def _usage_error(capsys, argv):
    with pytest.raises(SystemExit) as exc:
        main(argv)
    assert exc.value.code == 2
    err = capsys.readouterr().err
    assert "Traceback" not in err
    return err


class TestUnknownPolicy:
    def test_unknown_policy_names_value_and_choices(self, capsys):
        err = _usage_error(
            capsys,
            ["schedule", "fm_radio", "--cache", "256", "--policy", "zap"],
        )
        assert "'zap'" in err
        for valid in ("lru", "direct", "opt"):
            assert valid in err

    def test_simulate_subcommand_policy_choices_too(self, capsys):
        err = _usage_error(
            capsys,
            ["schedule", "fm_radio", "--cache", "256", "--policy", "fifo"],
        )
        assert "'fifo'" in err and "--policy" in err


class TestIndexSchemeTypos:
    @pytest.mark.parametrize("typo", ["xorr", "XOR", "skew", "modn"])
    def test_typo_names_value_and_valid_schemes(self, typo, capsys):
        err = _usage_error(
            capsys,
            ["schedule", "fm_radio", "--cache", "256", "--index-scheme", typo],
        )
        assert f"'{typo}'" in err
        assert "mod" in err and "xor" in err


class TestUnknownBackend:
    """``--backend`` rejects unknown names with exit 2 naming the value, on
    every subcommand that accepts the flag."""

    @pytest.mark.parametrize("bogus", ["warp", "threads", "PROCESS", "mpi"])
    def test_schedule_names_value_and_choices(self, bogus, capsys):
        err = _usage_error(
            capsys,
            ["schedule", "fm_radio", "--cache", "256", "--backend", bogus],
        )
        assert f"'{bogus}'" in err
        for valid in ("serial", "thread", "process"):
            assert valid in err

    def test_experiment_rejects_unknown_backend_too(self, capsys):
        err = _usage_error(capsys, ["experiment", "e7", "--backend", "gpu"])
        assert "'gpu'" in err and "--backend" in err

    def test_workers_must_be_an_integer(self, capsys):
        err = _usage_error(
            capsys,
            ["schedule", "fm_radio", "--cache", "256", "--workers", "many"],
        )
        assert "'many'" in err and "--workers" in err


class TestLayoutTargetMessages:
    """Each malformed chunk is echoed back verbatim in the error."""

    def _err(self, capsys, spec):
        return _usage_error(
            capsys,
            ["schedule", "fm_radio", "--cache", "256", "--layout", "swap",
             "--layout-targets", spec],
        )

    @pytest.mark.parametrize(
        "spec, fragment",
        [
            ("direct:1@bogus", "'direct:1@bogus'"),   # bad weight echoes chunk
            ("direct:1@bogus", "'bogus'"),            # ...and the weight itself
            ("direct:1@-3", "'direct:1@-3'"),
            ("direct:1@-3", "-3"),
            ("direct:1@0", "'direct:1@0'"),           # zero weight names chunk
            ("direct:1@0", "positive"),
            ("direct:1@-0.5", "'direct:1@-0.5'"),     # negative float too
            ("direct:1@inf", "finite"),               # weights must be finite
            ("direct:1@", "'direct:1@'"),             # dangling '@' names chunk
            ("direct:1@", "followed by a weight"),
        ],
    )
    def test_degenerate_weight_is_named(self, capsys, spec, fragment):
        assert fragment in self._err(capsys, spec)

    @pytest.mark.parametrize(
        "spec, fragment",
        [
            ("plru:1", "'plru'"),                     # unknown policy named
            ("plru:1", "'plru:1'"),                   # inside its chunk
            ("direct:x", "'x'"),                      # non-integer ways named
            ("direct", "'direct' needs POLICY:WAYS"),
        ],
    )
    def test_bad_chunk_is_named(self, capsys, spec, fragment):
        assert fragment in self._err(capsys, spec)

    def test_bad_chunk_named_even_among_valid_ones(self, capsys):
        # the offending element, not merely the whole flag value
        err = self._err(capsys, "lru:2,direct:1@nope,lru:4")
        assert "'direct:1@nope'" in err

    def test_empty_spec_states_expected_grammar(self, capsys):
        err = self._err(capsys, " , ,")
        assert "POLICY:WAYS[@WEIGHT]" in err

    def test_unknown_target_policy_lists_choices(self, capsys):
        err = self._err(capsys, "plru:1")
        assert "lru" in err and "direct" in err and "opt" in err
