"""Tests for the three partition schedulers (Section 3)."""

import pytest

from repro.cache.base import CacheGeometry
from repro.core.dagpart import greedy_topological_partition, interval_dp_partition
from repro.core.partition import Partition, whole_graph_partition
from repro.core.partition_sched import (
    component_layout_order,
    homogeneous_partition_schedule,
    inhomogeneous_partition_schedule,
    pipeline_dynamic_schedule,
)
from repro.core.pipeline import optimal_pipeline_partition
from repro.core.tuning import choose_batch, required_geometry
from repro.errors import GraphError, PartitionError, ScheduleError
from repro.graphs.repetition import repetition_vector
from repro.graphs.topologies import diamond, pipeline, random_pipeline
from repro.graphs.apps import filter_bank
from repro.runtime.executor import Executor
from repro.runtime.schedule import validate_schedule


class TestHomogeneousScheduler:
    def test_schedule_is_feasible(self, simple_diamond, geom):
        part = interval_dp_partition(simple_diamond, 32, c=1.0)
        sched = homogeneous_partition_schedule(simple_diamond, part, geom, n_batches=3)
        validate_schedule(simple_diamond, sched, require_drained=True)

    def test_each_module_fires_T_per_batch(self, simple_diamond, geom):
        part = interval_dp_partition(simple_diamond, 32, c=1.0)
        sched = homogeneous_partition_schedule(simple_diamond, part, geom, n_batches=2)
        counts = sched.fire_counts()
        assert all(c == 2 * geom.size for c in counts.values())

    def test_cross_buffers_sized_T(self, simple_diamond, geom):
        part = Partition(
            simple_diamond, [["src"], ["b0_0", "b0_1", "b1_0", "b1_1", "snk"]]
        )
        sched = homogeneous_partition_schedule(simple_diamond, part, geom)
        for ch in part.cross_channels():
            assert sched.capacities[ch.cid] == geom.size

    def test_rejects_inhomogeneous_graph(self, mixed_pipeline, geom):
        part = whole_graph_partition(mixed_pipeline)
        with pytest.raises(GraphError):
            homogeneous_partition_schedule(mixed_pipeline, part, geom)

    def test_rejects_non_well_ordered(self, simple_diamond, geom):
        bad = Partition(
            simple_diamond, [["src", "b0_0", "b1_1"], ["b1_0", "b0_1", "snk"]]
        )
        with pytest.raises(Exception):
            homogeneous_partition_schedule(simple_diamond, bad, geom)

    def test_rejects_bad_batches(self, simple_diamond, geom):
        part = whole_graph_partition(simple_diamond)
        with pytest.raises(ScheduleError):
            homogeneous_partition_schedule(simple_diamond, part, geom, n_batches=0)

    def test_executes_through_simulator(self, simple_diamond, geom):
        part = interval_dp_partition(simple_diamond, 32, c=1.0)
        sched = homogeneous_partition_schedule(simple_diamond, part, geom, n_batches=2)
        res = Executor.measure(
            simple_diamond,
            required_geometry(part, geom),
            sched,
            layout_order=component_layout_order(part),
        )
        assert res.source_fires == 2 * geom.size


class TestInhomogeneousScheduler:
    def test_feasible_and_drained(self, mixed_pipeline, geom):
        part = interval_dp_partition(mixed_pipeline, 64, c=1.0)
        sched = inhomogeneous_partition_schedule(mixed_pipeline, part, geom, n_batches=2)
        validate_schedule(mixed_pipeline, sched, require_drained=True)

    def test_fires_match_batch_plan(self, mixed_pipeline, geom):
        part = interval_dp_partition(mixed_pipeline, 64, c=1.0)
        plan = choose_batch(
            mixed_pipeline, geom.size, cross_cids=[c.cid for c in part.cross_channels()]
        )
        sched = inhomogeneous_partition_schedule(
            mixed_pipeline, part, geom, n_batches=3, plan=plan
        )
        counts = sched.fire_counts()
        for name, per_batch in plan.fires.items():
            assert counts[name] == 3 * per_batch

    def test_cross_capacity_is_batch_traffic(self, mixed_pipeline, geom):
        part = interval_dp_partition(mixed_pipeline, 64, c=1.0)
        plan = choose_batch(
            mixed_pipeline, geom.size, cross_cids=[c.cid for c in part.cross_channels()]
        )
        sched = inhomogeneous_partition_schedule(
            mixed_pipeline, part, geom, plan=plan
        )
        for ch in part.cross_channels():
            assert sched.capacities[ch.cid] == plan.channel_tokens[ch.cid]

    def test_strict_paper_batching(self, mixed_pipeline, geom):
        part = interval_dp_partition(mixed_pipeline, 64, c=1.0)
        sched = inhomogeneous_partition_schedule(
            mixed_pipeline, part, geom, strict_paper_batching=True
        )
        validate_schedule(mixed_pipeline, sched, require_drained=True)
        # the strict plan requires >= M batch traffic on EVERY channel (the
        # paper's literal condition), so the chosen k covers even the
        # slowest channel; cross buffers are sized to that traffic.
        plan = choose_batch(mixed_pipeline, geom.size, cross_cids=None)
        assert all(t >= geom.size for t in plan.channel_tokens.values())
        for ch in part.cross_channels():
            assert sched.capacities[ch.cid] >= geom.size

    def test_filter_bank_end_to_end(self, geom):
        g = filter_bank(branches=4, taps=16)
        part = interval_dp_partition(g, 128, c=2.0)
        sched = inhomogeneous_partition_schedule(g, part, geom, n_batches=2)
        validate_schedule(g, sched, require_drained=True)
        res = Executor.measure(
            g, required_geometry(part, geom), sched,
            layout_order=component_layout_order(part),
        )
        assert res.misses > 0

    def test_rejects_bad_batches(self, mixed_pipeline, geom):
        part = whole_graph_partition(mixed_pipeline)
        with pytest.raises(ScheduleError):
            inhomogeneous_partition_schedule(mixed_pipeline, part, geom, n_batches=0)

    def test_works_on_homogeneous_graphs_too(self, simple_diamond, geom):
        part = interval_dp_partition(simple_diamond, 32, c=1.0)
        sched = inhomogeneous_partition_schedule(simple_diamond, part, geom, n_batches=2)
        validate_schedule(simple_diamond, sched, require_drained=True)


class TestPipelineDynamicScheduler:
    def test_produces_target_outputs(self, homog_pipeline, geom):
        part = optimal_pipeline_partition(homog_pipeline, geom.size, c=1.0)
        sched = pipeline_dynamic_schedule(homog_pipeline, part, geom, target_outputs=100)
        validate_schedule(homog_pipeline, sched)
        assert sched.count("m9") == 100

    def test_feasible_with_recorded_capacities(self, mixed_pipeline, geom):
        part = optimal_pipeline_partition(mixed_pipeline, geom.size, c=1.0)
        sched = pipeline_dynamic_schedule(mixed_pipeline, part, geom, target_outputs=64)
        validate_schedule(mixed_pipeline, sched)

    def test_cross_buffers_theta_M(self, homog_pipeline, geom):
        part = optimal_pipeline_partition(homog_pipeline, geom.size, c=1.0)
        sched = pipeline_dynamic_schedule(homog_pipeline, part, geom, target_outputs=10)
        for ch in part.cross_channels():
            assert sched.capacities[ch.cid] == 2 * geom.size

    def test_cross_capacity_override(self, homog_pipeline, geom):
        part = optimal_pipeline_partition(homog_pipeline, geom.size, c=1.0)
        sched = pipeline_dynamic_schedule(
            homog_pipeline, part, geom, target_outputs=10, cross_capacity=40
        )
        for ch in part.cross_channels():
            assert sched.capacities[ch.cid] == 40

    def test_single_component_degenerates_gracefully(self, geom):
        g = pipeline([4] * 4)
        part = whole_graph_partition(g)
        sched = pipeline_dynamic_schedule(g, part, geom, target_outputs=20)
        assert sched.count("m3") == 20

    def test_rejects_non_pipeline(self, simple_diamond, geom):
        part = whole_graph_partition(simple_diamond)
        with pytest.raises(GraphError):
            pipeline_dynamic_schedule(simple_diamond, part, geom, target_outputs=5)

    def test_rejects_non_contiguous_partition(self, homog_pipeline, geom):
        scattered = Partition(
            homog_pipeline,
            [["m0", "m2", "m4", "m6", "m8"], ["m1", "m3", "m5", "m7", "m9"]],
        )
        with pytest.raises(PartitionError):
            pipeline_dynamic_schedule(homog_pipeline, scattered, geom, target_outputs=5)

    def test_rejects_bad_target(self, homog_pipeline, geom):
        part = whole_graph_partition(homog_pipeline)
        with pytest.raises(ScheduleError):
            pipeline_dynamic_schedule(homog_pipeline, part, geom, target_outputs=0)

    def test_segment_runs_are_batched(self, homog_pipeline, geom):
        """Once loaded, a segment should fire many times in a row — the
        whole point of the dynamic schedule (state reuse)."""
        part = optimal_pipeline_partition(homog_pipeline, geom.size, c=1.0)
        assert part.k >= 2
        sched = pipeline_dynamic_schedule(homog_pipeline, part, geom, target_outputs=500)
        seg_of = {}
        for i, comp in enumerate(part.components):
            for n in comp:
                seg_of[n] = i
        runs, prev = [], None
        length = 0
        for f in sched.firings:
            s = seg_of[f]
            if s == prev:
                length += 1
            else:
                if prev is not None:
                    runs.append(length)
                prev, length = s, 1
        runs.append(length)
        # average contiguous segment-run length should be >> 1
        assert sum(runs) / len(runs) > 10


class TestComponentLayoutOrder:
    def test_groups_components_contiguously(self, homog_pipeline, geom):
        part = optimal_pipeline_partition(homog_pipeline, geom.size, c=1.0)
        order = component_layout_order(part)
        assert sorted(order) == sorted(homog_pipeline.module_names())
        # modules of one component are adjacent in the order
        idx = {n: i for i, n in enumerate(order)}
        for comp in part.components:
            positions = sorted(idx[n] for n in comp)
            assert positions == list(range(positions[0], positions[0] + len(comp)))
