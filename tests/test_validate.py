"""Tests for Section-2 assumption validation (repro.graphs.validate)."""

import pytest

from repro.errors import (
    GraphError,
    RateMismatchError,
    SourceSinkError,
    StateTooLargeError,
)
from repro.graphs.sdf import StreamGraph
from repro.graphs.topologies import diamond, pipeline
from repro.graphs.validate import (
    check_buffer_state_condition,
    check_rate_matched,
    check_single_source_sink,
    check_state_bound,
    validate_graph,
)


class TestChecks:
    def test_rate_matched_passes(self, mixed_pipeline):
        check_rate_matched(mixed_pipeline)  # no raise

    def test_rate_mismatch_raises(self):
        g = StreamGraph()
        for n in "sabt":
            g.add_module(n)
        g.add_channel("s", "a", out_rate=2, in_rate=1)
        g.add_channel("s", "b")
        g.add_channel("a", "t")
        g.add_channel("b", "t")
        with pytest.raises(RateMismatchError):
            check_rate_matched(g)

    def test_single_source_sink_ok(self, homog_pipeline):
        check_single_source_sink(homog_pipeline)

    def test_multi_source_rejected(self):
        g = StreamGraph()
        for n in "abt":
            g.add_module(n)
        g.add_channel("a", "t")
        g.add_channel("b", "t")
        with pytest.raises(SourceSinkError):
            check_single_source_sink(g)

    def test_multi_sink_rejected(self):
        g = StreamGraph()
        for n in "sab":
            g.add_module(n)
        g.add_channel("s", "a")
        g.add_channel("s", "b")
        with pytest.raises(SourceSinkError):
            check_single_source_sink(g)

    def test_state_bound(self):
        g = pipeline([10, 200, 10])
        check_state_bound(g, cache_size=200)
        with pytest.raises(StateTooLargeError):
            check_state_bound(g, cache_size=199)

    def test_buffer_state_condition_holds_for_homogeneous(self, simple_diamond):
        check_buffer_state_condition(simple_diamond)

    def test_buffer_state_condition_violated_by_huge_rates(self):
        # zero-state module with enormous rates: minBuf >> max(state, rates)?
        # rates themselves bound minBuf (= in+out), so the paper's condition
        # holds even here -- the check passes by design.
        g = pipeline([0, 0], rates=[(1000, 1)])
        check_buffer_state_condition(g)


class TestValidateGraph:
    def test_good_graph(self, homog_pipeline):
        report = validate_graph(homog_pipeline, cache_size=64)
        assert report.ok
        report.raise_if_failed()

    def test_cycle_fails_early(self):
        g = StreamGraph()
        g.add_module("a")
        g.add_module("b")
        g.add_channel("a", "b")
        g.add_channel("b", "a")
        report = validate_graph(g)
        assert not report.ok and not report.is_dag
        with pytest.raises(GraphError):
            report.raise_if_failed()

    def test_state_too_large_reported(self):
        g = pipeline([10, 500])
        report = validate_graph(g, cache_size=100)
        assert not report.state_bounded
        assert any("500" in e for e in report.errors)

    def test_multi_endpoint_tolerated_when_not_required(self):
        g = StreamGraph()
        for n in "abt":
            g.add_module(n)
        g.add_channel("a", "t")
        g.add_channel("b", "t")
        strict = validate_graph(g)
        lax = validate_graph(g, require_single_endpoints=False)
        assert not strict.ok
        # rate-matching across two 'sources' of equal gain passes; only the
        # endpoint check differs
        assert lax.single_source and lax.single_sink

    def test_diamond_ok(self, simple_diamond):
        assert validate_graph(simple_diamond).ok
