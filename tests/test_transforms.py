"""Tests for graph transforms: normalization, induced subgraphs, contraction."""

import pytest

from repro.errors import GraphError
from repro.graphs.repetition import compute_gains
from repro.graphs.sdf import StreamGraph
from repro.graphs.topologies import diamond, pipeline
from repro.graphs.transforms import (
    SUPER_SINK,
    SUPER_SOURCE,
    as_networkx,
    contract_partition,
    induced_subgraph,
    normalize_source_sink,
)
from repro.graphs.validate import validate_graph


class TestNormalize:
    def test_already_normal_copies(self, homog_pipeline):
        g = normalize_source_sink(homog_pipeline)
        assert g.n_modules == homog_pipeline.n_modules
        assert SUPER_SOURCE not in g

    def test_multi_source_gets_super_source(self):
        g = StreamGraph()
        for n in "abt":
            g.add_module(n, state=4)
        g.add_channel("a", "t")
        g.add_channel("b", "t")
        norm = normalize_source_sink(g)
        assert SUPER_SOURCE in norm
        assert norm.sources() == [SUPER_SOURCE]
        assert validate_graph(norm).ok

    def test_multi_sink_gets_super_sink(self):
        g = StreamGraph()
        for n in "sab":
            g.add_module(n, state=4)
        g.add_channel("s", "a")
        g.add_channel("s", "b")
        norm = normalize_source_sink(g)
        assert norm.sinks() == [SUPER_SINK]
        assert validate_graph(norm).ok

    def test_super_nodes_have_zero_state(self):
        g = StreamGraph()
        for n in "abt":
            g.add_module(n, state=9)
        g.add_channel("a", "t")
        g.add_channel("b", "t")
        norm = normalize_source_sink(g)
        assert norm.state(SUPER_SOURCE) == 0

    def test_unequal_source_gains_stay_rate_matched(self):
        # source b fires twice per firing of a (t consumes 1 from a, 2 from b)
        g = StreamGraph()
        for n in "abt":
            g.add_module(n)
        g.add_channel("a", "t", out_rate=1, in_rate=1)
        g.add_channel("b", "t", out_rate=1, in_rate=2)
        norm = normalize_source_sink(g)
        gains = compute_gains(norm)
        assert gains.gain("b") == 2 * gains.gain("a")


class TestInducedSubgraph:
    def test_keeps_internal_edges_only(self, simple_diamond):
        names = ["src", "b0_0", "b0_1"]
        sub = induced_subgraph(simple_diamond, names)
        assert sub.n_modules == 3
        assert sub.n_channels == 2  # src->b0_0->b0_1; edges to b1_* dropped

    def test_preserves_state_and_rates(self, mixed_pipeline):
        sub = induced_subgraph(mixed_pipeline, ["m1", "m2"])
        assert sub.state("m1") == mixed_pipeline.state("m1")
        ch = next(iter(sub.channels()))
        orig = mixed_pipeline.channels_between("m1", "m2")[0]
        assert (ch.out_rate, ch.in_rate) == (orig.out_rate, orig.in_rate)

    def test_unknown_name_rejected(self, homog_pipeline):
        with pytest.raises(GraphError):
            induced_subgraph(homog_pipeline, ["m0", "nope"])


class TestContractPartition:
    def test_chain_contraction(self, homog_pipeline):
        comps = [[f"m{i}" for i in range(5)], [f"m{i}" for i in range(5, 10)]]
        contracted, assign = contract_partition(homog_pipeline, comps)
        assert contracted.n_modules == 2
        assert contracted.n_channels == 1  # only the cut edge survives
        assert contracted.state("C0") == homog_pipeline.total_state(comps[0])
        assert assign["m0"] == 0 and assign["m9"] == 1

    def test_parallel_cross_edges_preserved(self, simple_diamond):
        # put src alone: two cross edges src->branches
        comps = [["src"], ["b0_0", "b0_1", "b1_0", "b1_1", "snk"]]
        contracted, _ = contract_partition(simple_diamond, comps)
        assert contracted.n_channels == 2

    def test_cyclic_contraction_detected_via_is_dag(self, simple_diamond):
        # interleave the two branches so contraction creates a 2-cycle
        comps = [["src", "b0_0", "b1_1"], ["b1_0", "b0_1", "snk"]]
        contracted, _ = contract_partition(simple_diamond, comps)
        assert not contracted.is_dag()

    def test_incomplete_partition_rejected(self, homog_pipeline):
        with pytest.raises(GraphError):
            contract_partition(homog_pipeline, [["m0"]])

    def test_duplicate_rejected(self, homog_pipeline):
        comps = [["m0", "m1"], ["m1"] + [f"m{i}" for i in range(2, 10)]]
        with pytest.raises(GraphError):
            contract_partition(homog_pipeline, comps)

    def test_empty_component_rejected(self, homog_pipeline):
        with pytest.raises(GraphError):
            contract_partition(homog_pipeline, [[], [f"m{i}" for i in range(10)]])


class TestNetworkxBridge:
    def test_round_trip_structure(self, simple_diamond):
        nx_graph = as_networkx(simple_diamond)
        assert nx_graph.number_of_nodes() == simple_diamond.n_modules
        assert nx_graph.number_of_edges() == simple_diamond.n_channels

    def test_against_networkx_topological_oracle(self, simple_diamond):
        import networkx as nx

        nx_graph = as_networkx(simple_diamond)
        assert nx.is_directed_acyclic_graph(nx_graph)
        ours = simple_diamond.topological_order()
        pos = {n: i for i, n in enumerate(ours)}
        for u, v in nx_graph.edges():
            assert pos[u] < pos[v]
