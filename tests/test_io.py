"""Tests for graph serialization (JSON round-trip, DOT export)."""

import json

import pytest

from repro.core.dagpart import interval_dp_partition
from repro.errors import GraphError
from repro.graphs.apps import ALL_APPS, fm_radio
from repro.graphs.io import graph_from_dict, graph_to_dict, load_graph, save_graph, to_dot
from repro.graphs.topologies import pipeline


class TestJsonRoundTrip:
    def test_simple_round_trip(self, mixed_pipeline):
        data = graph_to_dict(mixed_pipeline)
        g2 = graph_from_dict(data)
        assert g2.name == mixed_pipeline.name
        assert g2.n_modules == mixed_pipeline.n_modules
        assert g2.n_channels == mixed_pipeline.n_channels
        for a, b in zip(mixed_pipeline.channels(), g2.channels()):
            assert (a.src, a.dst, a.out_rate, a.in_rate) == (b.src, b.dst, b.out_rate, b.in_rate)
            assert a.cid == b.cid  # ids reproduce in insertion order

    @pytest.mark.parametrize("name,ctor", sorted(ALL_APPS.items()))
    def test_all_apps_round_trip(self, name, ctor):
        g = ctor()
        g2 = graph_from_dict(graph_to_dict(g))
        assert g2.total_state() == g.total_state()
        assert [m.name for m in g2.modules()] == [m.name for m in g.modules()]

    def test_file_round_trip(self, tmp_path, homog_pipeline):
        path = str(tmp_path / "g.json")
        save_graph(homog_pipeline, path)
        g2 = load_graph(path)
        assert g2.n_modules == homog_pipeline.n_modules
        # file is valid, indented JSON
        raw = json.loads(open(path).read())
        assert raw["name"] == homog_pipeline.name

    def test_defaults_filled(self):
        g = graph_from_dict(
            {"modules": [{"name": "a"}, {"name": "b"}], "channels": [{"src": "a", "dst": "b"}]}
        )
        assert g.state("a") == 0
        ch = next(iter(g.channels()))
        assert ch.out_rate == 1 and ch.in_rate == 1

    def test_malformed_rejected(self):
        with pytest.raises(GraphError):
            graph_from_dict({"modules": [{"nom": "a"}], "channels": []})
        with pytest.raises(GraphError):
            graph_from_dict({"channels": []})  # type: ignore[arg-type]


class TestDot:
    def test_plain_dot(self, homog_pipeline):
        dot = to_dot(homog_pipeline)
        assert dot.startswith("digraph")
        assert '"m0" -> "m1"' in dot
        assert dot.rstrip().endswith("}")

    def test_rates_annotated(self, mixed_pipeline):
        dot = to_dot(mixed_pipeline)
        assert '2:1' in dot

    def test_partition_clusters_and_cross_edges(self):
        g = fm_radio(taps=32, bands=4)
        part = interval_dp_partition(g, 256, c=2.0)
        dot = to_dot(g, part)
        assert "cluster_0" in dot
        assert "color=red" in dot  # cross edges highlighted
        # every module is declared exactly once (node labels embed the name
        # with a newline, which edge rate-labels never contain)
        for m in g.modules():
            assert dot.count(f'"{m.name}" [label="{m.name}\\n') == 1
