"""Tests for circular channel buffers."""

import pytest

from repro.errors import BufferOverflowError, ScheduleError
from repro.mem.layout import Region
from repro.runtime.buffers import ChannelBuffer


def buf(cap=8, start=0):
    return ChannelBuffer(0, Region(start, cap))


class TestChannelBuffer:
    def test_push_pop_round_trip(self):
        b = buf()
        ranges = b.push_ranges(3)
        assert ranges == [(0, 3)]
        assert b.tokens == 3
        assert b.pop_ranges(3) == [(0, 3)]
        assert b.tokens == 0

    def test_fifo_addresses_advance(self):
        b = buf(cap=8)
        b.push_ranges(4)
        b.pop_ranges(2)
        assert b.push_ranges(2) == [(4, 2)]
        assert b.pop_ranges(2) == [(2, 2)]

    def test_wraparound_splits_range(self):
        b = buf(cap=8)
        b.push_ranges(6)
        b.pop_ranges(6)
        # head at 6; pushing 4 wraps: [6,8) then [0,2)
        assert b.push_ranges(4) == [(6, 2), (0, 2)]

    def test_wraparound_pop(self):
        b = buf(cap=4)
        b.push_ranges(3)
        b.pop_ranges(3)
        b.push_ranges(3)  # occupies 3,0,1
        assert b.pop_ranges(3) == [(3, 1), (0, 2)]

    def test_base_address_offsets(self):
        b = buf(cap=4, start=100)
        assert b.push_ranges(2) == [(100, 2)]

    def test_overflow_rejected(self):
        b = buf(cap=4)
        b.push_ranges(3)
        with pytest.raises(BufferOverflowError):
            b.push_ranges(2)
        assert b.tokens == 3  # unchanged after failed push

    def test_underflow_rejected(self):
        b = buf(cap=4)
        b.push_ranges(1)
        with pytest.raises(ScheduleError):
            b.pop_ranges(2)
        assert b.tokens == 1

    def test_negative_amounts_rejected(self):
        b = buf()
        with pytest.raises(ScheduleError):
            b.push_ranges(-1)
        with pytest.raises(ScheduleError):
            b.pop_ranges(-1)

    def test_zero_push_pop_noop(self):
        b = buf()
        assert b.push_ranges(0) == [(0, 0)]
        assert b.pop_ranges(0) == [(0, 0)]

    def test_zero_capacity_rejected(self):
        with pytest.raises(ScheduleError):
            ChannelBuffer(0, Region(0, 0))

    def test_free_accounting(self):
        b = buf(cap=10)
        b.push_ranges(4)
        assert b.free == 6

    def test_exercise_full_cycle_many_times(self):
        b = buf(cap=7)
        total_pushed = 0
        for k in (3, 5, 2, 7, 1, 6):
            b.push_ranges(k)
            total_pushed += k
            b.pop_ranges(k)
        assert b.tokens == 0
        head, count = b.peek_occupancy()
        assert head == total_pushed % 7 and count == 0

    def test_repr(self):
        assert "ChannelBuffer" in repr(buf())
