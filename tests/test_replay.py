"""Differential property tests for the policy-aware replay subsystem.

The vectorized kernels in :mod:`repro.runtime.replay` must agree *per
access* with the stepwise engines the policy registry binds
(:class:`~repro.cache.lru.LRUCache`,
:class:`~repro.cache.direct.DirectMappedCache`,
:func:`~repro.cache.opt.simulate_opt`) — on random traces, random
geometries, and the degenerate corners (1 set, 1 way, empty traces, traces
shorter than the cache).  These are the acceptance tests for the unified
replay engine: exact miss-count (and miss-position) equality, not
approximate agreement.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.base import CacheGeometry
from repro.cache.direct import DirectMappedCache
from repro.cache.lru import LRUCache
from repro.cache.opt import simulate_opt, simulate_opt_misses
from repro.cache.policy import available_policies, get_policy, stepwise_trace_misses
from repro.core.baselines import interleaved_schedule, single_appearance_schedule
from repro.errors import CacheConfigError
from repro.graphs.apps import fm_radio
from repro.graphs.topologies import pipeline, random_pipeline
from repro.runtime.compiled import compile_trace, measure_compiled, simulate_trace
from repro.runtime.executor import Executor
from repro.runtime.replay import (
    opt_stack_distances,
    per_set_stack_distances,
    replay_miss_masks,
    replay_misses,
)
from repro.testing.harness import differential_grid, replay_kernel, stepwise_oracle

B = 8


def stepwise_mask(trace, geometry, policy):
    return [bool(m) for m in stepwise_trace_misses(trace, geometry, policy)]


# ----------------------------------------------------------------------
# geometry validation (the small-fix satellite)
# ----------------------------------------------------------------------
class TestGeometryValidation:
    def test_fully_associative_default(self):
        g = CacheGeometry(size=96, block=8)
        assert g.ways is None
        assert g.is_fully_associative
        assert g.sets == 1
        assert g.associativity == g.n_blocks == 12

    def test_explicit_ways(self):
        g = CacheGeometry(size=256, block=8, ways=4)  # 32 frames, 8 sets
        assert not g.is_fully_associative
        assert g.sets == 8 and g.associativity == 4
        assert g.set_of(0) == 0 and g.set_of(9) == 1 and g.set_of(8) == 0

    def test_direct_mapped_corner(self):
        g = CacheGeometry(size=128, block=8, ways=1)  # 16 sets of 1
        assert g.sets == 16 and g.associativity == 1

    def test_full_ways_is_fully_associative(self):
        g = CacheGeometry(size=128, block=8, ways=16)
        assert g.is_fully_associative and g.sets == 1

    @pytest.mark.parametrize("ways", [0, -1, -4])
    def test_zero_or_negative_ways_rejected(self, ways):
        with pytest.raises(CacheConfigError):
            CacheGeometry(size=128, block=8, ways=ways)

    def test_non_integer_ways_rejected(self):
        with pytest.raises(CacheConfigError):
            CacheGeometry(size=128, block=8, ways=2.5)

    def test_ways_must_divide_frames(self):
        # the message must name the offending field and value, not just fail
        with pytest.raises(
            CacheConfigError,
            match=r"ways=5 does not divide the frame count n_blocks=16 "
                  r"\(size=128 / block=8\)",
        ):
            CacheGeometry(size=128, block=8, ways=5)  # 16 % 5 != 0

    def test_non_power_of_two_sets_rejected(self):
        # 96 words / 8 = 12 frames; ways=4 would make 3 sets
        with pytest.raises(
            CacheConfigError,
            match=r"sets=3 \(n_blocks=12 / ways=4\) is not a power of two",
        ):
            CacheGeometry(size=96, block=8, ways=4)

    def test_direct_model_rejects_wider_ways(self):
        with pytest.raises(CacheConfigError):
            DirectMappedCache(CacheGeometry(size=128, block=8, ways=4))

    def test_with_ways_snaps_up_to_valid_set_count(self):
        g = CacheGeometry(size=920, block=8)  # 115 frames
        snapped = g.with_ways(4)
        assert snapped.ways == 4 and snapped.sets == 32  # 128 frames
        assert snapped.size >= g.size
        assert g.with_ways(0) is g and g.with_ways(None) is g

    @pytest.mark.parametrize("ways", [-2, -1, 2.5])
    def test_with_ways_rejects_invalid(self, ways):
        with pytest.raises(CacheConfigError):
            CacheGeometry(size=128, block=8).with_ways(ways)

    def test_unknown_index_scheme_rejected(self):
        with pytest.raises(CacheConfigError, match="unknown index_scheme"):
            CacheGeometry(size=128, block=8, index_scheme="plru")

    def test_xor_needs_power_of_two_frames_when_fully_associative(self):
        # 12 frames, no ways: the direct-mapped reading has nothing to fold over
        with pytest.raises(CacheConfigError, match="power-of-two"):
            CacheGeometry(size=96, block=8, index_scheme="xor")
        # but with an explicit ways the set count is already validated
        g = CacheGeometry(size=128, block=8, ways=2, index_scheme="xor")
        assert g.sets == 8

    def test_xor_set_of_differs_from_mod_and_stays_in_range(self):
        mod = CacheGeometry(size=256, block=8, ways=1)
        xor = CacheGeometry(size=256, block=8, ways=1, index_scheme="xor")
        idx = [xor.set_of(b) for b in range(200)]
        assert all(0 <= i < xor.sets for i in idx)
        assert idx != [mod.set_of(b) for b in range(200)]
        # blocks inside one tag stride agree with mod; the stride above XORs
        assert xor.set_of(3) == 3 and xor.set_of(32 + 3) != mod.set_of(32 + 3)

    def test_with_ways_and_with_index_scheme_preserve_scheme(self):
        g = CacheGeometry(size=1024, block=8, index_scheme="mod")  # 128 frames
        assert g.with_ways(4).index_scheme == "mod"
        gx = g.with_index_scheme("xor")
        assert gx.index_scheme == "xor" and gx.size == g.size
        assert gx.with_ways(4).index_scheme == "xor"
        assert gx.with_index_scheme("xor") is gx
        # snapping a non-power-of-two frame count up keeps xor legal
        assert CacheGeometry(size=920, block=8).with_ways(4).with_index_scheme(
            "xor"
        ).sets == 32


# ----------------------------------------------------------------------
# random-trace differentials against the stepwise oracles, all through the
# shared harness (repro.testing.harness) — per-access mask equality with a
# pretty-printed first divergence on failure
# ----------------------------------------------------------------------
def _fa_geometries():
    return [CacheGeometry(size=c * B, block=B) for c in (1, 2, 3, 5, 8, 16, 40)]


def _sa_geometries():
    return [
        CacheGeometry(size=sets * ways * B, block=B, ways=ways, index_scheme=scheme)
        for ways in (1, 2, 4, 8)
        for sets in (1, 2, 8, 16)
        for scheme in ("mod", "xor")
    ]


class TestReplayDifferential:
    @given(trace=st.lists(st.integers(0, 40), max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_lru_masks_match_stepwise(self, trace):
        geoms = _fa_geometries() + _sa_geometries()
        differential_grid(replay_kernel("lru"), stepwise_oracle("lru"), geoms, trace)

    @given(trace=st.lists(st.integers(0, 40), max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_direct_masks_match_stepwise(self, trace):
        geoms = _fa_geometries() + [
            CacheGeometry(size=s * B, block=B, ways=1, index_scheme=scheme)
            for s in (1, 2, 4, 16)
            for scheme in ("mod", "xor")
        ]
        differential_grid(
            replay_kernel("direct"), stepwise_oracle("direct"), geoms, trace
        )

    @given(trace=st.lists(st.integers(0, 40), max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_opt_masks_match_stepwise(self, trace):
        geoms = _fa_geometries() + _sa_geometries()
        differential_grid(replay_kernel("opt"), stepwise_oracle("opt"), geoms, trace)

    def test_long_skewed_trace_all_policies(self):
        from repro.cache.hierarchy import TwoLevelGeometry

        rng = np.random.default_rng(7)
        trace = (rng.zipf(1.4, size=12_000) % 160).astype(np.int64)
        geoms = _fa_geometries() + _sa_geometries()
        for policy in available_policies():
            if policy == "direct":
                swept = [g for g in geoms if g.ways in (None, 1)]
            elif policy == "two_level":
                # hierarchical sweep points: every single-level geometry
                # becomes the L2 behind a small fully-associative L1
                l1 = CacheGeometry(size=2 * B, block=B)
                swept = [TwoLevelGeometry(l1, g) for g in geoms if g.size >= l1.size]
            else:
                swept = geoms
            differential_grid(
                replay_kernel(policy), stepwise_oracle(policy), swept, trace
            )

    def test_harness_reports_first_divergence(self):
        # the harness's own contract: a lying kernel fails with a pinpointed
        # access, not a bare list comparison
        geom = CacheGeometry(size=2 * B, block=B)
        trace = [0, 1, 0, 1]

        def lying_kernel(blocks, grid):
            masks = replay_miss_masks(blocks, grid, "lru")
            masks[0] = masks[0].copy()
            masks[0][2] = ~masks[0][2]
            return masks

        with pytest.raises(AssertionError, match=r"first divergence at access 2"):
            differential_grid(lying_kernel, stepwise_oracle("lru"), [geom], trace)
        # and an honest run reports how many points it covered
        assert differential_grid(
            replay_kernel("lru"), stepwise_oracle("lru"), [geom], trace
        ) == 1

    def test_trace_shorter_than_cache(self):
        trace = [3, 1, 3]
        geom = CacheGeometry(size=1024, block=B)  # 128 frames >> trace
        for policy in ("lru", "direct", "opt"):
            differential_grid(
                replay_kernel(policy), stepwise_oracle(policy), [geom], trace
            )

    def test_empty_trace(self):
        empty = np.zeros(0, dtype=np.int64)
        for policy in ("lru", "direct", "opt"):
            masks = replay_miss_masks(empty, _fa_geometries(), policy)
            assert all(m.shape == (0,) for m in masks)

    def test_single_way_single_set_degenerate(self):
        trace = [0, 1, 0, 1, 0]
        geom = CacheGeometry(size=B, block=B)  # one frame total
        for policy in ("lru", "direct", "opt"):
            differential_grid(
                replay_kernel(policy), stepwise_oracle(policy), [geom], trace
            )


# ----------------------------------------------------------------------
# cross-policy properties
# ----------------------------------------------------------------------
class TestReplayProperties:
    def setup_method(self):
        rng = np.random.default_rng(13)
        self.trace = rng.integers(0, 96, size=6_000)

    def test_opt_never_worse_than_lru(self):
        geoms = _fa_geometries()
        lru = replay_misses(self.trace, geoms, "lru")
        opt = replay_misses(self.trace, geoms, "opt")
        assert all(o <= l for o, l in zip(opt, lru))

    def test_lru_never_better_than_higher_associativity(self):
        # fixed set count, growing ways: capacity and flexibility both grow
        geoms = [CacheGeometry(size=8 * w * B, block=B, ways=w) for w in (1, 2, 4, 8)]
        misses = replay_misses(self.trace, geoms, "lru")
        assert misses == sorted(misses, reverse=True)

    def test_full_associativity_at_same_capacity_wins(self):
        sa = CacheGeometry(size=256, block=B, ways=2)
        fa = CacheGeometry(size=256, block=B)
        (m_sa,) = replay_misses(self.trace, [sa], "lru")
        (m_fa,) = replay_misses(self.trace, [fa], "lru")
        assert m_fa <= m_sa

    def test_opt_stack_distance_monotone_capacity(self):
        d = opt_stack_distances(self.trace, 64)
        misses = [int(np.count_nonzero((d == 0) | (d > c))) for c in (4, 8, 16, 32, 64)]
        assert misses == sorted(misses, reverse=True)

    def test_per_set_distances_one_set_is_mattson(self):
        from repro.analysis.misscurve import stack_distances_array

        assert (
            per_set_stack_distances(self.trace, 1)
            == stack_distances_array(self.trace)
        ).all()

    def test_unknown_policy_rejected(self):
        with pytest.raises(CacheConfigError):
            replay_miss_masks(self.trace, _fa_geometries(), "plru")
        with pytest.raises(CacheConfigError):
            get_policy("plru")

    def test_direct_kernel_rejects_wider_ways(self):
        with pytest.raises(CacheConfigError):
            replay_miss_masks(
                self.trace, [CacheGeometry(size=256, block=B, ways=4)], "direct"
            )

    def test_workers_do_not_change_results(self):
        geoms = _fa_geometries() + _sa_geometries()
        for policy in ("lru", "opt"):
            serial = replay_misses(self.trace, geoms, policy)
            threaded = replay_misses(self.trace, geoms, policy, workers=4)
            assert serial == threaded


# ----------------------------------------------------------------------
# end-to-end: simulate_trace policy dispatch vs the stepwise executor
# ----------------------------------------------------------------------
class TestSimulateTracePolicies:
    def _workload(self):
        g = fm_radio(taps=16, bands=3)
        sched = single_appearance_schedule(g, n_iterations=6)
        return g, sched

    def test_direct_matches_executor_with_phases(self):
        g, sched = self._workload()
        geom = CacheGeometry(size=256, block=B)
        trace = compile_trace(g, sched, B)
        fast = simulate_trace(trace, [geom], policy="direct")[0]
        ref = Executor.measure(g, geom, sched, cache=DirectMappedCache(geom))
        assert fast.misses == ref.misses
        assert fast.accesses == ref.accesses
        assert fast.phase_misses == ref.phase_misses
        assert fast.source_fires == ref.source_fires

    def test_set_assoc_matches_executor_with_phases(self):
        g, sched = self._workload()
        geom = CacheGeometry(size=256, block=B, ways=4)
        trace = compile_trace(g, sched, B)
        fast = simulate_trace(trace, [geom], policy="lru")[0]
        ref = Executor.measure(g, geom, sched, cache=LRUCache(geom))
        assert fast.misses == ref.misses
        assert fast.phase_misses == ref.phase_misses

    def test_opt_matches_simulate_opt(self):
        g, sched = self._workload()
        geom = CacheGeometry(size=192, block=B)
        trace = compile_trace(g, sched, B)
        fast = simulate_trace(trace, [geom], policy="opt")[0]
        ref = simulate_opt(trace.blocks.tolist(), geom)
        assert fast.misses == ref.misses
        assert fast.accesses == ref.accesses

    def test_measure_compiled_policy_dispatch(self):
        g = random_pipeline(6, 20, seed=3, rate_choices=[(1, 1), (2, 1)])
        sched = interleaved_schedule(g, n_iterations=10)
        geom = CacheGeometry(size=128, block=B)
        dm = measure_compiled(g, geom, sched, policy="direct")
        ref = Executor.measure(g, geom, sched, cache=DirectMappedCache(geom))
        assert dm.misses == ref.misses
        opt = measure_compiled(g, geom, sched, policy="opt")
        lru = measure_compiled(g, geom, sched)
        assert opt.misses <= lru.misses

    def test_sweep_with_workers_matches_serial(self):
        g = pipeline([24] * 6)
        sched = interleaved_schedule(g, n_iterations=20)
        trace = compile_trace(g, sched, B)
        geoms = [CacheGeometry(size=s, block=B) for s in (32, 64, 128, 256, 512)]
        for policy in ("lru", "direct", "opt"):
            serial = [r.misses for r in simulate_trace(trace, geoms, policy=policy)]
            threaded = [
                r.misses
                for r in simulate_trace(trace, geoms, policy=policy, workers=3)
            ]
            assert serial == threaded

    def test_opt_set_associative_oracle_composition(self):
        # set-assoc OPT == OPT run independently per set subsequence
        rng = np.random.default_rng(5)
        trace = rng.integers(0, 64, size=2_000).tolist()
        geom = CacheGeometry(size=256, block=B, ways=4)  # 8 sets
        (mask,) = replay_miss_masks(np.asarray(trace), [geom], "opt")
        assert mask.tolist() == simulate_opt_misses(trace, geom)
