"""Tests for batch tuning and cache-geometry helpers."""

import pytest

from repro.cache.base import CacheGeometry
from repro.core.dagpart import interval_dp_partition
from repro.core.partition import whole_graph_partition
from repro.core.tuning import (
    augmented_geometry,
    choose_batch,
    cross_capacities,
    required_geometry,
)
from repro.errors import GraphError
from repro.graphs.repetition import iteration_tokens, repetition_vector
from repro.graphs.topologies import pipeline, random_pipeline
from repro.graphs.apps import filter_bank


class TestChooseBatch:
    def test_paper_conditions_hold(self, mixed_pipeline):
        M = 64
        plan = choose_batch(mixed_pipeline, M)
        reps = repetition_vector(mixed_pipeline)
        toks = iteration_tokens(mixed_pipeline, reps)
        for ch in mixed_pipeline.channels():
            traffic = plan.channel_tokens[ch.cid]
            # integral, divisible by out and in, and >= M (Section 3)
            assert traffic == plan.k * toks[ch.cid]
            assert traffic % ch.out_rate == 0
            assert traffic % ch.in_rate == 0
            assert traffic >= M

    def test_source_fires_multiple_of_reps(self, mixed_pipeline):
        plan = choose_batch(mixed_pipeline, 64)
        reps = repetition_vector(mixed_pipeline)
        assert plan.source_fires == plan.k * reps["m0"]
        assert plan.fires == {n: plan.k * r for n, r in reps.items()}

    def test_cross_only_requirement_smaller_k(self):
        g = filter_bank(branches=4, taps=16)
        M = 128
        part = interval_dp_partition(g, M, c=2.0)
        cross = [c.cid for c in part.cross_channels()]
        restricted = choose_batch(g, M, cross_cids=cross)
        strict = choose_batch(g, M)
        assert restricted.k <= strict.k

    def test_no_cross_edges_single_iteration(self, mixed_pipeline):
        plan = choose_batch(mixed_pipeline, 64, cross_cids=[])
        assert plan.k == 1

    def test_multi_source_rejected(self):
        from repro.graphs.sdf import StreamGraph

        g = StreamGraph()
        for n in "abt":
            g.add_module(n)
        g.add_channel("a", "t")
        g.add_channel("b", "t")
        with pytest.raises(GraphError):
            choose_batch(g, 10)


class TestCrossCapacities:
    def test_covers_exactly_cross_edges(self, mixed_pipeline):
        M = 64
        part = interval_dp_partition(mixed_pipeline, M, c=1.0)
        plan = choose_batch(mixed_pipeline, M)
        caps = cross_capacities(part, plan)
        assert set(caps) == {c.cid for c in part.cross_channels()}
        for cid, cap in caps.items():
            assert cap == plan.channel_tokens[cid]


class TestGeometryHelpers:
    def test_augmented_rounds_to_blocks(self):
        g = CacheGeometry(size=128, block=8)
        a = augmented_geometry(g, 1.6)
        assert a.size % 8 == 0 and a.size >= 204
        assert a.block == 8

    def test_augmented_factor_one_identity_size(self):
        g = CacheGeometry(size=128, block=8)
        assert augmented_geometry(g, 1.0).size == 128

    def test_required_geometry_fits_worst_component(self, homog_pipeline):
        geom = CacheGeometry(size=64, block=8)
        part = interval_dp_partition(homog_pipeline, 64, c=1.0)
        req = required_geometry(part, geom, slack=1.0)
        worst = max(part.component_state(i) for i in range(part.k))
        assert req.size >= worst

    def test_required_geometry_never_below_input(self, homog_pipeline):
        geom = CacheGeometry(size=10_000, block=8)
        part = whole_graph_partition(homog_pipeline)
        req = required_geometry(part, geom, slack=1.0)
        assert req.size >= geom.size

    def test_required_geometry_scales_with_degree(self):
        # a hub component with many cross edges needs more cache
        from repro.graphs.sdf import StreamGraph
        from repro.core.partition import Partition

        g = StreamGraph()
        g.add_module("s", state=8)
        for i in range(12):
            g.add_module(f"w{i}", state=8)
            g.add_channel("s", f"w{i}")
        g.add_module("t", state=8)
        for i in range(12):
            g.add_channel(f"w{i}", "t")
        hub = Partition(g, [["s"], [f"w{i}" for i in range(12)], ["t"]])
        geom = CacheGeometry(size=16, block=8)
        req = required_geometry(hub, geom, slack=1.0, cross_hot_blocks=2)
        # middle component: 12 modules x 8 + 24 cross edges x 2 blocks x 8 + 2 blocks
        assert req.size >= 12 * 8 + 24 * 2 * 8
