"""Tests for synthetic topology generators."""

import pytest

from repro.errors import GraphError
from repro.graphs.topologies import (
    butterfly,
    diamond,
    layered_random_dag,
    pipeline,
    random_pipeline,
    rate_matched_random_dag,
    split_join_tree,
)
from repro.graphs.validate import validate_graph


class TestPipeline:
    def test_shape(self):
        g = pipeline([1, 2, 3])
        assert g.is_pipeline()
        assert g.pipeline_order() == ["m0", "m1", "m2"]
        assert [g.state(n) for n in g.pipeline_order()] == [1, 2, 3]

    def test_rates_applied(self):
        g = pipeline([1, 1], rates=[(3, 2)])
        ch = next(iter(g.channels()))
        assert (ch.out_rate, ch.in_rate) == (3, 2)

    def test_wrong_rate_count_rejected(self):
        with pytest.raises(GraphError):
            pipeline([1, 1, 1], rates=[(1, 1)])

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            pipeline([])

    def test_validates(self):
        assert validate_graph(pipeline([4] * 8)).ok


class TestRandomPipeline:
    def test_deterministic_with_seed(self):
        a = random_pipeline(10, 50, seed=42)
        b = random_pipeline(10, 50, seed=42)
        assert [m.state for m in a.modules()] == [m.state for m in b.modules()]

    def test_states_within_bounds(self):
        g = random_pipeline(30, 20, seed=1, min_state=5)
        assert all(5 <= m.state <= 20 for m in g.modules())

    def test_mixed_rates_rate_matched(self):
        g = random_pipeline(20, 10, seed=3, rate_choices=[(1, 1), (2, 1), (1, 2), (3, 2)])
        assert validate_graph(g).ok

    def test_zero_modules_rejected(self):
        with pytest.raises(GraphError):
            random_pipeline(0, 10)


class TestDiamond:
    def test_structure(self):
        g = diamond(branch_len=2, ways=3, state=5)
        assert g.n_modules == 2 + 3 * 2
        assert len(g.sources()) == 1 and len(g.sinks()) == 1
        assert g.is_homogeneous()
        assert validate_graph(g).ok

    def test_zero_branch_len(self):
        g = diamond(branch_len=0, ways=2)
        # src connects directly to snk twice (parallel channels)
        assert g.n_channels == 2


class TestSplitJoinTree:
    @pytest.mark.parametrize("depth", [0, 1, 2, 3])
    def test_structure(self, depth):
        g = split_join_tree(depth, state=3)
        expected = 2 * (2 ** (depth + 1) - 1)
        assert g.n_modules == expected
        assert len(g.sources()) == 1 and len(g.sinks()) == 1
        assert validate_graph(g).ok

    def test_negative_depth_rejected(self):
        with pytest.raises(GraphError):
            split_join_tree(-1)


class TestButterfly:
    @pytest.mark.parametrize("stages", [1, 2, 3])
    def test_structure(self, stages):
        g = butterfly(stages, state=2)
        lanes = 1 << stages
        assert g.n_modules == 2 + lanes * (stages + 1)
        assert validate_graph(g).ok
        assert g.is_homogeneous()

    def test_each_inner_node_has_two_inputs(self):
        g = butterfly(2, state=2)
        for k in range(1, 3):
            for lane in range(4):
                assert len(g.in_channels(f"n{k}_{lane}")) == 2

    def test_bad_stages_rejected(self):
        with pytest.raises(GraphError):
            butterfly(0)


class TestLayeredRandomDag:
    def test_connected_and_valid(self):
        g = layered_random_dag(4, 3, 10, seed=7)
        report = validate_graph(g)
        assert report.ok, report.errors

    def test_deterministic(self):
        a = layered_random_dag(3, 3, 10, seed=5)
        b = layered_random_dag(3, 3, 10, seed=5)
        assert a.n_channels == b.n_channels

    def test_homogeneous(self):
        assert layered_random_dag(3, 2, 5, seed=1).is_homogeneous()

    def test_bad_dims_rejected(self):
        with pytest.raises(GraphError):
            layered_random_dag(0, 3, 10)


class TestRateMatchedRandomDag:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_always_rate_matched(self, seed):
        g = rate_matched_random_dag(4, 3, 12, seed=seed, rate_choices=(1, 2, 3))
        report = validate_graph(g)
        assert report.rate_matched, report.errors

    def test_has_nonunit_rates(self):
        # with several layers at least one channel should be inhomogeneous
        for seed in range(10):
            g = rate_matched_random_dag(5, 2, 8, seed=seed, rate_choices=(2, 3))
            if not g.is_homogeneous():
                return
        pytest.fail("no inhomogeneous channel generated in 10 seeds")
