"""Unit tests for the SDF graph model (repro.graphs.sdf)."""

import pytest

from repro.errors import CycleError, GraphError
from repro.graphs.sdf import Channel, Module, StreamGraph


class TestModule:
    def test_basic_construction(self):
        m = Module("f", state=10, work=3)
        assert m.name == "f" and m.state == 10 and m.work == 3

    def test_default_state_zero(self):
        assert Module("f").state == 0

    def test_empty_name_rejected(self):
        with pytest.raises(GraphError):
            Module("")

    def test_negative_state_rejected(self):
        with pytest.raises(GraphError):
            Module("f", state=-1)

    def test_negative_work_rejected(self):
        with pytest.raises(GraphError):
            Module("f", work=-2)

    def test_frozen(self):
        m = Module("f")
        with pytest.raises(Exception):
            m.state = 5  # type: ignore[misc]


class TestChannel:
    def test_basic(self):
        ch = Channel(cid=0, src="a", dst="b", out_rate=2, in_rate=3)
        assert ch.endpoints == ("a", "b")
        assert not ch.is_homogeneous()

    def test_homogeneous_detection(self):
        assert Channel(cid=0, src="a", dst="b").is_homogeneous()

    def test_zero_rate_rejected(self):
        with pytest.raises(GraphError):
            Channel(cid=0, src="a", dst="b", out_rate=0)
        with pytest.raises(GraphError):
            Channel(cid=0, src="a", dst="b", in_rate=0)

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            Channel(cid=0, src="a", dst="a")


class TestStreamGraph:
    def _chain(self, n=3) -> StreamGraph:
        g = StreamGraph("chain")
        for i in range(n):
            g.add_module(f"m{i}", state=i + 1)
        for i in range(n - 1):
            g.add_channel(f"m{i}", f"m{i + 1}")
        return g

    def test_counts(self):
        g = self._chain(4)
        assert g.n_modules == 4 and g.n_channels == 3

    def test_duplicate_module_rejected(self):
        g = StreamGraph()
        g.add_module("a")
        with pytest.raises(GraphError):
            g.add_module("a")

    def test_channel_unknown_endpoint_rejected(self):
        g = StreamGraph()
        g.add_module("a")
        with pytest.raises(GraphError):
            g.add_channel("a", "b")
        with pytest.raises(GraphError):
            g.add_channel("b", "a")

    def test_multigraph_parallel_channels(self):
        g = StreamGraph()
        g.add_module("a")
        g.add_module("b")
        c1 = g.add_channel("a", "b", out_rate=1, in_rate=1)
        c2 = g.add_channel("a", "b", out_rate=2, in_rate=2)
        assert c1.cid != c2.cid
        assert len(g.channels_between("a", "b")) == 2

    def test_total_state(self):
        g = self._chain(4)
        assert g.total_state() == 1 + 2 + 3 + 4
        assert g.total_state(["m0", "m3"]) == 1 + 4

    def test_successors_predecessors_distinct(self):
        g = StreamGraph()
        for n in "abc":
            g.add_module(n)
        g.add_channel("a", "b")
        g.add_channel("a", "b")  # parallel
        g.add_channel("a", "c")
        assert g.successors("a") == ["b", "c"]
        assert g.predecessors("b") == ["a"]

    def test_degree_counts_channels_not_neighbors(self):
        g = StreamGraph()
        for n in "ab":
            g.add_module(n)
        g.add_channel("a", "b")
        g.add_channel("a", "b")
        assert g.degree("a") == 2 and g.degree("b") == 2

    def test_sources_sinks(self):
        g = self._chain(3)
        assert g.sources() == ["m0"]
        assert g.sinks() == ["m2"]

    def test_topological_order_is_valid(self):
        g = StreamGraph()
        for n in "abcd":
            g.add_module(n)
        g.add_channel("a", "b")
        g.add_channel("a", "c")
        g.add_channel("b", "d")
        g.add_channel("c", "d")
        order = g.topological_order()
        pos = {n: i for i, n in enumerate(order)}
        for ch in g.channels():
            assert pos[ch.src] < pos[ch.dst]

    def test_cycle_detected(self):
        g = StreamGraph()
        for n in "abc":
            g.add_module(n)
        g.add_channel("a", "b")
        g.add_channel("b", "c")
        g.add_channel("c", "a")
        with pytest.raises(CycleError):
            g.topological_order()
        assert not g.is_dag()

    def test_is_pipeline(self):
        assert self._chain(5).is_pipeline()
        g = self._chain(3)
        g.add_module("x")
        g.add_channel("m0", "x")
        assert not g.is_pipeline()

    def test_single_module_is_pipeline(self):
        g = StreamGraph()
        g.add_module("only")
        assert g.is_pipeline()
        assert g.pipeline_order() == ["only"]

    def test_empty_graph_not_pipeline(self):
        assert not StreamGraph().is_pipeline()

    def test_is_homogeneous(self):
        g = self._chain(3)
        assert g.is_homogeneous()
        g.add_channel("m0", "m2", out_rate=2, in_rate=1)
        assert not g.is_homogeneous()

    def test_copy_independent(self):
        g = self._chain(3)
        h = g.copy()
        h.add_module("extra")
        assert g.n_modules == 3 and h.n_modules == 4
        assert [c.cid for c in g.channels()] == [c.cid for c in h.channels()]

    def test_unknown_module_raises(self):
        g = self._chain(2)
        with pytest.raises(GraphError):
            g.module("zz")
        with pytest.raises(GraphError):
            g.channel(999)

    def test_contains_and_repr(self):
        g = self._chain(2)
        assert "m0" in g and "zz" not in g
        assert "chain" in repr(g)
        assert "m0" in g.describe()
