"""Tests for the parallel dynamic scheduling simulation."""

import pytest

from repro.cache.base import CacheGeometry
from repro.core.dagpart import interval_dp_partition, refine_partition
from repro.core.parallel_sched import parallel_dynamic_simulation
from repro.core.partition import whole_graph_partition
from repro.errors import GraphError, ScheduleError
from repro.graphs.topologies import diamond, pipeline


@pytest.fixture
def wide_dag():
    return diamond(branch_len=4, ways=4, state=16)


@pytest.fixture
def pgeom():
    return CacheGeometry(size=64, block=8)


def make_partition(g, geom, c=2.0):
    return refine_partition(interval_dp_partition(g, geom.size, c=c), geom.size, c=c)


class TestParallelSimulation:
    def test_single_worker_baseline(self, wide_dag, pgeom):
        part = make_partition(wide_dag, pgeom)
        res = parallel_dynamic_simulation(wide_dag, part, pgeom, n_workers=1, target_outputs=256)
        assert res.p == 1
        assert res.speedup == pytest.approx(1.0)
        assert res.load_balance == pytest.approx(1.0)
        assert res.total_misses > 0
        assert res.source_fires >= 256

    def test_two_workers_speedup(self, wide_dag, pgeom):
        part = make_partition(wide_dag, pgeom)
        one = parallel_dynamic_simulation(wide_dag, part, pgeom, 1, target_outputs=512)
        two = parallel_dynamic_simulation(wide_dag, part, pgeom, 2, target_outputs=512)
        assert two.makespan < one.makespan
        assert two.speedup > 1.3

    def test_misses_do_not_explode_with_parallelism(self, wide_dag, pgeom):
        part = make_partition(wide_dag, pgeom)
        one = parallel_dynamic_simulation(wide_dag, part, pgeom, 1, target_outputs=512)
        four = parallel_dynamic_simulation(wide_dag, part, pgeom, 4, target_outputs=512)
        assert four.total_misses <= 2 * one.total_misses

    def test_speedup_saturates_at_graph_width(self, wide_dag, pgeom):
        part = make_partition(wide_dag, pgeom)
        r4 = parallel_dynamic_simulation(wide_dag, part, pgeom, 4, target_outputs=512)
        r16 = parallel_dynamic_simulation(wide_dag, part, pgeom, 16, target_outputs=512)
        assert r16.speedup <= r4.speedup * 1.25 + 0.1

    def test_work_conservation(self, wide_dag, pgeom):
        part = make_partition(wide_dag, pgeom)
        res = parallel_dynamic_simulation(wide_dag, part, pgeom, 3, target_outputs=256)
        assert res.total_work == sum(w.busy_time for w in res.workers)
        assert sum(w.components_run for w in res.workers) == res.batches_run

    def test_single_component_serializes(self, pgeom):
        g = diamond(branch_len=1, ways=2, state=4)
        part = whole_graph_partition(g)
        res = parallel_dynamic_simulation(g, part, pgeom, 4, target_outputs=128)
        # only one component: exactly one worker ever busy
        busy = [w for w in res.workers if w.busy_time > 0]
        assert len(busy) == 1
        assert res.speedup == pytest.approx(1.0)

    def test_rejects_inhomogeneous(self, pgeom):
        g = pipeline([4, 4], rates=[(3, 1)])
        part = whole_graph_partition(g)
        with pytest.raises(GraphError):
            parallel_dynamic_simulation(g, part, pgeom, 2, target_outputs=8)

    def test_rejects_bad_params(self, wide_dag, pgeom):
        part = whole_graph_partition(wide_dag)
        with pytest.raises(ScheduleError):
            parallel_dynamic_simulation(wide_dag, part, pgeom, 0, target_outputs=8)
        with pytest.raises(ScheduleError):
            parallel_dynamic_simulation(wide_dag, part, pgeom, 2, target_outputs=0)

    def test_summary_format(self, wide_dag, pgeom):
        part = make_partition(wide_dag, pgeom)
        res = parallel_dynamic_simulation(wide_dag, part, pgeom, 2, target_outputs=128)
        s = res.summary()
        assert "P=2" in s and "speedup" in s
