"""Acceptance tests for :mod:`repro.obs` — the instrumentation layer.

The load-bearing contracts pinned here:

* **Disabled means invisible** — emitters record nothing, ``span``
  returns a shared no-op, and instrumented results are bit-identical
  with instrumentation on or off.
* **Registry semantics** — counters sum, gauges last-write, histograms
  keep count/total/min/max, series append under a hard cap, and
  :meth:`MetricsRegistry.merge` folds a worker snapshot in so that
  chunked + merged equals serial.
* **Cross-process aggregation** — the *work counters* (compile, cache,
  replay, batch, placement) merged back from a process pool equal the
  serial run's counters for identical work.  Execution counters
  (``backend.tasks``, ``backend.width``) are backend-dependent by
  design and excluded from the equality.
* **Run manifests** — ``capture_run`` writes a manifest + event log
  with a stable run id, and ``repro obs-report`` renders it.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import obs
from repro.obs import MetricsRegistry, SERIES_CAP
from repro.obs import names as obs_names
from repro.obs.core import _NULL_SPAN, _span_key
from repro.obs.manifest import capture_run, config_digest, git_describe
from repro.obs.report import render_manifest


@pytest.fixture(autouse=True)
def _pristine_obs():
    """Every test starts and ends disabled with an empty global registry."""
    obs.disable()
    obs.reset()
    obs.set_event_sink(None)
    yield
    obs.disable()
    obs.reset()
    obs.set_event_sink(None)


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counters_sum(self):
        r = MetricsRegistry()
        r.add("c")
        r.add("c", 4)
        assert r.counter_value("c") == 5
        assert r.counter_value("missing") == 0

    def test_gauge_last_write_wins(self):
        r = MetricsRegistry()
        r.gauge("g", 1.0)
        r.gauge("g", 7.0)
        assert r.snapshot()["gauges"] == {"g": 7.0}

    def test_histogram_stats(self):
        r = MetricsRegistry()
        for v in (3.0, 1.0, 2.0):
            r.observe("h", v)
        h = r.snapshot()["histograms"]["h"]
        assert h == {"count": 3, "total": 6.0, "min": 1.0, "max": 3.0}

    def test_series_order_and_cap(self):
        r = MetricsRegistry()
        for i in range(SERIES_CAP + 10):
            r.series("s", float(i))
        points = r.snapshot()["series"]["s"]
        assert len(points) == SERIES_CAP
        assert points[:3] == [0.0, 1.0, 2.0]  # head kept, tail dropped

    def test_span_aggregation(self):
        r = MetricsRegistry()
        r.record_span("k", 0.5, 0.25)
        r.record_span("k", 0.5, 0.25)
        assert r.snapshot()["spans"]["k"] == {
            "count": 2, "wall_s": 1.0, "cpu_s": 0.5,
        }

    def test_snapshot_is_detached(self):
        r = MetricsRegistry()
        r.add("c")
        snap = r.snapshot()
        snap["counters"]["c"] = 99
        assert r.counter_value("c") == 1

    def test_merge_equals_serial(self):
        """Chunked recording + merge reproduces one serial registry."""
        serial = MetricsRegistry()
        workers = [MetricsRegistry() for _ in range(3)]
        for i, w in enumerate(workers):
            for r in (serial, w):
                r.add("c", i + 1)
                r.observe("h", float(i))
                r.series("s", float(i))
                r.record_span("k", 0.125, 0.0625)
                r.gauge("g", float(i))
        merged = MetricsRegistry()
        for w in workers:
            merged.merge(w.snapshot())
        assert merged.snapshot() == serial.snapshot()

    def test_merge_respects_series_cap(self):
        donor = MetricsRegistry()
        for i in range(SERIES_CAP):
            donor.series("s", float(i))
        dest = MetricsRegistry()
        dest.series("s", -1.0)
        dest.merge(donor.snapshot())
        assert len(dest.snapshot()["series"]["s"]) == SERIES_CAP

    def test_reset(self):
        r = MetricsRegistry()
        r.add("c")
        r.gauge("g", 1.0)
        r.reset()
        assert r.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
            "series": {}, "spans": {},
        }

    def test_thread_safety_exact_totals(self):
        r = MetricsRegistry()

        def worker():
            for _ in range(1000):
                r.add("c")
                r.observe("h", 1.0)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert r.counter_value("c") == 8000
        assert r.snapshot()["histograms"]["h"]["count"] == 8000


# ---------------------------------------------------------------------------
# core: switch, spans, capture
# ---------------------------------------------------------------------------
class TestCoreSwitchAndSpans:
    def test_disabled_emitters_record_nothing(self):
        obs.add(obs_names.CACHE_HITS, 5)
        obs.gauge(obs_names.BACKEND_WIDTH, 4)
        obs.observe(obs_names.COMPILE_ACCESSES, 1.0)
        obs.series(obs_names.PLACEMENT_COST, 1.0)
        snap = obs.snapshot()
        assert snap["counters"] == {} and snap["gauges"] == {}
        assert snap["histograms"] == {} and snap["series"] == {}

    def test_disabled_span_is_shared_noop(self):
        assert obs.span(obs_names.REPLAY, policy="lru") is _NULL_SPAN
        assert obs.span(obs_names.COMPILE) is _NULL_SPAN

    def test_enable_disable_return_previous(self):
        assert obs.enable() is False
        assert obs.is_enabled()
        assert obs.enable() is True
        assert obs.disable() is True
        assert obs.disable() is False

    def test_span_key_flattens_sorted_attrs(self):
        assert _span_key("replay", {}) == "replay"
        assert _span_key("replay", {"policy": "lru"}) == "replay[policy=lru]"
        assert (
            _span_key("backend.map", {"b": 1, "a": 2}) == "backend.map[a=2,b=1]"
        )

    def test_enabled_span_records_under_key(self):
        obs.enable()
        with obs.span(obs_names.REPLAY, policy="lru"):
            pass
        spans = obs.snapshot()["spans"]
        assert spans["replay[policy=lru]"]["count"] == 1
        assert spans["replay[policy=lru]"]["wall_s"] >= 0.0

    def test_nested_spans_record_separately(self):
        obs.enable()
        with obs.span(obs_names.BATCH):
            with obs.span(obs_names.COMPILE):
                pass
        spans = obs.snapshot()["spans"]
        assert spans[obs_names.BATCH]["count"] == 1
        assert spans[obs_names.COMPILE]["count"] == 1

    def test_capture_isolates_and_restores(self):
        obs.enable()
        obs.add(obs_names.CACHE_HITS, 1)
        with obs.capture() as cap:
            obs.add(obs_names.CACHE_HITS, 10)
        # the scope's delta lands only in the snapshot...
        assert cap.snapshot["counters"] == {obs_names.CACHE_HITS: 10}
        # ...and the outer registry is untouched
        assert obs.snapshot()["counters"] == {obs_names.CACHE_HITS: 1}

    def test_capture_forces_enabled_then_restores(self):
        assert not obs.is_enabled()
        with obs.capture(enabled=True) as cap:
            assert obs.is_enabled()
            obs.add(obs_names.CACHE_MISSES, 2)
        assert not obs.is_enabled()
        assert cap.snapshot["counters"] == {obs_names.CACHE_MISSES: 2}

    def test_capture_snapshot_is_json_able(self):
        with obs.capture(enabled=True) as cap:
            obs.add(obs_names.CACHE_HITS)
            with obs.span(obs_names.COMPILE):
                pass
        json.dumps(cap.snapshot)  # plain dicts/lists/numbers only

    def test_merge_noop_while_disabled(self):
        worker = MetricsRegistry()
        worker.add(obs_names.CACHE_HITS, 3)
        obs.merge(worker.snapshot())
        assert obs.snapshot()["counters"] == {}
        obs.enable()
        obs.merge(worker.snapshot())
        assert obs.snapshot()["counters"] == {obs_names.CACHE_HITS: 3}

    def test_event_sink_sees_span_events(self):
        events = []
        previous = obs.set_event_sink(lambda kind, p: events.append((kind, p)))
        assert previous is None
        obs.enable()
        with obs.span(obs_names.COMPILE):
            pass
        assert obs.set_event_sink(None) is not None
        (event,) = events
        assert event[0] == "span" and event[1]["name"] == obs_names.COMPILE


# ---------------------------------------------------------------------------
# names registry
# ---------------------------------------------------------------------------
class TestNames:
    def test_registered_names_unique_and_upper(self):
        names = obs_names.registered_names()
        assert all(k.isupper() for k in names)
        values = list(names.values())
        assert len(values) == len(set(values)), "duplicate metric name"

    def test_vocabulary_covers_instrumented_subsystems(self):
        values = set(obs_names.registered_names().values())
        for expected in (
            "compile", "trace_cache.hits", "replay.misses",
            "run_batch.queries", "backend.tasks", "placement.cost", "run",
        ):
            assert expected in values


# ---------------------------------------------------------------------------
# run manifests + obs-report
# ---------------------------------------------------------------------------
class TestManifest:
    def test_config_digest_canonical(self):
        assert config_digest({"a": 1, "b": 2}) == config_digest({"b": 2, "a": 1})
        assert config_digest({"a": 1}) != config_digest({"a": 2})

    def test_git_describe_fallback(self, tmp_path):
        assert git_describe(tmp_path) == "unknown"

    def test_capture_run_writes_manifest_and_events(self, tmp_path):
        out = tmp_path / "m.json"
        with capture_run("schedule", {"graph": "fm_radio"}, out) as run:
            obs.add(obs_names.COMPILE_CALLS)
            with obs.span(obs_names.COMPILE):
                pass
        manifest = json.loads(out.read_text())
        assert manifest["run_id"] == run.run_id
        assert manifest["ok"] is True
        assert manifest["metrics"]["counters"][obs_names.COMPILE_CALLS] == 1
        assert obs_names.RUN in manifest["metrics"]["spans"]
        events = [
            json.loads(line)
            for line in (tmp_path / "m.events.jsonl").read_text().splitlines()
        ]
        kinds = [e["event"] for e in events]
        assert kinds[0] == "run_start" and kinds[-1] == "run_end"
        assert any(
            e["event"] == "span" and e["name"] == obs_names.COMPILE
            for e in events
        )

    def test_run_id_stable_for_same_config(self, tmp_path):
        ids = []
        for name in ("a.json", "b.json"):
            with capture_run("schedule", {"graph": "x"}, tmp_path / name) as r:
                pass
            ids.append(r.run_id)
        assert ids[0] == ids[1]
        with capture_run("schedule", {"graph": "y"}, tmp_path / "c.json") as r:
            pass
        assert r.run_id != ids[0]

    def test_failed_run_still_writes_manifest(self, tmp_path):
        out = tmp_path / "m.json"
        with pytest.raises(RuntimeError):
            with capture_run("experiment", {}, out):
                raise RuntimeError("boom")
        manifest = json.loads(out.read_text())
        assert manifest["ok"] is False

    def test_capture_run_leaves_global_state_alone(self, tmp_path):
        with capture_run("schedule", {}, tmp_path / "m.json"):
            assert obs.is_enabled()
        assert not obs.is_enabled()
        assert obs.snapshot()["counters"] == {}

    def test_render_manifest_sections(self, tmp_path):
        out = tmp_path / "m.json"
        with capture_run("schedule", {"graph": "x"}, out) as run:
            obs.add(obs_names.REPLAY_MISSES, 42)
            obs.gauge(obs_names.BACKEND_WIDTH, 4)
            obs.observe(obs_names.COMPILE_ACCESSES, 2.0)
            obs.series(obs_names.PLACEMENT_COST, 9.0)
        text = render_manifest(json.loads(out.read_text()))
        assert run.run_id in text
        assert obs_names.RUN in text
        assert "replay.misses" in text and "42" in text
        assert "gauges" in text and "histograms" in text and "series" in text

    def test_obs_report_cli_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "m.json"
        with capture_run("schedule", {"graph": "x"}, out):
            obs.add(obs_names.COMPILE_CALLS)
        assert main(["obs-report", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "compile.calls" in printed and "run " in printed

    def test_obs_report_cli_missing_file(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="cannot read"):
            main(["obs-report", str(tmp_path / "nope.json")])

    def test_obs_report_cli_corrupt_file(self, tmp_path):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(SystemExit, match="not valid JSON"):
            main(["obs-report", str(bad)])

    def test_cli_metrics_out_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "run.json"
        rc = main([
            "schedule", "fm_radio", "--cache", "256", "--inputs", "64",
            "--metrics-out", str(out),
        ])
        capsys.readouterr()
        assert rc == 0
        manifest = json.loads(out.read_text())
        assert manifest["command"] == "schedule"
        assert manifest["config"]["graph"] == "fm_radio"
        counters = manifest["metrics"]["counters"]
        assert counters[obs_names.COMPILE_CALLS] == 1
        assert counters[obs_names.REPLAY_MISSES] > 0
        assert (tmp_path / "run.events.jsonl").exists()
        # instrumentation is scoped to the run: the global switch is off
        assert not obs.is_enabled()


# ---------------------------------------------------------------------------
# cross-backend aggregation + bit-identity
# ---------------------------------------------------------------------------
#: Counters whose totals depend only on the *work* performed, not on how
#: it was chunked across a backend — merged process totals must equal the
#: serial totals for these.  ``backend.tasks`` / ``backend.width`` count
#: scheduling decisions and legitimately differ between backends.
WORK_COUNTERS = frozenset({
    obs_names.COMPILE_CALLS,
    obs_names.COMPILE_ACCESSES,
    obs_names.CACHE_HITS,
    obs_names.CACHE_MISSES,
    obs_names.CACHE_EVICTIONS,
    obs_names.CACHE_CORRUPT,
    obs_names.REPLAY_GEOMETRIES,
    obs_names.REPLAY_MISSES,
    obs_names.BATCH_QUERIES,
    obs_names.BATCH_DEDUPED,
    obs_names.BATCH_GROUPS,
    obs_names.PLACEMENT_EVALS,
    obs_names.PLACEMENT_ROUNDS,
})


def _work_counters(snap):
    return {
        name: value
        for name, value in snap["counters"].items()
        if name in WORK_COUNTERS
    }


@pytest.fixture(scope="module")
def workload():
    from repro.core.baselines import interleaved_schedule
    from repro.graphs.apps import fm_radio
    from repro.runtime.compiled import compile_trace

    g = fm_radio()
    sched = interleaved_schedule(g, n_iterations=2)
    trace = compile_trace(g, sched, 8)
    return g, sched, trace


class TestCrossBackendAggregation:
    def _sweep(self, trace, backend):
        from repro.runtime.backend import geometry_sweep
        from repro.runtime.compiled import simulate_trace

        geoms = geometry_sweep([64, 128, 256, 512], 8)
        with obs.capture(enabled=True) as cap:
            results = simulate_trace(
                trace, geoms, policy="lru", backend=backend, workers=2
            )
        return results, cap.snapshot

    def test_process_sweep_counters_match_serial(self, workload):
        _g, _sched, trace = workload
        serial_results, serial_snap = self._sweep(trace, "serial")
        proc_results, proc_snap = self._sweep(trace, "process")
        assert [r.misses for r in serial_results] == [
            r.misses for r in proc_results
        ]
        serial_work = _work_counters(serial_snap)
        assert serial_work[obs_names.REPLAY_GEOMETRIES] == 4
        assert serial_work[obs_names.REPLAY_MISSES] == sum(
            r.misses for r in serial_results
        )
        assert _work_counters(proc_snap) == serial_work

    def test_process_batch_counters_match_serial(self, workload):
        from repro.runtime.backend import ServiceQuery, geometry_sweep, run_batch

        g, sched, _trace = workload
        geoms = geometry_sweep([64, 128, 256], 8)
        queries = [
            ServiceQuery(g, sched, 8, geoms, policy="lru") for _ in range(3)
        ]
        snaps = {}
        answers = {}
        for backend in ("serial", "process"):
            with obs.capture(enabled=True) as cap:
                answers[backend] = run_batch(
                    queries, backend=backend, workers=2
                )
            snaps[backend] = cap.snapshot
        assert [r.misses for r in answers["serial"][0].results] == [
            r.misses for r in answers["process"][0].results
        ]
        serial_work = _work_counters(snaps["serial"])
        assert serial_work[obs_names.BATCH_QUERIES] == 3
        assert serial_work[obs_names.BATCH_DEDUPED] == 2
        assert serial_work[obs_names.BATCH_GROUPS] == 1
        assert serial_work[obs_names.COMPILE_CALLS] == 1
        assert _work_counters(snaps["process"]) == serial_work

    def test_span_keys_are_backend_comparable(self, workload):
        """Chunking changes span *counts*, never span *keys*."""
        _g, _sched, trace = workload
        _, serial_snap = self._sweep(trace, "serial")
        _, proc_snap = self._sweep(trace, "process")
        assert "replay[policy=lru]" in serial_snap["spans"]
        assert "replay[policy=lru]" in proc_snap["spans"]

    def test_results_bit_identical_obs_on_off(self, workload):
        from repro.runtime.backend import geometry_sweep
        from repro.runtime.compiled import simulate_trace

        _g, _sched, trace = workload
        geoms = geometry_sweep([64, 128, 256, 512], 8)
        for backend in ("serial", "process"):
            plain = simulate_trace(
                trace, geoms, policy="lru", backend=backend, workers=2
            )
            with obs.capture(enabled=True):
                instrumented = simulate_trace(
                    trace, geoms, policy="lru", backend=backend, workers=2
                )
            assert [r.misses for r in plain] == [
                r.misses for r in instrumented
            ]
            assert [r.phase_misses for r in plain] == [
                r.phase_misses for r in instrumented
            ]

    def test_placement_metrics_recorded(self):
        from repro.cache.base import CacheGeometry
        from repro.core.baselines import interleaved_schedule
        from repro.graphs.apps import fm_radio
        from repro.mem.placement import build_instance, swap_refine

        g = fm_radio()
        sched = interleaved_schedule(g, n_iterations=1)
        instance = build_instance(g, sched, 8)
        geom = CacheGeometry(size=16 * 8, block=8)
        with obs.capture(enabled=True) as cap:
            _order, _gaps, cost, stats = swap_refine(
                instance, list(instance.objects), geom, budget=20
            )
        counters = cap.snapshot["counters"]
        assert counters[obs_names.PLACEMENT_EVALS] == stats.evals
        assert counters[obs_names.PLACEMENT_ROUNDS] == stats.rounds
        trajectory = cap.snapshot["series"][obs_names.PLACEMENT_COST]
        assert trajectory == list(stats.trajectory)
        assert trajectory[-1] == cost
