"""Integration tests: end-to-end scenarios asserting the paper's predicted
*shapes* (who wins, by how much, where behavior changes)."""

import pytest

from repro import (
    CacheGeometry,
    Executor,
    GraphBuilder,
    augmented_geometry,
    component_layout_order,
    dag_lower_bound,
    exact_min_bandwidth_partition,
    homogeneous_partition_schedule,
    inhomogeneous_partition_schedule,
    interleaved_schedule,
    interval_dp_partition,
    optimal_pipeline_partition,
    pipeline_dynamic_schedule,
    pipeline_lower_bound,
    refine_partition,
    required_geometry,
    single_appearance_schedule,
    validate_schedule,
)
from repro.graphs.apps import des_rounds, filter_bank, fm_radio
from repro.graphs.topologies import diamond, pipeline, random_pipeline


class TestPipelineStory:
    """The full Section 4 pipeline: partition -> schedule -> measure -> bound."""

    def test_partitioned_beats_naive_by_large_factor(self):
        g = pipeline([32] * 12)  # 384 words of state
        M = 128
        geom = CacheGeometry(size=M, block=8)
        part = optimal_pipeline_partition(g, M, c=1.0)
        aug = required_geometry(part, geom)

        sched = pipeline_dynamic_schedule(g, part, geom, target_outputs=1000)
        partitioned = Executor.measure(
            g, aug, sched, layout_order=component_layout_order(part)
        )
        naive = Executor.measure(g, aug, interleaved_schedule(g, n_iterations=1000))

        assert partitioned.source_fires >= 1000
        win = naive.misses_per_source_fire / partitioned.misses_per_source_fire
        assert win > 10, f"partitioning should win big, got {win:.1f}x"

    def test_measured_respects_lower_bound(self):
        g = random_pipeline(20, 40, seed=42, rate_choices=[(1, 1), (2, 1), (1, 2)])
        M = 96
        geom = CacheGeometry(size=M, block=8)
        part = optimal_pipeline_partition(g, M, c=1.0)
        sched = pipeline_dynamic_schedule(g, part, geom, target_outputs=600)
        res = Executor.measure(
            g, required_geometry(part, geom), sched,
            layout_order=component_layout_order(part),
        )
        lb = pipeline_lower_bound(g, M)
        assert res.misses >= float(lb.misses(res.source_fires, geom))

    def test_competitive_ratio_stays_bounded_as_n_grows(self):
        """Cor 6: the measured/LB ratio must not grow with pipeline length."""
        ratios = []
        for n in (12, 24, 48):
            g = pipeline([24] * n)
            M = 96
            geom = CacheGeometry(size=M, block=8)
            part = optimal_pipeline_partition(g, M, c=3.0)
            sched = pipeline_dynamic_schedule(g, part, geom, target_outputs=400)
            res = Executor.measure(
                g, required_geometry(part, geom), sched,
                layout_order=component_layout_order(part),
            )
            lb = float(pipeline_lower_bound(g, M).misses(res.source_fires, geom))
            ratios.append(res.misses / lb)
        # ratio may fluctuate but must not scale with n (allow 3x headroom)
        assert max(ratios) <= 3 * min(ratios) + 1e-9, ratios


class TestDagStory:
    def test_homogeneous_dag_partition_schedule(self):
        # total state (480) must exceed even the augmented cache, otherwise
        # the naive schedule is legitimately optimal (everything resident)
        g = diamond(branch_len=6, ways=3, state=24)
        M = 64
        geom = CacheGeometry(size=M, block=8)
        part = refine_partition(interval_dp_partition(g, M, c=3.0), M, c=3.0)
        sched = homogeneous_partition_schedule(g, part, geom, n_batches=3)
        validate_schedule(g, sched, require_drained=True)
        res = Executor.measure(
            g, required_geometry(part, geom), sched,
            layout_order=component_layout_order(part),
        )
        lb = dag_lower_bound(g, M, c=3.0)
        assert res.misses >= float(lb.misses(res.source_fires, geom))
        naive = Executor.measure(
            g,
            required_geometry(part, geom),
            interleaved_schedule(g, n_iterations=res.source_fires),
        )
        assert res.misses < naive.misses

    def test_corollary9_alpha_competitive(self):
        """A partition alpha times worse than optimal costs at most O(alpha)
        more: verify the measured-cost ordering matches bandwidth ordering."""
        g = diamond(branch_len=3, ways=3, state=16)
        M = 48
        geom = CacheGeometry(size=M, block=8)
        good = exact_min_bandwidth_partition(g, M, c=3.0)
        worse = interval_dp_partition(g, M, c=1.0)  # tighter bound => more cuts
        assert worse.bandwidth() >= good.bandwidth()
        run = lambda p: Executor.measure(
            g,
            required_geometry(p, geom),
            homogeneous_partition_schedule(g, p, geom, n_batches=3),
            layout_order=component_layout_order(p),
        )
        res_good, res_worse = run(good), run(worse)
        # more bandwidth should not make things cheaper (allow 10% noise)
        assert res_worse.misses >= 0.9 * res_good.misses


class TestApplicationStory:
    @pytest.mark.parametrize("app_ctor", [fm_radio, filter_bank, des_rounds])
    def test_apps_schedule_validate_and_win(self, app_ctor):
        g = app_ctor()
        M = 256
        geom = CacheGeometry(size=M, block=8)
        part = interval_dp_partition(g, M, c=2.0)
        sched = inhomogeneous_partition_schedule(g, part, geom, n_batches=2)
        validate_schedule(g, sched, require_drained=True)
        aug = required_geometry(part, geom)
        res = Executor.measure(g, aug, sched, layout_order=component_layout_order(part))
        from repro.graphs.repetition import repetition_vector

        reps = repetition_vector(g)
        iters = max(1, res.source_fires // reps[g.sources()[0]])
        naive = Executor.measure(g, aug, single_appearance_schedule(g, n_iterations=iters))
        assert (
            res.misses_per_source_fire < naive.misses_per_source_fire
        ), f"{g.name}: partitioned should win"


class TestBuilderToMeasurementPath:
    def test_quickstart_flow(self):
        """The README quickstart, as a test."""
        g = (
            GraphBuilder("qs")
            .source(state=8)
            .chain(6, state=32)
            .sink(state=8)
            .build()
        )
        geom = CacheGeometry(size=128, block=8)
        part = optimal_pipeline_partition(g, geom.size, c=1.0)
        sched = pipeline_dynamic_schedule(g, part, geom, target_outputs=200)
        res = Executor.measure(
            g, required_geometry(part, geom), sched,
            layout_order=component_layout_order(part),
        )
        assert res.sink_fires == 200
        assert res.misses_per_source_fire < 5


class TestAugmentationShape:
    def test_misses_fall_then_plateau(self):
        g = pipeline([32] * 12)
        M = 128
        geom = CacheGeometry(size=M, block=8)
        part = optimal_pipeline_partition(g, M, c=1.0)
        sched = pipeline_dynamic_schedule(g, part, geom, target_outputs=500)
        order = component_layout_order(part)
        misses = [
            Executor.measure(g, augmented_geometry(geom, f), sched, layout_order=order).misses
            for f in (1.0, 2.0, 4.0)
        ]
        assert misses[0] > 2 * misses[1]  # steep initial fall
        assert misses[1] < 2 * misses[2] + 1  # then plateau (2x headroom)
