"""The static-analysis gate, as far as it can run locally.

``repro.lint`` always runs (it is stdlib-only; see ``test_lint.py`` for the
per-rule suites).  mypy and ruff are *not* vendored into the runtime image,
so their gates self-skip when the tools are absent — the CI
``static-analysis`` job installs both and runs them unconditionally, which
keeps the strict-typing promise enforced where it matters without making
the tier-1 suite depend on optional tooling.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def _have(module: str) -> bool:
    return importlib.util.find_spec(module) is not None


def test_lint_module_is_clean_via_subprocess():
    # the real CI invocation, end to end: interpreter boot, __main__, exit 0
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint"],
        cwd=ROOT,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "repro.lint: ok" in proc.stdout


def test_typing_gate_artifacts_exist():
    assert (ROOT / "src" / "repro" / "py.typed").exists()
    mypy_cfg = (ROOT / "mypy.ini").read_text()
    assert "disallow_untyped_defs = True" in mypy_cfg
    ruff_cfg = (ROOT / "ruff.toml").read_text()
    assert "[lint]" in ruff_cfg


@pytest.mark.skipif(not _have("mypy"), reason="mypy not installed (CI-only gate)")
def test_mypy_strict_on_typed_packages():
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "mypy.ini"],
        cwd=ROOT,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.skipif(not _have("ruff"), reason="ruff not installed (CI-only gate)")
def test_ruff_clean():
    proc = subprocess.run(
        [sys.executable, "-m", "ruff", "check", "src"],
        cwd=ROOT,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
