"""Tests for bootstrap statistics (repro.analysis.competitive)."""

import numpy as np
import pytest

from repro.analysis.competitive import (
    bootstrap_ci,
    competitive_summary,
    paired_win_probability,
)


class TestBootstrapCI:
    def test_point_estimate_is_sample_mean(self):
        sample = [1.0, 2.0, 3.0, 4.0]
        point, lo, hi = bootstrap_ci(sample)
        assert point == pytest.approx(2.5)
        assert lo <= point <= hi

    def test_ci_shrinks_with_sample_size(self):
        rng = np.random.default_rng(1)
        small = rng.normal(10, 2, size=10)
        big = rng.normal(10, 2, size=1000)
        _, lo_s, hi_s = bootstrap_ci(small, seed=2)
        _, lo_b, hi_b = bootstrap_ci(big, seed=2)
        assert (hi_b - lo_b) < (hi_s - lo_s)

    def test_ci_covers_true_mean_usually(self):
        rng = np.random.default_rng(3)
        covered = 0
        for trial in range(20):
            sample = rng.normal(5.0, 1.0, size=50)
            _, lo, hi = bootstrap_ci(sample, seed=trial)
            if lo <= 5.0 <= hi:
                covered += 1
        assert covered >= 16  # ~95% nominal; allow slack

    def test_deterministic_given_seed(self):
        s = [1.0, 5.0, 2.0, 8.0]
        assert bootstrap_ci(s, seed=7) == bootstrap_ci(s, seed=7)

    def test_custom_statistic(self):
        s = [1.0, 2.0, 100.0]
        point, lo, hi = bootstrap_ci(s, statistic=lambda m: np.median(m, axis=1))
        assert point == 2.0

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])

    def test_constant_sample_degenerate_ci(self):
        point, lo, hi = bootstrap_ci([4.0] * 10)
        assert point == lo == hi == 4.0


class TestCompetitiveSummary:
    def test_rows_structure(self):
        rows = competitive_summary([2.0, 3.0, 4.0], label="r")
        quantities = [r["quantity"] for r in rows]
        assert quantities == ["r mean", "r median", "r max"]
        for r in rows[:2]:
            assert r["ci_low"] <= r["estimate"] <= r["ci_high"]
        assert rows[2]["estimate"] == 4.0


class TestPairedWinProbability:
    def test_clear_win(self):
        base = [100.0] * 20
        cand = [10.0] * 20
        assert paired_win_probability(base, cand, factor=5.0) == 1.0

    def test_clear_loss(self):
        assert paired_win_probability([1.0] * 20, [10.0] * 20) == 0.0

    def test_borderline_uncertain(self):
        rng = np.random.default_rng(5)
        base = rng.normal(10, 3, size=30)
        cand = rng.normal(10, 3, size=30)
        p = paired_win_probability(base, cand)
        assert 0.05 < p < 0.95

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            paired_win_probability([1.0], [1.0, 2.0])

    def test_real_experiment_wins_significantly(self):
        """Partitioned vs single-appearance over random pipelines: the win
        should be statistically decisive at factor 4."""
        from repro.cache.base import CacheGeometry
        from repro.core.baselines import single_appearance_schedule
        from repro.core.partition_sched import (
            component_layout_order,
            pipeline_dynamic_schedule,
        )
        from repro.core.pipeline import optimal_pipeline_partition
        from repro.core.tuning import required_geometry
        from repro.graphs.topologies import random_pipeline
        from repro.runtime.executor import Executor

        M = 96
        geom = CacheGeometry(size=M, block=8)
        base_costs, cand_costs = [], []
        for seed in range(6):
            g = random_pipeline(16, 50, seed=seed, min_state=20)
            part = optimal_pipeline_partition(g, M, c=2.0)
            sched = pipeline_dynamic_schedule(g, part, geom, target_outputs=200)
            rg = required_geometry(part, geom)
            res = Executor.measure(g, rg, sched, layout_order=component_layout_order(part))
            cand_costs.append(res.misses_per_source_fire)
            base = Executor.measure(g, rg, single_appearance_schedule(g, n_iterations=200))
            base_costs.append(base.misses_per_source_fire)
        assert paired_win_probability(base_costs, cand_costs, factor=4.0) > 0.95
