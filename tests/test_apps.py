"""Tests for the StreamIt-motivated application graphs."""

import pytest

from repro.graphs.apps import (
    ALL_APPS,
    beamformer,
    bitonic_sort,
    des_rounds,
    filter_bank,
    fm_radio,
    mp3_subband,
)
from repro.graphs.repetition import repetition_vector
from repro.graphs.validate import validate_graph


@pytest.mark.parametrize("name,ctor", sorted(ALL_APPS.items()))
def test_every_app_is_valid(name, ctor):
    g = ctor()
    report = validate_graph(g)
    assert report.ok, f"{name}: {report.errors}"


@pytest.mark.parametrize("name,ctor", sorted(ALL_APPS.items()))
def test_every_app_has_schedulable_repetition_vector(name, ctor):
    reps = repetition_vector(ctor())
    assert all(r >= 1 for r in reps.values())


class TestFmRadio:
    def test_band_count_scales(self):
        g = fm_radio(bands=4)
        assert sum(1 for m in g.modules() if m.name.startswith("gain")) == 4

    def test_state_dominated_by_filters(self):
        g = fm_radio(taps=100, bands=2)
        assert g.state("lpf") > g.state("demod")

    def test_single_endpoints(self):
        g = fm_radio()
        assert g.sources() == ["reader"] and g.sinks() == ["writer"]


class TestFilterBank:
    def test_inhomogeneous(self):
        assert not filter_bank().is_homogeneous()

    def test_branch_modules_fire_slower(self):
        branches = 4
        g = filter_bank(branches=branches)
        reps = repetition_vector(g)
        assert reps["proc0"] * branches == reps["src"]

    def test_synthesis_restores_rate(self):
        g = filter_bank(branches=4)
        reps = repetition_vector(g)
        assert reps["synth0"] == reps["src"]


class TestBeamformer:
    def test_cross_product_edges(self):
        g = beamformer(channels=3, beams=2)
        # every beam consumes from every channel's fine filter
        assert len(g.in_channels("beam0")) == 3

    def test_homogeneous(self):
        assert beamformer(channels=2, beams=2).is_homogeneous()


class TestBitonicSort:
    def test_comparator_count(self):
        k = 3  # 8 lanes
        g = bitonic_sort(keys_log2=k)
        n_stages = k * (k + 1) // 2
        comparators = sum(1 for m in g.modules() if m.name.startswith("c"))
        assert comparators == n_stages * (1 << k) // 2

    def test_homogeneous(self):
        assert bitonic_sort(keys_log2=2).is_homogeneous()


class TestDesRounds:
    def test_is_pipeline(self):
        assert des_rounds(rounds=4).is_pipeline()

    def test_sbox_state_dominates(self):
        g = des_rounds(rounds=2, sbox_state=100)
        assert g.state("sbox0") > g.state("perm0")


class TestMp3:
    def test_subband_split(self):
        g = mp3_subband(subbands=6)
        assert len(g.out_channels("dequant")) == 6

    def test_inhomogeneous_unpack(self):
        g = mp3_subband(subbands=4)
        ch = g.channels_between("unpack", "dequant")[0]
        assert ch.out_rate == 4
