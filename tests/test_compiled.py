"""Tests for the trace-compilation engine (repro.runtime.compiled).

The load-bearing property is *exact* equivalence with the stepwise
executor: same block trace, same misses at every geometry, same phase
attribution.  The oracle suite exercises the seed graphs the acceptance
criteria name (pipeline, fm_radio) plus the circular-buffer wrap-around
case that makes window compilation nontrivial.
"""

import numpy as np
import pytest

from repro.cache.base import CacheGeometry
from repro.core.baselines import interleaved_schedule, single_appearance_schedule
from repro.core.partition_sched import (
    component_layout_order,
    inhomogeneous_partition_schedule,
    pipeline_dynamic_schedule,
)
from repro.core.dagpart import interval_dp_partition
from repro.core.pipeline import optimal_pipeline_partition
from repro.core.tuning import choose_batch
from repro.errors import CacheConfigError, ScheduleError
from repro.graphs.apps import fm_radio
from repro.graphs.sdf import StreamGraph
from repro.graphs.topologies import pipeline, random_pipeline
from repro.mem.layout import Region
from repro.runtime.buffers import ChannelBuffer
from repro.runtime.compiled import (
    TraceCompiler,
    compile_trace,
    measure_compiled,
    simulate_trace,
)
from repro.runtime.executor import Executor
from repro.runtime.looped import compress_schedule
from repro.runtime.schedule import Schedule
from repro.testing.oracles import assert_trace_equivalent


B = 8


class TestOracleSuite:
    """simulate_trace / miss_curve vs step-by-step LRUCache across geometries."""

    def test_pipeline_interleaved(self):
        g = pipeline([16, 8, 24])
        assert_trace_equivalent(g, interleaved_schedule(g, n_iterations=40), B, [32, 64, 128, 256])

    def test_pipeline_partitioned_dynamic(self):
        g = pipeline([32] * 8)
        M = 96
        geom = CacheGeometry(size=M, block=B)
        part = optimal_pipeline_partition(g, M, c=1.0)
        sched = pipeline_dynamic_schedule(g, part, geom, target_outputs=120)
        assert_trace_equivalent(
            g, sched, B, [64, 128, 256], layout_order=component_layout_order(part)
        )

    def test_fm_radio_partitioned(self):
        g = fm_radio(taps=24, bands=3)
        M = 128
        geom = CacheGeometry(size=M, block=B)
        part = interval_dp_partition(g, M, c=2.0)
        plan = choose_batch(g, M, cross_cids=[c.cid for c in part.cross_channels()])
        sched = inhomogeneous_partition_schedule(g, part, geom, n_batches=2, plan=plan)
        trace = assert_trace_equivalent(
            g, sched, B, [128, 256, 512], layout_order=component_layout_order(part)
        )
        assert trace.source_fires > 0 and trace.sink_fires > 0

    def test_fm_radio_single_appearance(self):
        g = fm_radio(taps=16, bands=3)
        assert_trace_equivalent(
            g, single_appearance_schedule(g, n_iterations=8), B, [64, 192, 384]
        )

    def test_multirate_pipeline(self):
        g = random_pipeline(8, 24, seed=5, rate_choices=[(1, 1), (2, 1), (1, 2), (3, 2)])
        assert_trace_equivalent(
            g, single_appearance_schedule(g, n_iterations=10), B, [32, 96, 256]
        )

    def test_count_external_disabled(self):
        g = pipeline([16, 16])
        assert_trace_equivalent(
            g, interleaved_schedule(g, n_iterations=20), B, [64], count_external=False
        )

    def test_unaligned_block_size(self):
        # B=4 with odd state sizes exercises partial-block regions
        g = pipeline([7, 13, 5])
        assert_trace_equivalent(g, interleaved_schedule(g, n_iterations=15), 4, [16, 32, 64])


class TestWrapAround:
    """Circular-buffer windows that wrap the region end, feeding the compiler."""

    def _wrap_graph(self):
        g = StreamGraph("wrap")
        g.add_module("m0", state=8)
        g.add_module("m1", state=8)
        g.add_channel("m0", "m1", out_rate=3, in_rate=3)
        return g

    def test_channelbuffer_wrap_ranges(self):
        # capacity 7, rate 3: the third push starts at slot 6 and wraps
        buf = ChannelBuffer(0, Region(0, 7))
        assert buf.push_ranges(3) == [(0, 3)]
        assert buf.push_ranges(3) == [(3, 3)]
        assert buf.pop_ranges(3) == [(0, 3)]
        ranges = buf.push_ranges(3)
        assert ranges == [(6, 1), (0, 2)]  # two ranges: the window wrapped
        assert buf.pop_ranges(3) == [(3, 3)]
        assert buf.pop_ranges(3) == [(6, 1), (0, 2)]

    def test_compiler_matches_executor_through_wraps(self):
        g = self._wrap_graph()
        # head walks 0,3,6,2,5,1,4 mod 7 — every wrap offset is exercised
        firings = ["m0", "m0", "m1"] + ["m0", "m1"] * 20
        sched = Schedule(firings, capacities={0: 7}, label="wrap")
        trace = assert_trace_equivalent(g, sched, 4, [8, 16, 32])
        assert trace.firings == len(firings)

    def test_wrap_window_blocks_are_two_runs(self):
        g = self._wrap_graph()
        sched = Schedule(["m0", "m0", "m1", "m0"], capacities={0: 7}, label="wrap")
        compiler = TraceCompiler(g, 4, capacities={0: 7})
        trace = compiler.compile(sched)
        # the final push wraps: its window touches the buffer's last block
        # then its first block again (non-monotone block ids within a firing)
        buf_region = compiler.layout.buffer_region(0)
        first_block = buf_region.start // 4
        last_block = (buf_region.end - 1) // 4
        blocks = trace.blocks.tolist()
        wrap_pos = [
            i for i in range(1, len(blocks)) if blocks[i - 1] == last_block and blocks[i] == first_block
        ]
        assert wrap_pos, "expected a wrapped window touching last then first block"


class TestCompiledTrace:
    def test_trace_metadata(self):
        g = pipeline([16, 8])
        sched = interleaved_schedule(g, n_iterations=5)
        trace = compile_trace(g, sched, B)
        assert trace.accesses == len(trace) == trace.blocks.shape[0]
        assert trace.phases is not None and trace.phases.shape == trace.blocks.shape
        assert trace.firings == 10
        assert trace.fire_counts == {"m0": 5, "m1": 5}
        assert trace.source_fires == 5 and trace.sink_fires == 5
        assert trace.distinct_blocks() <= trace.accesses

    def test_looped_schedule_matches_flat(self):
        g = pipeline([16, 8, 8])
        flat = interleaved_schedule(g, n_iterations=30)
        looped = compress_schedule(flat)
        a = compile_trace(g, flat, B)
        b = compile_trace(g, looped, B)
        assert (a.blocks == b.blocks).all()
        assert a.fire_counts == b.fire_counts

    def test_infeasible_schedule_raises(self):
        g = pipeline([8, 8])
        with pytest.raises(ScheduleError):
            compile_trace(g, Schedule(["m1"]), B)

    def test_overflow_raises(self):
        g = pipeline([8, 8])
        with pytest.raises(ScheduleError):
            compile_trace(g, Schedule(["m0"] * 100, capacities={0: 2}), B)

    def test_block_mismatch_rejected(self):
        g = pipeline([8, 8])
        trace = compile_trace(g, interleaved_schedule(g, n_iterations=2), B)
        with pytest.raises(CacheConfigError):
            simulate_trace(trace, [CacheGeometry(size=32, block=4)])

    def test_measure_compiled_is_drop_in(self):
        g = random_pipeline(6, 20, seed=1, rate_choices=[(1, 1), (2, 1)])
        sched = single_appearance_schedule(g, n_iterations=12)
        geom = CacheGeometry(size=64, block=B)
        fast = measure_compiled(g, geom, sched)
        ref = Executor.measure(g, geom, sched)
        assert fast.misses == ref.misses
        assert fast.accesses == ref.accesses
        assert fast.phase_misses == ref.phase_misses
        assert fast.misses_per_source_fire == ref.misses_per_source_fire

    def test_single_pass_is_monotone_in_size(self):
        g = pipeline([32] * 6)
        sched = interleaved_schedule(g, n_iterations=30)
        trace = compile_trace(g, sched, B)
        sizes = [8, 16, 32, 64, 128, 256, 512]
        misses = [r.misses for r in simulate_trace(trace, [CacheGeometry(size=s, block=B) for s in sizes])]
        assert misses == sorted(misses, reverse=True)  # LRU inclusion property

    def test_recorded_trace_interop(self):
        from repro.cache.lru import LRUCache
        from repro.mem.trace import TraceRecorder, TracingCache

        g = pipeline([16, 8])
        sched = interleaved_schedule(g, n_iterations=10)
        geom = CacheGeometry(size=512, block=B)
        rec = TraceRecorder()
        Executor.measure(g, geom, sched, cache=TracingCache(LRUCache(geom), rec))
        observed = rec.to_compiled(B)
        compiled = compile_trace(g, sched, B)
        assert (observed.blocks == compiled.blocks).all()
        small = CacheGeometry(size=32, block=B)
        assert (
            simulate_trace(observed, [small])[0].misses
            == simulate_trace(compiled, [small])[0].misses
        )
