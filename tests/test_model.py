"""Tests for the analytic miss model (Lemma 4 / Lemma 8 algebra)."""

import pytest

from repro.analysis.model import predict_partition_cost
from repro.cache.base import CacheGeometry
from repro.core.dagpart import interval_dp_partition
from repro.core.partition import whole_graph_partition
from repro.core.partition_sched import (
    component_layout_order,
    inhomogeneous_partition_schedule,
)
from repro.core.tuning import choose_batch, required_geometry
from repro.graphs.topologies import pipeline, random_pipeline
from repro.runtime.executor import Executor


class TestPredictedCost:
    def test_zero_cross_edges_no_cross_cost(self, homog_pipeline, geom):
        part = whole_graph_partition(homog_pipeline)
        pred = predict_partition_cost(part, geom, source_fires=100, batch_source_fires=100)
        assert pred.cross_misses == 0
        assert pred.state_misses > 0

    def test_state_cost_scales_with_batches(self, homog_pipeline, geom):
        part = interval_dp_partition(homog_pipeline, geom.size, c=1.0)
        one = predict_partition_cost(part, geom, source_fires=128, batch_source_fires=128)
        four = predict_partition_cost(part, geom, source_fires=512, batch_source_fires=128)
        assert four.state_misses == pytest.approx(4 * one.state_misses)

    def test_cross_cost_scales_with_inputs(self, homog_pipeline, geom):
        part = interval_dp_partition(homog_pipeline, geom.size, c=1.0)
        a = predict_partition_cost(part, geom, source_fires=100, batch_source_fires=100)
        b = predict_partition_cost(part, geom, source_fires=200, batch_source_fires=100)
        assert b.cross_misses == pytest.approx(2 * a.cross_misses)

    def test_stream_disabled(self, homog_pipeline, geom):
        part = whole_graph_partition(homog_pipeline)
        pred = predict_partition_cost(
            part, geom, source_fires=100, batch_source_fires=100, count_external=False
        )
        assert pred.stream_misses == 0

    def test_summary_totals(self, homog_pipeline, geom):
        part = whole_graph_partition(homog_pipeline)
        pred = predict_partition_cost(part, geom, source_fires=100, batch_source_fires=100)
        assert pred.total == pred.state_misses + pred.cross_misses + pred.stream_misses
        assert "predicted" in pred.summary()


class TestModelTracksSimulation:
    @pytest.mark.parametrize("seed", [11, 12])
    def test_within_factor_two(self, seed):
        g = random_pipeline(16, 40, seed=seed, rate_choices=[(1, 1), (2, 1), (1, 2)])
        M = 128
        geom = CacheGeometry(size=M, block=8)
        part = interval_dp_partition(g, M, c=1.0)
        plan = choose_batch(g, M, cross_cids=[c.cid for c in part.cross_channels()])
        sched = inhomogeneous_partition_schedule(g, part, geom, n_batches=4, plan=plan)
        res = Executor.measure(
            g, required_geometry(part, geom), sched,
            layout_order=component_layout_order(part),
        )
        pred = predict_partition_cost(
            part, geom, source_fires=res.source_fires, batch_source_fires=plan.source_fires
        )
        ratio = res.misses / pred.total
        assert 0.5 <= ratio <= 2.0, f"model off by {ratio}"
