"""Tests for the direct-mapped and two-level cache extensions."""

import pytest

from repro.cache.base import CacheGeometry
from repro.cache.direct import DirectMappedCache
from repro.cache.hierarchy import TwoLevelCache
from repro.cache.lru import LRUCache
from repro.errors import CacheConfigError


class TestDirectMapped:
    def test_conflict_misses(self):
        # 4 frames: blocks 0 and 4 collide in frame 0
        c = DirectMappedCache(CacheGeometry(size=32, block=8))
        c.access_block(0)
        c.access_block(4)
        c.access_block(0)
        assert c.stats.misses == 3
        assert c.stats.evictions == 2

    def test_disjoint_frames_no_conflict(self):
        c = DirectMappedCache(CacheGeometry(size=32, block=8))
        for b in (0, 1, 2, 3):
            c.access_block(b)
        for b in (0, 1, 2, 3):
            c.access_block(b)
        assert c.stats.misses == 4

    def test_flush(self):
        c = DirectMappedCache(CacheGeometry(size=32, block=8))
        c.access_block(0)
        c.flush()
        assert c.resident_blocks() == 0

    def test_more_conflicts_than_lru_on_strided_access(self):
        geo = CacheGeometry(size=32, block=8)
        dm, lru = DirectMappedCache(geo), LRUCache(geo)
        trace = [0, 4, 0, 4, 1, 2]  # 0/4 conflict in DM; fit together in LRU
        for b in trace:
            dm.access_block(b)
            lru.access_block(b)
        assert dm.stats.misses > lru.stats.misses


class TestTwoLevel:
    def test_l2_must_be_larger(self):
        small = CacheGeometry(size=16, block=8)
        big = CacheGeometry(size=64, block=8)
        with pytest.raises(CacheConfigError):
            TwoLevelCache(big, small)

    def test_l1_hit_no_l2_traffic(self):
        c = TwoLevelCache(CacheGeometry(16, 8), CacheGeometry(64, 8))
        c.access_range(0, 8)
        l2_before = c.l2.stats.accesses
        c.access_range(0, 8)  # L1 hit
        assert c.l2.stats.accesses == l2_before

    def test_l1_evict_l2_hit_not_memory_miss(self):
        c = TwoLevelCache(CacheGeometry(16, 8), CacheGeometry(64, 8))
        # touch blocks 0..3: L1 (2 frames) evicts, L2 (8 frames) keeps all
        for start in (0, 8, 16, 24):
            c.access_range(start, 8)
        misses_cold = c.stats.misses
        for start in (0, 8, 16, 24):
            c.access_range(start, 8)
        assert c.stats.misses == misses_cold  # round 2 all L2 hits

    def test_total_misses_bounded_by_l2(self):
        c = TwoLevelCache(CacheGeometry(16, 8), CacheGeometry(64, 8))
        import numpy as np

        rng = np.random.default_rng(3)
        for addr in rng.integers(0, 256, size=500).tolist():
            c.access_range(int(addr), 4)
        assert c.stats.misses == c.l2.stats.misses

    def test_flush_and_resident(self):
        c = TwoLevelCache(CacheGeometry(16, 8), CacheGeometry(64, 8))
        c.access_range(0, 32)
        assert c.resident_blocks() > 0
        c.flush()
        assert c.resident_blocks() == 0
