"""Tests for the direct-mapped and two-level cache extensions."""

import pytest

from repro.cache.base import CacheGeometry
from repro.cache.direct import DirectMappedCache
from repro.cache.hierarchy import TwoLevelCache
from repro.cache.lru import LRUCache
from repro.errors import CacheConfigError


class TestDirectMapped:
    def test_conflict_misses(self):
        # 4 frames: blocks 0 and 4 collide in frame 0
        c = DirectMappedCache(CacheGeometry(size=32, block=8))
        c.access_block(0)
        c.access_block(4)
        c.access_block(0)
        assert c.stats.misses == 3
        assert c.stats.evictions == 2

    def test_disjoint_frames_no_conflict(self):
        c = DirectMappedCache(CacheGeometry(size=32, block=8))
        for b in (0, 1, 2, 3):
            c.access_block(b)
        for b in (0, 1, 2, 3):
            c.access_block(b)
        assert c.stats.misses == 4

    def test_flush(self):
        c = DirectMappedCache(CacheGeometry(size=32, block=8))
        c.access_block(0)
        c.flush()
        assert c.resident_blocks() == 0

    def test_more_conflicts_than_lru_on_strided_access(self):
        geo = CacheGeometry(size=32, block=8)
        dm, lru = DirectMappedCache(geo), LRUCache(geo)
        trace = [0, 4, 0, 4, 1, 2]  # 0/4 conflict in DM; fit together in LRU
        for b in trace:
            dm.access_block(b)
            lru.access_block(b)
        assert dm.stats.misses > lru.stats.misses


class TestTwoLevel:
    def test_l2_must_be_larger(self):
        small = CacheGeometry(size=16, block=8)
        big = CacheGeometry(size=64, block=8)
        with pytest.raises(CacheConfigError):
            TwoLevelCache(big, small)

    def test_l1_block_must_divide_l2_block(self):
        # L1 blocks larger than (or not tiling) L2 blocks would make the two
        # entry points disagree on which L2 block an L1 miss touches
        with pytest.raises(CacheConfigError):
            TwoLevelCache(CacheGeometry(size=16, block=8), CacheGeometry(size=64, block=4))
        with pytest.raises(CacheConfigError):
            TwoLevelCache(CacheGeometry(size=9, block=3), CacheGeometry(size=64, block=8))

    def test_l1_hit_no_l2_traffic(self):
        c = TwoLevelCache(CacheGeometry(16, 8), CacheGeometry(64, 8))
        c.access_range(0, 8)
        l2_before = c.l2.stats.accesses
        c.access_range(0, 8)  # L1 hit
        assert c.l2.stats.accesses == l2_before

    def test_l1_evict_l2_hit_not_memory_miss(self):
        c = TwoLevelCache(CacheGeometry(16, 8), CacheGeometry(64, 8))
        # touch blocks 0..3: L1 (2 frames) evicts, L2 (8 frames) keeps all
        for start in (0, 8, 16, 24):
            c.access_range(start, 8)
        misses_cold = c.stats.misses
        for start in (0, 8, 16, 24):
            c.access_range(start, 8)
        assert c.stats.misses == misses_cold  # round 2 all L2 hits

    def test_total_misses_bounded_by_l2(self):
        c = TwoLevelCache(CacheGeometry(16, 8), CacheGeometry(64, 8))
        import numpy as np

        rng = np.random.default_rng(3)
        for addr in rng.integers(0, 256, size=500).tolist():
            c.access_range(int(addr), 4)
        assert c.stats.misses == c.l2.stats.misses

    def test_flush_and_resident(self):
        c = TwoLevelCache(CacheGeometry(16, 8), CacheGeometry(64, 8))
        c.access_range(0, 32)
        assert c.resident_blocks() > 0
        c.flush()
        assert c.resident_blocks() == 0


class TestTwoLevelMixedBlockSizes:
    """access_block must agree with access_range when L1 blocks < L2 blocks."""

    def _mk(self):
        # L1: 4-word blocks (4 frames); L2: 16-word blocks (4 frames)
        return TwoLevelCache(CacheGeometry(16, 4), CacheGeometry(64, 16))

    def test_access_block_touches_all_spanned_l1_blocks(self):
        c = self._mk()
        c.access_block(0)  # L2 block 0 = words 0..16 = L1 blocks 0..3
        assert c.l1.resident_blocks() == 4
        assert c.l1.stats.accesses == 4
        # one L2-block consult fills all four L1 lines: a single transfer,
        # not four (the double-count this accounting replaced)
        assert c.l2.stats.accesses == 1
        assert c.stats.accesses == 1
        assert c.stats.misses == 1

    def test_l2_hit_filling_multiple_l1_lines_counts_once(self):
        # regression for the stats double-count: an L2 hit that fills
        # several L1 lines used to record one top-level L2-hit access per
        # line, inflating accesses (and diluting the miss rate) with
        # accounting noise for a single transfer
        c = self._mk()
        c.access_block(0)          # cold: 1 consult, 1 memory miss
        c.l1.flush()               # evict L1 only; L2 block 0 still resident
        assert c.access_block(0) is False  # all 4 L1 lines refill from L2
        assert c.l2.stats.accesses == 2    # one consult per access_block call
        assert c.stats.accesses == 2
        assert c.stats.misses == 1         # the refill moved no memory blocks
        assert c.stats.hits == 1

    def test_entry_points_agree(self):
        # identical access sequences through the two entry points must give
        # identical stats at every level
        seq = [0, 1, 0, 2, 3, 1, 0, 3, 2, 2]
        a, b = self._mk(), self._mk()
        for blk in seq:
            a.access_block(blk)
            b.access_range(blk * 16, 16)
        assert a.stats.misses == b.stats.misses
        assert a.stats.accesses == b.stats.accesses
        assert a.l1.stats.misses == b.l1.stats.misses
        assert a.l2.stats.misses == b.l2.stats.misses

    def test_l1_hit_after_block_access(self):
        c = self._mk()
        c.access_block(0)
        before = c.l2.stats.accesses
        c.access_range(0, 16)  # all four L1 blocks now resident
        assert c.l2.stats.accesses == before
        assert c.stats.misses == c.l2.stats.misses

    def test_word_access_fills_one_l1_line(self):
        c = self._mk()
        assert c.access(5) is True  # cold
        # one word -> one L1 line plus the containing L2 block, matching
        # access_range(5, 1); the whole-L2-block fill is access_block's job
        assert c.l2.contains_block(0)
        assert c.l1.resident_blocks() == 1
        d = self._mk()
        d.access_range(5, 1)
        assert d.stats.accesses == 1
        assert d.l1.stats.misses == c.l1.stats.misses
        assert d.l2.stats.misses == c.l2.stats.misses
