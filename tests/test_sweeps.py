"""Tests for the robustness sweep drivers (E12/E13) and the layout /
hierarchy ablations (A6/A8/A9)."""

import pytest

from repro.analysis.sweeps import (
    ablation_a8_inclusion,
    ablation_a9_cross_geometry,
    experiment_e12_cache_models,
    experiment_e13_seed_distribution,
)


class TestE12:
    def test_rows_and_shape(self):
        rows = experiment_e12_cache_models()
        assert len(rows) == 4
        models = {r["cache_model"] for r in rows}
        assert any("LRU" in m for m in models)
        assert any("4-way" in m for m in models)
        assert any("direct" in m for m in models)
        assert any("two-level" in m for m in models)
        for r in rows:
            assert r["win"] > 1.0

    def test_direct_mapped_adds_conflicts(self):
        rows = experiment_e12_cache_models()
        by = {r["cache_model"]: r for r in rows}
        lru = next(v for k, v in by.items() if "LRU" in k)
        dm = next(v for k, v in by.items() if "direct" in k)
        assert dm["partitioned_mpi"] >= lru["partitioned_mpi"]


class TestE13:
    def test_statistics_structure(self):
        rows = experiment_e13_seed_distribution(n_seeds=4, n_outputs=200)
        stats = {r["statistic"]: r for r in rows}
        assert set(stats) == {"seeds", "mean", "median", "max", "min"}
        assert stats["seeds"]["ratio_to_lb"] == 4
        assert stats["min"]["ratio_to_lb"] <= stats["median"]["ratio_to_lb"]
        assert stats["median"]["ratio_to_lb"] <= stats["max"]["ratio_to_lb"]

    def test_every_seed_beats_baseline(self):
        rows = experiment_e13_seed_distribution(n_seeds=4, n_outputs=200)
        stats = {r["statistic"]: r for r in rows}
        assert stats["min"]["win_vs_single_app"] > 1.0

    def test_workers_do_not_change_rows(self):
        serial = experiment_e13_seed_distribution(n_seeds=4, n_outputs=200)
        threaded = experiment_e13_seed_distribution(n_seeds=4, n_outputs=200, workers=4)
        assert serial == threaded


class TestA6Layout:
    def test_lru_layout_invariant(self):
        from repro.analysis.sweeps import ablation_a6_layout_order

        rows = ablation_a6_layout_order()
        lru_counts = {r["lru_misses"] for r in rows}
        assert len(lru_counts) == 1  # fully associative: layout cannot matter

    def test_direct_mapped_layout_sensitive(self):
        from repro.analysis.sweeps import ablation_a6_layout_order

        rows = ablation_a6_layout_order()
        dm_counts = {r["direct_mapped_misses"] for r in rows}
        assert len(dm_counts) >= 2  # conflicts depend on placement
        for r in rows:
            assert r["direct_mapped_misses"] >= r["lru_misses"]


class TestA9CrossGeometry:
    """A9 acceptance: the multi-geometry-optimized layout is never worse
    than the seed at *any* target geometry (no A7-style cross-geometry
    regression)."""

    @pytest.fixture(scope="class")
    def rows(self):
        return ablation_a9_cross_geometry(inputs=128, budget=150, gap_budget=4)

    def test_rows_and_shape(self, rows):
        assert [r["placement"] for r in rows] == [
            "seed (topo)", "swap@direct", "swap@multi", "xor-index",
        ]
        cols = [k for k in rows[0] if k.endswith("w")]
        assert len(cols) == 3  # direct, 2way, 4way — sizes in the labels
        for r in rows:
            assert r["worst_vs_seed"] >= 0
            assert r["gap_blocks"] >= 0

    def test_multi_never_worse_at_every_target(self, rows):
        by = {r["placement"]: r for r in rows}
        cols = [k for k in rows[0] if k.endswith("w")]
        for col in cols:
            assert by["swap@multi"][col] <= by["seed (topo)"][col], col
        assert by["swap@multi"]["worst_vs_seed"] <= 1.0

    def test_multi_beats_seed_overall(self, rows):
        by = {r["placement"]: r for r in rows}
        cols = [k for k in rows[0] if k.endswith("w")]
        total_seed = sum(by["seed (topo)"][c] for c in cols)
        total_multi = sum(by["swap@multi"][c] for c in cols)
        assert total_multi < total_seed


class TestA8Inclusion:
    def test_rows_and_shape(self):
        rows = ablation_a8_inclusion()
        assert len(rows) == 6  # 3 L1 sizes x {fully-assoc, direct-mapped}
        for r in rows:
            assert set(r) == {
                "l1", "l1_misses", "mem_misses", "filter_rate", "inclusion_ratio",
            }
            assert 0 <= r["mem_misses"] <= r["l1_misses"]
            assert 0.0 <= r["filter_rate"] <= 1.0

    def test_bigger_l1_filters_more(self):
        rows = ablation_a8_inclusion()
        fa = [r for r in rows if r["l1"].endswith("/full")]
        l1_misses = [r["l1_misses"] for r in fa]
        assert l1_misses == sorted(l1_misses, reverse=True)

    def test_hierarchy_composes(self):
        # the paper's multi-level claim: L2 traffic stays pinned near the
        # single-level floor no matter which L1 sits in front of it
        rows = ablation_a8_inclusion()
        for r in rows:
            assert r["inclusion_ratio"] == pytest.approx(1.0, rel=0.15), r["l1"]
