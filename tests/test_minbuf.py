"""Tests for minimum buffer sizes, with the simulation oracle."""

import pytest

from repro.errors import GraphError
from repro.graphs.minbuf import min_buffer, min_buffers, verify_min_buffer
from repro.graphs.sdf import Channel, StreamGraph
from repro.graphs.topologies import pipeline


def ch(out_rate: int, in_rate: int) -> Channel:
    return Channel(cid=0, src="a", dst="b", out_rate=out_rate, in_rate=in_rate)


class TestMinBuffer:
    def test_homogeneous_paper_convention(self):
        assert min_buffer(ch(1, 1)) == 2

    def test_homogeneous_tight_convention(self):
        assert min_buffer(ch(1, 1), convention="tight") == 1

    def test_coprime_rates(self):
        assert min_buffer(ch(3, 2), convention="tight") == 4  # 3+2-1
        assert min_buffer(ch(3, 2)) == 5

    def test_equal_rates(self):
        assert min_buffer(ch(4, 4), convention="tight") == 4  # 4+4-4

    def test_unknown_convention_rejected(self):
        with pytest.raises(GraphError):
            min_buffer(ch(1, 1), convention="bogus")  # type: ignore[arg-type]

    def test_min_buffers_covers_all_channels(self, mixed_pipeline):
        bufs = min_buffers(mixed_pipeline)
        assert set(bufs) == {c.cid for c in mixed_pipeline.channels()}
        for c in mixed_pipeline.channels():
            assert bufs[c.cid] == c.out_rate + c.in_rate


class TestVerifyOracle:
    @pytest.mark.parametrize("p,c", [(1, 1), (2, 3), (3, 2), (4, 6), (5, 7), (8, 8)])
    def test_tight_bound_is_feasible(self, p, c):
        assert verify_min_buffer(ch(p, c), min_buffer(ch(p, c), convention="tight"))

    @pytest.mark.parametrize("p,c", [(2, 3), (3, 2), (4, 6), (5, 7), (8, 8)])
    def test_below_tight_bound_deadlocks(self, p, c):
        tight = min_buffer(ch(p, c), convention="tight")
        assert not verify_min_buffer(ch(p, c), tight - 1)

    def test_paper_convention_always_feasible(self):
        for p in range(1, 7):
            for c in range(1, 7):
                assert verify_min_buffer(ch(p, c), min_buffer(ch(p, c)))

    def test_multiple_iterations(self):
        assert verify_min_buffer(ch(3, 5), min_buffer(ch(3, 5), convention="tight"), iterations=4)
