"""Tests for schedule representation and token-level validation."""

import pytest

from repro.errors import BufferOverflowError, ScheduleError
from repro.graphs.topologies import pipeline
from repro.runtime.schedule import Schedule, validate_schedule


class TestSchedule:
    def test_fire_counts(self):
        s = Schedule(["a", "b", "a", "a"])
        assert s.fire_counts() == {"a": 3, "b": 1}
        assert s.count("a") == 3
        assert len(s) == 4
        assert list(s) == ["a", "b", "a", "a"]

    def test_extended(self):
        s = Schedule(["a"], capacities={0: 5}, label="x")
        s2 = s.extended(["b", "c"])
        assert s2.firings == ["a", "b", "c"]
        assert s2.capacities == {0: 5}
        assert s.firings == ["a"]  # original untouched

    def test_summary(self):
        s = Schedule(["a", "a", "b"], label="demo")
        assert "demo" in s.summary() and "a" in s.summary()


class TestValidateSchedule:
    def test_valid_homogeneous_chain(self):
        g = pipeline([1, 1, 1])
        s = Schedule(["m0", "m1", "m2"] * 3)
        final = validate_schedule(g, s)
        assert all(t == 0 for t in final.values())

    def test_firing_without_input_rejected(self):
        g = pipeline([1, 1])
        with pytest.raises(ScheduleError):
            validate_schedule(g, Schedule(["m1"]))

    def test_position_reported_in_error(self):
        g = pipeline([1, 1])
        with pytest.raises(ScheduleError, match="#2"):
            validate_schedule(g, Schedule(["m0", "m1", "m1"]))

    def test_capacity_overflow_rejected(self):
        g = pipeline([1, 1])
        s = Schedule(["m0", "m0", "m0"], capacities={0: 2})
        with pytest.raises(BufferOverflowError):
            validate_schedule(g, s)

    def test_unbounded_when_capacity_missing(self):
        g = pipeline([1, 1])
        s = Schedule(["m0"] * 100, capacities={})
        final = validate_schedule(g, s)
        assert final[0] == 100

    def test_rates_respected(self):
        g = pipeline([1, 1], rates=[(2, 3)])
        # m0 produces 2/firing; m1 needs 3: two m0 firings then one m1 works
        validate_schedule(g, Schedule(["m0", "m0", "m1"]))
        with pytest.raises(ScheduleError):
            validate_schedule(g, Schedule(["m0", "m1"]))

    def test_initial_tokens(self):
        g = pipeline([1, 1])
        final = validate_schedule(g, Schedule(["m1"]), initial_tokens={0: 1})
        assert final[0] == 0

    def test_negative_initial_tokens_rejected(self):
        g = pipeline([1, 1])
        with pytest.raises(ScheduleError):
            validate_schedule(g, Schedule([]), initial_tokens={0: -1})

    def test_require_drained(self):
        g = pipeline([1, 1])
        validate_schedule(g, Schedule(["m0", "m1"]), require_drained=True)
        with pytest.raises(ScheduleError):
            validate_schedule(g, Schedule(["m0"]), require_drained=True)

    def test_require_drained_respects_initial(self):
        g = pipeline([1, 1])
        validate_schedule(
            g,
            Schedule(["m1", "m0"]),
            initial_tokens={0: 1},
            require_drained=True,
        )

    def test_returns_final_occupancy(self):
        g = pipeline([1, 1], rates=[(4, 1)])
        final = validate_schedule(g, Schedule(["m0", "m1"]))
        assert final[0] == 3
