"""Acceptance tests for the out-of-core streaming engine
(:mod:`repro.runtime.streaming`).

The contract is *bit-identity*: chunked compilation + carried replay must
answer exactly what the monolithic engine answers, for every registered
policy, both index schemes, and **any** chunk partition — including
``chunk_words=1`` (maximal carry traffic), ``chunk_words=len(trace)`` (one
chunk, the degenerate monolithic case), and prime sizes that straddle every
frame/loop boundary.  The differential grids run through the shared harness
(:func:`~repro.testing.harness.differential_grid` with its ``chunk_sizes=``
axis), so the chain *stepwise oracle == monolithic kernel == streaming
kernel at every chunking* is pinned per access, not per total.

Also pinned here: segment-granular recompilation after cache corruption
(one truncated ``.npz`` recompiles alone — intact segments keep their bytes
and mtimes), the ``swap_refine`` cost trajectory under chunked candidate
scoring, the process chunk fan-out, and the ``chunk_words=`` threading
through every front door (``compile_trace`` / ``simulate_trace`` /
``measure_compiled`` / ``run_batch`` / ``configure``).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cache.base import CacheGeometry
from repro.cache.hierarchy import TwoLevelGeometry
from repro.core.baselines import interleaved_schedule, single_appearance_schedule
from repro.errors import CacheConfigError
from repro.graphs.apps import fm_radio
from repro.graphs.topologies import pipeline
from repro.mem.placement import build_instance, placement_cost, swap_refine
from repro.runtime.backend import ServiceQuery, configure, run_batch
from repro.runtime.compiled import (
    compile_trace,
    measure_compiled,
    simulate_trace,
)
from repro.runtime.replay import replay_miss_masks
from repro.runtime.streaming import (
    ArrayChunkSource,
    ChunkedTrace,
    compile_trace_chunked,
    recency_carry,
    simulate_stream,
    stream_masks,
    stream_stats,
)
from repro.runtime.trace_cache import TraceCache
from repro.testing.harness import differential_grid, replay_kernel, stepwise_oracle
from repro.testing.strategies import chunking_strategy

B = 8

#: chunk sizes every differential grid sweeps: 1 (maximal carry traffic),
#: small primes straddling frame and loop boundaries, and the trace length
#: itself (one chunk — the degenerate monolithic case) appended per test.
PRIME_SIZES = (1, 7, 13, 31)


def _trace_blocks(n=600, spread=48, seed=3):
    rng = np.random.default_rng(seed)
    return (rng.zipf(1.3, size=n) % spread).astype(np.int64)


def _fa_geometries():
    return [CacheGeometry(size=c * B, block=B) for c in (1, 2, 3, 8, 16)]


def _sa_geometries():
    return [
        CacheGeometry(size=sets * ways * B, block=B, ways=ways, index_scheme=scheme)
        for ways in (1, 2, 4)
        for sets in (2, 8)
        for scheme in ("mod", "xor")
    ]


@pytest.fixture(scope="module")
def workload():
    g = fm_radio()
    sched = interleaved_schedule(g, n_iterations=2)
    trace = compile_trace(g, sched, B)
    return g, sched, trace


# ----------------------------------------------------------------------
# differential grids: streaming kernel vs stepwise oracle at every chunking
# ----------------------------------------------------------------------
class TestStreamingDifferential:
    def test_lru_chunked_matches_stepwise_at_every_size(self):
        trace = _trace_blocks()
        geoms = _fa_geometries() + _sa_geometries()
        compared = differential_grid(
            replay_kernel("lru"), stepwise_oracle("lru"), geoms, trace,
            chunk_sizes=PRIME_SIZES + (len(trace),),
        )
        assert compared == len(geoms) * (1 + len(PRIME_SIZES) + 1)

    def test_direct_chunked_matches_stepwise_at_every_size(self):
        trace = _trace_blocks(seed=4)
        geoms = _fa_geometries() + [
            CacheGeometry(size=s * B, block=B, ways=1, index_scheme=scheme)
            for s in (1, 2, 4, 16)
            for scheme in ("mod", "xor")
        ]
        differential_grid(
            replay_kernel("direct"), stepwise_oracle("direct"), geoms, trace,
            chunk_sizes=PRIME_SIZES + (len(trace),),
        )

    def test_opt_chunked_matches_stepwise_at_every_size(self):
        trace = _trace_blocks(n=400, seed=5)
        geoms = _fa_geometries() + _sa_geometries()
        differential_grid(
            replay_kernel("opt"), stepwise_oracle("opt"), geoms, trace,
            chunk_sizes=PRIME_SIZES + (len(trace),),
        )

    def test_two_level_chunked_matches_stepwise_at_every_size(self):
        trace = _trace_blocks(n=400, spread=64, seed=6)
        l1s = [
            CacheGeometry(size=2 * B, block=B),
            CacheGeometry(size=4 * B, block=B, ways=1),
        ]
        grid = [
            TwoLevelGeometry(l1, l2)
            for l1 in l1s
            for l2 in _sa_geometries()
            if l2.size >= l1.size
        ]
        differential_grid(
            replay_kernel("two_level"), stepwise_oracle("two_level"), grid, trace,
            chunk_sizes=PRIME_SIZES + (len(trace),),
        )

    def test_explicit_partition_source_matches_monolith(self):
        # an adversarial uneven partition (not fixed-size chunks)
        trace = _trace_blocks(n=200, seed=7)
        sizes = [1, 1, 97, 2, 50, 49]
        assert sum(sizes) == len(trace)
        geoms = _fa_geometries() + _sa_geometries()
        for policy in ("lru", "opt"):
            mono = replay_miss_masks(trace, geoms, policy=policy)
            chunked = stream_masks(
                ArrayChunkSource(trace, sizes=sizes), geoms, policy=policy
            )
            for m, c in zip(mono, chunked):
                assert np.array_equal(m, c)


# ----------------------------------------------------------------------
# hypothesis properties: invariance under any partition, carry fold law
# ----------------------------------------------------------------------
def _partition_invariance(trace, data, policy, geoms):
    blocks = np.asarray(trace, dtype=np.int64)
    sizes = data.draw(chunking_strategy(len(trace)))
    mono = [int(np.count_nonzero(m)) for m in replay_miss_masks(blocks, geoms, policy=policy)]
    chunked = [
        m for m, _c in stream_stats(
            ArrayChunkSource(blocks, sizes=sizes), geoms, policy=policy
        )
    ]
    assert chunked == mono


class TestChunkingProperties:
    GEOMS = [
        CacheGeometry(size=3 * B, block=B),
        CacheGeometry(size=4 * 2 * B, block=B, ways=2, index_scheme="mod"),
        CacheGeometry(size=4 * 2 * B, block=B, ways=2, index_scheme="xor"),
    ]

    @given(
        trace=st.lists(st.integers(0, 30), min_size=1, max_size=120),
        data=st.data(),
        policy=st.sampled_from(["lru", "direct", "opt"]),
    )
    @settings(
        max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_miss_counts_invariant_under_any_partition(self, trace, data, policy):
        geoms = [g for g in self.GEOMS if policy != "direct" or g.ways in (None, 1)]
        geoms = geoms or [CacheGeometry(size=3 * B, block=B)]
        _partition_invariance(trace, data, policy, geoms)

    @given(
        trace=st.lists(st.integers(0, 40), min_size=1, max_size=100),
        data=st.data(),
    )
    @settings(
        max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_two_level_invariant_under_any_partition(self, trace, data):
        grid = [
            TwoLevelGeometry(
                CacheGeometry(size=2 * B, block=B),
                CacheGeometry(size=8 * B, block=B, ways=2),
            )
        ]
        _partition_invariance(trace, data, "two_level", grid)

    @given(
        prefix=st.lists(st.integers(0, 25), max_size=60),
        a=st.lists(st.integers(0, 25), max_size=60),
        b=st.lists(st.integers(0, 25), max_size=60),
    )
    @settings(max_examples=60, deadline=None)
    def test_carry_fold_equals_fresh_pass_over_concatenation(self, prefix, a, b):
        # folding chunk by chunk == one fold over the concatenation: the
        # carry after any partition is the carry of the flat trace
        empty = np.zeros(0, dtype=np.int64)
        c0 = recency_carry(empty, np.asarray(prefix, dtype=np.int64))
        aa = np.asarray(a, dtype=np.int64)
        bb = np.asarray(b, dtype=np.int64)
        stepped = recency_carry(recency_carry(c0, aa), bb)
        flat = recency_carry(c0, np.concatenate([aa, bb]))
        assert np.array_equal(stepped, flat)
        # and the carry is exactly the distinct blocks in recency order
        whole = np.concatenate([np.asarray(prefix, dtype=np.int64), aa, bb])
        seen = {}
        for i, blk in enumerate(whole.tolist()):
            seen[blk] = i
        expect = [blk for blk, _i in sorted(seen.items(), key=lambda kv: kv[1])]
        assert recency_carry(empty, whole).tolist() == expect

    # -- nightly twins: same properties, cranked hard (--runslow) --------
    @pytest.mark.slow
    @given(
        trace=st.lists(st.integers(0, 80), min_size=1, max_size=600),
        data=st.data(),
        policy=st.sampled_from(["lru", "direct", "opt", "two_level"]),
    )
    @settings(
        max_examples=120, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_partition_invariance_nightly(self, trace, data, policy):
        if policy == "two_level":
            geoms = [
                TwoLevelGeometry(
                    CacheGeometry(size=2 * B, block=B),
                    CacheGeometry(size=16 * B, block=B, ways=4, index_scheme="xor"),
                )
            ]
        elif policy == "direct":
            geoms = [CacheGeometry(size=8 * B, block=B, ways=1, index_scheme="xor")]
        else:
            geoms = [
                CacheGeometry(size=6 * B, block=B),
                CacheGeometry(size=8 * 4 * B, block=B, ways=4, index_scheme="xor"),
            ]
        _partition_invariance(trace, data, policy, geoms)

    @pytest.mark.slow
    @given(
        parts=st.lists(
            st.lists(st.integers(0, 60), max_size=80), min_size=1, max_size=8
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_carry_fold_associativity_nightly(self, parts):
        empty = np.zeros(0, dtype=np.int64)
        arrays = [np.asarray(p, dtype=np.int64) for p in parts]
        stepped = empty
        for arr in arrays:
            stepped = recency_carry(stepped, arr)
        flat = recency_carry(empty, np.concatenate(arrays))
        assert np.array_equal(stepped, flat)


# ----------------------------------------------------------------------
# chunked compilation: segments, equivalence, corruption recovery
# ----------------------------------------------------------------------
class TestChunkedCompilation:
    def test_chunks_concatenate_to_the_monolithic_trace(self, workload, tmp_path):
        g, sched, mono = workload
        cache = TraceCache(tmp_path / "seg", max_bytes=1 << 30)
        ct = compile_trace_chunked(g, sched, B, chunk_words=97, cache=cache)
        assert isinstance(ct, ChunkedTrace)
        assert ct.accesses == mono.accesses and ct.firings == mono.firings
        assert ct.fire_counts == mono.fire_counts
        assert ct.source_fires == mono.source_fires
        assert ct.sink_fires == mono.sink_fires
        blocks = np.concatenate([ct.chunk(i)[0] for i in range(ct.n_chunks)])
        phases = np.concatenate([ct.chunk(i)[1] for i in range(ct.n_chunks)])
        assert np.array_equal(blocks, mono.blocks)
        assert np.array_equal(phases, mono.phases)
        # every chunk except the last is exactly chunk_words long
        for i, (lo, hi) in enumerate(ct.chunk_bounds()):
            assert (hi - lo == 97) or i == ct.n_chunks - 1

    def test_compile_trace_front_door_dispatches_on_chunk_words(self, workload):
        g, sched, mono = workload
        ct = compile_trace(g, sched, B, chunk_words=128)
        assert isinstance(ct, ChunkedTrace)
        blocks = np.concatenate([ct.chunk(i)[0] for i in range(ct.n_chunks)])
        assert np.array_equal(blocks, mono.blocks)

    def test_rerun_rewrites_nothing(self, workload, tmp_path):
        g, sched, _mono = workload
        cache = TraceCache(tmp_path / "seg", max_bytes=1 << 30)
        ct1 = compile_trace_chunked(g, sched, B, chunk_words=200, cache=cache)
        stamps = {
            k: ct1.segment_path(i).stat().st_mtime_ns
            for i, k in enumerate(ct1.segment_keys)
        }
        ct2 = compile_trace_chunked(g, sched, B, chunk_words=200, cache=cache)
        assert ct2.segment_keys == ct1.segment_keys
        for i, k in enumerate(ct2.segment_keys):
            assert ct2.segment_path(i).stat().st_mtime_ns == stamps[k]

    def test_chunk_words_must_be_positive(self, workload):
        g, sched, _mono = workload
        with pytest.raises(CacheConfigError, match="chunk_words"):
            compile_trace_chunked(g, sched, B, chunk_words=0)
        with pytest.raises(CacheConfigError, match="chunk_words"):
            compile_trace(g, sched, B, chunk_words=-3)

    def test_truncated_segment_recompiles_alone(self, workload, tmp_path):
        g, sched, mono = workload
        cache = TraceCache(tmp_path / "seg", max_bytes=1 << 30)
        ct = compile_trace_chunked(g, sched, B, chunk_words=150, cache=cache)
        assert ct.n_chunks >= 3
        victim = 1
        vpath = ct.segment_path(victim)
        raw = vpath.read_bytes()
        vpath.write_bytes(raw[: len(raw) // 2])  # truncate mid-file
        intact = {
            i: (ct.segment_path(i).read_bytes(), ct.segment_path(i).stat().st_mtime_ns)
            for i in range(ct.n_chunks)
            if i != victim
        }
        before_corrupt = cache.counters.corrupt
        blocks, phases = ct.chunk(victim)  # triggers the recompile
        lo, hi = ct.chunk_bounds()[victim]
        assert np.array_equal(blocks, mono.blocks[lo:hi])
        assert np.array_equal(phases, mono.phases[lo:hi])
        # exactly one corrupt entry was discarded, and only the victim was
        # rewritten: intact segments keep their bytes AND their mtimes
        assert cache.counters.corrupt == before_corrupt + 1
        for i, (data, stamp) in intact.items():
            assert ct.segment_path(i).stat().st_mtime_ns == stamp
            assert ct.segment_path(i).read_bytes() == data
        # a full replay over the healed trace matches the monolithic one
        geoms = [CacheGeometry(size=16 * B, block=B, ways=2)]
        assert simulate_trace(ct, geoms)[0] == simulate_trace(mono, geoms)[0]

    def test_unrecoverable_segment_raises(self, workload, tmp_path):
        g, sched, _mono = workload
        cache = TraceCache(tmp_path / "seg", max_bytes=1 << 30)
        ct = compile_trace_chunked(g, sched, B, chunk_words=150, cache=cache)

        def no_recompile() -> int:
            ct.segment_path(0).unlink(missing_ok=True)
            return 0

        ct._recompile = no_recompile
        ct.segment_path(0).unlink()
        with pytest.raises(CacheConfigError, match="segment 0"):
            ct.chunk(0)


# ----------------------------------------------------------------------
# replay front doors: simulate_trace / measure_compiled / run_batch /
# configure, all bit-identical to the monolithic path
# ----------------------------------------------------------------------
class TestFrontDoors:
    @pytest.mark.parametrize("policy", ["lru", "direct", "opt", "two_level"])
    def test_simulate_trace_chunked_equals_monolithic(self, workload, policy):
        _g, _sched, trace = workload
        if policy == "two_level":
            geoms = [
                TwoLevelGeometry(
                    CacheGeometry(size=4 * B, block=B),
                    CacheGeometry(size=32 * B, block=B, ways=4),
                )
            ]
        elif policy == "direct":
            geoms = [CacheGeometry(size=16 * B, block=B, ways=1, index_scheme=s)
                     for s in ("mod", "xor")]
        else:
            geoms = [CacheGeometry(size=16 * B, block=B, ways=2, index_scheme=s)
                     for s in ("mod", "xor")]
        mono = simulate_trace(trace, geoms, policy=policy)
        for cw in (1, 37, trace.accesses):
            assert simulate_trace(trace, geoms, policy=policy, chunk_words=cw) == mono

    def test_chunked_trace_replays_through_simulate_trace(self, workload, tmp_path):
        g, sched, trace = workload
        cache = TraceCache(tmp_path / "seg", max_bytes=1 << 30)
        ct = compile_trace_chunked(g, sched, B, chunk_words=211, cache=cache)
        geoms = [CacheGeometry(size=c * B, block=B) for c in (2, 8, 32)]
        assert simulate_trace(ct, geoms, policy="lru") == simulate_trace(
            trace, geoms, policy="lru"
        )

    def test_measure_compiled_chunk_words_identical(self, workload):
        g, sched, _trace = workload
        geom = CacheGeometry(size=16 * B, block=B, ways=2)
        mono = measure_compiled(g, geom, sched, policy="lru")
        assert measure_compiled(g, geom, sched, policy="lru", chunk_words=64) == mono

    def test_configured_default_chunk_words_applies(self, workload):
        _g, _sched, trace = workload
        geoms = [CacheGeometry(size=8 * B, block=B)]
        mono = simulate_trace(trace, geoms, policy="lru")
        prev = configure(chunk_words=53)
        try:
            assert simulate_trace(trace, geoms, policy="lru") == mono
        finally:
            configure(*prev)

    def test_run_batch_chunk_words_batch_and_per_query(self, workload):
        g, sched, _trace = workload
        geoms = [CacheGeometry(size=16 * B, block=B, ways=2)]
        queries = [
            ServiceQuery(graph=g, schedule=sched, block=B, geometries=geoms),
            ServiceQuery(
                graph=g, schedule=sched, block=B, geometries=geoms,
                policy="opt", chunk_words=71,
            ),
        ]
        plain = run_batch(
            [ServiceQuery(graph=g, schedule=sched, block=B, geometries=geoms),
             ServiceQuery(graph=g, schedule=sched, block=B, geometries=geoms,
                          policy="opt")]
        )
        chunked = run_batch(queries, chunk_words=29)
        assert [a.results for a in chunked] == [a.results for a in plain]

    def test_simulate_stream_rejects_unknown_policy(self, workload):
        _g, _sched, trace = workload
        with pytest.raises(CacheConfigError):
            simulate_stream(trace, [CacheGeometry(size=8 * B, block=B)],
                            policy="belady2")

    def test_array_chunk_source_validation(self):
        blocks = np.arange(10, dtype=np.int64)
        with pytest.raises(CacheConfigError, match="exactly one"):
            ArrayChunkSource(blocks)
        with pytest.raises(CacheConfigError, match="exactly one"):
            ArrayChunkSource(blocks, chunk_words=2, sizes=[5, 5])
        with pytest.raises(CacheConfigError, match="chunk_words"):
            ArrayChunkSource(blocks, chunk_words=0)
        with pytest.raises(CacheConfigError, match="sum to"):
            ArrayChunkSource(blocks, sizes=[5, 4])


# ----------------------------------------------------------------------
# process fan-out over chunks
# ----------------------------------------------------------------------
class TestProcessChunkFanOut:
    @pytest.mark.parametrize("policy", ["lru", "direct"])
    def test_process_backend_equals_serial(self, workload, tmp_path, policy):
        g, sched, trace = workload
        cache = TraceCache(tmp_path / "seg", max_bytes=1 << 30)
        ct = compile_trace_chunked(g, sched, B, chunk_words=157, cache=cache)
        geoms = [
            CacheGeometry(size=8 * B, block=B, ways=w, index_scheme=s)
            for w, s in ((1, "mod"), (1, "xor"))
        ]
        if policy == "lru":
            geoms.append(CacheGeometry(size=16 * B, block=B, ways=2))
        serial = simulate_trace(ct, geoms, policy=policy)
        pooled = simulate_trace(ct, geoms, policy=policy, backend="process", workers=2)
        assert pooled == serial
        assert serial == simulate_trace(trace, geoms, policy=policy)


# ----------------------------------------------------------------------
# placement scoring: the swap_refine trajectory is chunking-blind
# ----------------------------------------------------------------------
class TestChunkedPlacementScoring:
    def _workload(self):
        g = pipeline([12, 20, 6, 28, 10])
        sched = single_appearance_schedule(g, n_iterations=12)
        return g, sched

    def test_placement_cost_chunked_identical(self):
        g, sched = self._workload()
        inst = build_instance(g, sched, B)
        geom = CacheGeometry(size=16 * B, block=B)
        order = list(inst.objects)
        mono = placement_cost(inst, order, geom, policy="lru")
        for cw in (1, 17, 10_000):
            assert placement_cost(
                inst, order, geom, policy="lru", chunk_words=cw
            ) == mono

    @pytest.mark.parametrize("batch", [1, 4])
    def test_swap_refine_trajectory_identical_under_chunked_scoring(self, batch):
        g, sched = self._workload()
        inst = build_instance(g, sched, B)
        geom = CacheGeometry(size=16 * B, block=B)
        start = list(inst.objects)
        mono = swap_refine(
            inst, start, geom, policy="direct", budget=60, batch=batch
        )
        chunked = swap_refine(
            inst, start, geom, policy="direct", budget=60, batch=batch,
            chunk_words=23,
        )
        assert chunked[0] == mono[0] and chunked[1] == mono[1]
        assert chunked[2] == mono[2]
        # the RefineStats cost trajectory is byte-identical: same evals,
        # same rounds, same per-round best costs
        assert chunked[3].evals == mono[3].evals
        assert chunked[3].rounds == mono[3].rounds
        assert chunked[3].trajectory == mono[3].trajectory
