"""Smoke + shape tests for the experiment drivers (E1-E10, A1-A4).

Each driver must run, return uniform rows, and exhibit the paper-predicted
shape recorded in EXPERIMENTS.md.  Sizes are the benches' defaults, so these
tests double as a regression net for the benchmark harness.
"""

import pytest

from repro.analysis import experiments as E


def uniform(rows):
    assert rows, "driver returned no rows"
    keys = set(rows[0])
    assert all(set(r) == keys for r in rows)
    return rows


class TestDriversRun:
    def test_e1(self):
        rows = uniform(E.experiment_e1_pipeline_optimality(n_outputs=400))
        for r in rows:
            assert r["measured_misses"] >= r["lb_misses"]
            assert r["ratio_to_lb"] < 150  # bounded constant

    def test_e2(self):
        rows = uniform(E.experiment_e2_miss_model())
        for r in rows:
            assert 0.4 <= r["ratio"] <= 2.5

    def test_e3(self):
        rows = uniform(E.experiment_e3_lower_bound(n_outputs=400))
        for r in rows:
            assert r["measured_over_lb"] >= 1.0
        part_row = min(rows, key=lambda r: r["measured_over_lb"])
        assert "dynamic" in part_row["schedule"]  # partitioned is closest to LB

    def test_e4(self):
        rows = uniform(E.experiment_e4_partition_quality())
        for r in rows:
            if r["dp8_bw"]:
                assert r["greedy_bw"] >= r["dp8_bw"]
        # polynomial scaling sanity: 256-module DP in < 1 second
        assert rows[-1]["dp_ms"] < 1000

    def test_e5(self):
        rows = uniform(E.experiment_e5_dag_optimality())
        for r in rows:
            assert r["heur_bw"] >= r["minBW3"]
            assert r["measured"] >= r["lb"]

    def test_e6(self):
        rows = uniform(E.experiment_e6_inhomogeneous())
        for r in rows:
            assert r["improvement"] >= 1.0

    def test_e7(self):
        rows = uniform(E.experiment_e7_vs_baselines())
        big = [r for r in rows if r["state_over_M"] > 1.5]
        assert all(r["win_vs_single_app"] > 4 for r in big), big

    def test_e8(self):
        rows = uniform(E.experiment_e8_augmentation(n_outputs=400))
        assert rows[0]["misses"] > rows[-1]["misses"]
        # plateau: last two within 40%
        assert rows[-2]["misses"] <= 1.4 * rows[-1]["misses"] + 1

    def test_e9(self):
        rows = uniform(E.experiment_e9_block_size(n_outputs=400))
        # doubling B should cut misses substantially (at least 1.5x per step)
        for a, b in zip(rows, rows[1:]):
            assert b["misses"] < a["misses"]
        assert rows[-1]["speedup_vs_B1"] > 8

    def test_e10(self):
        rows = uniform(E.experiment_e10_crossover(n_outputs=300))
        small = [r for r in rows if r["state_over_M"] < 1]
        big = [r for r in rows if r["state_over_M"] >= 3]
        assert all(r["advantage"] <= 1.5 for r in small)
        assert all(r["advantage"] > 10 for r in big)


class TestAblations:
    def test_a1_gain_min_wins(self):
        rows = uniform(E.ablation_a1_cut_choice(n_outputs=400))
        by_rule = {r["cut_rule"]: r for r in rows}
        paper = by_rule["gain-min (paper)"]
        ablated = by_rule["gain-max (ablated)"]
        assert paper["bandwidth"] < ablated["bandwidth"]
        assert paper["misses"] < ablated["misses"]

    def test_a2_theta_m_buffers(self):
        rows = uniform(E.ablation_a2_cross_buffer_size(n_outputs=400))
        # tiny buffers are much worse than Theta(M)
        assert rows[0]["misses"] > 3 * rows[3]["misses"]

    def test_a3_lru_close_to_opt(self):
        rows = E.ablation_a3_lru_vs_opt(n_outputs=300)
        lru = next(r for r in rows if r["policy"] == "LRU")
        opt = next(r for r in rows if "OPT" in r["policy"])
        assert opt["misses"] <= lru["misses"] <= 3 * opt["misses"]

    def test_a4_degree_limit(self):
        rows = uniform(E.ablation_a4_degree_limits())
        limited = [r for r in rows if r["degree_limited"]]
        unlimited = [r for r in rows if not r["degree_limited"]]
        assert limited, "need at least one degree-limited partitioner"
        if unlimited:
            assert min(r["misses_per_input"] for r in limited) <= min(
                r["misses_per_input"] for r in unlimited
            )
