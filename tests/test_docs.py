"""The documentation is executable: broken links and stale snippets fail.

``tools/check_docs.py`` is the single source of truth (CI runs it as its
own job); this wrapper keeps it in the tier-1 suite so a doc regression
shows up in any local ``pytest`` run too.
"""

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def test_docs_links_and_snippets():
    proc = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "check_docs.py")],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, f"docs check failed:\n{proc.stdout}\n{proc.stderr}"


def test_required_doc_pages_exist_and_are_linked():
    readme = (ROOT / "README.md").read_text(encoding="utf-8")
    for page in ("docs/ARCHITECTURE.md", "docs/REPLAY.md",
                 "docs/STATIC_ANALYSIS.md"):
        assert (ROOT / page).exists(), page
        assert page in readme, f"README does not link {page}"


def test_module_docstring_doctests():
    """The docstring examples of the lint package and the shared fold
    module are runnable, not decorative."""
    import doctest

    import repro.cache.indexing
    import repro.lint

    for mod in (repro.lint, repro.cache.indexing):
        result = doctest.testmod(mod, optionflags=doctest.ELLIPSIS)
        assert result.attempted > 0, f"{mod.__name__}: no doctests found"
        assert result.failed == 0, f"{mod.__name__}: {result.failed} failed"


def test_static_analysis_doc_has_runnable_lint_invocation():
    # check_docs executes docs/*.md fences; this pins that the static-
    # analysis page keeps a live run_lint() example among them
    doc = (ROOT / "docs" / "STATIC_ANALYSIS.md").read_text(encoding="utf-8")
    assert ">>> report = run_lint()" in doc
    assert "```python\n" in doc
