"""The documentation is executable: broken links and stale snippets fail.

``tools/check_docs.py`` is the single source of truth (CI runs it as its
own job); this wrapper keeps it in the tier-1 suite so a doc regression
shows up in any local ``pytest`` run too.
"""

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def test_docs_links_and_snippets():
    proc = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "check_docs.py")],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, f"docs check failed:\n{proc.stdout}\n{proc.stderr}"


def test_required_doc_pages_exist_and_are_linked():
    readme = (ROOT / "README.md").read_text(encoding="utf-8")
    for page in ("docs/ARCHITECTURE.md", "docs/REPLAY.md"):
        assert (ROOT / page).exists(), page
        assert page in readme, f"README does not link {page}"
