"""Tests for the multilevel partitioner."""

import pytest

from repro.core.dagpart import (
    exact_min_bandwidth_partition,
    greedy_topological_partition,
    interval_dp_partition,
)
from repro.core.multilevel import _initial_coarse, coarsen_once, multilevel_partition
from repro.errors import PartitionError
from repro.graphs.apps import beamformer, des_rounds
from repro.graphs.topologies import (
    diamond,
    layered_random_dag,
    pipeline,
    random_pipeline,
)


class TestCoarsening:
    def test_initial_coarse_mirrors_graph(self, simple_diamond):
        c = _initial_coarse(simple_diamond)
        assert c.n == simple_diamond.n_modules
        assert sum(c.state) == simple_diamond.total_state()

    def test_coarsen_reduces_size(self):
        g = pipeline([4] * 16)
        c = _initial_coarse(g)
        c2, progressed = coarsen_once(c, bound=1000)
        assert progressed
        assert c2.n < c.n
        assert sum(c2.state) == sum(c.state)  # state conserved

    def test_coarsen_respects_bound(self):
        g = pipeline([10] * 8)
        c = _initial_coarse(g)
        c2, _ = coarsen_once(c, bound=15)
        assert max(c2.state) <= 15

    def test_coarsen_preserves_acyclicity(self):
        for seed in range(4):
            g = layered_random_dag(5, 4, 8, seed=seed)
            c = _initial_coarse(g)
            for _ in range(6):
                c, progressed = coarsen_once(c, bound=64)
                c.topological_order()  # raises if cyclic
                if not progressed:
                    break

    def test_members_partition_modules(self):
        g = diamond(branch_len=3, ways=2, state=4)
        c = _initial_coarse(g)
        for _ in range(4):
            c, progressed = coarsen_once(c, bound=24)
            if not progressed:
                break
        names = sorted(n for group in c.members for n in group)
        assert names == sorted(g.module_names())


class TestMultilevelPartition:
    def test_valid_partition(self):
        g = beamformer(channels=6, beams=3, taps=24)
        M = 192
        p = multilevel_partition(g, M, c=2.0)
        assert p.is_well_ordered()
        assert p.is_c_bounded(M, 2.0)

    def test_never_worse_than_greedy_with_refinement(self):
        for seed in range(3):
            g = layered_random_dag(5, 3, 12, seed=seed)
            M = 48
            ml = multilevel_partition(g, M, c=2.0)
            greedy = greedy_topological_partition(g, M, c=2.0)
            assert ml.bandwidth() <= greedy.bandwidth() * 1.5 + 1

    def test_close_to_exact_on_small_graphs(self):
        g = diamond(branch_len=3, ways=2, state=12)
        M = 24
        exact = exact_min_bandwidth_partition(g, M, c=3.0)
        ml = multilevel_partition(g, M, c=3.0)
        assert ml.bandwidth() <= 3 * exact.bandwidth() + 1

    def test_long_pipeline(self):
        g = random_pipeline(120, 16, seed=9)
        M = 48
        p = multilevel_partition(g, M, c=2.0)
        assert p.is_well_ordered()
        assert p.max_component_state() <= 2 * M

    def test_oversized_module_rejected(self):
        g = pipeline([100, 1])
        with pytest.raises(PartitionError):
            multilevel_partition(g, 10, c=1.0)

    def test_refinement_flag(self):
        g = des_rounds(rounds=8, sbox_state=32)
        M = 128
        raw = multilevel_partition(g, M, c=2.0, refine_each_level=False)
        refined = multilevel_partition(g, M, c=2.0, refine_each_level=True)
        assert refined.bandwidth() <= raw.bandwidth()

    def test_single_component_when_fits(self, simple_diamond):
        p = multilevel_partition(simple_diamond, 10_000, c=1.0)
        assert p.k == 1
