"""Tests for Belady OPT replay, including LRU-dominance properties."""

import pytest

from repro.cache.base import CacheGeometry
from repro.cache.lru import LRUCache
from repro.cache.opt import OPTCache, simulate_opt


def geom(blocks):
    return CacheGeometry(size=blocks * 8, block=8)


def lru_misses(trace, g):
    c = LRUCache(g)
    for b in trace:
        c.access_block(b)
    return c.stats.misses


class TestOPT:
    def test_empty_trace(self):
        s = simulate_opt([], geom(2))
        assert s.misses == 0 and s.accesses == 0

    def test_all_distinct_all_miss(self):
        trace = list(range(10))
        s = simulate_opt(trace, geom(4))
        assert s.misses == 10

    def test_repeated_single_block(self):
        s = simulate_opt([3] * 50, geom(1))
        assert s.misses == 1 and s.accesses == 50

    def test_belady_classic_example(self):
        # capacity 3; OPT on this trace misses 7 (classic textbook case)
        trace = [1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5]
        s = simulate_opt(trace, geom(3))
        assert s.misses == 7

    def test_opt_beats_lru_on_cyclic_scan(self):
        trace = [i % 5 for i in range(50)]
        g = geom(4)
        assert simulate_opt(trace, g).misses < lru_misses(trace, g)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_opt_never_worse_than_lru(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        trace = rng.integers(0, 12, size=400).tolist()
        g = geom(4)
        assert simulate_opt(trace, g).misses <= lru_misses(trace, g)

    def test_opt_at_least_cold_misses(self):
        import numpy as np

        rng = np.random.default_rng(7)
        trace = rng.integers(0, 30, size=200).tolist()
        s = simulate_opt(trace, geom(8))
        assert s.misses >= len(set(trace))

    def test_wrapper_class(self):
        c = OPTCache(geom(2))
        s = c.run([1, 2, 3, 1])
        assert s.misses == c.stats.misses
