"""Tests for table/series formatting."""

from repro.analysis.report import format_series, format_table, rows_to_table


class TestFormatTable:
    def test_alignment_and_header(self):
        out = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "-+-" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_float_formatting(self):
        out = format_table(["v"], [[3.14159], [12345.6], [0.0]])
        assert "3.142" in out
        assert "12,346" in out

    def test_rows_to_table_uses_first_row_keys(self):
        rows = [{"a": 1, "b": 2}, {"a": 3, "b": 4}]
        out = rows_to_table(rows)
        assert "a" in out.splitlines()[0]

    def test_rows_to_table_empty(self):
        assert "(no rows)" in rows_to_table([])

    def test_missing_keys_blank(self):
        rows = [{"a": 1, "b": 2}, {"a": 3}]
        out = rows_to_table(rows)
        assert out  # no exception


class TestFormatSeries:
    def test_pairs(self):
        out = format_series("s", [1, 2], [10, 20])
        assert "series s:" in out
        assert "1 -> 10" in out
