"""Acceptance tests for :mod:`repro.runtime.backend`.

The backend contract has three load-bearing clauses, each pinned here:

* **Ordering** — ``fan_out(fn, items)[i] == fn(items[i])`` on every
  backend, even when completion order is adversarial (earlier items sleep
  longer).
* **Clamping** — pool width is ``min(workers, len(items), cpu_count)``;
  zero/negative/``None`` means serial.
* **Bit-identity** — ``backend="process"`` answers are byte-for-byte the
  serial answers for *every registered policy* under both index schemes.
  The serial side is itself anchored to the stepwise engines with
  :func:`~repro.testing.harness.differential_grid`, so the chain
  stepwise oracle == serial replay == process replay holds per access.

Plus the batch front door: intra-batch dedup, persistent-cache sharing,
query-order answers, and the ``index_scheme="mod"`` preset default.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.cache.base import CacheGeometry
from repro.cache.hierarchy import TwoLevelGeometry
from repro.core.baselines import interleaved_schedule
from repro.errors import CacheConfigError
from repro.graphs.apps import fm_radio
from repro.mem.placement import build_instance, normalize_targets, swap_refine
from repro.runtime import backend as backend_mod
from repro.runtime.backend import (
    BACKENDS,
    DEFAULT_INDEX_SCHEME,
    CandidateScorer,
    ServiceQuery,
    SharedTrace,
    configure,
    effective_workers,
    fan_out,
    geometry_sweep,
    normalize_backend,
    process_sweep,
    resolve,
    run_batch,
)
from repro.runtime.compiled import compile_trace, simulate_trace
from repro.runtime.replay import _fanout, replay_miss_masks
from repro.runtime.trace_cache import TraceCache
from repro.testing.harness import differential_grid, replay_kernel, stepwise_oracle

B = 8


# -- module-level workers (the process backend pickles these) -----------
def _square(x):
    return x * x


def _slow_echo(item):
    index, delay = item
    time.sleep(delay)
    return index


@pytest.fixture(scope="module")
def workload():
    g = fm_radio()
    sched = interleaved_schedule(g, n_iterations=2)
    trace = compile_trace(g, sched, B)
    return g, sched, trace


def _restore_defaults():
    configure("thread", None)


# ----------------------------------------------------------------------
# clamping + resolution
# ----------------------------------------------------------------------
class TestEffectiveWorkers:
    @pytest.mark.parametrize("workers", [None, 0, -1, 1])
    def test_none_zero_negative_one_mean_serial(self, workers):
        assert effective_workers(workers, 100) == 1

    def test_clamps_to_items_and_cores(self, monkeypatch):
        monkeypatch.setattr(backend_mod.os, "cpu_count", lambda: 4)
        assert effective_workers(8, 3) == 3      # item-bound
        assert effective_workers(64, 100) == 4   # core-bound
        assert effective_workers(2, 100) == 2    # request-bound

    def test_zero_items_floors_at_one(self, monkeypatch):
        monkeypatch.setattr(backend_mod.os, "cpu_count", lambda: 4)
        assert effective_workers(8, 0) == 1


class TestResolve:
    def test_unknown_backend_names_value_and_choices(self):
        with pytest.raises(CacheConfigError, match=r"'warp'"):
            normalize_backend("warp")
        with pytest.raises(CacheConfigError, match=r"serial.*thread.*process"):
            resolve("mpi", 2, 8)

    def test_default_preserves_historical_workers_contract(self):
        # backend=None, workers=None: no pool, ever — the pre-backend deal
        assert resolve(None, None, 64) == ("thread", 1)

    def test_serial_ignores_workers(self):
        assert resolve("serial", 16, 64) == ("serial", 1)

    def test_thread_width_one_collapses_to_serial(self):
        assert resolve("thread", 1, 64) == ("serial", 1)

    def test_process_honoured_at_width_one(self):
        # differential tests rely on crossing a real process boundary even
        # on a one-core machine
        assert resolve("process", 1, 64) == ("process", 1)

    def test_explicit_process_defaults_to_all_cores(self, monkeypatch):
        monkeypatch.setattr(backend_mod.os, "cpu_count", lambda: 4)
        assert resolve("process", None, 64) == ("process", 4)

    def test_configure_installs_and_restores(self):
        prev = configure("process", 3)
        try:
            assert prev == ("thread", None, None)
            name, _width = resolve(None, None, 8)
            assert name == "process"
        finally:
            configure(*prev)
        assert resolve(None, None, 8) == ("thread", 1)


# ----------------------------------------------------------------------
# ordering
# ----------------------------------------------------------------------
class TestFanOutOrdering:
    def test_serial_is_a_plain_map(self):
        assert fan_out(_square, list(range(10)), backend="serial") == [
            i * i for i in range(10)
        ]

    def test_thread_order_survives_adversarial_completion(self, monkeypatch):
        monkeypatch.setattr(backend_mod.os, "cpu_count", lambda: 4)
        # earlier items finish last: completion order is the exact reverse
        items = [(i, 0.002 * (8 - i)) for i in range(8)]
        out = fan_out(_slow_echo, items, backend="thread", workers=4)
        assert out == list(range(8))

    def test_process_order_survives_adversarial_completion(self, monkeypatch):
        monkeypatch.setattr(backend_mod.os, "cpu_count", lambda: 2)
        items = [(i, 0.002 * (6 - i)) for i in range(6)]
        out = fan_out(_slow_echo, items, backend="process", workers=2)
        assert out == list(range(6))

    def test_empty_items(self):
        assert fan_out(_square, [], backend="process", workers=4) == []


class TestReplayFanoutClamp:
    """``repro.runtime.replay._fanout`` — the thread map under the replay
    kernels — shares the ordering + clamping contract."""

    def test_order_preserved_with_real_threads(self, monkeypatch):
        monkeypatch.setattr(backend_mod.os, "cpu_count", lambda: 4)
        items = [(i, 0.002 * (8 - i)) for i in range(8)]
        assert _fanout(_slow_echo, items, workers=4) == list(range(8))

    def test_oversized_pool_request_is_clamped_not_fatal(self):
        # workers far beyond items and cores: same answers, no error
        assert _fanout(_square, [1, 2, 3], workers=1000) == [1, 4, 9]

    def test_workers_none_is_serial(self):
        assert _fanout(_square, [1, 2, 3], workers=None) == [1, 4, 9]


# ----------------------------------------------------------------------
# shared-memory trace shipping
# ----------------------------------------------------------------------
class TestSharedTrace:
    def test_roundtrip_blocks_and_phases(self):
        from multiprocessing import shared_memory

        rng = np.random.default_rng(7)
        blocks = rng.integers(0, 50, size=257).astype(np.int64)
        phases = rng.integers(0, 4, size=257).astype(np.uint8)
        with SharedTrace(blocks, phases) as shared:
            assert shared.n == 257 and shared.has_phases
            shm = shared_memory.SharedMemory(name=shared.name)
            try:
                view_b = np.ndarray((257,), dtype=np.int64, buffer=shm.buf)
                view_p = np.ndarray(
                    (257,), dtype=np.uint8, buffer=shm.buf, offset=257 * 8
                )
                assert np.array_equal(view_b, blocks)
                assert np.array_equal(view_p, phases)
                del view_b, view_p
            finally:
                shm.close()

    def test_unlinked_on_exit(self):
        from multiprocessing import shared_memory

        with SharedTrace(np.arange(4, dtype=np.int64), None) as shared:
            name = shared.name
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_empty_trace_is_legal(self):
        with SharedTrace(np.zeros(0, dtype=np.int64), None) as shared:
            assert shared.n == 0 and not shared.has_phases


# ----------------------------------------------------------------------
# the acceptance criterion: process == serial, per policy, per scheme
# ----------------------------------------------------------------------
def _grids():
    """One geometry grid per (policy, index scheme) worth sweeping."""
    return {
        ("lru", "mod"): [
            CacheGeometry(size=64, block=B),
            CacheGeometry(size=128, block=B),
            CacheGeometry(size=256, block=B, ways=4),
            CacheGeometry(size=128, block=B, ways=2),
        ],
        ("lru", "xor"): [
            CacheGeometry(size=128, block=B, ways=2, index_scheme="xor"),
            CacheGeometry(size=256, block=B, ways=4, index_scheme="xor"),
            CacheGeometry(size=512, block=B, ways=4, index_scheme="xor"),
        ],
        ("direct", "mod"): [
            CacheGeometry(size=s, block=B, ways=1) for s in (64, 128, 256)
        ],
        ("direct", "xor"): [
            CacheGeometry(size=s, block=B, ways=1, index_scheme="xor")
            for s in (64, 128, 256)
        ],
        ("opt", "mod"): [CacheGeometry(size=s, block=B) for s in (64, 128, 256)],
        ("opt", "xor"): [
            CacheGeometry(size=128, block=B, ways=2, index_scheme="xor"),
            CacheGeometry(size=256, block=B, ways=2, index_scheme="xor"),
        ],
        ("two_level", "mod"): [
            TwoLevelGeometry(
                CacheGeometry(size=64, block=B), CacheGeometry(size=256, block=B)
            ),
            TwoLevelGeometry(
                CacheGeometry(size=64, block=B, ways=2),
                CacheGeometry(size=512, block=B, ways=4),
            ),
        ],
        ("two_level", "xor"): [
            TwoLevelGeometry(
                CacheGeometry(size=64, block=B, ways=2, index_scheme="xor"),
                CacheGeometry(size=256, block=B, ways=4, index_scheme="xor"),
            ),
        ],
    }


_GRID_CASES = sorted(_grids().keys())


class TestProcessBackendBitIdentity:
    @pytest.mark.parametrize("policy,scheme", _GRID_CASES)
    def test_serial_matches_stepwise_oracle(self, workload, policy, scheme):
        # anchor one end of the chain: serial replay == stepwise engine,
        # per access, on the real compiled workload trace
        _g, _s, trace = workload
        grid = _grids()[(policy, scheme)]
        differential_grid(
            replay_kernel(policy), stepwise_oracle(policy), grid, trace.blocks[:1500]
        )

    @pytest.mark.parametrize("policy,scheme", _GRID_CASES)
    def test_process_matches_serial_bit_for_bit(self, workload, policy, scheme):
        _g, _s, trace = workload
        grid = _grids()[(policy, scheme)]
        serial = simulate_trace(trace, grid, policy=policy, backend="serial")
        proc = simulate_trace(trace, grid, policy=policy, backend="process", workers=2)
        assert len(serial) == len(proc) == len(grid)
        for s, p in zip(serial, proc):
            assert p.misses == s.misses
            assert p.accesses == s.accesses
            assert p.phase_misses == s.phase_misses
            assert p.firings == s.firings
            assert p.fire_counts == s.fire_counts

    def test_process_sweep_chunking_covers_every_geometry(self, workload):
        # more workers than geometries, width 3 over 5 items: chunk bounds
        # must partition the grid in order
        _g, _s, trace = workload
        grid = [CacheGeometry(size=s, block=B) for s in (32, 64, 128, 256, 512)]
        stats = process_sweep(trace.blocks, trace.phases, grid, "lru", workers=3)
        masks = replay_miss_masks(trace.blocks, grid, policy="lru")
        assert [m for m, _c in stats] == [int(np.count_nonzero(m)) for m in masks]

    def test_unknown_policy_fails_in_parent(self, workload):
        _g, _s, trace = workload
        grid = [CacheGeometry(size=64, block=B)]
        with pytest.raises(CacheConfigError, match="zap"):
            simulate_trace(trace, grid, policy="zap", backend="process", workers=2)

    def test_empty_geometry_list(self, workload):
        _g, _s, trace = workload
        assert simulate_trace(trace, [], backend="process", workers=2) == []


# ----------------------------------------------------------------------
# placement scoring across backends
# ----------------------------------------------------------------------
class TestCandidateScorer:
    @pytest.fixture(scope="class")
    def instance(self):
        g = fm_radio()
        sched = interleaved_schedule(g)
        return build_instance(g, sched, B)

    @pytest.fixture(scope="class")
    def targets(self):
        return normalize_targets(
            [
                (CacheGeometry(size=128, block=B, ways=1), "direct", 1.0),
                (CacheGeometry(size=256, block=B), "lru", 0.5),
            ],
            block=B,
        )

    def _candidates(self, instance):
        # a handful of start vectors: seed order plus rotations of it
        from repro.mem.placement import _placed_starts

        n = instance.n_objects
        ids = list(range(n))
        return [
            _placed_starts(instance, ids),
            _placed_starts(instance, ids[1:] + ids[:1]),
            _placed_starts(instance, ids[::-1]),
        ]

    def test_serial_and_process_scores_agree(self, instance, targets):
        cands = self._candidates(instance)
        with CandidateScorer(instance, targets, backend="serial") as serial:
            want = serial.score(cands)
        with CandidateScorer(
            instance, targets, backend="process", workers=2
        ) as proc:
            got = proc.score(cands)
        assert got == want
        assert all(isinstance(c, float) for c in want)

    def test_swap_refine_trajectory_is_backend_invariant(self, instance, targets):
        order = list(instance.objects)
        kw = dict(targets=targets, budget=40, batch=4, gap_budget=2)
        serial = swap_refine(instance, order, backend="serial", **kw)
        proc = swap_refine(instance, order, backend="process", workers=2, **kw)
        s_order, s_gaps, s_cost, s_evals = serial
        p_order, p_gaps, p_cost, p_evals = proc
        assert p_order == s_order
        assert p_gaps == s_gaps
        assert p_cost == s_cost
        assert p_evals == s_evals

    def test_batched_search_never_worse_than_seed(self, instance, targets):
        order = list(instance.objects)
        from repro.mem.placement import placement_costs

        seed_cost = sum(
            w * m
            for (_g, _p, w), m in zip(
                targets, placement_costs(instance, order, targets)
            )
        )
        _o, _g, cost, _e = swap_refine(
            instance, order, targets=targets, budget=40, batch=3
        )
        assert cost <= seed_cost


# ----------------------------------------------------------------------
# batch front door
# ----------------------------------------------------------------------
class TestGeometrySweepPreset:
    def test_default_scheme_is_mod(self):
        assert DEFAULT_INDEX_SCHEME == "mod"
        geoms = geometry_sweep([64, 128, 256], B)
        assert [g.index_scheme for g in geoms] == ["mod"] * 3
        assert [g.size for g in geoms] == [64, 128, 256]
        assert all(g.ways is None for g in geoms)

    def test_xor_is_explicit_opt_in(self):
        geoms = geometry_sweep([128, 256], B, ways=2, index_scheme="xor")
        assert all(g.index_scheme == "xor" and g.ways == 2 for g in geoms)


class TestRunBatch:
    def test_dedup_and_query_order(self, workload, monkeypatch):
        g, sched, _trace = workload
        import repro.runtime.compiled as compiled_mod

        compiles = []
        real = compiled_mod.compile_trace_uncached

        def counting(*args, **kwargs):
            compiles.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(compiled_mod, "compile_trace_uncached", counting)

        geoms = geometry_sweep([64, 128], B)
        queries = [
            ServiceQuery(g, sched, B, geoms, policy="lru"),
            ServiceQuery(g, sched, B, geoms, policy="lru"),    # same trace+policy
            ServiceQuery(g, sched, B, geoms, policy="opt"),    # same trace, new policy
            ServiceQuery(g, sched, B * 2, geometry_sweep([64, 128], B * 2)),  # new trace
        ]
        answers = run_batch(queries)
        assert [a.index for a in answers] == [0, 1, 2, 3]
        assert sum(compiles) == 2  # two distinct traces, four queries
        assert answers[0].trace_key == answers[1].trace_key == answers[2].trace_key
        assert answers[3].trace_key != answers[0].trace_key
        assert [a.deduped for a in answers] == [False, True, True, False]
        assert not any(a.cache_hit for a in answers)  # no cache configured

    def test_results_match_direct_simulation(self, workload):
        g, sched, trace = workload
        geoms = geometry_sweep([64, 128, 256], B)
        queries = [
            ServiceQuery(g, sched, B, geoms, policy="lru"),
            ServiceQuery(g, sched, B, geoms, policy="opt"),
        ]
        answers = run_batch(queries)
        for q, a in zip(queries, answers):
            want = simulate_trace(trace, geoms, policy=q.policy)
            assert [r.misses for r in a.results] == [r.misses for r in want]
            assert [r.phase_misses for r in a.results] == [
                r.phase_misses for r in want
            ]

    def test_identical_queries_share_one_replay_answer(self, workload):
        g, sched, _trace = workload
        geoms = geometry_sweep([64, 256], B)
        q = ServiceQuery(g, sched, B, geoms)
        a1, a2 = run_batch([q, q])
        assert [r.misses for r in a1.results] == [r.misses for r in a2.results]
        assert len(a1.results) == len(geoms)

    def test_persistent_cache_shares_across_batches(self, workload, tmp_path):
        g, sched, _trace = workload
        cache = TraceCache(tmp_path / "traces")
        geoms = geometry_sweep([64, 128], B)
        cold = run_batch([ServiceQuery(g, sched, B, geoms)], cache=cache)
        assert not cold[0].cache_hit
        assert cache.counters.misses == 1 and len(cache) == 1
        warm = run_batch([ServiceQuery(g, sched, B, geoms)], cache=cache)
        assert warm[0].cache_hit
        assert cache.counters.hits == 1
        assert warm[0].trace_key == cold[0].trace_key
        assert [r.misses for r in warm[0].results] == [
            r.misses for r in cold[0].results
        ]

    def test_process_backend_batch_matches_serial(self, workload):
        g, sched, _trace = workload
        geoms = geometry_sweep([64, 128, 256, 512], B)
        queries = [ServiceQuery(g, sched, B, geoms, policy="lru")]
        serial = run_batch(queries, backend="serial")
        proc = run_batch(queries, backend="process", workers=2)
        assert [r.misses for r in serial[0].results] == [
            r.misses for r in proc[0].results
        ]

    def test_process_backend_merges_obs_work_counters(self, workload):
        """Worker metric deltas merged back from the pool equal the serial
        run's totals for the chunk-sum-invariant work counters (the
        backend-dependent ``backend.*`` scheduling counters excepted)."""
        from repro import obs
        from repro.obs import names as obs_names

        g, sched, _trace = workload
        geoms = geometry_sweep([64, 128, 256, 512], B)
        work = (
            obs_names.COMPILE_CALLS, obs_names.COMPILE_ACCESSES,
            obs_names.REPLAY_GEOMETRIES, obs_names.REPLAY_MISSES,
            obs_names.BATCH_QUERIES, obs_names.BATCH_DEDUPED,
            obs_names.BATCH_GROUPS,
        )
        snaps = {}
        for backend in ("serial", "process"):
            queries = [ServiceQuery(g, sched, B, geoms, policy="lru")]
            with obs.capture(enabled=True) as cap:
                run_batch(queries, backend=backend, workers=2)
            snaps[backend] = cap.snapshot
        serial_counters = snaps["serial"]["counters"]
        proc_counters = snaps["process"]["counters"]
        assert serial_counters[obs_names.REPLAY_GEOMETRIES] == len(geoms)
        for name in work:
            assert proc_counters.get(name, 0) == serial_counters.get(name, 0)

    def test_empty_batch(self):
        assert run_batch([]) == []

    def test_layout_field_resolves_to_an_optimized_placement(self, workload):
        g, sched, _trace = workload
        geoms = geometry_sweep([64, 128], B)
        plain, tuned = run_batch(
            [
                ServiceQuery(g, sched, B, geoms, policy="direct"),
                ServiceQuery(
                    g, sched, B, geoms, policy="direct",
                    layout="multiswap", layout_budget=40,
                ),
            ]
        )
        # the never-worse contract holds through the batch front door
        for r_tuned, r_plain in zip(tuned.results, plain.results):
            assert r_tuned.misses <= r_plain.misses

    def test_layout_seed_is_deterministic_through_run_batch(self, workload):
        g, sched, _trace = workload
        geoms = geometry_sweep([64, 128], B)
        q = ServiceQuery(
            g, sched, B, geoms, policy="direct", layout="smoothed",
            layout_budget=40, restarts=2, noise=0.5, seed=21,
        )
        first = run_batch([q])[0]
        second = run_batch([q])[0]
        assert [r.misses for r in first.results] == [
            r.misses for r in second.results
        ]

    def test_identical_layout_queries_dedup_after_resolution(self, workload):
        g, sched, _trace = workload
        geoms = geometry_sweep([64, 128], B)
        q = ServiceQuery(
            g, sched, B, geoms, policy="direct", layout="multiswap",
            layout_budget=40,
        )
        a1, a2 = run_batch([q, q])
        assert [a1.deduped, a2.deduped] == [False, True]
        assert [r.misses for r in a1.results] == [r.misses for r in a2.results]
