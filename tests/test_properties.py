"""Property-based tests (hypothesis) for core data structures and invariants.

These cover the invariants the correctness of every experiment rests on:
LRU residency bounds, OPT dominance, FIFO buffer semantics, gain/repetition
balance on random rate-matched pipelines, DP optimality versus brute force,
and schedule feasibility of every scheduler on random workloads.
"""

from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cache.base import CacheGeometry
from repro.cache.lru import LRUCache
from repro.cache.opt import simulate_opt
from repro.graphs.minbuf import min_buffer, verify_min_buffer
from repro.graphs.repetition import compute_gains, iteration_tokens, repetition_vector
from repro.graphs.sdf import Channel
from repro.graphs.topologies import pipeline
from repro.mem.layout import MemoryLayout, Region
from repro.runtime.buffers import ChannelBuffer

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
rates = st.tuples(st.integers(1, 5), st.integers(1, 5))


@st.composite
def pipelines(draw, max_n=10, max_state=30):
    n = draw(st.integers(2, max_n))
    states = draw(st.lists(st.integers(0, max_state), min_size=n, max_size=n))
    rs = draw(st.lists(rates, min_size=n - 1, max_size=n - 1))
    return pipeline(states, rs)


block_traces = st.lists(st.integers(0, 20), min_size=0, max_size=300)


# ----------------------------------------------------------------------
# cache properties
# ----------------------------------------------------------------------
class TestCacheProperties:
    @given(trace=block_traces, blocks=st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_lru_never_exceeds_capacity(self, trace, blocks):
        c = LRUCache(CacheGeometry(size=blocks * 4, block=4))
        for b in trace:
            c.access_block(b)
            assert c.resident_blocks() <= blocks

    @given(trace=block_traces, blocks=st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_opt_dominates_lru(self, trace, blocks):
        geo = CacheGeometry(size=blocks * 4, block=4)
        lru = LRUCache(geo)
        for b in trace:
            lru.access_block(b)
        assert simulate_opt(trace, geo).misses <= lru.stats.misses

    @given(trace=block_traces, blocks=st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_misses_at_least_distinct_blocks_capped(self, trace, blocks):
        geo = CacheGeometry(size=blocks * 4, block=4)
        lru = LRUCache(geo)
        for b in trace:
            lru.access_block(b)
        assert lru.stats.misses >= len(set(trace)) - 0  # cold misses mandatory
        assert lru.stats.accesses == len(trace)

    @given(trace=block_traces)
    @settings(max_examples=40, deadline=None)
    def test_bigger_lru_never_misses_more(self, trace):
        small = LRUCache(CacheGeometry(size=8, block=4))
        big = LRUCache(CacheGeometry(size=32, block=4))
        for b in trace:
            small.access_block(b)
            big.access_block(b)
        # LRU is a stack algorithm: inclusion property => monotone misses
        assert big.stats.misses <= small.stats.misses


# ----------------------------------------------------------------------
# buffer properties
# ----------------------------------------------------------------------
class TestBufferProperties:
    @given(
        cap=st.integers(1, 32),
        ops=st.lists(st.integers(1, 8), min_size=1, max_size=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_fifo_conservation(self, cap, ops):
        """Push/pop in lockstep: occupancy accounting always consistent and
        addresses stay within the region."""
        b = ChannelBuffer(0, Region(100, cap))
        for k in ops:
            k = min(k, cap)
            ranges = b.push_ranges(k)
            assert sum(length for _, length in ranges) == k
            for start, length in ranges:
                assert 100 <= start and start + length <= 100 + cap
            ranges = b.pop_ranges(k)
            assert sum(length for _, length in ranges) == k
            assert b.tokens == 0

    @given(cap=st.integers(2, 16), seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_interleaved_push_pop_never_corrupts(self, cap, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        b = ChannelBuffer(0, Region(0, cap))
        model = 0  # reference occupancy
        for _ in range(60):
            if rng.random() < 0.5 and model < cap:
                k = int(rng.integers(1, cap - model + 1))
                b.push_ranges(k)
                model += k
            elif model > 0:
                k = int(rng.integers(1, model + 1))
                b.pop_ranges(k)
                model -= k
            assert b.tokens == model


# ----------------------------------------------------------------------
# SDF properties
# ----------------------------------------------------------------------
class TestSdfProperties:
    @given(g=pipelines())
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_pipelines_always_rate_matched(self, g):
        gains = compute_gains(g)
        # balance equation holds on every channel
        for ch in g.channels():
            assert gains.edge_gain(ch.cid) == gains.gain(ch.dst) * ch.in_rate

    @given(g=pipelines())
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_repetition_vector_balances_every_channel(self, g):
        reps = repetition_vector(g)
        for ch in g.channels():
            assert reps[ch.src] * ch.out_rate == reps[ch.dst] * ch.in_rate

    @given(g=pipelines())
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_repetition_vector_minimal(self, g):
        from math import gcd

        reps = repetition_vector(g)
        acc = 0
        for r in reps.values():
            acc = gcd(acc, r)
        assert acc == 1

    @given(p=st.integers(1, 9), c=st.integers(1, 9))
    @settings(max_examples=60, deadline=None)
    def test_tight_minbuf_is_exactly_minimal(self, p, c):
        ch = Channel(cid=0, src="a", dst="b", out_rate=p, in_rate=c)
        tight = min_buffer(ch, convention="tight")
        assert verify_min_buffer(ch, tight)
        if tight > max(p, c):
            assert not verify_min_buffer(ch, tight - 1)


# ----------------------------------------------------------------------
# partitioning properties
# ----------------------------------------------------------------------
class TestPartitionProperties:
    @given(g=pipelines(max_n=8, max_state=20), m=st.integers(5, 40))
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_dp_matches_bruteforce(self, g, m):
        """O(n^2) DP equals exhaustive search over all segmentations."""
        from itertools import product

        from repro.core.pipeline import optimal_pipeline_partition, pipeline_chain
        from repro.errors import PartitionError

        c = 2.0
        order = g.pipeline_order()
        states = [g.state(n) for n in order]
        if max(states) > c * m:
            with pytest.raises(PartitionError):
                optimal_pipeline_partition(g, m, c=c)
            return
        _, chans = pipeline_chain(g)
        gains = compute_gains(g)
        n = len(order)
        best = None
        for cuts in product([0, 1], repeat=n - 1):
            seg_start = 0
            ok = True
            bw = Fraction(0)
            acc = states[0]
            for i, cut in enumerate(cuts):
                if cut:
                    bw += gains.edge_gain(chans[i].cid)
                    acc = 0
                acc += states[i + 1]
                if acc > c * m:
                    ok = False
                    break
            if ok and (best is None or bw < best):
                best = bw
        p = optimal_pipeline_partition(g, m, c=c)
        assert p.bandwidth() == best

    @given(g=pipelines(max_n=10, max_state=15), m=st.integers(15, 40))
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_theorem5_partition_invariants(self, g, m):
        from repro.core.pipeline import theorem5_partition

        p = theorem5_partition(g, m)
        assert p.is_well_ordered()
        assert p.max_component_state() <= 8 * m
        # segments contiguous in chain order
        flat = [n for comp in p.components for n in comp]
        assert flat == g.pipeline_order()


# ----------------------------------------------------------------------
# scheduler feasibility properties
# ----------------------------------------------------------------------
class TestSchedulerProperties:
    @given(g=pipelines(max_n=8, max_state=20), outs=st.integers(1, 60))
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_dynamic_pipeline_schedule_always_feasible(self, g, outs):
        from repro.core.pipeline import optimal_pipeline_partition
        from repro.core.partition_sched import pipeline_dynamic_schedule
        from repro.errors import PartitionError
        from repro.runtime.schedule import validate_schedule

        geom = CacheGeometry(size=32, block=4)
        try:
            part = optimal_pipeline_partition(g, geom.size, c=1.0)
        except PartitionError:
            return  # some module exceeds M: paper precondition violated
        sched = pipeline_dynamic_schedule(g, part, geom, target_outputs=outs)
        validate_schedule(g, sched)
        sink = g.pipeline_order()[-1]
        assert sched.count(sink) == outs

    @given(g=pipelines(max_n=7, max_state=20), batches=st.integers(1, 3))
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_inhomogeneous_schedule_always_drains(self, g, batches):
        from repro.core.dagpart import interval_dp_partition
        from repro.core.partition_sched import inhomogeneous_partition_schedule
        from repro.errors import PartitionError
        from repro.runtime.schedule import validate_schedule

        geom = CacheGeometry(size=32, block=4)
        try:
            part = interval_dp_partition(g, geom.size, c=2.0)
        except PartitionError:
            return
        sched = inhomogeneous_partition_schedule(g, part, geom, n_batches=batches)
        validate_schedule(g, sched, require_drained=True)


# ----------------------------------------------------------------------
# layout properties
# ----------------------------------------------------------------------
class TestLayoutProperties:
    @given(g=pipelines(max_n=10, max_state=20), block=st.sampled_from([1, 2, 4, 8]))
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_layout_always_disjoint_and_aligned(self, g, block):
        from repro.graphs.minbuf import min_buffers

        lay = MemoryLayout(block=block)
        lay.place_graph(g, min_buffers(g))
        lay.check_disjoint()
        for m in g.modules():
            assert lay.state_region(m.name).start % block == 0
