"""Tests for the dynamic (asynchronous) homogeneous-dag scheduler."""

import pytest

from repro.cache.base import CacheGeometry
from repro.core.dagpart import interval_dp_partition, refine_partition
from repro.core.dynamic_dag import dynamic_dag_schedule, ready_components
from repro.core.partition import Partition, whole_graph_partition
from repro.core.partition_sched import component_layout_order
from repro.core.tuning import required_geometry
from repro.errors import GraphError, ScheduleError
from repro.graphs.topologies import diamond, layered_random_dag, pipeline
from repro.runtime.executor import Executor
from repro.runtime.schedule import validate_schedule


@pytest.fixture
def big_diamond():
    return diamond(branch_len=5, ways=3, state=16)


@pytest.fixture
def dgeom():
    return CacheGeometry(size=64, block=8)


class TestReadyComponents:
    def test_source_component_initially_ready(self, big_diamond, dgeom):
        part = interval_dp_partition(big_diamond, dgeom.size, c=2.0)
        tokens = {ch.cid: 0 for ch in big_diamond.channels()}
        ready = ready_components(part, tokens, capacity=2 * dgeom.size, batch=dgeom.size)
        src_comp = part.component_of("src")
        assert src_comp in ready

    def test_downstream_not_ready_without_tokens(self, big_diamond, dgeom):
        part = interval_dp_partition(big_diamond, dgeom.size, c=2.0)
        tokens = {ch.cid: 0 for ch in big_diamond.channels()}
        ready = ready_components(part, tokens, capacity=2 * dgeom.size, batch=dgeom.size)
        snk_comp = part.component_of("snk")
        if part.k > 1:
            assert snk_comp not in ready


class TestDynamicDagSchedule:
    @pytest.mark.parametrize("policy", ["fifo", "topo"])
    def test_feasible_and_meets_target(self, big_diamond, dgeom, policy):
        part = interval_dp_partition(big_diamond, dgeom.size, c=2.0)
        sched = dynamic_dag_schedule(big_diamond, part, dgeom, target_outputs=150, policy=policy)
        validate_schedule(big_diamond, sched)
        assert sched.count("snk") >= 150

    def test_single_component(self, dgeom):
        g = diamond(branch_len=1, ways=2, state=4)
        part = whole_graph_partition(g)
        sched = dynamic_dag_schedule(g, part, dgeom, target_outputs=70)
        validate_schedule(g, sched)

    def test_rejects_inhomogeneous(self, dgeom):
        g = pipeline([4, 4], rates=[(2, 1)])
        part = whole_graph_partition(g)
        with pytest.raises(GraphError):
            dynamic_dag_schedule(g, part, dgeom, target_outputs=5)

    def test_rejects_bad_policy(self, big_diamond, dgeom):
        part = whole_graph_partition(big_diamond)
        with pytest.raises(ScheduleError):
            dynamic_dag_schedule(big_diamond, part, dgeom, target_outputs=5, policy="zzz")

    def test_rejects_bad_target(self, big_diamond, dgeom):
        part = whole_graph_partition(big_diamond)
        with pytest.raises(ScheduleError):
            dynamic_dag_schedule(big_diamond, part, dgeom, target_outputs=0)

    def test_matches_static_schedule_cost_roughly(self, big_diamond, dgeom):
        """The dynamic schedule should cost about the same as the static
        batch schedule — same amortization structure."""
        from repro.core.partition_sched import homogeneous_partition_schedule

        part = refine_partition(
            interval_dp_partition(big_diamond, dgeom.size, c=2.0), dgeom.size, c=2.0
        )
        aug = required_geometry(part, dgeom)
        order = component_layout_order(part)
        dyn = dynamic_dag_schedule(big_diamond, part, dgeom, target_outputs=4 * dgeom.size)
        res_dyn = Executor.measure(big_diamond, aug, dyn, layout_order=order)
        static = homogeneous_partition_schedule(big_diamond, part, dgeom, n_batches=4)
        res_static = Executor.measure(big_diamond, aug, static, layout_order=order)
        assert res_dyn.misses <= 2 * res_static.misses + 50

    def test_layered_dag(self, dgeom):
        g = layered_random_dag(4, 3, 12, seed=3)
        part = interval_dp_partition(g, dgeom.size, c=2.0)
        sched = dynamic_dag_schedule(g, part, dgeom, target_outputs=2 * dgeom.size)
        validate_schedule(g, sched)

    def test_fifo_policy_rotates_components(self, big_diamond, dgeom):
        part = interval_dp_partition(big_diamond, dgeom.size, c=2.0)
        if part.k < 2:
            pytest.skip("need multiple components")
        sched = dynamic_dag_schedule(big_diamond, part, dgeom, target_outputs=3 * dgeom.size)
        # every component must run at least once
        fired_comps = {part.component_of(f) for f in sched.firings}
        assert fired_comps == set(range(part.k))
