"""Acceptance tests for :mod:`repro.runtime.trace_cache`.

The cache is only safe if its keys are *stable* (same input → same digest
in any process, any session) and *sensitive* (any semantic change — one
firing, one gap block, a different placement order — changes the digest).
Both directions are pinned here, the stability direction across real
interpreter boundaries via subprocesses.  On-disk robustness gets the same
treatment: a corrupted, truncated, or wrong-version entry must read as a
miss that recompiles — never a crash, never stale data.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.baselines import interleaved_schedule
from repro.errors import CacheConfigError
from repro.graphs.apps import fm_radio
from repro.mem.layout import layout_objects
from repro.runtime import trace_cache as tc
from repro.runtime.compiled import compile_trace, compile_trace_uncached
from repro.runtime.schedule import Schedule
from repro.runtime.trace_cache import (
    TraceCache,
    cached_compile_trace,
    query_digest,
    trace_digest,
)
from repro.cache.base import CacheGeometry

B = 8
SRC = str(Path(__file__).resolve().parents[1] / "src")


@pytest.fixture(scope="module")
def workload():
    g = fm_radio()
    sched = interleaved_schedule(g, n_iterations=2)
    return g, sched


# ----------------------------------------------------------------------
# digest stability
# ----------------------------------------------------------------------
_DIGEST_SCRIPT = """
import sys
sys.path.insert(0, {src!r})
from repro.core.baselines import interleaved_schedule
from repro.graphs.apps import fm_radio
from repro.runtime.trace_cache import trace_digest

g = fm_radio()
sched = interleaved_schedule(g, n_iterations=2)
print(trace_digest(g, sched, {block}))
"""


def _digest_in_fresh_interpreter(block: int = B) -> str:
    out = subprocess.run(
        [sys.executable, "-c", _DIGEST_SCRIPT.format(src=SRC, block=block)],
        capture_output=True,
        text=True,
        check=True,
    )
    return out.stdout.strip()


class TestDigestStability:
    def test_repeated_calls_agree(self, workload):
        g, sched = workload
        assert trace_digest(g, sched, B) == trace_digest(g, sched, B)

    def test_digest_is_lowercase_sha256_hex(self, workload):
        g, sched = workload
        key = trace_digest(g, sched, B)
        assert len(key) == 64
        assert all(c in "0123456789abcdef" for c in key)

    def test_stable_across_interpreter_sessions(self, workload):
        # two *separate* fresh interpreters and this one must all agree —
        # the digest may not depend on hash seeds, id()s, or dict order
        g, sched = workload
        here = trace_digest(g, sched, B)
        assert _digest_in_fresh_interpreter() == here
        assert _digest_in_fresh_interpreter() == here

    def test_rebuilt_equal_inputs_agree_in_process(self):
        g1, s1 = fm_radio(), None
        s1 = interleaved_schedule(g1, n_iterations=2)
        g2 = fm_radio()
        s2 = interleaved_schedule(g2, n_iterations=2)
        assert trace_digest(g1, s1, B) == trace_digest(g2, s2, B)


class TestDigestSensitivity:
    def test_one_firing_changes_the_key(self, workload):
        g, sched = workload
        base = trace_digest(g, sched, B)
        longer = sched.extended([sched.firings[0]])
        dropped = Schedule(
            sched.firings[:-1], capacities=sched.capacities, label=sched.label
        )
        swapped = list(sched.firings)
        i = next(k for k in range(len(swapped) - 1) if swapped[k] != swapped[k + 1])
        swapped[i], swapped[i + 1] = swapped[i + 1], swapped[i]
        reordered = Schedule(swapped, capacities=sched.capacities, label=sched.label)
        assert len({base, trace_digest(g, longer, B),
                    trace_digest(g, dropped, B),
                    trace_digest(g, reordered, B)}) == 4

    def test_block_size_changes_the_key(self, workload):
        g, sched = workload
        assert trace_digest(g, sched, B) != trace_digest(g, sched, 2 * B)

    def test_capacities_change_the_key(self, workload):
        g, sched = workload
        caps = {cid: 64 for cid in sched.capacities}
        bumped = dict(caps)
        bumped[0] = 128
        assert trace_digest(g, sched, B, capacities=caps) != trace_digest(
            g, sched, B, capacities=bumped
        )

    def test_layout_order_changes_the_key(self, workload):
        g, sched = workload
        names = [m.name for m in g.modules()]
        assert trace_digest(g, sched, B, layout_order=names) != trace_digest(
            g, sched, B, layout_order=list(reversed(names))
        )

    def test_count_external_changes_the_key(self, workload):
        g, sched = workload
        assert trace_digest(g, sched, B, count_external=True) != trace_digest(
            g, sched, B, count_external=False
        )

    def test_placement_order_and_one_gap_block_change_the_key(self, workload):
        g, sched = workload
        objs = layout_objects(g)
        base = trace_digest(g, sched, B, placement=objs)
        flipped = trace_digest(g, sched, B, placement=list(reversed(objs)))
        one_gap = trace_digest(g, sched, B, placement=objs, gaps={objs[0]: 1})
        two_gap = trace_digest(g, sched, B, placement=objs, gaps={objs[0]: 2})
        assert len({base, flipped, one_gap, two_gap}) == 4

    def test_gap_dict_order_does_not_matter(self, workload):
        g, sched = workload
        objs = layout_objects(g)
        a = {objs[0]: 1, objs[1]: 2}
        b = {objs[1]: 2, objs[0]: 1}
        assert trace_digest(g, sched, B, placement=objs, gaps=a) == trace_digest(
            g, sched, B, placement=objs, gaps=b
        )


class TestQueryDigest:
    def test_ways_change_where_it_matters(self, workload):
        # the *trace* key ignores geometry; the *query* key must not —
        # a ways change reorganizes the cache and changes the misses
        g, sched = workload
        key = trace_digest(g, sched, B)
        full = [CacheGeometry(size=256, block=B)]
        assoc = [CacheGeometry(size=256, block=B, ways=4)]
        xor = [CacheGeometry(size=256, block=B, ways=4, index_scheme="xor")]
        assert len({
            query_digest(key, full, "lru"),
            query_digest(key, assoc, "lru"),
            query_digest(key, xor, "lru"),
            query_digest(key, full, "opt"),
        }) == 4

    def test_stable_and_order_sensitive(self, workload):
        g, sched = workload
        key = trace_digest(g, sched, B)
        grid = [CacheGeometry(size=s, block=B) for s in (64, 128)]
        assert query_digest(key, grid, "lru") == query_digest(key, grid, "lru")
        assert query_digest(key, grid, "lru") != query_digest(key, grid[::-1], "lru")


# ----------------------------------------------------------------------
# the on-disk store
# ----------------------------------------------------------------------
def _compile(workload, block=B, **kwargs):
    g, sched = workload
    return compile_trace_uncached(g, sched, block, **kwargs)


class TestTraceCacheStore:
    def test_roundtrip_preserves_every_field(self, workload, tmp_path):
        g, sched = workload
        cache = TraceCache(tmp_path)
        key = trace_digest(g, sched, B)
        trace = _compile(workload)
        cache.put(key, trace)
        got = cache.get(key)
        assert got is not None
        assert np.array_equal(got.blocks, trace.blocks)
        assert got.phases is not None and np.array_equal(got.phases, trace.phases)
        assert got.label == trace.label
        assert got.block == trace.block
        assert got.firings == trace.firings
        assert got.fire_counts == trace.fire_counts
        assert got.source_fires == trace.source_fires
        assert got.sink_fires == trace.sink_fires
        assert cache.counters.hits == 1 and cache.counters.misses == 0

    def test_absent_key_is_a_plain_miss(self, tmp_path):
        cache = TraceCache(tmp_path)
        assert cache.get("ab" * 32) is None
        assert cache.counters.misses == 1 and cache.counters.corrupt == 0

    @pytest.mark.parametrize("bad", ["", "XYZ", "AB" * 32, "../../etc/passwd", "g" * 64])
    def test_non_hex_keys_rejected(self, tmp_path, bad):
        cache = TraceCache(tmp_path)
        with pytest.raises(CacheConfigError, match="hex"):
            cache.get(bad)

    def test_nonpositive_cap_rejected(self, tmp_path):
        with pytest.raises(CacheConfigError, match="max_bytes"):
            TraceCache(tmp_path, max_bytes=0)

    def test_len_total_bytes_clear(self, workload, tmp_path):
        cache = TraceCache(tmp_path)
        cache.put("aa" * 32, _compile(workload))
        cache.put("bb" * 32, _compile(workload, block=2 * B))
        assert len(cache) == 2
        assert cache.total_bytes() > 0
        cache.clear()
        assert len(cache) == 0 and cache.total_bytes() == 0


class TestCorruptionRecovery:
    def _seeded(self, workload, tmp_path):
        cache = TraceCache(tmp_path)
        key = "cd" * 32
        cache.put(key, _compile(workload))
        return cache, key, cache._entry_path(key)

    def test_truncated_entry_recompiles_not_crashes(self, workload, tmp_path):
        cache, key, entry = self._seeded(workload, tmp_path)
        entry.write_bytes(entry.read_bytes()[:40])
        assert cache.get(key) is None
        assert cache.counters.corrupt == 1 and cache.counters.misses == 1
        assert not entry.exists()  # poisoned entry removed, not retried forever

    def test_garbage_entry_recompiles_not_crashes(self, workload, tmp_path):
        cache, key, entry = self._seeded(workload, tmp_path)
        entry.write_bytes(b"not an npz archive at all")
        assert cache.get(key) is None
        assert cache.counters.corrupt == 1

    def test_wrong_format_version_reads_as_corrupt(self, workload, tmp_path, monkeypatch):
        cache, key, entry = self._seeded(workload, tmp_path)
        monkeypatch.setattr(tc, "FORMAT_VERSION", tc.FORMAT_VERSION + 1)
        assert cache.get(key) is None
        assert cache.counters.corrupt == 1

    def test_key_mismatch_reads_as_corrupt(self, workload, tmp_path):
        cache, key, entry = self._seeded(workload, tmp_path)
        other = "ef" * 32
        os.replace(entry, cache._entry_path(other))  # entry filed under wrong key
        assert cache.get(other) is None
        assert cache.counters.corrupt == 1

    def test_cached_compile_recovers_from_corruption(self, workload, tmp_path):
        g, sched = workload
        cache = TraceCache(tmp_path)
        trace, key, hit = cached_compile_trace(g, sched, B, cache=cache)
        assert not hit
        cache._entry_path(key).write_bytes(b"\x00" * 16)
        again, key2, hit2 = cached_compile_trace(g, sched, B, cache=cache)
        assert key2 == key and not hit2  # recompiled, silently
        assert np.array_equal(again.blocks, trace.blocks)
        # and the rewritten entry is healthy again
        _third, _k, hit3 = cached_compile_trace(g, sched, B, cache=cache)
        assert hit3


class TestLRUEviction:
    def _put_sized(self, cache, key, workload, block):
        cache.put(key, _compile(workload, block=block))
        return cache._entry_path(key).stat().st_size

    def test_least_recently_used_goes_first(self, workload, tmp_path):
        cache = TraceCache(tmp_path, max_bytes=10**9)
        a, b, c = "aa" * 32, "bb" * 32, "cc" * 32
        size = self._put_sized(cache, a, workload, B)
        self._put_sized(cache, b, workload, 2 * B)
        # age the entries deterministically (mtime is the LRU clock), then
        # touch `a` through a hit so `b` becomes the oldest
        os.utime(cache._entry_path(a), (1000, 1000))
        os.utime(cache._entry_path(b), (2000, 2000))
        assert cache.get(a) is not None
        cache.max_bytes = int(2.2 * size)
        self._put_sized(cache, c, workload, 4 * B)
        assert not cache._entry_path(b).exists()
        assert cache._entry_path(a).exists() and cache._entry_path(c).exists()
        assert cache.counters.evictions == 1

    def test_put_never_evicts_its_own_payload(self, workload, tmp_path):
        cache = TraceCache(tmp_path, max_bytes=1)  # cap below any entry
        cache.put("aa" * 32, _compile(workload))
        assert len(cache) == 1  # oversized entry stored, and is the only one
        cache.put("bb" * 32, _compile(workload, block=2 * B))
        assert len(cache) == 1
        assert cache._entry_path("bb" * 32).exists()
        assert cache.counters.evictions == 1

    def test_under_cap_never_evicts(self, workload, tmp_path):
        cache = TraceCache(tmp_path)
        for key in ("aa" * 32, "bb" * 32, "cc" * 32):
            cache.put(key, _compile(workload))
        assert len(cache) == 3 and cache.counters.evictions == 0


# ----------------------------------------------------------------------
# the front door + configured default
# ----------------------------------------------------------------------
class TestCachedCompile:
    def test_no_cache_no_key_is_plain_compile(self, workload):
        g, sched = workload
        trace, key, hit = cached_compile_trace(g, sched, B)
        assert key == "" and not hit
        assert np.array_equal(trace.blocks, _compile(workload).blocks)

    def test_precomputed_key_is_trusted(self, workload, tmp_path):
        g, sched = workload
        cache = TraceCache(tmp_path)
        key = trace_digest(g, sched, B)
        _t, k1, h1 = cached_compile_trace(g, sched, B, cache=cache, key=key)
        assert k1 == key and not h1
        _t2, k2, h2 = cached_compile_trace(g, sched, B, cache=cache, key=key)
        assert k2 == key and h2

    def test_hit_returns_fresh_arrays(self, workload, tmp_path):
        # cached traces must be safe to remap/slice without aliasing
        g, sched = workload
        cache = TraceCache(tmp_path)
        cached_compile_trace(g, sched, B, cache=cache)
        t1, _k, _h = cached_compile_trace(g, sched, B, cache=cache)
        t2, _k, _h = cached_compile_trace(g, sched, B, cache=cache)
        t1.blocks[0] = -999
        assert t2.blocks[0] != -999

    def test_compile_trace_consults_configured_default(self, workload, tmp_path):
        g, sched = workload
        cache = TraceCache(tmp_path)
        prev = tc.configure(cache)
        try:
            cold = compile_trace(g, sched, B)
            warm = compile_trace(g, sched, B)
        finally:
            tc.configure(prev)
        assert cache.counters.misses == 1 and cache.counters.hits == 1
        assert np.array_equal(cold.blocks, warm.blocks)
        assert len(cache) == 1

    def test_configure_accepts_paths_and_restores(self, tmp_path):
        prev = tc.configure(tmp_path / "cachedir")
        try:
            installed = tc.default_cache()
            assert isinstance(installed, TraceCache)
            assert installed.path == tmp_path / "cachedir"
        finally:
            tc.configure(prev)
        assert tc.default_cache() is prev
