"""Tests for cyclo-static dataflow support (phase expansion to SDF)."""

import pytest

from repro.cache.base import CacheGeometry
from repro.core.dagpart import interval_dp_partition
from repro.core.partition_sched import (
    component_layout_order,
    inhomogeneous_partition_schedule,
)
from repro.core.tuning import required_geometry
from repro.errors import GraphError
from repro.graphs.csdf import CsdfGraph, expand_csdf, phase_name
from repro.graphs.repetition import repetition_vector
from repro.graphs.validate import validate_graph
from repro.runtime.executor import Executor
from repro.runtime.schedule import validate_schedule


def distributor_graph() -> CsdfGraph:
    """src -> 2-phase distributor -> two workers -> 2-phase joiner -> snk."""
    g = CsdfGraph("distrib")
    g.add_module("src", phases=1, state=8)
    g.add_module("dist", phases=2, state=4)
    g.add_module("w0", phases=1, state=16)
    g.add_module("w1", phases=1, state=16)
    g.add_module("join", phases=2, state=4)
    g.add_module("snk", phases=1, state=8)
    g.add_channel("src", "dist", out_seq=[1], in_seq=[1, 1])
    g.add_channel("dist", "w0", out_seq=[1, 0], in_seq=[1])
    g.add_channel("dist", "w1", out_seq=[0, 1], in_seq=[1])
    g.add_channel("w0", "join", out_seq=[1], in_seq=[1, 0])
    g.add_channel("w1", "join", out_seq=[1], in_seq=[0, 1])
    g.add_channel("join", "snk", out_seq=[1, 1], in_seq=[2])
    return g


class TestCsdfModel:
    def test_phase_count_validation(self):
        g = CsdfGraph()
        with pytest.raises(GraphError):
            g.add_module("a", phases=0)

    def test_hash_reserved(self):
        g = CsdfGraph()
        with pytest.raises(GraphError):
            g.add_module("a#b")

    def test_rate_sequence_length_checked(self):
        g = CsdfGraph()
        g.add_module("a", phases=2)
        g.add_module("b", phases=1)
        with pytest.raises(GraphError):
            g.add_channel("a", "b", out_seq=[1], in_seq=[1])  # needs 2 entries

    def test_zero_cycle_total_rejected(self):
        g = CsdfGraph()
        g.add_module("a", phases=2)
        g.add_module("b", phases=1)
        with pytest.raises(GraphError):
            g.add_channel("a", "b", out_seq=[0, 0], in_seq=[1])

    def test_negative_rate_rejected(self):
        g = CsdfGraph()
        g.add_module("a", phases=1)
        g.add_module("b", phases=1)
        with pytest.raises(GraphError):
            g.add_channel("a", "b", out_seq=[-1], in_seq=[1])

    def test_duplicate_module_rejected(self):
        g = CsdfGraph()
        g.add_module("a")
        with pytest.raises(GraphError):
            g.add_module("a")


class TestExpansion:
    def test_distributor_expands_valid(self):
        sdf, pm = expand_csdf(distributor_graph())
        report = validate_graph(sdf)
        assert report.ok, report.errors
        assert pm["dist"] == [phase_name("dist", 0), phase_name("dist", 1)]
        assert pm["src"] == ["src"]  # single-phase modules keep their name

    def test_phases_fire_equally(self):
        sdf, pm = expand_csdf(distributor_graph())
        reps = repetition_vector(sdf)
        assert reps["dist#0"] == reps["dist#1"]
        assert reps["join#0"] == reps["join#1"]

    def test_source_rate_reflects_cycle_totals(self):
        sdf, _ = expand_csdf(distributor_graph())
        reps = repetition_vector(sdf)
        # dist consumes 2 per cycle; src produces 1 per firing
        assert reps["src"] == 2 * reps["dist#0"]

    def test_phase_state_replicated(self):
        g = CsdfGraph()
        g.add_module("a", phases=3, state=10)
        g.add_module("b", phases=1, state=1)
        g.add_channel("a", "b", out_seq=[1, 1, 1], in_seq=[3])
        sdf, pm = expand_csdf(g)
        for p in pm["a"]:
            assert sdf.state(p) == 10

    def test_collector_direction(self):
        # dst cycle total (2) larger than src's (1): I % O == 0 path
        g = CsdfGraph()
        g.add_module("a", phases=1, state=2)
        g.add_module("b", phases=2, state=2)
        g.add_channel("a", "b", out_seq=[1], in_seq=[1, 1])
        sdf, _ = expand_csdf(g)
        assert validate_graph(sdf).ok

    def test_non_dividing_totals_rejected(self):
        g = CsdfGraph()
        g.add_module("a", phases=2)
        g.add_module("b", phases=3)
        g.add_channel("a", "b", out_seq=[1, 1], in_seq=[1, 1, 1])  # O=2, I=3
        with pytest.raises(GraphError, match="divide"):
            expand_csdf(g)

    def test_delay_carried_to_expansion(self):
        g = CsdfGraph()
        g.add_module("a", phases=1)
        g.add_module("b", phases=1)
        g.add_channel("a", "b", out_seq=[2], in_seq=[2], delay=2)
        sdf, _ = expand_csdf(g)
        total_delay = sum(ch.delay for ch in sdf.channels())
        assert total_delay == 2


class TestCsdfEndToEnd:
    def test_partition_and_schedule_expanded_graph(self):
        sdf, _ = expand_csdf(distributor_graph())
        M = 32
        geom = CacheGeometry(size=M, block=4)
        part = interval_dp_partition(sdf, M, c=2.0)
        sched = inhomogeneous_partition_schedule(sdf, part, geom, n_batches=2)
        validate_schedule(sdf, sched, require_drained=True)
        res = Executor.measure(
            sdf,
            required_geometry(part, geom),
            sched,
            layout_order=component_layout_order(part),
        )
        assert res.misses > 0
        assert res.source_fires > 0
