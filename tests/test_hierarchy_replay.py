"""Differential and property tests for the two-level hierarchy replay.

The acceptance criterion of the hierarchy rewiring: the vectorized
``policy="two_level"`` kernel (:mod:`repro.runtime.replay`) must agree *per
access* with the stepwise :class:`~repro.cache.hierarchy.TwoLevelCache`
oracle on random traces and a grid of (L1, L2) organizations — exact
miss-position equality, not approximate agreement — plus the structural
properties an inclusive hierarchy must satisfy (infinite-L2 degeneration,
capacity ordering, level-mask consistency).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.base import CacheGeometry
from repro.cache.hierarchy import TwoLevelCache, TwoLevelGeometry
from repro.cache.policy import available_policies, stepwise_trace_misses
from repro.core.baselines import single_appearance_schedule
from repro.errors import CacheConfigError
from repro.graphs.apps import fm_radio
from repro.runtime.compiled import compile_trace, measure_compiled, simulate_trace
from repro.runtime.executor import Executor
from repro.runtime.replay import (
    hierarchy_level_masks,
    replay_miss_masks,
    replay_misses,
)
from repro.testing.harness import differential_grid, replay_kernel, stepwise_oracle

B = 8


def stepwise_mask(trace, geometry):
    return [bool(m) for m in stepwise_trace_misses(trace, geometry, "two_level")]


def _grid():
    """(L1, L2) organizations covering the interesting corners: direct and
    set-associative L1s (both index schemes), L2 == L1 (equal geometries),
    and L2 >> L1."""
    points = []
    for l1_frames, l1_ways, l1_scheme in (
        (2, None, "mod"),
        (4, None, "mod"),
        (4, 1, "mod"),
        (4, 1, "xor"),
        (8, 2, "mod"),
        (8, 2, "xor"),
        (16, 1, "mod"),
    ):
        l1 = CacheGeometry(
            size=l1_frames * B, block=B, ways=l1_ways, index_scheme=l1_scheme
        )
        for l2_frames, l2_ways, l2_scheme in (
            (l1_frames, None, "mod"),  # equal capacity
            (2 * l1_frames, None, "mod"),
            (32, None, "mod"),
            (32, 4, "mod"),
            (32, 4, "xor"),  # skewed L2 behind any L1
            (64, 1, "mod"),  # direct-mapped L2
            (64, 1, "xor"),
        ):
            if l2_frames < l1_frames:
                continue
            points.append(
                TwoLevelGeometry(
                    l1,
                    CacheGeometry(
                        size=l2_frames * B, block=B, ways=l2_ways,
                        index_scheme=l2_scheme,
                    ),
                )
            )
    return points


class TestTwoLevelGeometry:
    def test_registered_everywhere(self):
        from repro.runtime.replay import available_replay_policies

        assert "two_level" in available_policies()
        assert "two_level" in available_replay_policies()

    def test_block_property_and_describe(self):
        tg = TwoLevelGeometry(CacheGeometry(64, 8), CacheGeometry(256, 8, ways=4))
        assert tg.block == 8
        assert "L1=64w" in tg.describe() and "4-way" in tg.describe()

    def test_l2_smaller_than_l1_rejected(self):
        with pytest.raises(CacheConfigError, match=r"L2 \(64\) must be at least"):
            TwoLevelGeometry(CacheGeometry(128, 8), CacheGeometry(64, 8))

    def test_mismatched_blocks_rejected(self):
        # the replay drives both levels from one block trace
        with pytest.raises(CacheConfigError, match="one block size"):
            TwoLevelGeometry(CacheGeometry(64, 4), CacheGeometry(256, 8))

    def test_non_geometry_levels_rejected(self):
        with pytest.raises(CacheConfigError):
            TwoLevelGeometry(64, CacheGeometry(256, 8))

    def test_plain_geometry_rejected_by_policy(self):
        with pytest.raises(CacheConfigError, match="TwoLevelGeometry"):
            stepwise_trace_misses([0, 1], CacheGeometry(64, 8), "two_level")
        with pytest.raises(CacheConfigError, match="TwoLevelGeometry"):
            replay_miss_masks(np.asarray([0, 1]), [CacheGeometry(64, 8)], "two_level")


class TestTwoLevelDifferential:
    @given(trace=st.lists(st.integers(0, 40), max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_masks_match_stepwise(self, trace):
        differential_grid(
            replay_kernel("two_level"), stepwise_oracle("two_level"), _grid(), trace
        )

    def test_long_skewed_trace(self):
        rng = np.random.default_rng(17)
        trace = (rng.zipf(1.4, size=10_000) % 120).astype(np.int64)
        differential_grid(
            replay_kernel("two_level"), stepwise_oracle("two_level"), _grid(), trace
        )

    def test_empty_trace(self):
        empty = np.zeros(0, dtype=np.int64)
        masks = replay_miss_masks(empty, _grid(), "two_level")
        assert all(m.shape == (0,) for m in masks)

    def test_workers_do_not_change_results(self):
        rng = np.random.default_rng(23)
        trace = rng.integers(0, 80, size=4_000)
        geoms = _grid()
        serial = replay_misses(trace, geoms, "two_level")
        threaded = replay_misses(trace, geoms, "two_level", workers=4)
        assert serial == threaded


class TestTwoLevelProperties:
    def setup_method(self):
        rng = np.random.default_rng(29)
        self.trace = rng.integers(0, 96, size=5_000)

    @given(
        trace=st.lists(st.integers(0, 30), min_size=1, max_size=200),
        l1_frames=st.sampled_from([1, 2, 4, 8]),
    )
    @settings(max_examples=40, deadline=None)
    def test_infinite_l2_degenerates_to_single_level(self, trace, l1_frames):
        """With an L2 no trace can outgrow, the hierarchy's L1 behaves as a
        single-level L1 and memory transfers hit the compulsory floor."""
        arr = np.asarray(trace, dtype=np.int64)
        l1 = CacheGeometry(size=l1_frames * B, block=B)
        inf_l2 = CacheGeometry(size=max(64, len(trace)) * B, block=B)
        l1_mask, mem_mask = hierarchy_level_masks(arr, TwoLevelGeometry(l1, inf_l2))
        (single,) = replay_miss_masks(arr, [l1], "lru")
        assert l1_mask.tolist() == single.tolist()
        assert int(mem_mask.sum()) == len(set(trace))  # compulsory misses only

    def test_memory_misses_subset_of_l1_misses(self):
        for tg in _grid():
            l1_mask, mem_mask = hierarchy_level_masks(self.trace, tg)
            assert bool((mem_mask <= l1_mask).all()), tg.describe()

    def test_larger_l2_never_hurts_behind_fixed_l1(self):
        # fixed L1 => fixed miss sub-trace; LRU inclusion applies to the L2
        l1 = CacheGeometry(size=4 * B, block=B)
        geoms = [
            TwoLevelGeometry(l1, CacheGeometry(size=c * B, block=B))
            for c in (4, 8, 16, 32, 64)
        ]
        misses = replay_misses(self.trace, geoms, "two_level")
        assert misses == sorted(misses, reverse=True)

    def test_equal_geometries_still_filter(self):
        # L2 == L1 capacity is legal; L2 orders by miss time, not access
        # time, so it may hit where L1 missed — but never transfers more
        # than an L1-sized single level misses
        l1 = CacheGeometry(size=4 * B, block=B)
        tg = TwoLevelGeometry(l1, l1)
        (mem,) = replay_misses(self.trace, [tg], "two_level")
        (single,) = replay_misses(self.trace, [l1], "lru")
        assert mem <= single
        assert mem == sum(stepwise_mask(self.trace.tolist(), tg))

    def test_l2_frames_below_l1_frames_rejected_everywhere(self):
        l1 = CacheGeometry(size=16 * B, block=B)
        l2 = CacheGeometry(size=8 * B, block=B)
        with pytest.raises(CacheConfigError):
            TwoLevelGeometry(l1, l2)
        with pytest.raises(CacheConfigError):
            TwoLevelCache(l1, l2)


class TestSimulateTraceTwoLevel:
    """End-to-end: compiled hierarchy sweeps vs the stepwise executor."""

    def _workload(self):
        g = fm_radio(taps=16, bands=3)
        return g, single_appearance_schedule(g, n_iterations=6)

    def test_matches_executor_with_phases(self):
        g, sched = self._workload()
        l1 = CacheGeometry(size=128, block=B)
        l2 = CacheGeometry(size=512, block=B)
        trace = compile_trace(g, sched, B)
        fast = simulate_trace(trace, [TwoLevelGeometry(l1, l2)], policy="two_level")[0]
        ref = Executor.measure(g, l2, sched, cache=TwoLevelCache(l1, l2))
        assert fast.misses == ref.misses
        assert fast.accesses == ref.accesses
        assert fast.phase_misses == ref.phase_misses
        assert fast.source_fires == ref.source_fires

    def test_measure_compiled_two_level(self):
        g, sched = self._workload()
        tg = TwoLevelGeometry(
            CacheGeometry(size=128, block=B), CacheGeometry(size=512, block=B)
        )
        res = measure_compiled(g, tg, sched, policy="two_level")
        lru = measure_compiled(g, tg.l2, sched)  # single level of L2's size
        assert res.misses <= measure_compiled(g, tg.l1, sched).misses
        assert res.misses >= 0 and res.accesses == lru.accesses

    def test_block_mismatch_rejected(self):
        g, sched = self._workload()
        trace = compile_trace(g, sched, B)
        tg = TwoLevelGeometry(CacheGeometry(64, 4), CacheGeometry(256, 4))
        with pytest.raises(CacheConfigError, match="block"):
            simulate_trace(trace, [tg], policy="two_level")

    def test_one_l1_pass_amortizes_grid(self):
        # one compiled trace answers a whole (L1, L2) grid in one call, and
        # rows grouped by L1 share their L1 column exactly
        g, sched = self._workload()
        trace = compile_trace(g, sched, B)
        l1s = [CacheGeometry(size=s, block=B) for s in (64, 128)]
        l2s = [CacheGeometry(size=s, block=B) for s in (256, 512, 1024)]
        grid = [TwoLevelGeometry(a, b) for a in l1s for b in l2s]
        results = simulate_trace(trace, grid, policy="two_level", workers=3)
        assert len(results) == 6
        for tg, res in zip(grid, results):
            ref = sum(stepwise_mask(trace.blocks.tolist(), tg))
            assert res.misses == ref, tg.describe()
