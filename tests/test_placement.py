"""Tests for the conflict-aware placement subsystem (`repro.mem.placement`).

Three layers, mirroring the subsystem's claims:

* **Exactness** — the block-remap cost model must equal a fresh compile
  under the candidate placement, block for block, and its scores must equal
  the *stepwise* simulators' miss counts (the differential suite the
  acceptance criteria name).
* **Invariance** — fully-associative LRU is provably layout-blind, so any
  permutation of the placement must leave its miss count bit-identical
  (property-based, stepwise-LRU oracle), including the set-associative edge
  cases ``sets > #distinct blocks`` and ``ways == frames``.
* **Optimization** — on the A7 workload the swap-refined placement strictly
  reduces direct-mapped misses vs the seed topological layout, and the
  optimizer never returns a placement worse than the seed.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.cache.base import CacheGeometry
from repro.cache.policy import stepwise_trace_misses
from repro.core.baselines import single_appearance_schedule
from repro.errors import LayoutError
from repro.graphs.minbuf import min_buffers
from repro.graphs.topologies import diamond, pipeline
from repro.mem.facility import multiswap_refine, smoothed_search
from repro.mem.layout import MemoryLayout, layout_objects
from repro.mem.placement import (
    available_placements,
    build_instance,
    conflict_graph,
    get_placement,
    greedy_color_order,
    normalize_targets,
    optimize_instance,
    optimize_placement,
    placement_cost,
    placement_costs,
    remap_blocks,
    remap_trace,
    swap_refine,
)
from repro.runtime.compiled import compile_trace, simulate_trace
from repro.runtime.executor import Executor
from repro.testing.harness import differential_grid, replay_kernel, stepwise_oracle

B = 8


def small_workload():
    g = pipeline([12, 20, 6, 28, 10])
    sched = single_appearance_schedule(g, n_iterations=12)
    return g, sched


def des_workload(inputs=256, M=256):
    from repro.analysis.sweeps import des_partitioned_workload

    g, sched, _part, run_geom = des_partitioned_workload(M=M, B=B, inputs=inputs)
    return g, sched, run_geom


def shuffled(objects, seed):
    rng = np.random.default_rng(seed)
    order = list(objects)
    rng.shuffle(order)
    return order


# ----------------------------------------------------------------------
# MemoryLayout placement hook
# ----------------------------------------------------------------------
class TestPlacementHook:
    def test_placement_matches_default_objects(self):
        g = diamond(branch_len=2, ways=2, state=9)
        caps = min_buffers(g)
        a, b = MemoryLayout(block=B), MemoryLayout(block=B)
        a.place_graph(g, caps)
        b.place_graph(g, caps, placement=layout_objects(g))
        for m in g.module_names():
            assert a.state_region(m) == b.state_region(m)
        for ch in g.channels():
            assert a.buffer_region(ch.cid) == b.buffer_region(ch.cid)

    def test_interleaved_placement_is_aligned_and_disjoint(self):
        g = diamond(branch_len=2, ways=2, state=9)
        caps = min_buffers(g)
        plan = layout_objects(g)
        plan = plan[1::2] + plan[0::2]  # interleave buffers and states
        lay = MemoryLayout(block=B)
        lay.place_graph(g, caps, placement=plan)
        lay.check_disjoint()
        for m in g.module_names():
            assert lay.state_region(m).start % B == 0
        for ch in g.channels():
            assert lay.buffer_region(ch.cid).start % B == 0

    def test_order_and_placement_mutually_exclusive(self):
        g = pipeline([8, 8])
        lay = MemoryLayout(block=B)
        with pytest.raises(LayoutError, match="not both"):
            lay.place_graph(
                g, min_buffers(g), order=["m0", "m1"], placement=layout_objects(g)
            )

    @pytest.mark.parametrize(
        "mangle",
        [
            lambda plan: plan[:-1],  # missing object
            lambda plan: plan + [plan[0]],  # duplicate
            lambda plan: plan[:-1] + [("buffer", 999)],  # unknown key
            lambda plan: plan[:-1] + [("heap", "m0")],  # unknown kind
        ],
    )
    def test_bad_placement_rejected(self, mangle):
        g = pipeline([8, 8])
        lay = MemoryLayout(block=B)
        with pytest.raises(LayoutError):
            lay.place_graph(g, min_buffers(g), placement=mangle(layout_objects(g)))


# ----------------------------------------------------------------------
# block-remap exactness: the heart of the cost model
# ----------------------------------------------------------------------
class TestRemapExactness:
    def test_seed_order_is_identity(self):
        g, sched = small_workload()
        inst = build_instance(g, sched, B)
        assert (remap_blocks(inst, list(inst.objects)) == inst.trace.blocks).all()

    def test_generator_order_not_silently_exhausted(self):
        # order= is consumed by both the compiler and layout_objects; a
        # one-shot iterable must not leave the instance with missing objects
        g, sched = small_workload()
        names = list(reversed(g.topological_order()))
        inst = build_instance(g, sched, B, order=iter(names))
        ref = build_instance(g, sched, B, order=names)
        assert inst.objects == ref.objects
        assert (inst.trace.blocks == ref.trace.blocks).all()
        assert (remap_blocks(inst, list(inst.objects)) == inst.trace.blocks).all()

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_remap_equals_fresh_compile(self, seed):
        g, sched = small_workload()
        inst = build_instance(g, sched, B)
        order = shuffled(inst.objects, seed)
        fresh = compile_trace(g, sched, B, placement=order)
        assert (remap_blocks(inst, order) == fresh.blocks).all()

    @pytest.mark.parametrize("policy", ["direct", "lru", "opt"])
    def test_cost_matches_stepwise_simulation(self, policy):
        """Acceptance: cost-model scores == stepwise-simulated miss counts,
        and the replay masks on remapped traces agree per access (the
        differential harness runs the comparison on both index schemes)."""
        g, sched = small_workload()
        inst = build_instance(g, sched, B)
        geoms = {
            "direct": CacheGeometry(size=16 * B, block=B),
            "lru": CacheGeometry(size=16 * B, block=B, ways=4),
            "opt": CacheGeometry(size=16 * B, block=B),
        }
        geom = geoms[policy]
        grid = [geom, geom.with_index_scheme("xor")]
        for seed in range(4):
            order = shuffled(inst.objects, seed)
            blocks = remap_blocks(inst, order)
            differential_grid(
                replay_kernel(policy), stepwise_oracle(policy), grid, blocks
            )
            cost = placement_cost(inst, order, geom, policy=policy)
            fresh = compile_trace(g, sched, B, placement=order)
            ref = sum(map(bool, stepwise_trace_misses(fresh.blocks.tolist(), geom, policy)))
            assert cost == ref

    def test_cost_matches_stepwise_executor_end_to_end(self):
        """placement= threads through Executor too, and both paths agree."""
        from repro.cache.direct import DirectMappedCache

        g, sched = small_workload()
        inst = build_instance(g, sched, B)
        order = shuffled(inst.objects, 7)
        geom = CacheGeometry(size=16 * B, block=B)
        ref = Executor.measure(g, geom, sched, placement=order, cache=DirectMappedCache(geom))
        assert placement_cost(inst, order, geom, policy="direct") == ref.misses

    def test_remap_trace_keeps_attribution(self):
        g, sched = small_workload()
        inst = build_instance(g, sched, B)
        order = shuffled(inst.objects, 3)
        t = remap_trace(inst, order)
        geom = CacheGeometry(size=16 * B, block=B)
        fast = simulate_trace(t, [geom], policy="direct")[0]
        fresh = compile_trace(g, sched, B, placement=order)
        ref = simulate_trace(fresh, [geom], policy="direct")[0]
        assert fast.misses == ref.misses
        assert fast.phase_misses == ref.phase_misses
        assert fast.accesses == ref.accesses == inst.trace.accesses

    def test_bad_orders_rejected(self):
        g, sched = small_workload()
        inst = build_instance(g, sched, B)
        objs = list(inst.objects)
        with pytest.raises(LayoutError, match="covers"):
            remap_blocks(inst, objs[:-1])
        with pytest.raises(LayoutError, match="repeats"):
            remap_blocks(inst, objs[:-1] + [objs[0]])
        with pytest.raises(LayoutError, match="unknown placement object"):
            remap_blocks(inst, objs[:-1] + [("state", "nope")])


# ----------------------------------------------------------------------
# placement invariance under the fully-associative model (property-based)
# ----------------------------------------------------------------------
class TestFullyAssociativeInvariance:
    """Under the paper's model only the *set* of blocks matters, so every
    placement must produce bit-identical fully-associative LRU miss counts.
    The oracle is the stepwise LRU, not the replay kernel."""

    @given(perm_seed=st.integers(0, 10_000), frames=st.sampled_from([2, 5, 11, 40]))
    @settings(max_examples=25, deadline=None)
    def test_any_permutation_preserves_lru_misses(self, perm_seed, frames):
        g, sched = small_workload()
        inst = build_instance(g, sched, B)
        geom = CacheGeometry(size=frames * B, block=B)
        seed_ref = sum(
            map(bool, stepwise_trace_misses(inst.trace.blocks.tolist(), geom, "lru"))
        )
        order = shuffled(inst.objects, perm_seed)
        permuted = sum(
            map(bool, stepwise_trace_misses(remap_blocks(inst, order).tolist(), geom, "lru"))
        )
        assert permuted == seed_ref

    @given(perm_seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_ways_equals_frames_is_layout_blind(self, perm_seed):
        # explicit ways == frames: one set, fully associative in disguise
        g, sched = small_workload()
        inst = build_instance(g, sched, B)
        geom = CacheGeometry(size=8 * B, block=B, ways=8)
        assert geom.is_fully_associative
        order = shuffled(inst.objects, perm_seed)
        a = sum(map(bool, stepwise_trace_misses(inst.trace.blocks.tolist(), geom, "lru")))
        b = sum(map(bool, stepwise_trace_misses(remap_blocks(inst, order).tolist(), geom, "lru")))
        assert a == b

    def test_sets_exceed_distinct_blocks(self):
        # sets > #distinct blocks: every block alone in its set, zero
        # capacity misses; replay and stepwise agree and placement cannot
        # push the count below (or above) the compulsory floor
        g, sched = small_workload()
        inst = build_instance(g, sched, B)
        distinct = inst.trace.distinct_blocks()
        sets = 1 << int(np.ceil(np.log2(distinct + 1)))
        geom = CacheGeometry(size=sets * B, block=B, ways=1)
        assert geom.sets > distinct
        for seed in (0, 5):
            order = shuffled(inst.objects, seed)
            blocks = remap_blocks(inst, order)
            differential_grid(replay_kernel("lru"), stepwise_oracle("lru"), [geom], blocks)
            fast = placement_cost(inst, order, geom, policy="lru")
            ref = sum(map(bool, stepwise_trace_misses(blocks.tolist(), geom, "lru")))
            assert fast == ref
            # direct-mapped at that many frames: same story via the direct kernel
            dgeom = CacheGeometry(size=sets * B, block=B)
            differential_grid(
                replay_kernel("direct"), stepwise_oracle("direct"), [dgeom], blocks
            )
            dfast = placement_cost(inst, order, dgeom, policy="direct")
            dref = sum(map(bool, stepwise_trace_misses(blocks.tolist(), dgeom, "direct")))
            assert dfast == dref


# ----------------------------------------------------------------------
# conflict graph
# ----------------------------------------------------------------------
class TestConflictGraph:
    def test_edges_are_canonical_and_positive(self):
        g, sched = small_workload()
        inst = build_instance(g, sched, B)
        cg = conflict_graph(inst)
        assert cg, "co-scheduled objects must produce edges"
        n = inst.n_objects
        for (a, b), w in cg.items():
            assert 0 <= a < b < n, "edges keyed (lo, hi), no self-edges"
            assert w > 0

    def test_adjacent_objects_weigh_most(self):
        g, sched = small_workload()
        inst = build_instance(g, sched, B)
        cg = conflict_graph(inst, window=4)
        # a pipeline stage and its input buffer touch back to back every
        # firing; they must out-weigh a pair three stages apart
        i_m1 = inst.index_of(("state", "m1"))
        i_buf0 = inst.index_of(("buffer", 0))
        i_m4 = inst.index_of(("state", "m4"))
        near = cg[tuple(sorted((i_m1, i_buf0)))]
        far = cg.get(tuple(sorted((i_m1, i_m4))), 0.0)
        assert near > far

    def test_window_must_be_positive(self):
        g, sched = small_workload()
        inst = build_instance(g, sched, B)
        with pytest.raises(LayoutError, match="window"):
            conflict_graph(inst, window=0)


# ----------------------------------------------------------------------
# strategies and the registry
# ----------------------------------------------------------------------
class TestStrategies:
    def test_registry_contents(self):
        assert set(available_placements()) >= {"topo", "color", "swap"}
        with pytest.raises(LayoutError, match="unknown placement strategy"):
            get_placement("anneal")

    def test_color_order_is_a_permutation(self):
        g, sched = small_workload()
        inst = build_instance(g, sched, B)
        order = greedy_color_order(inst, CacheGeometry(size=16 * B, block=B))
        assert sorted(order) == sorted(inst.objects)

    def test_fully_associative_target_keeps_seed(self):
        g, sched = small_workload()
        inst = build_instance(g, sched, B)
        geom = CacheGeometry(size=16 * B, block=B)
        assert greedy_color_order(inst, geom, policy="lru") == list(inst.objects)
        # swap must short-circuit too: placement cannot change FA misses,
        # so the search budget is pure waste there
        order, gaps = get_placement("swap")(inst, geom, policy="lru")
        assert order == list(inst.objects) and gaps == {}

    def test_swap_refine_monotone_and_budgeted(self):
        g, sched = small_workload()
        inst = build_instance(g, sched, B)
        geom = CacheGeometry(size=16 * B, block=B)
        start = list(inst.objects)
        start_cost = placement_cost(inst, start, geom, policy="direct")
        order, gaps, cost, stats = swap_refine(
            inst, start, geom, policy="direct", budget=50
        )
        assert cost <= start_cost
        assert stats.evals <= 50 and int(stats) == stats.evals
        # trajectory is monotone non-increasing from the seed cost and
        # ends at the returned cost; rounds counts the improving steps
        assert stats.trajectory[0] == start_cost
        assert stats.trajectory[-1] == cost
        assert all(a >= b for a, b in zip(stats.trajectory, stats.trajectory[1:]))
        assert stats.rounds == len(stats.trajectory) - 1
        assert gaps == {}  # no gap budget: pure permutation search
        assert placement_cost(inst, order, geom, policy="direct") == cost

    def test_swap_refine_gap_budget_respected_and_exact(self):
        g, sched = small_workload()
        inst = build_instance(g, sched, B)
        geom = CacheGeometry(size=16 * B, block=B)
        start = list(inst.objects)
        order, gaps, cost, _ = swap_refine(
            inst, start, geom, policy="direct", budget=200, gap_budget=3
        )
        assert sum(gaps.values()) <= 3
        assert all(g > 0 for g in gaps.values())
        # reported cost is the true cost of (order, gaps)
        assert placement_cost(inst, order, geom, policy="direct", gaps=gaps) == cost

    def test_swap_refine_rejects_bad_budgets(self):
        g, sched = small_workload()
        inst = build_instance(g, sched, B)
        geom = CacheGeometry(size=16 * B, block=B)
        with pytest.raises(LayoutError, match="gap_budget"):
            swap_refine(inst, list(inst.objects), geom, gap_budget=-1)
        with pytest.raises(LayoutError, match="over gap_budget"):
            swap_refine(
                inst, list(inst.objects), geom, gap_budget=1,
                gaps={inst.objects[0]: 2},
            )
        with pytest.raises(LayoutError, match="geometry or explicit targets"):
            swap_refine(inst, list(inst.objects))

    def test_optimizer_never_worse_than_seed(self):
        g, sched = small_workload()
        inst = build_instance(g, sched, B)
        for strategy in available_placements():
            for policy, geom in (
                ("direct", CacheGeometry(size=16 * B, block=B)),
                ("lru", CacheGeometry(size=16 * B, block=B, ways=2)),
            ):
                res = optimize_instance(
                    inst, geom, strategy=strategy, policy=policy, budget=60
                )
                assert res.cost <= res.seed_cost
                assert placement_cost(inst, res.order, geom, policy=policy) == res.cost

    def test_one_shot_optimize_placement(self):
        g, sched = small_workload()
        geom = CacheGeometry(size=16 * B, block=B)
        res = optimize_placement(g, sched, geom, strategy="swap", budget=60)
        assert res.cost <= res.seed_cost
        assert 0.0 <= res.improvement <= 1.0


# ----------------------------------------------------------------------
# padding: (order, gaps) candidates must be exact, not estimated
# ----------------------------------------------------------------------
class TestPadding:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_remap_with_gaps_equals_fresh_compile(self, seed):
        """The padding lever keeps the cost model exact: a gapped remap is
        bit-identical to recompiling under place_graph(gaps=)."""
        g, sched = small_workload()
        inst = build_instance(g, sched, B)
        order = shuffled(inst.objects, seed)
        rng = np.random.default_rng(seed)
        gaps = {
            key: int(gap)
            for key, gap in zip(order, rng.integers(0, 4, size=len(order)))
            if gap
        }
        fresh = compile_trace(g, sched, B, placement=order, gaps=gaps)
        assert (remap_blocks(inst, order, gaps=gaps) == fresh.blocks).all()

    def test_zero_gaps_is_pure_permutation(self):
        g, sched = small_workload()
        inst = build_instance(g, sched, B)
        order = shuffled(inst.objects, 11)
        zero = {key: 0 for key in order}
        assert (
            remap_blocks(inst, order, gaps=zero) == remap_blocks(inst, order)
        ).all()
        assert (
            remap_blocks(inst, order, gaps=None) == remap_blocks(inst, order, gaps={})
        ).all()

    def test_gap_shifts_downstream_objects_only(self):
        g, sched = small_workload()
        inst = build_instance(g, sched, B)
        order = list(inst.objects)
        base = remap_blocks(inst, order)
        gapped = remap_blocks(inst, order, gaps={order[2]: 2})
        obj = inst.obj_of_access
        # objects placed before the gap keep their addresses ...
        upstream = np.isin(obj, [inst.index_of(order[0]), inst.index_of(order[1])])
        assert (gapped[upstream] == base[upstream]).all()
        # ... everything after (stream arenas included) shifts by 2 blocks
        assert (gapped[~upstream] == base[~upstream] + 2).all()

    def test_bad_gaps_rejected(self):
        g, sched = small_workload()
        inst = build_instance(g, sched, B)
        order = list(inst.objects)
        with pytest.raises(LayoutError, match="unknown placement object"):
            remap_blocks(inst, order, gaps={("state", "nope"): 1})
        for bad in (-1, 1.5, True):
            with pytest.raises(LayoutError, match="non-negative block count"):
                remap_blocks(inst, order, gaps={order[0]: bad})

    def test_gapped_cost_matches_stepwise_executor(self):
        from repro.cache.direct import DirectMappedCache

        g, sched = small_workload()
        inst = build_instance(g, sched, B)
        order = shuffled(inst.objects, 7)
        gaps = {order[1]: 1, order[4]: 2}
        geom = CacheGeometry(size=16 * B, block=B)
        ref = Executor.measure(
            g, geom, sched, placement=order, gaps=gaps,
            cache=DirectMappedCache(geom),
        )
        assert placement_cost(inst, order, geom, policy="direct", gaps=gaps) == ref.misses


# ----------------------------------------------------------------------
# multi-geometry objective: deployable layouts
# ----------------------------------------------------------------------
class TestMultiTarget:
    def _targets(self, inst):
        direct = CacheGeometry(size=16 * B, block=B)
        return [
            (direct, "direct", 2.0),
            (CacheGeometry(size=16 * B, block=B, ways=2), "lru", 1.0),
            (CacheGeometry(size=32 * B, block=B, ways=4), "lru", 1.0),
        ]

    def test_normalize_targets_validation(self):
        g, sched = small_workload()
        inst = build_instance(g, sched, B)
        geom = CacheGeometry(size=16 * B, block=B)
        with pytest.raises(LayoutError, match="at least one"):
            normalize_targets([])
        with pytest.raises(LayoutError, match="triple"):
            normalize_targets([geom])
        with pytest.raises(LayoutError, match="CacheGeometry"):
            normalize_targets([(42, "lru", 1.0)])
        for w in (0, -1, float("nan"), float("inf")):
            with pytest.raises(LayoutError, match="weight"):
                normalize_targets([(geom, "lru", w)])
        with pytest.raises(LayoutError, match="block"):
            normalize_targets([(CacheGeometry(size=16, block=4), "lru", 1.0)], block=B)

    def test_placement_costs_matches_single_target_costs(self):
        g, sched = small_workload()
        inst = build_instance(g, sched, B)
        targets = self._targets(inst)
        order = shuffled(inst.objects, 3)
        per = placement_costs(inst, order, targets)
        for (geom, policy, _w), m in zip(targets, per):
            assert m == placement_cost(inst, order, geom, policy=policy)

    def test_optimizer_never_worse_at_every_target(self):
        g, sched = small_workload()
        inst = build_instance(g, sched, B)
        targets = self._targets(inst)
        for strategy in available_placements():
            res = optimize_instance(
                inst, strategy=strategy, targets=targets, budget=80, gap_budget=2
            )
            assert len(res.per_target) == len(targets)
            for c, s in zip(res.per_target, res.seed_per_target):
                assert c <= s, (strategy, res.per_target, res.seed_per_target)
            assert res.cost <= res.seed_cost
            # reported per-target costs are the true costs of (order, gaps)
            assert res.per_target == placement_costs(
                inst, res.order, targets, gaps=res.gaps
            )

    def test_single_target_form_unchanged(self):
        g, sched = small_workload()
        inst = build_instance(g, sched, B)
        geom = CacheGeometry(size=16 * B, block=B)
        res = optimize_instance(inst, geom, strategy="swap", policy="direct", budget=60)
        assert isinstance(res.cost, int) and isinstance(res.seed_cost, int)
        assert res.targets == [(geom, "direct", 1.0)]
        assert res.per_target == [res.cost] and res.seed_per_target == [res.seed_cost]

    def test_optimize_placement_multi_entry_point(self):
        g, sched = small_workload()
        targets = [
            (CacheGeometry(size=16 * B, block=B), "direct", 1.0),
            (CacheGeometry(size=16 * B, block=B, ways=2), "lru", 1.0),
        ]
        res = optimize_placement(g, sched, strategy="swap", targets=targets, budget=60)
        assert all(c <= s for c, s in zip(res.per_target, res.seed_per_target))
        with pytest.raises(LayoutError, match="geometry or targets"):
            optimize_placement(g, sched, strategy="swap")


# ----------------------------------------------------------------------
# A7 acceptance: the workload the experiment ships
# ----------------------------------------------------------------------
class TestA7Acceptance:
    def test_swap_strictly_beats_seed_direct_and_fa_is_invariant(self):
        g, sched, run_geom = des_workload()
        inst = build_instance(g, sched, B)
        seed_order = list(inst.objects)
        res = optimize_instance(inst, run_geom, strategy="swap", policy="direct", budget=300)
        # strict reduction of direct-mapped conflict misses vs the seed layout
        assert res.cost < res.seed_cost
        assert res.cost < 0.5 * res.seed_cost, "A7 workload loses most conflict misses"
        # fully-associative misses are bit-identical across all placements
        fa_seed = placement_cost(inst, seed_order, run_geom, policy="lru")
        for order in (
            res.order,
            greedy_color_order(inst, run_geom, policy="direct"),
            shuffled(inst.objects, 9),
        ):
            assert placement_cost(inst, order, run_geom, policy="lru") == fa_seed

    def test_a7_driver_rows(self):
        from repro.analysis.sweeps import ablation_a7_placement

        rows = ablation_a7_placement(inputs=128, budget=200)
        assert [r["placement"] for r in rows] == ["seed (topo)", "color", "swap"]
        # column labels carry their cache size (with_ways may snap frames up)
        direct_col = next(k for k in rows[0] if k.startswith("direct_") and k.endswith("w"))
        assert any(k.startswith("2way_") for k in rows[0])
        by = {r["placement"]: r for r in rows}
        assert by["swap"][direct_col] < by["seed (topo)"][direct_col]
        assert by["color"][direct_col] <= by["seed (topo)"][direct_col]
        fa = {r["fully_assoc"] for r in rows}
        assert len(fa) == 1, "fully-associative column must be placement-blind"
        assert by["swap"]["direct_vs_seed"] < 1.0

    def test_cli_layout_flag(self, capsys):
        from repro.cli import main

        rc = main(
            [
                "schedule", "des_rounds", "--cache", "256", "--ways", "1",
                "--policy", "direct", "--layout", "swap", "--inputs", "64",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "swap placement" in out
        assert "fewer than the seed layout" in out

    def test_cli_facility_layouts_run(self, capsys):
        from repro.cli import main

        for layout in ("multiswap", "smoothed", "minimax"):
            rc = main(
                [
                    "schedule", "des_rounds", "--cache", "256", "--ways", "1",
                    "--policy", "direct", "--layout", layout, "--inputs", "32",
                    "--layout-budget", "40", "--restarts", "2",
                    "--noise", "0.5", "--seed", "0",
                ]
            )
            assert rc == 0
            out = capsys.readouterr().out
            assert f"{layout} placement" in out

    def test_cli_seed_threads_end_to_end(self, capsys):
        # --seed reaches the smoothed search: two identical invocations
        # must report the bit-identical layout result (the CI determinism
        # pin the A12 issue asks for)
        from repro.cli import main

        argv = [
            "schedule", "des_rounds", "--cache", "256", "--ways", "1",
            "--policy", "direct", "--layout", "smoothed", "--inputs", "32",
            "--layout-budget", "40", "--restarts", "3", "--noise", "0.5",
            "--seed", "13",
        ]
        assert main(argv) == 0
        line1 = next(
            ln for ln in capsys.readouterr().out.splitlines()
            if "smoothed placement" in ln
        )
        assert main(argv) == 0
        line2 = next(
            ln for ln in capsys.readouterr().out.splitlines()
            if "smoothed placement" in ln
        )
        assert line1 == line2


# ----------------------------------------------------------------------
# A12: facility-location strategies (repro.mem.facility)
# ----------------------------------------------------------------------
class TestFacilityStrategies:
    def test_registry_contains_facility_strategies(self):
        assert set(available_placements()) >= {"multiswap", "smoothed", "minimax"}
        # importing the package is enough: repro.mem registers them eagerly
        for name in ("multiswap", "smoothed", "minimax"):
            assert callable(get_placement(name))

    def test_multiswap_monotone_budgeted_and_permutation(self):
        g, sched = small_workload()
        inst = build_instance(g, sched, B)
        geom = CacheGeometry(size=16 * B, block=B)
        start = list(inst.objects)
        start_cost = placement_cost(inst, start, geom, policy="direct")
        order, gaps, cost, stats = multiswap_refine(
            inst, start, geom, policy="direct", budget=80
        )
        assert cost <= start_cost
        assert cost == placement_cost(inst, order, geom, policy="direct", gaps=gaps)
        assert stats.evals <= 80
        assert sorted(order) == sorted(inst.objects)
        assert all(b <= a for a, b in zip(stats.trajectory, stats.trajectory[1:]))

    def test_multiswap_validation(self):
        g, sched = small_workload()
        inst = build_instance(g, sched, B)
        geom = CacheGeometry(size=16 * B, block=B)
        with pytest.raises(LayoutError, match="gap_budget"):
            multiswap_refine(inst, list(inst.objects), geom, gap_budget=-1)
        with pytest.raises(LayoutError, match="batch"):
            multiswap_refine(inst, list(inst.objects), geom, batch=0)
        with pytest.raises(LayoutError, match="objective"):
            multiswap_refine(inst, list(inst.objects), geom, objective="max")
        with pytest.raises(LayoutError, match="geometry or targets"):
            multiswap_refine(inst, list(inst.objects))

    def test_smoothed_validation(self):
        g, sched = small_workload()
        inst = build_instance(g, sched, B)
        geom = CacheGeometry(size=16 * B, block=B)
        with pytest.raises(LayoutError, match="restarts"):
            smoothed_search(inst, geom, restarts=0)
        with pytest.raises(LayoutError, match="noise"):
            smoothed_search(inst, geom, noise=-0.1)

    def test_smoothed_same_seed_is_deterministic(self):
        # the CI determinism pin: identical seed => bit-identical layout
        g, sched = small_workload()
        inst = build_instance(g, sched, B)
        geom = CacheGeometry(size=16 * B, block=B)
        runs = [
            optimize_instance(
                inst, geom, strategy="smoothed", policy="direct",
                budget=40, restarts=3, noise=0.5, seed=11,
            )
            for _ in range(2)
        ]
        assert runs[0].order == runs[1].order
        assert runs[0].gaps == runs[1].gaps
        assert runs[0].cost == runs[1].cost

    def test_smoothed_evals_accumulate_across_restarts(self):
        g, sched = small_workload()
        inst = build_instance(g, sched, B)
        geom = CacheGeometry(size=16 * B, block=B)
        _o, _g, cost, stats = smoothed_search(
            inst, geom, policy="direct", budget=60, restarts=3, noise=0.5, seed=0
        )
        assert stats.evals <= 60
        assert cost <= placement_cost(
            inst, list(inst.objects), geom, policy="direct"
        )

    def test_facility_counters_recorded(self):
        from repro.obs import names as obs_names

        g, sched = small_workload()
        inst = build_instance(g, sched, B)
        geom = CacheGeometry(size=16 * B, block=B)
        with obs.capture(enabled=True) as cap:
            _o, _g, _c, stats = multiswap_refine(
                inst, list(inst.objects), geom, policy="direct", budget=40
            )
        counters = cap.snapshot["counters"]
        assert counters[obs_names.PLACEMENT_EVALS] == stats.evals
        assert counters[obs_names.PLACEMENT_ROUNDS] == stats.rounds
        # the capacity prune counter is always emitted (possibly zero)
        assert counters.get(obs_names.PLACEMENT_PRUNED, 0) >= 0
        spans = cap.snapshot["spans"]
        assert any(obs_names.FACILITY_SEARCH in key for key in spans)

    def test_smoothed_restart_counter(self):
        from repro.obs import names as obs_names

        g, sched = small_workload()
        inst = build_instance(g, sched, B)
        geom = CacheGeometry(size=16 * B, block=B)
        with obs.capture(enabled=True) as cap:
            smoothed_search(
                inst, geom, policy="direct", budget=30, restarts=2, noise=0.5,
                seed=0,
            )
        assert cap.snapshot["counters"][obs_names.PLACEMENT_RESTARTS] == 2

    def test_every_registered_strategy_never_worse_at_every_target(self):
        g, sched = small_workload()
        inst = build_instance(g, sched, B)
        targets = [
            (CacheGeometry(size=16 * B, block=B), "direct", 1.0),
            (CacheGeometry(size=16 * B, block=B, ways=2), "lru", 1.0),
        ]
        for strategy in available_placements():
            res = optimize_instance(
                inst, strategy=strategy, targets=targets, budget=30,
                gap_budget=2, restarts=2, noise=0.5, seed=3,
            )
            for got, seed_m in zip(res.per_target, res.seed_per_target):
                assert got <= seed_m, f"{strategy} regressed a target"

    def test_minimax_never_worse_and_scores_exact(self):
        g, sched = small_workload()
        inst = build_instance(g, sched, B)
        targets = [
            (CacheGeometry(size=16 * B, block=B), "direct", 1.0),
            (CacheGeometry(size=16 * B, block=B, ways=2), "lru", 1.0),
        ]
        res = optimize_instance(
            inst, strategy="minimax", targets=targets, budget=40
        )
        for got, seed_m in zip(res.per_target, res.seed_per_target):
            assert got <= seed_m
        assert res.per_target == placement_costs(
            inst, res.order, targets, gaps=res.gaps
        )


# ----------------------------------------------------------------------
# A12 satellite: eval accounting == actual cost-model invocations
# ----------------------------------------------------------------------
class TestEvalAccounting:
    """``RefineStats.evals`` must equal the number of cost-model
    invocations the search actually made (serial backend: every candidate
    scored is exactly one ``_target_misses`` call), so the A12 "equal eval
    budget" comparisons cannot silently miscount."""

    def _counting(self, monkeypatch):
        import repro.mem.placement as pl

        calls = {"n": 0}
        real = pl._target_misses

        def counted(trace, targets, chunk_words=None):
            calls["n"] += 1
            return real(trace, targets, chunk_words=chunk_words)

        monkeypatch.setattr(pl, "_target_misses", counted)
        return calls

    def test_swap_refine_counts_every_invocation(self, monkeypatch):
        g, sched = small_workload()
        inst = build_instance(g, sched, B)
        geom = CacheGeometry(size=16 * B, block=B)
        calls = self._counting(monkeypatch)
        _o, _g, _c, stats = swap_refine(
            inst, list(inst.objects), geom, policy="direct", budget=50,
            backend="serial",
        )
        assert stats.evals == calls["n"]

    def test_multiswap_counts_every_invocation(self, monkeypatch):
        g, sched = small_workload()
        inst = build_instance(g, sched, B)
        geom = CacheGeometry(size=16 * B, block=B)
        calls = self._counting(monkeypatch)
        _o, _g, _c, stats = multiswap_refine(
            inst, list(inst.objects), geom, policy="direct", budget=50,
            backend="serial",
        )
        assert stats.evals == calls["n"]

    def test_smoothed_counts_across_restarts(self, monkeypatch):
        g, sched = small_workload()
        inst = build_instance(g, sched, B)
        geom = CacheGeometry(size=16 * B, block=B)
        calls = self._counting(monkeypatch)
        _o, _g, _c, stats = smoothed_search(
            inst, geom, policy="direct", budget=40, restarts=2, noise=0.5,
            seed=0, backend="serial",
        )
        assert stats.evals == calls["n"]

    def test_batched_swap_counts_too(self, monkeypatch):
        g, sched = small_workload()
        inst = build_instance(g, sched, B)
        geom = CacheGeometry(size=16 * B, block=B)
        calls = self._counting(monkeypatch)
        _o, _g, _c, stats = swap_refine(
            inst, list(inst.objects), geom, policy="direct", budget=50,
            batch=8, backend="serial",
        )
        assert stats.evals == calls["n"]
