"""Tests for trace recording."""

import pytest

from repro.cache.base import CacheGeometry
from repro.cache.lru import LRUCache
from repro.cache.opt import simulate_opt
from repro.mem.trace import TraceRecorder, TracingCache


class TestTraceRecorder:
    def test_records_in_order(self):
        r = TraceRecorder()
        for b in (3, 1, 2):
            r.record(b)
        assert r.blocks == [3, 1, 2]
        assert len(r) == 3

    def test_marks_and_slices(self):
        r = TraceRecorder()
        r.mark("start")
        r.record(1)
        r.record(2)
        r.mark("end")
        r.record(3)
        assert r.slice_between("start", "end") == [1, 2]

    def test_missing_marks_raise(self):
        r = TraceRecorder()
        with pytest.raises(ValueError):
            r.slice_between("a", "b")


class TestTracingCache:
    def test_decorates_without_changing_behavior(self):
        geo = CacheGeometry(size=32, block=8)
        plain = LRUCache(geo)
        traced = TracingCache(LRUCache(geo))
        trace_in = [0, 1, 2, 0, 3, 4, 0]
        for b in trace_in:
            plain.access_block(b)
            traced.access_block(b)
        assert traced.stats.misses == plain.stats.misses
        assert traced.recorder.blocks == trace_in

    def test_recorded_trace_replays_under_opt(self):
        geo = CacheGeometry(size=16, block=8)
        traced = TracingCache(LRUCache(geo))
        for b in [0, 1, 2, 0, 1, 2, 0]:
            traced.access_block(b)
        opt = simulate_opt(traced.recorder.blocks, geo)
        assert opt.misses <= traced.stats.misses

    def test_access_range_traced_per_block(self):
        geo = CacheGeometry(size=32, block=8)
        traced = TracingCache(LRUCache(geo))
        traced.access_range(0, 20)  # blocks 0,1,2
        assert traced.recorder.blocks == [0, 1, 2]

    def test_flush_and_resident_delegate(self):
        geo = CacheGeometry(size=32, block=8)
        traced = TracingCache(LRUCache(geo))
        traced.access_block(0)
        assert traced.resident_blocks() == 1
        traced.flush()
        assert traced.resident_blocks() == 0
