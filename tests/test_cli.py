"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.graphs.io import save_graph
from repro.graphs.topologies import pipeline


class TestCli:
    def test_apps(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        assert "fm_radio" in out and "beamformer" in out

    def test_describe_app(self, capsys):
        assert main(["describe", "fm_radio"]) == 0
        assert "lpf" in capsys.readouterr().out

    def test_describe_json_file(self, tmp_path, capsys):
        path = str(tmp_path / "p.json")
        save_graph(pipeline([8] * 4, name="filegraph"), path)
        assert main(["describe", path]) == 0
        assert "filegraph" in capsys.readouterr().out

    def test_unknown_graph_exits(self):
        with pytest.raises(SystemExit):
            main(["describe", "not_a_graph"])

    def test_partition(self, capsys):
        assert main(["partition", "des_rounds", "--cache", "192"]) == 0
        out = capsys.readouterr().out
        assert "well-ordered: True" in out

    def test_schedule_pipeline(self, capsys):
        assert main(["schedule", "des_rounds", "--cache", "192", "--inputs", "256"]) == 0
        out = capsys.readouterr().out
        assert "misses" in out

    def test_schedule_dag(self, capsys):
        assert main(["schedule", "mp3_subband", "--cache", "256", "--inputs", "128"]) == 0
        assert "misses" in capsys.readouterr().out

    def test_schedule_two_level(self, capsys):
        assert main(
            ["schedule", "fm_radio", "--cache", "256", "--inputs", "256",
             "--l2-frames", "128"]
        ) == 0
        out = capsys.readouterr().out
        assert "policy=two_level" in out
        assert "L2        : 1024 words (128 frames)" in out

    def test_schedule_l2_smaller_than_l1_exits(self):
        with pytest.raises(SystemExit, match="invalid cache organization"):
            main(["schedule", "fm_radio", "--cache", "256", "--inputs", "256",
                  "--l2-frames", "8"])

    def test_schedule_l2_ways_without_l2_frames_exits(self):
        with pytest.raises(SystemExit, match="--l2-frames"):
            main(["schedule", "fm_radio", "--cache", "256", "--inputs", "256",
                  "--l2-ways", "4"])

    def test_schedule_l2_conflicts_with_policy_and_layout(self):
        with pytest.raises(SystemExit, match="two-level"):
            main(["schedule", "fm_radio", "--cache", "256", "--inputs", "256",
                  "--l2-frames", "128", "--policy", "opt"])
        with pytest.raises(SystemExit, match="layout"):
            main(["schedule", "des_rounds", "--cache", "192", "--inputs", "256",
                  "--l2-frames", "128", "--layout", "swap"])

    def test_experiment_by_id(self, capsys):
        assert main(["experiment", "a3"]) == 0
        assert "LRU" in capsys.readouterr().out

    def test_unknown_experiment_exits(self):
        with pytest.raises(SystemExit):
            main(["experiment", "e99"])

    def test_export_dot_stdout(self, capsys):
        assert main(["export-dot", "mp3_subband"]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_export_dot_partitioned_file(self, tmp_path, capsys):
        out_file = str(tmp_path / "g.dot")
        assert main(["export-dot", "mp3_subband", "--cache", "256", "-o", out_file]) == 0
        text = open(out_file).read()
        assert "cluster_0" in text


class TestCliPlacementSurface:
    """The --layout-targets / --index-scheme / --gap-budget surface: bad
    specs must die as argparse usage errors (exit code 2, no traceback),
    and the happy paths must run end to end."""

    @pytest.mark.parametrize(
        "spec",
        [
            "direct:1@-3",        # negative weight
            "direct:1@0",         # zero weight
            "direct:1@inf",       # non-finite weight
            "direct:1@abc",       # non-numeric weight
            "plru:1",             # unknown policy
            "direct",             # missing ways
            "direct:x",           # non-integer ways
            "direct:-2",          # negative ways
            "",                   # empty spec
            " , ,",               # only separators
        ],
    )
    def test_bad_layout_targets_are_argparse_errors(self, spec, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["schedule", "des_rounds", "--layout", "swap",
                  "--layout-targets", spec, "--inputs", "64"])
        assert exc.value.code == 2  # argparse usage error, not a traceback
        assert "--layout-targets" in capsys.readouterr().err

    def test_unknown_index_scheme_is_argparse_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["schedule", "des_rounds", "--index-scheme", "plru",
                  "--inputs", "64"])
        assert exc.value.code == 2
        assert "--index-scheme" in capsys.readouterr().err

    def test_negative_gap_budget_is_clean_error(self):
        with pytest.raises(SystemExit, match="invalid placement request"):
            main(["schedule", "des_rounds", "--cache", "256", "--ways", "1",
                  "--policy", "direct", "--layout", "swap",
                  "--gap-budget", "-1", "--inputs", "64"])

    def test_layout_target_ways_zero_means_fully_associative(self, capsys):
        # even when --ways narrowed the execution cache, a WAYS=0 target is
        # the fully-associative organization, not the narrowed one: a
        # direct:0 target must run (direct over all frames), where the
        # narrowed 2-way geometry would be rejected by the direct kernel
        rc = main(
            ["schedule", "des_rounds", "--cache", "256", "--ways", "2",
             "--layout", "swap", "--layout-targets", "direct:0,lru:2",
             "--layout-budget", "10", "--inputs", "64"]
        )
        assert rc == 0
        assert "over 2 targets" in capsys.readouterr().out

    def test_layout_targets_require_non_topo_layout(self):
        with pytest.raises(SystemExit, match="--layout-targets"):
            main(["schedule", "des_rounds", "--layout-targets", "direct:1",
                  "--inputs", "64"])

    def test_xor_scheme_without_valid_frames_is_clean_error(self):
        # fm_radio's O(M) geometry has a non-power-of-two frame count, so
        # xor folding has nothing to fold over without --ways
        with pytest.raises(SystemExit, match="invalid cache organization"):
            main(["schedule", "fm_radio", "--cache", "256", "--inputs", "128",
                  "--index-scheme", "xor"])

    def test_schedule_swap_with_xor_scheme_end_to_end(self, capsys):
        rc = main(
            ["schedule", "des_rounds", "--cache", "256", "--ways", "1",
             "--policy", "direct", "--layout", "swap", "--index-scheme", "xor",
             "--layout-budget", "60", "--inputs", "64"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "xor-indexed" in out
        assert "swap placement" in out
        assert "misses" in out

    def test_schedule_multi_target_layout_end_to_end(self, capsys):
        rc = main(
            ["schedule", "des_rounds", "--cache", "256", "--ways", "1",
             "--policy", "direct", "--layout", "swap",
             "--layout-targets", "direct:1@2,lru:2,lru:4@0.5",
             "--gap-budget", "2", "--layout-budget", "30", "--inputs", "64"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "over 3 targets" in out
        assert "never worse than the seed at any target" in out

    def test_experiment_a9_dispatch(self, capsys):
        # the registry must resolve a9 (smallest workload the driver allows)
        from repro.cli import build_parser

        args = build_parser().parse_args(["experiment", "a9"])
        assert args.id == "a9"


class TestCliExtended:
    def test_experiment_extension_ids(self, capsys):
        from repro.cli import main

        assert main(["experiment", "e12"]) == 0
        assert "cache_model" in capsys.readouterr().out

    def test_misscurve_pipeline(self, capsys):
        from repro.cli import main

        assert main(["misscurve", "des_rounds", "--cache", "128", "--inputs", "64"]) == 0
        out = capsys.readouterr().out
        assert "miss curves" in out and "partitioned" in out

    def test_misscurve_dag(self, capsys):
        from repro.cli import main

        assert main(["misscurve", "mp3_subband", "--cache", "256", "--inputs", "64"]) == 0
        assert "naive" in capsys.readouterr().out
