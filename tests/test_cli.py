"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.graphs.io import save_graph
from repro.graphs.topologies import pipeline


class TestCli:
    def test_apps(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        assert "fm_radio" in out and "beamformer" in out

    def test_describe_app(self, capsys):
        assert main(["describe", "fm_radio"]) == 0
        assert "lpf" in capsys.readouterr().out

    def test_describe_json_file(self, tmp_path, capsys):
        path = str(tmp_path / "p.json")
        save_graph(pipeline([8] * 4, name="filegraph"), path)
        assert main(["describe", path]) == 0
        assert "filegraph" in capsys.readouterr().out

    def test_unknown_graph_exits(self):
        with pytest.raises(SystemExit):
            main(["describe", "not_a_graph"])

    def test_partition(self, capsys):
        assert main(["partition", "des_rounds", "--cache", "192"]) == 0
        out = capsys.readouterr().out
        assert "well-ordered: True" in out

    def test_schedule_pipeline(self, capsys):
        assert main(["schedule", "des_rounds", "--cache", "192", "--inputs", "256"]) == 0
        out = capsys.readouterr().out
        assert "misses" in out

    def test_schedule_dag(self, capsys):
        assert main(["schedule", "mp3_subband", "--cache", "256", "--inputs", "128"]) == 0
        assert "misses" in capsys.readouterr().out

    def test_schedule_two_level(self, capsys):
        assert main(
            ["schedule", "fm_radio", "--cache", "256", "--inputs", "256",
             "--l2-frames", "128"]
        ) == 0
        out = capsys.readouterr().out
        assert "policy=two_level" in out
        assert "L2        : 1024 words (128 frames)" in out

    def test_schedule_l2_smaller_than_l1_exits(self):
        with pytest.raises(SystemExit, match="invalid cache organization"):
            main(["schedule", "fm_radio", "--cache", "256", "--inputs", "256",
                  "--l2-frames", "8"])

    def test_schedule_l2_ways_without_l2_frames_exits(self):
        with pytest.raises(SystemExit, match="--l2-frames"):
            main(["schedule", "fm_radio", "--cache", "256", "--inputs", "256",
                  "--l2-ways", "4"])

    def test_schedule_l2_conflicts_with_policy_and_layout(self):
        with pytest.raises(SystemExit, match="two-level"):
            main(["schedule", "fm_radio", "--cache", "256", "--inputs", "256",
                  "--l2-frames", "128", "--policy", "opt"])
        with pytest.raises(SystemExit, match="layout"):
            main(["schedule", "des_rounds", "--cache", "192", "--inputs", "256",
                  "--l2-frames", "128", "--layout", "swap"])

    def test_experiment_by_id(self, capsys):
        assert main(["experiment", "a3"]) == 0
        assert "LRU" in capsys.readouterr().out

    def test_unknown_experiment_exits(self):
        with pytest.raises(SystemExit):
            main(["experiment", "e99"])

    def test_export_dot_stdout(self, capsys):
        assert main(["export-dot", "mp3_subband"]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_export_dot_partitioned_file(self, tmp_path, capsys):
        out_file = str(tmp_path / "g.dot")
        assert main(["export-dot", "mp3_subband", "--cache", "256", "-o", out_file]) == 0
        text = open(out_file).read()
        assert "cluster_0" in text


class TestCliExtended:
    def test_experiment_extension_ids(self, capsys):
        from repro.cli import main

        assert main(["experiment", "e12"]) == 0
        assert "cache_model" in capsys.readouterr().out

    def test_misscurve_pipeline(self, capsys):
        from repro.cli import main

        assert main(["misscurve", "des_rounds", "--cache", "128", "--inputs", "64"]) == 0
        out = capsys.readouterr().out
        assert "miss curves" in out and "partitioned" in out

    def test_misscurve_dag(self, capsys):
        from repro.cli import main

        assert main(["misscurve", "mp3_subband", "--cache", "256", "--inputs", "64"]) == 0
        assert "naive" in capsys.readouterr().out
