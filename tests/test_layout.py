"""Tests for memory layout (address assignment)."""

import pytest

from repro.errors import LayoutError
from repro.graphs.minbuf import min_buffers
from repro.graphs.topologies import diamond, pipeline
from repro.mem.layout import MemoryLayout, Region


class TestRegion:
    def test_end_and_overlap(self):
        a = Region(0, 10)
        b = Region(5, 10)
        c = Region(10, 5)
        assert a.end == 10
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_zero_length_never_overlaps(self):
        assert not Region(5, 0).overlaps(Region(0, 100))


class TestMemoryLayout:
    def test_block_alignment(self):
        lay = MemoryLayout(block=8)
        g = pipeline([5, 3])
        lay.place_graph(g, min_buffers(g))
        r0 = lay.state_region("m0")
        r1 = lay.state_region("m1")
        assert r0.start % 8 == 0 and r1.start % 8 == 0
        assert r1.start >= r0.end

    def test_all_regions_disjoint(self):
        g = diamond(branch_len=3, ways=2, state=7)
        lay = MemoryLayout(block=4)
        lay.place_graph(g, min_buffers(g))
        lay.check_disjoint()  # no raise

    def test_custom_order_respected(self):
        g = pipeline([8, 8, 8])
        lay = MemoryLayout(block=8)
        lay.place_graph(g, min_buffers(g), order=["m2", "m0", "m1"])
        assert lay.state_region("m2").start < lay.state_region("m0").start

    def test_bad_order_rejected(self):
        g = pipeline([8, 8])
        lay = MemoryLayout(block=8)
        with pytest.raises(LayoutError):
            lay.place_graph(g, min_buffers(g), order=["m0"])

    def test_missing_buffer_size_rejected(self):
        g = pipeline([8, 8])
        lay = MemoryLayout(block=8)
        with pytest.raises(LayoutError):
            lay.place_graph(g, {})

    def test_non_positive_capacity_rejected(self):
        g = pipeline([8, 8])
        lay = MemoryLayout(block=8)
        with pytest.raises(LayoutError):
            lay.place_graph(g, {0: 0})

    def test_double_place_rejected(self):
        g = pipeline([8, 8])
        lay = MemoryLayout(block=8)
        lay.place_graph(g, min_buffers(g))
        with pytest.raises(LayoutError):
            lay.place_graph(g, min_buffers(g))

    def test_unplaced_lookup_raises(self):
        lay = MemoryLayout(block=8)
        with pytest.raises(LayoutError):
            lay.state_region("nope")
        with pytest.raises(LayoutError):
            lay.buffer_region(0)

    def test_footprint_accounts_padding(self):
        g = pipeline([1, 1])
        lay = MemoryLayout(block=8)
        lay.place_graph(g, {0: 1})
        # three 1-word objects, each block-aligned: footprint spans 2 blocks + 1
        assert lay.footprint == 17

    def test_invalid_block_rejected(self):
        with pytest.raises(LayoutError):
            MemoryLayout(block=0)

    def test_zero_state_module_gets_empty_region(self):
        g = pipeline([0, 4])
        lay = MemoryLayout(block=8)
        lay.place_graph(g, min_buffers(g))
        assert lay.state_region("m0").length == 0
