"""Tests for memory layout (address assignment)."""

import pytest

from repro.errors import LayoutError
from repro.graphs.minbuf import min_buffers
from repro.graphs.topologies import diamond, pipeline
from repro.mem.layout import MemoryLayout, Region


class TestRegion:
    def test_end_and_overlap(self):
        a = Region(0, 10)
        b = Region(5, 10)
        c = Region(10, 5)
        assert a.end == 10
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_zero_length_never_overlaps(self):
        assert not Region(5, 0).overlaps(Region(0, 100))


class TestMemoryLayout:
    def test_block_alignment(self):
        lay = MemoryLayout(block=8)
        g = pipeline([5, 3])
        lay.place_graph(g, min_buffers(g))
        r0 = lay.state_region("m0")
        r1 = lay.state_region("m1")
        assert r0.start % 8 == 0 and r1.start % 8 == 0
        assert r1.start >= r0.end

    def test_all_regions_disjoint(self):
        g = diamond(branch_len=3, ways=2, state=7)
        lay = MemoryLayout(block=4)
        lay.place_graph(g, min_buffers(g))
        lay.check_disjoint()  # no raise

    def test_custom_order_respected(self):
        g = pipeline([8, 8, 8])
        lay = MemoryLayout(block=8)
        lay.place_graph(g, min_buffers(g), order=["m2", "m0", "m1"])
        assert lay.state_region("m2").start < lay.state_region("m0").start

    def test_bad_order_rejected(self):
        g = pipeline([8, 8])
        lay = MemoryLayout(block=8)
        with pytest.raises(LayoutError):
            lay.place_graph(g, min_buffers(g), order=["m0"])

    def test_missing_buffer_size_rejected(self):
        g = pipeline([8, 8])
        lay = MemoryLayout(block=8)
        with pytest.raises(LayoutError):
            lay.place_graph(g, {})

    def test_non_positive_capacity_rejected(self):
        g = pipeline([8, 8])
        lay = MemoryLayout(block=8)
        with pytest.raises(LayoutError):
            lay.place_graph(g, {0: 0})

    def test_double_place_rejected(self):
        g = pipeline([8, 8])
        lay = MemoryLayout(block=8)
        lay.place_graph(g, min_buffers(g))
        with pytest.raises(LayoutError):
            lay.place_graph(g, min_buffers(g))

    def test_unplaced_lookup_raises(self):
        lay = MemoryLayout(block=8)
        with pytest.raises(LayoutError):
            lay.state_region("nope")
        with pytest.raises(LayoutError):
            lay.buffer_region(0)

    def test_footprint_accounts_padding(self):
        g = pipeline([1, 1])
        lay = MemoryLayout(block=8)
        lay.place_graph(g, {0: 1})
        # three 1-word objects, each block-aligned: footprint spans 2 blocks + 1
        assert lay.footprint == 17

    def test_invalid_block_rejected(self):
        with pytest.raises(LayoutError):
            MemoryLayout(block=0)

    def test_zero_state_module_gets_empty_region(self):
        g = pipeline([0, 4])
        lay = MemoryLayout(block=8)
        lay.place_graph(g, min_buffers(g))
        assert lay.state_region("m0").length == 0


class TestPaddingAccounting:
    """Regression suite for the padding/alignment bookkeeping: the module
    docstring's "at most one block of padding per object" claim holds for
    *alignment*, and deliberate gaps are accounted separately so they can
    never masquerade as (or hide inside) alignment cost."""

    def test_alignment_padding_at_most_one_block_per_object(self):
        # 1-word objects maximize alignment waste: block - 1 words each
        g = pipeline([1, 1, 1, 1])
        lay = MemoryLayout(block=8)
        lay.place_graph(g, min_buffers(g))
        n_objects = len(g.module_names()) + g.n_channels
        assert lay.alignment_words <= (lay.block - 1) * n_objects
        assert lay.gap_words == 0
        assert lay.total_words == lay.payload_words + lay.alignment_words

    def test_total_words_decomposes_exactly(self):
        g = diamond(branch_len=3, ways=2, state=7)
        caps = min_buffers(g)
        from repro.mem.layout import layout_objects

        plan = layout_objects(g)
        gaps = {plan[0]: 2, plan[3]: 1}
        lay = MemoryLayout(block=4)
        lay.place_graph(g, caps, placement=plan, gaps=gaps)
        lay.check_disjoint()
        assert lay.gap_words == 3 * 4  # deliberate: 3 blocks of 4 words
        assert lay.total_words == lay.footprint
        assert lay.total_words == (
            lay.payload_words + lay.alignment_words + lay.gap_words
        )
        # the deliberate gaps must NOT be counted as alignment
        ref = MemoryLayout(block=4)
        ref.place_graph(g, caps, placement=plan)
        assert lay.alignment_words == ref.alignment_words
        assert lay.total_words == ref.total_words + lay.gap_words

    def test_gaps_shift_following_regions_by_whole_blocks(self):
        g = pipeline([8, 8, 8])
        caps = min_buffers(g)
        plain = MemoryLayout(block=8)
        plain.place_graph(g, caps)
        gapped = MemoryLayout(block=8)
        gapped.place_graph(g, caps, gaps={("state", "m1"): 3})
        assert gapped.state_region("m0") == plain.state_region("m0")
        delta = gapped.state_region("m1").start - plain.state_region("m1").start
        assert delta == 3 * 8
        assert gapped.state_region("m1").start % 8 == 0
        gapped.check_disjoint()

    def test_gap_for_unplaced_object_rejected(self):
        g = pipeline([8, 8])
        lay = MemoryLayout(block=8)
        with pytest.raises(LayoutError, match="does not place"):
            lay.place_graph(g, min_buffers(g), gaps={("state", "ghost"): 1})

    @pytest.mark.parametrize("bad", [-1, 1.5, True])
    def test_non_integer_or_negative_gap_rejected(self, bad):
        g = pipeline([8, 8])
        lay = MemoryLayout(block=8)
        with pytest.raises(LayoutError, match="non-negative block count"):
            lay.place_graph(g, min_buffers(g), gaps={("state", "m0"): bad})
