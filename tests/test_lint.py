"""repro.lint: the analyzer is clean on the live tree, and every rule both
passes and fires on synthetic violations (exact file:line anchors).

The synthetic projects use the ``Project(files={...})`` overlay: the rules
see *only* the given relative-path -> source mapping, so each test builds
the smallest tree that violates (or satisfies) exactly one invariant.
"""

from __future__ import annotations

import json

import pytest

from repro.lint import Project, all_rules, main, run_lint
from repro.lint.rules import BENCH_EXEMPT, DTYPE_CONTRACTS


def _violations(files, rules):
    return run_lint(Project(files=files), rules=rules).violations


def _messages(files, rules):
    return [str(v) for v in _violations(files, rules)]


class TestLiveTree:
    """The shipped tree satisfies every invariant the linter enforces."""

    def test_all_rules_clean(self):
        report = run_lint()
        assert report.rules_run == tuple(r.id for r in all_rules())
        assert report.violations == [], report.format()

    def test_all_six_rule_families_registered(self):
        assert [r.id for r in all_rules()] == ["R1", "R2", "R3", "R4", "R5", "R6"]

    def test_bench_exemptions_all_carry_reasons(self):
        for exp_id, reason in BENCH_EXEMPT.items():
            assert "bench" in reason, (exp_id, reason)


# ---------------------------------------------------------------------------
# R1 — registry completeness
# ---------------------------------------------------------------------------
_R1_REGISTRATION = (
    'register_policy(ReplacementPolicy(name="zap", description="d"))\n'
)


class TestR1RegistryCompleteness:
    def _files(self, **overrides):
        files = {
            "src/repro/cache/zap.py": _R1_REGISTRATION,
            "src/repro/runtime/replay.py": (
                'register_replay_kernel("zap", _zap_kernel)\n'
            ),
            "src/repro/cli.py": 'POLICY_CHOICES = ("zap",)\n',
            "docs/REPLAY.md": "# replay\n### `zap` — the zap policy\n",
            "README.md": "",
            "tests/test_zap.py": (
                "from repro.testing.harness import differential_grid, "
                "replay_kernel, stepwise_oracle\n"
                'differential_grid(replay_kernel("zap"), '
                'stepwise_oracle("zap"), [], [])\n'
            ),
        }
        files.update(overrides)
        return files

    def test_complete_policy_passes(self):
        assert _violations(self._files(), ["R1"]) == []

    def test_missing_kernel_reported_with_file_line(self):
        files = self._files(**{"src/repro/runtime/replay.py": ""})
        (v,) = _violations(files, ["R1"])
        assert v.rule == "R1"
        assert v.path == "src/repro/cache/zap.py" and v.line == 1
        assert "register_replay_kernel" in v.message and "'zap'" in v.message
        assert str(v).startswith("src/repro/cache/zap.py:1: R1:")

    def test_missing_differential_test_reported(self):
        files = self._files(**{"tests/test_zap.py": "import os\n"})
        (v,) = _violations(files, ["R1"])
        assert "differential test" in v.message

    def test_test_without_differential_grid_does_not_count(self):
        # naming the policy in a test that never uses the harness is not a pin
        files = self._files(
            **{"tests/test_zap.py": 'x = replay_kernel("zap")\n'}
        )
        (v,) = _violations(files, ["R1"])
        assert "differential test" in v.message

    def test_missing_docs_heading_reported(self):
        files = self._files(**{"docs/REPLAY.md": "# replay\nzap in prose only\n"})
        (v,) = _violations(files, ["R1"])
        assert "docs/REPLAY.md heading" in v.message

    def test_missing_cli_surface_reported(self):
        files = self._files(**{"src/repro/cli.py": "pass\n"})
        (v,) = _violations(files, ["R1"])
        assert "CLI" in v.message

    def test_missing_required_file_is_itself_a_violation(self):
        files = self._files()
        del files["docs/REPLAY.md"]
        msgs = _messages(files, ["R1"])
        assert any("docs/REPLAY.md is missing" in m for m in msgs)

    def test_incomplete_policy_counts_every_gap(self):
        files = {
            "src/repro/cache/zap.py": _R1_REGISTRATION,
            "src/repro/runtime/replay.py": "",
            "src/repro/cli.py": "",
            "docs/REPLAY.md": "# replay\n",
            "README.md": "",
        }
        vs = _violations(files, ["R1"])
        assert len(vs) == 4  # kernel, test, docs heading, CLI
        assert all(v.path == "src/repro/cache/zap.py" for v in vs)


# ---------------------------------------------------------------------------
# R2 — experiment completeness
# ---------------------------------------------------------------------------
_R2_CLI = (
    "def cmd_experiment(args):\n"
    "    prefix = {\n"
    '        **{f"e{i}": f"experiment_e{i}_" for i in range(1, 2)},\n'
    '        **{f"a{i}": f"ablation_a{i}_" for i in range(1, 2)},\n'
    "    }.get(key)\n"
)


class TestR2ExperimentCompleteness:
    def _files(self, **overrides):
        files = {
            "src/repro/analysis/experiments.py": (
                "def experiment_e1_demo():\n    return []\n"
            ),
            "src/repro/cli.py": _R2_CLI,
            "README.md": "| E1 | demo | `experiment_e1_demo` |\n",
            "benchmarks/bench_e1_demo.py": (
                "from repro.analysis.experiments import experiment_e1_demo\n"
            ),
        }
        files.update(overrides)
        return files

    def test_complete_experiment_passes(self):
        assert _violations(self._files(), ["R2"]) == []

    def test_missing_cli_dispatch_reported(self):
        files = self._files(
            **{
                "src/repro/analysis/experiments.py": (
                    "def experiment_e1_demo():\n    return []\n"
                    "def experiment_e2_extra():\n    return []\n"
                ),
                "README.md": "`experiment_e1_demo` `experiment_e2_extra`\n",
                "benchmarks/bench_e1_demo.py": (
                    "from repro.analysis.experiments import "
                    "experiment_e1_demo, experiment_e2_extra\n"
                ),
            }
        )
        (v,) = _violations(files, ["R2"])
        assert v.path == "src/repro/analysis/experiments.py" and v.line == 3
        assert "'e2'" in v.message and "CLI" in v.message

    def test_unrecognizable_dispatch_is_reported_once(self):
        files = self._files(**{"src/repro/cli.py": "def cmd_experiment(a):\n    pass\n"})
        msgs = _messages(files, ["R2"])
        assert any("cannot recover the experiment dispatch" in m for m in msgs)

    def test_missing_benchmark_reported_unless_exempt(self):
        files = self._files()
        del files["benchmarks/bench_e1_demo.py"]
        (v,) = _violations(files, ["R2"])
        assert "bench" in v.message and "'e1'" in v.message

    def test_documented_exemption_silences_benchmark_gap(self):
        some_exempt_id = next(iter(BENCH_EXEMPT))  # e.g. "a7"
        n = some_exempt_id[1:]
        files = {
            "src/repro/analysis/experiments.py": (
                f"def ablation_{some_exempt_id}_demo():\n    return []\n"
            ),
            "src/repro/cli.py": _R2_CLI.replace(
                "range(1, 2)},\n        **{f\"a{i}\": f\"ablation_a{i}_\" "
                "for i in range(1, 2)",
                f"range(1, 2)}},\n        **{{f\"a{{i}}\": f\"ablation_a{{i}}_\" "
                f"for i in range({n}, {int(n) + 1})",
            ),
            "README.md": f"`ablation_{some_exempt_id}_demo`\n",
        }
        msgs = _messages(files, ["R2"])
        assert not any("bench" in m for m in msgs), msgs

    def test_missing_readme_row_reported(self):
        files = self._files(**{"README.md": "nothing here\n"})
        (v,) = _violations(files, ["R2"])
        assert "README.md row" in v.message


# ---------------------------------------------------------------------------
# R3 — hot-path purity
# ---------------------------------------------------------------------------
class TestR3HotPathPurity:
    def test_clean_hot_path_passes(self):
        files = {
            "src/repro/runtime/replay.py": (
                "from repro.cache.policy import get_policy\n"
                "from repro.cache.opt import next_occurrences\n"
            ),
            "src/repro/runtime/compiled.py": (
                "from repro.runtime.executor import build_memory_plan\n"
            ),
        }
        assert _violations(files, ["R3"]) == []

    def test_executor_import_reported_with_line(self):
        files = {
            "src/repro/runtime/replay.py": (
                "import numpy as np\n"
                "from repro.runtime.executor import Executor\n"
            ),
            "src/repro/runtime/compiled.py": "",
        }
        (v,) = _violations(files, ["R3"])
        assert (v.path, v.line) == ("src/repro/runtime/replay.py", 2)
        assert "Executor" in v.message

    @pytest.mark.parametrize(
        "stmt",
        [
            "from repro.cache.lru import LRUCache\n",
            "from repro.cache.hierarchy import TwoLevelCache\n",
            "from repro.cache.opt import simulate_opt\n",
            "from repro.testing.oracles import assert_trace_equivalent\n",
            "import repro.testing.oracles\n",
        ],
    )
    def test_each_banned_import_fires(self, stmt):
        files = {
            "src/repro/runtime/compiled.py": stmt,
            "src/repro/runtime/replay.py": "",
        }
        vs = _violations(files, ["R3"])
        assert len(vs) == 1 and vs[0].path == "src/repro/runtime/compiled.py"


# ---------------------------------------------------------------------------
# R4 — dtype contracts
# ---------------------------------------------------------------------------
_R4_DOC = '"""doc: int64, uint8, int16, bool arrays."""\n'


class TestR4DtypeContracts:
    def test_contract_covers_hot_path_modules(self):
        assert set(DTYPE_CONTRACTS) == {
            "src/repro/runtime/compiled.py",
            "src/repro/runtime/replay.py",
            "src/repro/runtime/streaming.py",
        }

    def _files(self, compiled_body=""):
        return {
            "src/repro/runtime/compiled.py": _R4_DOC + compiled_body,
            "src/repro/runtime/replay.py": _R4_DOC,
        }

    def test_explicit_contract_dtypes_pass(self):
        files = self._files(
            "import numpy as np\n"
            "a = np.zeros(4, dtype=np.int64)\n"
            "b = np.asarray([1], dtype=np.uint8)\n"
            "c = np.empty(0, dtype=bool)\n"
        )
        assert _violations(files, ["R4"]) == []

    def test_missing_dtype_reported_with_line(self):
        files = self._files("import numpy as np\nx = np.zeros(4)\n")
        (v,) = _violations(files, ["R4"])
        assert (v.path, v.line) == ("src/repro/runtime/compiled.py", 3)
        assert "without an explicit dtype" in v.message

    def test_off_contract_dtype_reported(self):
        files = self._files(
            "import numpy as np\ny = np.zeros(4, dtype=np.float32)\n"
        )
        (v,) = _violations(files, ["R4"])
        assert "float32" in v.message and "contract" in v.message

    def test_undocumented_contract_dtype_reported(self):
        files = self._files()
        files["src/repro/runtime/replay.py"] = '"""doc: int64 and bool."""\n'
        (v,) = _violations(files, ["R4"])
        assert "'int16'" in v.message and "docstring" in v.message

    def test_non_constructor_numpy_calls_ignored(self):
        files = self._files(
            "import numpy as np\n"
            "n = np.count_nonzero(np.asarray([1], dtype=np.int64))\n"
            "m = np.concatenate([])\n"
        )
        assert _violations(files, ["R4"]) == []

    def test_line_suppression_comment_filters_violation(self):
        files = self._files(
            "import numpy as np\n"
            "x = np.zeros(4)  # repro-lint: disable=R4\n"
        )
        report = run_lint(Project(files=files), rules=["R4"])
        assert report.violations == [] and report.suppressed == 1

    def test_suppression_on_preceding_line_counts(self):
        files = self._files(
            "import numpy as np\n"
            "# repro-lint: disable=R4\n"
            "x = np.zeros(4)\n"
        )
        assert _violations(files, ["R4"]) == []

    def test_file_wide_suppression(self):
        files = self._files(
            "# repro-lint: disable-file=R4\n"
            "import numpy as np\n"
            "x = np.zeros(4)\n"
            "y = np.zeros(4, dtype=np.float16)\n"
        )
        assert _violations(files, ["R4"]) == []

    def test_suppressing_one_rule_keeps_others(self):
        files = self._files(
            "from repro.cache.lru import LRUCache  # repro-lint: disable=R4\n"
        )
        assert _violations(files, ["R4"]) == []
        assert len(_violations(files, ["R3"])) == 1


# ---------------------------------------------------------------------------
# R5 — twin-fold pinning
# ---------------------------------------------------------------------------
_R5_INDEXING = (
    "def fold_parameters(sets):\n    return sets.bit_length() - 1, sets - 1\n"
    "def xor_fold_index(block, sets):\n    return 0\n"
    "def xor_fold_index_array(blocks, sets):\n    return blocks\n"
)


class TestR5TwinFoldPinning:
    def _files(self, **overrides):
        files = {
            "src/repro/cache/indexing.py": _R5_INDEXING,
            "src/repro/cache/base.py": (
                "from repro.cache.indexing import xor_fold_index\n"
            ),
            "src/repro/runtime/replay.py": (
                "from repro.cache.indexing import xor_fold_index_array\n"
            ),
        }
        files.update(overrides)
        return files

    def test_pinned_twins_pass(self):
        assert _violations(self._files(), ["R5"]) == []

    def test_missing_shared_helper_reported(self):
        files = self._files(
            **{
                "src/repro/cache/indexing.py": (
                    "def fold_parameters(sets):\n    return 0, 0\n"
                    "def xor_fold_index(block, sets):\n    return 0\n"
                )
            }
        )
        (v,) = _violations(files, ["R5"])
        assert v.path == "src/repro/cache/indexing.py"
        assert "xor_fold_index_array" in v.message

    def test_consumer_without_import_reported(self):
        files = self._files(**{"src/repro/cache/base.py": "X = 1\n"})
        (v,) = _violations(files, ["R5"])
        assert v.path == "src/repro/cache/base.py"
        assert "import xor_fold_index" in v.message

    def test_local_duplicate_fold_reported(self):
        files = self._files(
            **{
                "src/repro/runtime/replay.py": (
                    "from repro.cache.indexing import xor_fold_index_array\n"
                    "def xor_fold_local(blocks, sets):\n"
                    "    k = sets.bit_length() - 1\n"
                    "    return blocks\n"
                )
            }
        )
        msgs = _messages(files, ["R5"])
        assert any("duplicates repro.cache.indexing" in m for m in msgs)
        assert any("bit_length" in m for m in msgs)


# ---------------------------------------------------------------------------
# R6 — obs name registry + import-light obs package
# ---------------------------------------------------------------------------
_R6_NAMES = (
    'CACHE_HITS = "trace_cache.hits"\n'
    'REPLAY = "replay"\n'
)


class TestR6ObsNameRegistry:
    def _files(self, **overrides):
        files = {
            "src/repro/obs/names.py": _R6_NAMES,
            "src/repro/runtime/widget.py": (
                "from repro.obs import core as obs\n"
                "from repro.obs import names as obs_names\n"
                "def f():\n"
                "    obs.add(obs_names.CACHE_HITS, 1)\n"
                "    with obs.span(obs_names.REPLAY, policy='lru'):\n"
                "        pass\n"
            ),
        }
        files.update(overrides)
        return files

    def test_registered_names_pass(self):
        assert _violations(self._files(), ["R6"]) == []

    def test_literal_registered_value_passes(self):
        files = self._files(
            **{
                "src/repro/runtime/widget.py": (
                    "from repro.obs import core as obs\n"
                    'obs.add("trace_cache.hits", 1)\n'
                )
            }
        )
        assert _violations(files, ["R6"]) == []

    def test_unregistered_literal_reported(self):
        files = self._files(
            **{
                "src/repro/runtime/widget.py": (
                    "from repro.obs import core as obs\n"
                    'obs.add("bogus.counter", 1)\n'
                )
            }
        )
        (v,) = _violations(files, ["R6"])
        assert (v.path, v.line) == ("src/repro/runtime/widget.py", 2)
        assert "bogus.counter" in v.message
        assert "repro.obs.names" in v.message

    def test_unknown_names_attribute_reported(self):
        files = self._files(
            **{
                "src/repro/runtime/widget.py": (
                    "from repro.obs import core as obs\n"
                    "from repro.obs import names as obs_names\n"
                    "obs.add(obs_names.NO_SUCH_NAME, 1)\n"
                )
            }
        )
        (v,) = _violations(files, ["R6"])
        assert v.line == 3 and "NO_SUCH_NAME" in v.message

    def test_dynamic_name_reported(self):
        files = self._files(
            **{
                "src/repro/runtime/widget.py": (
                    "from repro.obs import core as obs\n"
                    "def f(metric):\n"
                    "    obs.add(metric, 1)\n"
                )
            }
        )
        (v,) = _violations(files, ["R6"])
        assert v.line == 3 and "dynamic name" in v.message

    def test_dynamic_name_suppressible(self):
        files = self._files(
            **{
                "src/repro/runtime/widget.py": (
                    "from repro.obs import core as obs\n"
                    "def f(metric):\n"
                    "    obs.add(metric, 1)  # repro-lint: disable=R6\n"
                )
            }
        )
        report = run_lint(Project(files=files), rules=["R6"])
        assert report.violations == [] and report.suppressed == 1

    def test_bare_emitter_import_checked(self):
        files = self._files(
            **{
                "src/repro/runtime/widget.py": (
                    "from repro.obs import add\n"
                    'add("bogus.counter", 1)\n'
                )
            }
        )
        (v,) = _violations(files, ["R6"])
        assert v.line == 2 and "bogus.counter" in v.message

    def test_constant_imported_from_names_passes(self):
        files = self._files(
            **{
                "src/repro/runtime/widget.py": (
                    "from repro.obs import core as obs\n"
                    "from repro.obs.names import CACHE_HITS\n"
                    "obs.add(CACHE_HITS, 1)\n"
                )
            }
        )
        assert _violations(files, ["R6"]) == []

    def test_unrelated_add_calls_ignored(self):
        files = self._files(
            **{
                "src/repro/runtime/widget.py": (
                    "from repro.obs import core as obs\n"
                    "class Bag:\n"
                    "    def add(self, name, n):\n"
                    "        pass\n"
                    "def f(bag, metric):\n"
                    "    bag.add(metric, 1)\n"
                )
            }
        )
        assert _violations(files, ["R6"]) == []

    def test_heavy_import_in_obs_reported(self):
        files = self._files(
            **{
                "src/repro/obs/core.py": (
                    "import numpy as np\n"
                    "from repro.runtime.compiled import simulate_trace\n"
                )
            }
        )
        msgs = _messages(files, ["R6"])
        assert len(msgs) == 2
        assert any("numpy" in m for m in msgs)
        assert any("repro.runtime.compiled" in m for m in msgs)
        assert all("import-light" in m for m in msgs)

    def test_lazy_heavy_import_in_obs_passes(self):
        files = self._files(
            **{
                "src/repro/obs/core.py": (
                    "def snapshot_sizes():\n"
                    "    import numpy as np\n"
                    "    return np.zeros(1)\n"
                )
            }
        )
        assert _violations(files, ["R6"]) == []


# ---------------------------------------------------------------------------
# runner + CLI behavior
# ---------------------------------------------------------------------------
class TestRunnerAndCli:
    def test_crashing_rule_becomes_a_violation(self):
        from repro.lint.core import LintReport, register_rule, _RULES

        @register_rule("R99", "self-test", "always crashes")
        def _boom(project):
            raise RuntimeError("kaput")

        try:
            report = run_lint(Project(files={}), rules=["R99"])
            assert isinstance(report, LintReport)
            (v,) = report.violations
            assert "crashed" in v.message and "kaput" in v.message
        finally:
            del _RULES["R99"]

    def test_unknown_rule_id_raises_keyerror(self):
        with pytest.raises(KeyError, match="R77"):
            run_lint(Project(files={}), rules=["R77"])

    def test_violations_sorted_by_path_line(self):
        files = {
            "src/repro/runtime/replay.py": (
                "from repro.testing.oracles import x\n"
                "from repro.runtime.executor import Executor\n"
            ),
            "src/repro/runtime/compiled.py": (
                "from repro.cache.lru import LRUCache\n"
            ),
        }
        vs = _violations(files, ["R3"])
        assert [(v.path, v.line) for v in vs] == [
            ("src/repro/runtime/compiled.py", 1),
            ("src/repro/runtime/replay.py", 1),
            ("src/repro/runtime/replay.py", 2),
        ]

    def test_cli_clean_on_live_tree(self, capsys):
        assert main([]) == 0
        assert "repro.lint: ok" in capsys.readouterr().out

    def test_cli_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rid in ("R1", "R2", "R3", "R4", "R5", "R6"):
            assert rid in out

    def test_cli_rule_subset_and_json(self, capsys):
        assert main(["--rules", "R3,R5", "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out) == []

    def test_cli_unknown_rule_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--rules", "R9"])
        assert exc.value.code == 2
        assert "R9" in capsys.readouterr().err

    def test_cli_reports_violations_nonzero(self, tmp_path, capsys):
        # a root missing every anchor file: the linter must fail loudly,
        # not crash — exercised through --root end to end
        (tmp_path / "src").mkdir()
        assert main(["--root", str(tmp_path), "--rules", "R5"]) == 1
        out = capsys.readouterr().out
        assert "repro.lint: FAIL" in out and "indexing.py is missing" in out


class TestR2ServiceBenchReference:
    """Service-path modules (backend, trace cache) must stay benchmarked."""

    def _files(self, bench="run_batch(qs)\nTraceCache(p)\n", with_service=True):
        files = {
            "src/repro/analysis/experiments.py": (
                "def experiment_e1_demo():\n    return []\n"
            ),
            "src/repro/cli.py": _R2_CLI,
            "README.md": "| E1 | demo | `experiment_e1_demo` |\n",
            "benchmarks/bench_e1_demo.py": (
                "from repro.analysis.experiments import experiment_e1_demo\n"
            ),
            "benchmarks/bench_service.py": bench,
        }
        if with_service:
            files["src/repro/runtime/backend.py"] = "def run_batch():\n    pass\n"
            files["src/repro/runtime/trace_cache.py"] = "class TraceCache:\n    pass\n"
        return files

    def test_benchmarked_service_modules_pass(self):
        assert _violations(self._files(), ["R2"]) == []

    def test_unbenchmarked_backend_reported(self):
        (v,) = _violations(self._files(bench="TraceCache(p)\n"), ["R2"])
        assert v.path == "src/repro/runtime/backend.py"
        assert "run_batch" in v.message and "bench_service" in v.message

    def test_unbenchmarked_trace_cache_reported(self):
        (v,) = _violations(self._files(bench="run_batch(qs)\n"), ["R2"])
        assert v.path == "src/repro/runtime/trace_cache.py"

    def test_overlay_without_service_modules_is_exempt(self):
        # synthetic projects that omit the modules owe no benchmark
        assert _violations(self._files(bench="", with_service=False), ["R2"]) == []


class TestR3ServiceModules:
    """backend/trace_cache obey the same hot-path purity contract."""

    def _files(self, backend="", trace_cache=""):
        return {
            "src/repro/runtime/replay.py": "",
            "src/repro/runtime/compiled.py": "",
            "src/repro/runtime/backend.py": backend,
            "src/repro/runtime/trace_cache.py": trace_cache,
        }

    def test_clean_service_modules_pass(self):
        files = self._files(
            backend="from repro.runtime.replay import replay_miss_masks\n",
            trace_cache="import numpy as np\n",
        )
        assert _violations(files, ["R3"]) == []

    def test_backend_importing_executor_reported(self):
        files = self._files(
            backend="from repro.runtime.executor import Executor\n"
        )
        (v,) = _violations(files, ["R3"])
        assert (v.path, v.line) == ("src/repro/runtime/backend.py", 1)
        assert "Executor" in v.message

    def test_trace_cache_importing_testing_reported(self):
        files = self._files(
            trace_cache="from repro.testing.harness import differential_grid\n"
        )
        (v,) = _violations(files, ["R3"])
        assert v.path == "src/repro/runtime/trace_cache.py"
        assert "repro.testing" in v.message

    def test_absent_service_modules_are_not_required(self):
        files = {
            "src/repro/runtime/replay.py": "",
            "src/repro/runtime/compiled.py": "",
        }
        assert _violations(files, ["R3"]) == []
