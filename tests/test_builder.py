"""Tests for the fluent GraphBuilder API."""

import pytest

from repro.errors import GraphError
from repro.graphs.builder import GraphBuilder
from repro.graphs.validate import validate_graph


class TestBuilder:
    def test_simple_chain(self):
        g = GraphBuilder().source(state=2).chain(3, state=5).sink().build()
        assert g.n_modules == 5
        assert g.is_pipeline()
        assert validate_graph(g).ok

    def test_source_must_come_first(self):
        b = GraphBuilder().source()
        with pytest.raises(GraphError):
            b.source()

    def test_then_requires_frontier(self):
        with pytest.raises(GraphError):
            GraphBuilder().then()

    def test_split_join(self):
        g = (
            GraphBuilder()
            .source()
            .split(3, state=4)
            .each(2, state=4)
            .join(state=2)
            .sink()
            .build()
        )
        assert len(g.sources()) == 1 and len(g.sinks()) == 1
        assert validate_graph(g).ok

    def test_split_requires_single_frontier(self):
        b = GraphBuilder().source().split(2)
        with pytest.raises(GraphError):
            b.split(2)

    def test_split_rates(self):
        g = (
            GraphBuilder()
            .source()
            .split_rates([(1, 1), (1, 1)])
            .join()
            .build(validate=False)
        )
        assert g.n_modules == 4

    def test_frontier_tracking(self):
        b = GraphBuilder().source("s")
        assert b.frontier == ["s"]
        b.split(2)
        assert len(b.frontier) == 2

    def test_map_frontier(self):
        g = (
            GraphBuilder()
            .source()
            .split(2)
            .map_frontier(lambda i, up: (f"w{i}", 3, 1, 1))
            .join()
            .build()
        )
        assert g.has_module("w0") and g.has_module("w1")
        assert g.state("w0") == 3

    def test_chain_state_fn(self):
        g = GraphBuilder().source().chain(4, state_fn=lambda i: (i + 1) * 10).sink().build()
        states = sorted(m.state for m in g.modules() if m.state)
        assert states == [10, 20, 30, 40]

    def test_named_modules(self):
        g = GraphBuilder().source("in").then("mid", state=1).sink("out").build()
        assert g.module_names() == ["in", "mid", "out"]

    def test_fresh_names_unique(self):
        b = GraphBuilder().source()
        b.graph.add_module("f2")  # collide with the generator's next pick
        b.chain(2)
        assert b.graph.n_modules == 4  # no duplicate-name explosion

    def test_build_validates_by_default(self):
        b = GraphBuilder().source().split(2)  # two dangling sinks
        g = b.build(validate=False)
        assert len(g.sinks()) == 2
        b2 = GraphBuilder().source().split(2)
        with pytest.raises(GraphError):
            b2.build()
