"""Tests for SDF delays (initial channel tokens)."""

import pytest

from repro.cache.base import CacheGeometry
from repro.errors import GraphError, ScheduleError
from repro.graphs.minbuf import min_buffer, min_buffers
from repro.graphs.repetition import compute_gains, repetition_vector
from repro.graphs.sdf import Channel, StreamGraph
from repro.mem.layout import Region
from repro.runtime.buffers import ChannelBuffer
from repro.runtime.deadlock import demand_driven_schedule
from repro.runtime.executor import Executor
from repro.runtime.schedule import Schedule, validate_schedule


def delayed_chain(delay=2):
    g = StreamGraph("delayed")
    g.add_module("a", state=4)
    g.add_module("b", state=4)
    g.add_channel("a", "b", delay=delay)
    return g


class TestModel:
    def test_delay_stored(self):
        g = delayed_chain(3)
        assert next(iter(g.channels())).delay == 3

    def test_negative_delay_rejected(self):
        with pytest.raises(GraphError):
            Channel(cid=0, src="a", dst="b", delay=-1)

    def test_copy_preserves_delay(self):
        g = delayed_chain(5)
        assert next(iter(g.copy().channels())).delay == 5

    def test_delay_does_not_change_gains(self):
        g = delayed_chain(4)
        gains = compute_gains(g)
        assert gains.gain("b") == 1
        assert repetition_vector(g) == {"a": 1, "b": 1}

    def test_minbuf_covers_delay(self):
        g = delayed_chain(3)
        ch = next(iter(g.channels()))
        assert min_buffer(ch) == 1 + 1 + 3
        assert min_buffer(ch, convention="tight") == 1 + 3


class TestScheduling:
    def test_consumer_can_fire_first(self):
        g = delayed_chain(2)
        validate_schedule(g, Schedule(["b", "b", "a", "a", "b"]))

    def test_drained_means_back_to_delay(self):
        g = delayed_chain(2)
        # consume the two initial tokens and replace them
        validate_schedule(g, Schedule(["b", "a", "b", "a"]), require_drained=True)
        with pytest.raises(ScheduleError):
            validate_schedule(g, Schedule(["b"]), require_drained=True)

    def test_demand_driven_uses_delays(self):
        g = delayed_chain(1)
        firings = demand_driven_schedule(g, {"b": 1}, min_buffers(g))
        assert firings == ["b"]

    def test_software_pipelined_diamond(self):
        """A delay on one branch lets the join run one step skewed."""
        g = StreamGraph("skew")
        for n in ("s", "x", "y", "t"):
            g.add_module(n, state=2)
        g.add_channel("s", "x")
        g.add_channel("s", "y")
        g.add_channel("x", "t")
        g.add_channel("y", "t", delay=1)
        # t can fire with x's token plus y's initial token, before y ever runs
        validate_schedule(g, Schedule(["s", "x", "t", "y"]))


class TestBufferPrefill:
    def test_prefill_sets_tokens(self):
        b = ChannelBuffer(0, Region(0, 8))
        b.prefill(3)
        assert b.tokens == 3
        assert b.pop_ranges(3) == [(0, 3)]

    def test_prefill_on_used_buffer_rejected(self):
        b = ChannelBuffer(0, Region(0, 8))
        b.push_ranges(1)
        with pytest.raises(ScheduleError):
            b.prefill(2)

    def test_prefill_bounds(self):
        b = ChannelBuffer(0, Region(0, 4))
        with pytest.raises(ScheduleError):
            b.prefill(5)
        with pytest.raises(ScheduleError):
            b.prefill(-1)


class TestExecutorWithDelays:
    def test_executor_prefills(self):
        g = delayed_chain(2)
        ex = Executor(g, CacheGeometry(size=64, block=8))
        assert ex.tokens()[0] == 2
        ex.fire("b")  # consumes an initial token
        assert ex.tokens()[0] == 1

    def test_full_run_with_delays(self):
        g = delayed_chain(1)
        geom = CacheGeometry(size=64, block=8)
        sched = Schedule(["b"] + ["a", "b"] * 10)
        res = Executor.measure(g, geom, sched)
        assert res.firings == 21

    def test_io_round_trip_keeps_delay(self, tmp_path):
        from repro.graphs.io import load_graph, save_graph

        g = delayed_chain(7)
        path = str(tmp_path / "d.json")
        save_graph(g, path)
        assert next(iter(load_graph(path).channels())).delay == 7
