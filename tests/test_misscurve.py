"""Tests for Mattson stack distances and miss curves."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.misscurve import (
    experiment_e15_miss_curves,
    miss_curve,
    misses_at,
    opt_miss_curve,
    stack_distances,
    stack_distances_array,
)
from repro.cache.base import CacheGeometry
from repro.cache.lru import LRUCache
from repro.cache.opt import simulate_opt
from repro.testing.oracles import reference_stack_distances


def lru_misses(trace, blocks):
    c = LRUCache(CacheGeometry(size=blocks * 4, block=4))
    for b in trace:
        c.access_block(b)
    return c.stats.misses


class TestStackDistances:
    def test_cold_accesses_are_none(self):
        assert stack_distances([1, 2, 3]) == [None, None, None]

    def test_immediate_reuse_distance_one(self):
        assert stack_distances([5, 5]) == [None, 1]

    def test_textbook_example(self):
        # a b c a : the second 'a' has seen {b, c, a} distinct -> distance 3
        d = stack_distances([1, 2, 3, 1])
        assert d == [None, None, None, 3]

    def test_repeat_pattern(self):
        d = stack_distances([1, 2, 1, 2])
        assert d == [None, None, 2, 2]

    def test_empty(self):
        assert stack_distances([]) == []


class TestVectorizedKernel:
    """The numpy searchsorted kernel against the sequential Fenwick oracle."""

    def test_matches_reference_on_randoms(self):
        rng = np.random.default_rng(7)
        for _ in range(30):
            n = int(rng.integers(0, 300))
            k = int(rng.integers(1, 25))
            trace = rng.integers(0, k, size=n).tolist()
            assert stack_distances(trace) == reference_stack_distances(trace)

    def test_array_form_cold_sentinel(self):
        d = stack_distances_array([4, 9, 4, 4])
        assert d.tolist() == [0, 0, 2, 1]

    def test_large_trace_matches_reference(self):
        rng = np.random.default_rng(11)
        trace = rng.integers(0, 64, size=20000).tolist()
        assert stack_distances(trace) == reference_stack_distances(trace)

    @given(trace=st.lists(st.integers(0, 12), max_size=120))
    @settings(max_examples=60, deadline=None)
    def test_matches_reference_property(self, trace):
        assert stack_distances(trace) == reference_stack_distances(trace)


class TestMissCurve:
    def test_monotone_non_increasing(self):
        rng = np.random.default_rng(1)
        trace = rng.integers(0, 20, size=500).tolist()
        curve = miss_curve(trace)
        assert all(a >= b for a, b in zip(curve, curve[1:]))

    def test_floor_is_compulsory(self):
        rng = np.random.default_rng(2)
        trace = rng.integers(0, 15, size=400).tolist()
        curve = miss_curve(trace)
        assert curve[-1] == len(set(trace))

    def test_zero_cache_misses_everything(self):
        trace = [1, 1, 1]
        curve = miss_curve(trace)
        assert curve[0] == 3

    @pytest.mark.parametrize("blocks", [1, 2, 3, 5, 8, 13])
    def test_matches_lru_simulation(self, blocks):
        rng = np.random.default_rng(blocks)
        trace = rng.integers(0, 16, size=800).tolist()
        assert misses_at(trace, blocks) == lru_misses(trace, blocks)

    @given(trace=st.lists(st.integers(0, 10), max_size=200), blocks=st.integers(1, 12))
    @settings(max_examples=50, deadline=None)
    def test_matches_lru_property(self, trace, blocks):
        assert misses_at(trace, blocks) == lru_misses(trace, blocks)

    def test_max_blocks_truncation(self):
        trace = list(range(50)) * 2
        curve = miss_curve(trace, max_blocks=10)
        assert len(curve) == 11  # indices 0..max_blocks inclusive


class TestOptMissCurve:
    """`opt_miss_curve` mirrors `miss_curve` with Belady distances."""

    def test_monotone_non_increasing(self):
        rng = np.random.default_rng(3)
        trace = rng.integers(0, 20, size=500).tolist()
        curve = opt_miss_curve(trace)
        assert all(a >= b for a, b in zip(curve, curve[1:]))

    def test_floor_is_compulsory(self):
        rng = np.random.default_rng(4)
        trace = rng.integers(0, 15, size=400).tolist()
        curve = opt_miss_curve(trace)
        assert curve[-1] == len(set(trace))

    @pytest.mark.parametrize("blocks", [1, 2, 3, 5, 8, 13])
    def test_matches_opt_simulation(self, blocks):
        rng = np.random.default_rng(blocks + 100)
        trace = rng.integers(0, 16, size=800).tolist()
        curve = opt_miss_curve(trace, max_blocks=blocks)
        geom = CacheGeometry(size=blocks * 4, block=4)
        assert int(curve[blocks]) == simulate_opt(trace, geom).misses

    @given(trace=st.lists(st.integers(0, 10), min_size=1, max_size=200),
           blocks=st.integers(1, 12))
    @settings(max_examples=50, deadline=None)
    def test_matches_opt_property(self, trace, blocks):
        curve = opt_miss_curve(trace, max_blocks=blocks)
        geom = CacheGeometry(size=blocks * 4, block=4)
        assert int(curve[min(blocks, len(curve) - 1)]) == simulate_opt(trace, geom).misses

    def test_never_above_lru_curve(self):
        rng = np.random.default_rng(5)
        trace = rng.integers(0, 24, size=600).tolist()
        lru = miss_curve(trace, max_blocks=24)
        opt = opt_miss_curve(trace, max_blocks=24)
        assert (opt <= lru).all()

    def test_empty_trace(self):
        assert opt_miss_curve([]).tolist() == [0]
        assert opt_miss_curve([], max_blocks=4).tolist() == [0, 0, 0, 0, 0]


class TestE15:
    def test_partitioned_collapses_before_naive(self):
        rows = experiment_e15_miss_curves(n_outputs=200)
        by = {r["cache_over_M"]: r for r in rows}
        # in the regime where one component fits but the whole graph doesn't,
        # partitioning wins by an order of magnitude
        mid = [r for r in rows if 1.5 <= r["cache_over_M"] <= 3.0]
        assert mid and all(r["naive_over_partitioned"] > 10 for r in mid)
        # once the whole graph is resident the naive schedule is optimal
        # (smaller footprint: no Theta(M) cross buffers)
        big = [r for r in rows if r["cache_over_M"] >= 4.0]
        assert big and all(r["naive_over_partitioned"] <= 1.0 for r in big)

    def test_opt_overlay_bounds_lru(self):
        rows = experiment_e15_miss_curves(n_outputs=200)
        for r in rows:
            assert r["partitioned_opt"] <= r["partitioned_misses"]
            assert r["naive_opt"] <= r["naive_misses"]
        # OPT cannot rescue the naive schedule in the mid regime: the
        # paper's win comes from scheduling, not replacement policy
        mid = [r for r in rows if 1.5 <= r["cache_over_M"] <= 3.0]
        assert mid and all(r["naive_opt"] > r["partitioned_misses"] for r in mid)
