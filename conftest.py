"""Repo-root pytest configuration: the ``slow`` marker gate and hypothesis
profiles.

Tier-1 runs (``pytest -x -q``) skip ``@pytest.mark.slow`` tests; the
nightly CI job opts in with ``--runslow`` and cranks hypothesis up via
``HYPOTHESIS_PROFILE=nightly`` (``max_examples=500``).  Profiles are
registered here — the repo root is on every invocation's conftest path, so
benchmarks and tests share them.
"""

import os

import pytest

try:
    from hypothesis import settings

    settings.register_profile("nightly", max_examples=500, deadline=None)
    settings.register_profile("ci", deadline=None)
    _profile = os.environ.get("HYPOTHESIS_PROFILE")
    if _profile:
        settings.load_profile(_profile)
except ImportError:  # pragma: no cover - hypothesis is a test-only dep
    pass


def pytest_addoption(parser):
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="run @pytest.mark.slow tests (the nightly property suites)",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="slow suite: opt in with --runslow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)
