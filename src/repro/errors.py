"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch library failures without catching programming errors.  The concrete
subclasses mirror the preconditions stated in Section 2 of the paper
("Model and definitions"): graphs must be dags, rate matched, single
source/sink, with per-module state at most the cache size.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class GraphError(ReproError):
    """Structural problem with a stream graph (bad vertex/edge references,
    duplicate module names, malformed rates, and so on)."""


class CycleError(GraphError):
    """The stream graph contains a directed cycle.

    The paper restricts attention to dags (Section 2, "Streaming model");
    feedback is explicitly listed as future work (Section 7).
    """


class RateMismatchError(GraphError):
    """The graph is not rate matched: two directed paths between the same
    pair of vertices have different gain products (Section 2, "Assumptions").
    A non-rate-matched graph cannot be scheduled with bounded buffers.
    """


class SourceSinkError(GraphError):
    """The graph does not have the required single source / single sink
    structure and was not normalized via
    :func:`repro.graphs.transforms.normalize_source_sink`."""


class StateTooLargeError(GraphError):
    """Some module's state exceeds the cache size ``M``.

    The paper assumes ``s(v) <= M`` for every module (Section 2,
    "Assumptions"); otherwise a module cannot be fully loaded to fire.
    """


class PartitionError(ReproError):
    """A partition violates a required invariant (not a partition of V,
    not well ordered, not c-bounded, ...)."""


class NotWellOrderedError(PartitionError):
    """The contracted component multigraph has a cycle (Definition 2)."""


class ScheduleError(ReproError):
    """A schedule is infeasible: fires a module without sufficient input
    tokens, overflows a bounded buffer, or deadlocks."""


class DeadlockError(ScheduleError):
    """No module can fire although the computation is not complete."""


class BufferOverflowError(ScheduleError):
    """A firing would exceed the capacity of a bounded channel buffer."""


class CacheConfigError(ReproError):
    """Invalid cache geometry (non-positive M or B, B not dividing M, ...)."""


class LayoutError(ReproError):
    """Memory-layout failure (overlapping ranges, unallocated object)."""
