"""The paper's core contribution: partitions, partitioning algorithms,
lower bounds, partition schedulers, and the baselines they are compared to."""

from repro.core.partition import Partition, singleton_partition, whole_graph_partition
from repro.core.pipeline import (
    greedy_state_blocks,
    optimal_pipeline_partition,
    theorem5_partition,
)
from repro.core.dagpart import (
    exact_min_bandwidth_partition,
    greedy_topological_partition,
    interval_dp_partition,
    min_bandwidth,
    refine_partition,
)
from repro.core.lower_bound import (
    DagLowerBound,
    PipelineLowerBound,
    dag_lower_bound,
    pipeline_lower_bound,
)
from repro.core.partition_sched import (
    component_layout_order,
    homogeneous_partition_schedule,
    inhomogeneous_partition_schedule,
    pipeline_dynamic_schedule,
)
from repro.core.baselines import (
    interleaved_schedule,
    kohli_greedy_schedule,
    phased_schedule,
    sermulins_scaled_schedule,
    single_appearance_schedule,
)
from repro.core.tuning import BatchPlan, augmented_geometry, choose_batch, cross_capacities, required_geometry
from repro.core.dynamic_dag import dynamic_dag_schedule, ready_components
from repro.core.parallel_sched import ParallelResult, WorkerStats, parallel_dynamic_simulation
from repro.core.multilevel import multilevel_partition

__all__ = [
    "Partition",
    "singleton_partition",
    "whole_graph_partition",
    "greedy_state_blocks",
    "optimal_pipeline_partition",
    "theorem5_partition",
    "exact_min_bandwidth_partition",
    "greedy_topological_partition",
    "interval_dp_partition",
    "min_bandwidth",
    "refine_partition",
    "DagLowerBound",
    "PipelineLowerBound",
    "dag_lower_bound",
    "pipeline_lower_bound",
    "component_layout_order",
    "homogeneous_partition_schedule",
    "inhomogeneous_partition_schedule",
    "pipeline_dynamic_schedule",
    "interleaved_schedule",
    "kohli_greedy_schedule",
    "phased_schedule",
    "sermulins_scaled_schedule",
    "single_appearance_schedule",
    "BatchPlan",
    "augmented_geometry",
    "choose_batch",
    "cross_capacities",
    "required_geometry",
    "dynamic_dag_schedule",
    "ready_components",
    "ParallelResult",
    "WorkerStats",
    "parallel_dynamic_simulation",
    "multilevel_partition",
]
