"""Dynamic (asynchronous) scheduling of homogeneous dags.

Section 3, "Scheduling homogeneous graphs", last paragraph: the batch
schedule "extends to an asynchronous or parallel dynamic schedule.  To
schedule components, choose any component(s) with M data items on all
incoming cross edges and empty outgoing cross edges.  Then schedule each
internal module M times ... The homogeneity of the graph ensures that it is
always possible to find a schedulable component."

This module implements the uniprocessor version of that rule (the parallel
version lives in :mod:`repro.core.parallel_sched`): a component becomes
*ready* when every incoming cross buffer holds at least ``M`` tokens and
every outgoing cross buffer has at least ``M`` free slots; running it
performs the M-fold topological sweep of the static scheduler.  Unlike the
static batch schedule, no global phase structure exists — components fire
whenever their local condition holds, which is what a work-queue runtime
would do.

Buffer sizing: each cross edge gets capacity ``2M`` so that a producer can
stay ready while its consumer holds M unconsumed tokens (capacity exactly M
also works but serializes producer/consumer strictly; 2M matches the
"large buffers" the paper's schedulability argument uses).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.cache.base import CacheGeometry
from repro.core.partition import Partition
from repro.errors import DeadlockError, GraphError, ScheduleError
from repro.graphs.minbuf import min_buffers
from repro.graphs.sdf import StreamGraph
from repro.runtime.schedule import Schedule

__all__ = ["dynamic_dag_schedule", "ready_components"]


def _component_cross_edges(partition: Partition):
    """Per component: (incoming cross cids, outgoing cross cids)."""
    incoming: List[List[int]] = [[] for _ in range(partition.k)]
    outgoing: List[List[int]] = [[] for _ in range(partition.k)]
    for ch in partition.cross_channels():
        outgoing[partition.component_of(ch.src)].append(ch.cid)
        incoming[partition.component_of(ch.dst)].append(ch.cid)
    return incoming, outgoing


def ready_components(
    partition: Partition,
    tokens: Dict[int, int],
    capacity: int,
    batch: int,
) -> List[int]:
    """Components satisfying the Section 3 dynamic rule right now:
    >= ``batch`` tokens on every incoming cross edge and room for ``batch``
    more on every outgoing cross edge."""
    incoming, outgoing = _component_cross_edges(partition)
    ready = []
    for idx in range(partition.k):
        if all(tokens[cid] >= batch for cid in incoming[idx]) and all(
            tokens[cid] + batch <= capacity for cid in outgoing[idx]
        ):
            ready.append(idx)
    return ready


def dynamic_dag_schedule(
    graph: StreamGraph,
    partition: Partition,
    geometry: CacheGeometry,
    target_outputs: int,
    policy: str = "fifo",
) -> Schedule:
    """Uniprocessor dynamic schedule for a homogeneous dag.

    Repeatedly picks a ready component (under ``policy``: ``"fifo"`` —
    least-recently-run first, the fair choice; ``"topo"`` — earliest in
    contracted topological order) and runs its M-fold sweep, until the sink
    has fired at least ``target_outputs`` times.

    Returns the induced firing sequence with its buffer capacities; the
    sequence is feasible by construction and reproducible through
    :class:`repro.runtime.executor.Executor`.

    Raises :class:`DeadlockError` if no component is ready — impossible for
    well-ordered partitions of homogeneous dags by the paper's argument, so
    hitting it indicates a broken partition.
    """
    if not graph.is_homogeneous():
        raise GraphError("dynamic_dag_schedule requires a homogeneous graph")
    if target_outputs < 1:
        raise ScheduleError(f"target_outputs must be >= 1, got {target_outputs}")
    if policy not in ("fifo", "topo"):
        raise ScheduleError(f"unknown policy {policy!r}")

    M = geometry.size
    comp_order = partition.component_order()  # validates well-orderedness
    topo_rank = {n: i for i, n in enumerate(graph.topological_order())}
    comp_topo: Dict[int, List[str]] = {
        idx: sorted(partition.components[idx], key=lambda n: topo_rank[n])
        for idx in comp_order
    }
    incoming, outgoing = _component_cross_edges(partition)
    capacity = 2 * M

    caps: Dict[int, int] = min_buffers(graph)
    for ch in partition.cross_channels():
        caps[ch.cid] = capacity

    tokens: Dict[int, int] = {ch.cid: 0 for ch in graph.channels()}
    sink = graph.sinks()[0]
    sink_comp = partition.component_of(sink)

    firings: List[str] = []
    sink_fires = 0
    last_run: Dict[int, int] = {idx: -1 for idx in comp_order}
    clock = 0

    def run_component(idx: int) -> None:
        nonlocal sink_fires, clock
        for _ in range(M):
            for name in comp_topo[idx]:
                for ch in graph.in_channels(name):
                    tokens[ch.cid] -= 1
                for ch in graph.out_channels(name):
                    tokens[ch.cid] += 1
                firings.append(name)
                if name == sink:
                    sink_fires += 1
        clock += 1
        last_run[idx] = clock

    while sink_fires < target_outputs:
        ready = [
            idx
            for idx in comp_order
            if all(tokens[cid] >= M for cid in incoming[idx])
            and all(tokens[cid] + M <= caps[cid] for cid in outgoing[idx])
        ]
        if not ready:
            raise DeadlockError(
                "no schedulable component — partition is not well ordered or "
                "buffers are undersized"
            )
        if policy == "fifo":
            chosen = min(ready, key=lambda idx: last_run[idx])
        else:
            chosen = ready[0]  # comp_order is topological
        run_component(chosen)

    return Schedule(
        firings,
        capacities=caps,
        label=f"dynamic-dag[{policy},{partition.label or partition.k}]",
    )
