"""Pipeline partitioning (Section 4 of the paper).

For a pipeline — a single directed chain of modules — well-ordered
partitions are exactly the partitions into contiguous *segments*, compactly
described by the set of cut edges.  Two constructions are implemented:

* :func:`theorem5_partition` — the constructive proof of Theorem 5: scan the
  chain into blocks ``W_i`` of total state in (2M, 3M], cut each block at
  its *gain-minimizing* edge, and use the cuts as segment boundaries.  The
  resulting segments have state at most 8M and bandwidth equal to the sum of
  the blocks' minimum gains — which Theorem 3 shows is, up to constants, a
  lower bound on *any* schedule's cost.  Runs in O(n).

* :func:`optimal_pipeline_partition` — the minimum-bandwidth c-bounded
  partition via the "simple dynamic program" the paper alludes to after
  Theorem 5.  O(n²) over chain positions; exact.

Both return :class:`repro.core.partition.Partition` objects whose components
are listed source-to-sink (so ``components[i]`` precedes ``components[i+1]``).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from repro.core.partition import Partition
from repro.errors import GraphError, PartitionError
from repro.graphs.repetition import GainTable, compute_gains
from repro.graphs.sdf import Channel, StreamGraph

__all__ = [
    "pipeline_chain",
    "gain_min_edge",
    "greedy_state_blocks",
    "theorem5_partition",
    "optimal_pipeline_partition",
]


def pipeline_chain(graph: StreamGraph) -> Tuple[List[str], List[Channel]]:
    """The chain's modules (source->sink) and its n-1 connecting channels."""
    order = graph.pipeline_order()
    chans: List[Channel] = []
    for a, b in zip(order, order[1:]):
        between = graph.channels_between(a, b)
        if len(between) != 1:
            raise GraphError(f"pipeline expects exactly one channel {a}->{b}, found {len(between)}")
        chans.append(between[0])
    return order, chans


def gain_min_edge(
    chans: Sequence[Channel], gains: GainTable, lo: int, hi: int
) -> Tuple[int, Fraction]:
    """Index (into ``chans``) and gain of the gain-minimizing edge among
    chain edges ``lo..hi-1`` — ``gainMin`` of the segment spanning those
    edges.  Ties break toward the earliest edge (deterministic)."""
    if hi <= lo:
        raise PartitionError("segment has no internal edge")
    best_i, best_g = lo, gains.edge_gain(chans[lo].cid)
    for i in range(lo + 1, hi):
        g = gains.edge_gain(chans[i].cid)
        if g < best_g:
            best_i, best_g = i, g
    return best_i, best_g


def greedy_state_blocks(graph: StreamGraph, cache_size: int) -> List[Tuple[int, int]]:
    """The ``W_i`` blocks of Theorem 5's proof, as index ranges.

    Scan modules source-to-sink, adding to the current block until its total
    state *exceeds* ``2M``; if more than ``2M`` state remains, close the
    block, else absorb the remainder.  Every block except possibly a
    sub-2M-total graph has state > 2M; since each module has state <= M,
    closed blocks stay <= 3M and the absorbed last block <= 5M.

    Returns half-open index ranges ``(lo, hi)`` over the chain order.
    """
    order = graph.pipeline_order()
    states = [graph.state(n) for n in order]
    n = len(order)
    blocks: List[Tuple[int, int]] = []
    lo = 0
    acc = 0
    remaining = sum(states)
    for i, s in enumerate(states):
        acc += s
        remaining -= s
        if acc > 2 * cache_size:
            if remaining > 2 * cache_size:
                blocks.append((lo, i + 1))
                lo, acc = i + 1, 0
            else:
                # absorb everything that's left into this block
                blocks.append((lo, n))
                return blocks
    if lo < n:
        blocks.append((lo, n))
    return blocks


def theorem5_partition(graph: StreamGraph, cache_size: int) -> Partition:
    """The Theorem 5 constructive partition.

    Cuts the chain at the gain-minimizing edge of every state block ``W_i``
    that exceeds ``2M``; blocks that never reach 2M (only possible when the
    whole graph's state is <= 2M) produce no cut, yielding the whole-graph
    partition whose bandwidth is zero.

    The returned partition is well ordered (contiguous segments), has
    bandwidth equal to the sum of block minimum gains, and is 8M-bounded
    (Theorem 5's ``c = 8``).
    """
    order, chans = (graph.pipeline_order(), [])
    if len(order) > 1:
        order, chans = pipeline_chain(graph)
    gains = compute_gains(graph)
    blocks = greedy_state_blocks(graph, cache_size)

    cut_indices: List[int] = []
    for lo, hi in blocks:
        if graph.total_state(order[lo:hi]) <= 2 * cache_size:
            continue  # undersized terminal block: no cut required
        if hi - lo < 2:
            # a single module cannot exceed 2M when s(v) <= M; treat as no cut
            continue
        i, _ = gain_min_edge(chans, gains, lo, hi - 1)
        cut_indices.append(i)

    cut_indices = sorted(set(cut_indices))
    components: List[List[str]] = []
    start = 0
    for cut in cut_indices:
        components.append(list(order[start : cut + 1]))
        start = cut + 1
    components.append(list(order[start:]))
    return Partition(graph, components, gains=gains, label=f"theorem5[M={cache_size}]")


def optimal_pipeline_partition(
    graph: StreamGraph, cache_size: int, c: float = 1.0
) -> Partition:
    """Minimum-bandwidth c-bounded partition of a pipeline (exact, O(n²)).

    Dynamic program over chain positions: ``dp[i]`` is the minimum bandwidth
    of any partition of the first ``i`` modules into segments of state at
    most ``c*M``, where cutting before position ``j`` pays the gain of the
    chain edge ``(j-1, j)``.  The paper notes this optimal partition is
    *no better asymptotically* than the Theorem-5 one — experiment E4
    quantifies the constant-factor gap.

    Raises :class:`PartitionError` when some single module exceeds ``c*M``
    (no c-bounded partition exists).
    """
    order, chans = pipeline_chain(graph) if graph.n_modules > 1 else (graph.pipeline_order(), [])
    gains = compute_gains(graph)
    n = len(order)
    states = [graph.state(name) for name in order]
    bound = c * cache_size
    for name, s in zip(order, states):
        if s > bound:
            raise PartitionError(
                f"module {name!r} has state {s} > c*M = {bound}; no c-bounded partition"
            )

    INF = Fraction(1 << 62)
    dp: List[Fraction] = [INF] * (n + 1)
    parent: List[int] = [-1] * (n + 1)
    dp[0] = Fraction(0)
    # prefix[i] = total state of modules[0:i]
    prefix = [0] * (n + 1)
    for i, s in enumerate(states):
        prefix[i + 1] = prefix[i] + s

    for i in range(1, n + 1):
        # last segment is modules[j:i]
        for j in range(i - 1, -1, -1):
            if prefix[i] - prefix[j] > bound:
                break  # segments only grow as j decreases
            cut_cost = gains.edge_gain(chans[j - 1].cid) if j > 0 else Fraction(0)
            cand = dp[j] + cut_cost
            if cand < dp[i]:
                dp[i] = cand
                parent[i] = j
    if dp[n] >= INF:
        raise PartitionError("no feasible c-bounded pipeline partition found")

    # reconstruct segments
    bounds: List[int] = []
    i = n
    while i > 0:
        j = parent[i]
        bounds.append(j)
        i = j
    bounds.reverse()
    components: List[List[str]] = []
    for idx, j in enumerate(bounds):
        hi = bounds[idx + 1] if idx + 1 < len(bounds) else n
        components.append(list(order[j:hi]))
    return Partition(
        graph, components, gains=gains, label=f"dp-optimal[c={c},M={cache_size}]"
    )
