"""Partitioning general streaming dags (Section 5).

Finding the minimum-bandwidth well-ordered c-bounded partition of a dag is
NP-complete ([8], ND15 "Acyclic Partition"), so the paper prescribes either
exact search at compile time ("it may be reasonable to use an
exponential-time algorithm") or heuristics.  We implement both ends plus a
middle:

* :func:`exact_min_bandwidth_partition` — exhaustive branch-and-bound over
  assignments of modules (visited in topological order) to components, with
  three prunes: state bound, partial-bandwidth bound against the incumbent,
  and canonical component numbering (a module may open component ``k`` only
  if components ``0..k-1`` are in use) to avoid symmetric duplicates.
  Exponential — intended for graphs up to ~12 modules; provides the
  ``minBW_c(G)`` ground truth for Theorem 7 / Corollary 9 experiments.

* :func:`interval_dp_partition` — optimal among partitions whose components
  are *contiguous intervals of one topological order* (always well ordered).
  O(n² · E).  For pipelines the chain order makes this globally optimal
  (same DP as :func:`repro.core.pipeline.optimal_pipeline_partition`).

* :func:`greedy_topological_partition` — linear-time first-fit scan of a
  topological order; the baseline partitioner.

* :func:`refine_partition` — hill-climbing vertex moves between components,
  preserving well-orderedness and the state bound; polishes any of the
  above.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.partition import Partition
from repro.errors import PartitionError
from repro.graphs.repetition import GainTable, compute_gains
from repro.graphs.sdf import StreamGraph

__all__ = [
    "exact_min_bandwidth_partition",
    "interval_dp_partition",
    "greedy_topological_partition",
    "refine_partition",
    "min_bandwidth",
]


def exact_min_bandwidth_partition(
    graph: StreamGraph,
    cache_size: int,
    c: float = 3.0,
    max_modules: int = 14,
    require_well_ordered: bool = True,
) -> Partition:
    """Exact minimum-bandwidth well-ordered c-bounded partition.

    Branch and bound over component assignments in topological order.  A
    candidate's bandwidth counts each cross edge's gain once; the partial
    bandwidth of already-decided edges (both endpoints assigned) is a valid
    lower bound on any completion, enabling aggressive pruning.

    Well-orderedness is checked at the leaves via the contracted graph
    (incremental acyclicity maintenance is not worth the complexity at these
    sizes).  ``require_well_ordered=False`` computes the unconstrained
    minimum-bandwidth c-bounded partition — used in tests to confirm the
    constraint actually binds on graphs like diamonds.

    Raises :class:`PartitionError` for graphs larger than ``max_modules``
    (use the heuristics instead) or when no c-bounded partition exists.
    """
    order = graph.topological_order()
    n = len(order)
    if n > max_modules:
        raise PartitionError(
            f"exact search limited to {max_modules} modules, graph has {n}; "
            "use greedy_topological_partition / interval_dp_partition"
        )
    gains = compute_gains(graph)
    pos = {name: i for i, name in enumerate(order)}
    states = [graph.state(name) for name in order]
    bound = c * cache_size
    for name, s in zip(order, states):
        if s > bound:
            raise PartitionError(f"module {name!r} state {s} > c*M = {bound}")

    # adjacency by position: for each vertex, edges to earlier-assigned ones
    in_edges: List[List[Tuple[int, Fraction]]] = [[] for _ in range(n)]
    for ch in graph.channels():
        in_edges[pos[ch.dst]].append((pos[ch.src], gains.edge_gain(ch.cid)))

    best_bw: List[Fraction] = [Fraction(1 << 62)]
    best_assign: List[Optional[List[int]]] = [None]
    assign: List[int] = [-1] * n
    comp_state: List[float] = []

    def leaf_ok(k: int) -> bool:
        if not require_well_ordered:
            return True
        comps: List[List[str]] = [[] for _ in range(k)]
        for i, a in enumerate(assign):
            comps[a].append(order[i])
        try:
            p = Partition(graph, comps, gains=gains)
        except PartitionError:
            return False
        return p.is_well_ordered()

    def rec(i: int, partial_bw: Fraction) -> None:
        if partial_bw >= best_bw[0]:
            return
        if i == n:
            if leaf_ok(len(comp_state)):
                best_bw[0] = partial_bw
                best_assign[0] = assign.copy()
            return
        s = states[i]
        n_open = len(comp_state)
        for comp in range(n_open + 1):
            if comp < n_open and comp_state[comp] + s > bound:
                continue
            if comp == n_open and s > bound:
                continue
            added = Fraction(0)
            for src_pos, g in in_edges[i]:
                if assign[src_pos] != comp:
                    added += g
            if partial_bw + added >= best_bw[0]:
                continue
            assign[i] = comp
            if comp == n_open:
                comp_state.append(s)
            else:
                comp_state[comp] += s
            rec(i + 1, partial_bw + added)
            if comp == n_open:
                comp_state.pop()
            else:
                comp_state[comp] -= s
            assign[i] = -1

    rec(0, Fraction(0))
    if best_assign[0] is None:
        raise PartitionError("no well-ordered c-bounded partition found")
    k = max(best_assign[0]) + 1
    comps: List[List[str]] = [[] for _ in range(k)]
    for i, a in enumerate(best_assign[0]):
        comps[a].append(order[i])
    return Partition(graph, comps, gains=gains, label=f"exact[c={c},M={cache_size}]")


def min_bandwidth(graph: StreamGraph, cache_size: int, c: float = 3.0) -> Fraction:
    """``minBW_c(G)``: the bandwidth of an optimal well-ordered c-bounded
    partition (Theorem 7's lower-bound quantity).  Exact; small graphs only."""
    return exact_min_bandwidth_partition(graph, cache_size, c=c).bandwidth()


def interval_dp_partition(
    graph: StreamGraph,
    cache_size: int,
    c: float = 1.0,
    order: Optional[Sequence[str]] = None,
) -> Partition:
    """Optimal partition among contiguous intervals of a topological order.

    Interval partitions of a topological order are always well ordered
    (every edge goes forward, so the contracted graph's edges go from lower
    to higher interval index).  The DP charges each cross edge to the
    interval containing its *source*: ``cost(j, i)`` is the total gain of
    edges leaving ``order[j:i]`` for positions >= i; then
    ``dp[i] = min_j dp[j] + cost(j, i)`` over feasible ``j``.

    This is the paper's partitioning story made practical: exact on
    pipelines, a strong heuristic on dags (the loss is only the restriction
    to one linear order).
    """
    topo = list(order) if order is not None else graph.topological_order()
    gains = compute_gains(graph)
    pos = {name: i for i, name in enumerate(topo)}
    if len(pos) != graph.n_modules:
        raise PartitionError("order must enumerate every module exactly once")
    n = len(topo)
    states = [graph.state(name) for name in topo]
    bound = c * cache_size
    for name, s in zip(topo, states):
        if s > bound:
            raise PartitionError(f"module {name!r} state {s} > c*M = {bound}")

    # out_edges[p] = list of (dst_pos, gain) for edges leaving position p
    out_edges: List[List[Tuple[int, Fraction]]] = [[] for _ in range(n)]
    for ch in graph.channels():
        out_edges[pos[ch.src]].append((pos[ch.dst], gains.edge_gain(ch.cid)))

    prefix = [0] * (n + 1)
    for i, s in enumerate(states):
        prefix[i + 1] = prefix[i] + s

    INF = Fraction(1 << 62)
    dp: List[Fraction] = [INF] * (n + 1)
    parent = [-1] * (n + 1)
    dp[0] = Fraction(0)
    for i in range(1, n + 1):
        # candidate last interval = topo[j:i]
        cost = Fraction(0)
        # build cost(j, i) incrementally as j decreases: adding position j
        # contributes gains of its edges leaving [j, i).
        for j in range(i - 1, -1, -1):
            if prefix[i] - prefix[j] > bound:
                break
            for dst_pos, g in out_edges[j]:
                if dst_pos >= i:
                    cost += g
            if dp[j] + cost < dp[i]:
                dp[i] = dp[j] + cost
                parent[i] = j
    if dp[n] >= INF:
        raise PartitionError("no feasible interval partition under the state bound")

    bounds: List[int] = []
    i = n
    while i > 0:
        bounds.append(parent[i])
        i = parent[i]
    bounds.reverse()
    comps = []
    for idx, j in enumerate(bounds):
        hi = bounds[idx + 1] if idx + 1 < len(bounds) else n
        comps.append(list(topo[j:hi]))
    return Partition(graph, comps, gains=gains, label=f"interval-dp[c={c},M={cache_size}]")


def greedy_topological_partition(
    graph: StreamGraph, cache_size: int, c: float = 1.0
) -> Partition:
    """First-fit scan of a topological order: open a new component whenever
    adding the next module would exceed ``c*M``.  Linear time; always well
    ordered; no attention to bandwidth — the baseline the smarter
    partitioners are measured against (ablation A1)."""
    topo = graph.topological_order()
    bound = c * cache_size
    comps: List[List[str]] = []
    cur: List[str] = []
    acc = 0
    for name in topo:
        s = graph.state(name)
        if s > bound:
            raise PartitionError(f"module {name!r} state {s} > c*M = {bound}")
        if cur and acc + s > bound:
            comps.append(cur)
            cur, acc = [], 0
        cur.append(name)
        acc += s
    if cur:
        comps.append(cur)
    return Partition(graph, comps, label=f"greedy[c={c},M={cache_size}]")


def refine_partition(
    partition: Partition,
    cache_size: int,
    c: float = 1.0,
    max_passes: int = 8,
) -> Partition:
    """Hill climbing: repeatedly move one module to an adjacent component if
    that reduces bandwidth while keeping the partition well ordered and
    c-bounded.  Deterministic sweep order; stops at a local optimum or after
    ``max_passes`` sweeps.  Never returns a worse partition."""
    graph = partition.graph
    gains = partition.gains()
    bound = c * cache_size
    best = partition
    best_bw = partition.bandwidth()

    for _ in range(max_passes):
        improved = False
        comps = [list(comp) for comp in best.components]
        for name in graph.module_names():
            cur_idx = next(i for i, comp in enumerate(comps) if name in comp)
            if len(comps[cur_idx]) == 1:
                continue  # moving would empty the component
            neighbor_idxs = set()
            for ch in graph.out_channels(name) + graph.in_channels(name):
                other = ch.dst if ch.src == name else ch.src
                oi = next(i for i, comp in enumerate(comps) if other in comp)
                if oi != cur_idx:
                    neighbor_idxs.add(oi)
            for target in sorted(neighbor_idxs):
                trial = [list(comp) for comp in comps]
                trial[cur_idx].remove(name)
                trial[target].append(name)
                trial = [t for t in trial if t]
                try:
                    cand = Partition(graph, trial, gains=gains, label=best.label + "+refined")
                except PartitionError:
                    continue
                if not cand.is_c_bounded(cache_size, c) or not cand.is_well_ordered():
                    continue
                bw = cand.bandwidth()
                if bw < best_bw:
                    best, best_bw = cand, bw
                    comps = [list(comp) for comp in best.components]
                    improved = True
                    break
        if not improved:
            break
    return best
