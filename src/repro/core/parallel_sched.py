"""Parallel dynamic scheduling of homogeneous dags (Section 7 direction).

The paper closes with: "Another direction for future research is to study
the cache-efficient scheduling of streaming computations on multiprocessors.
If the number of cache misses is the only criterion, then the optimal
uniprocessor schedule is trivially the optimal multiprocessor schedule.
When considering multiprocessors, however, we must consider both load
balancing and the number of cache misses simultaneously."  Section 3 also
notes the homogeneous dynamic schedule "extends to an asynchronous or
parallel dynamic schedule".

This module builds exactly that object of study: a time-stepped simulation
of ``P`` workers executing the dynamic component rule concurrently.

Model
-----
* Each worker owns a private cache (fully associative LRU of the given
  geometry) over the *shared* address space laid out by
  :class:`repro.mem.layout.MemoryLayout` — the natural private-L1 model.
* A ready component (>= M tokens on all incoming cross edges, room for M on
  all outgoing) is claimed by an idle worker; input tokens are reserved at
  claim time and outputs materialize at completion, so two workers never
  race on the same tokens.
* Running a component takes abstract time equal to its total work
  (sum of ``work(v)`` over its modules, times the M-fold sweep), during
  which the worker touches the component's state, its internal buffers and
  M tokens per cross edge through its private cache.

Outputs: makespan, per-worker busy time (load balance), and total cache
misses — the two axes the paper says must be balanced.  Experiment E11
sweeps P and shows the predicted tension: throughput scales until the
component graph's width is exhausted, while total misses stay within a
small factor of the uniprocessor schedule (state reloads across workers are
the only growth).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cache.base import CacheGeometry
from repro.cache.lru import LRUCache
from repro.core.partition import Partition
from repro.errors import DeadlockError, GraphError, ScheduleError
from repro.graphs.minbuf import min_buffers
from repro.graphs.sdf import StreamGraph
from repro.mem.layout import MemoryLayout

__all__ = ["ParallelResult", "WorkerStats", "parallel_dynamic_simulation"]


@dataclass
class WorkerStats:
    """Per-worker accounting from one parallel simulation."""

    worker: int
    busy_time: int = 0
    components_run: int = 0
    misses: int = 0


@dataclass
class ParallelResult:
    """Outcome of :func:`parallel_dynamic_simulation`."""

    workers: List[WorkerStats]
    makespan: int
    total_work: int
    batches_run: int
    source_fires: int
    total_misses: int

    @property
    def p(self) -> int:
        return len(self.workers)

    @property
    def speedup(self) -> float:
        """Total work / makespan: perfect = P."""
        return self.total_work / self.makespan if self.makespan else 0.0

    @property
    def load_balance(self) -> float:
        """mean busy / max busy in [0, 1]; 1.0 = perfectly balanced."""
        busies = [w.busy_time for w in self.workers]
        mx = max(busies)
        return (sum(busies) / len(busies)) / mx if mx else 1.0

    @property
    def misses_per_input(self) -> float:
        return self.total_misses / self.source_fires if self.source_fires else float("inf")

    def summary(self) -> str:
        return (
            f"P={self.p}: makespan={self.makespan}, speedup={self.speedup:.2f}, "
            f"balance={self.load_balance:.2f}, misses={self.total_misses} "
            f"({self.misses_per_input:.3f}/input)"
        )


def parallel_dynamic_simulation(
    graph: StreamGraph,
    partition: Partition,
    geometry: CacheGeometry,
    n_workers: int,
    target_outputs: int,
) -> ParallelResult:
    """Simulate ``n_workers`` executing the dynamic component rule.

    Event-driven: a min-heap of (finish_time, worker, component) completions;
    whenever a worker frees up (or at t=0), it claims the least-recently-run
    ready component.  Terminates when the sink component has produced
    ``target_outputs`` outputs (batches of M).

    Raises :class:`DeadlockError` if no component is ready while all workers
    idle and the target is unmet (cannot happen for well-ordered partitions
    of homogeneous dags — asserted by tests).
    """
    if not graph.is_homogeneous():
        raise GraphError("parallel simulation requires a homogeneous graph")
    if n_workers < 1:
        raise ScheduleError(f"need n_workers >= 1, got {n_workers}")
    if target_outputs < 1:
        raise ScheduleError(f"need target_outputs >= 1, got {target_outputs}")

    M = geometry.size
    comp_order = partition.component_order()
    topo_rank = {n: i for i, n in enumerate(graph.topological_order())}
    comp_topo: Dict[int, List[str]] = {
        idx: sorted(partition.components[idx], key=lambda n: topo_rank[n])
        for idx in comp_order
    }

    incoming: Dict[int, List[int]] = {i: [] for i in comp_order}
    outgoing: Dict[int, List[int]] = {i: [] for i in comp_order}
    for ch in partition.cross_channels():
        outgoing[partition.component_of(ch.src)].append(ch.cid)
        incoming[partition.component_of(ch.dst)].append(ch.cid)

    caps: Dict[int, int] = min_buffers(graph)
    for ch in partition.cross_channels():
        caps[ch.cid] = 2 * M

    layout = MemoryLayout(block=geometry.block)
    order = [n for idx in comp_order for n in comp_topo[idx]]
    layout.place_graph(graph, caps, order=order)

    duration: Dict[int, int] = {
        idx: max(1, M * sum(graph.module(n).work for n in comp_topo[idx]))
        for idx in comp_order
    }

    # token state: committed tokens; reservations subtract inputs at claim
    tokens: Dict[int, int] = {ch.cid: 0 for ch in graph.channels()}
    pending_out: Dict[int, int] = {cid: 0 for cid in tokens}  # reserved capacity

    sink = graph.sinks()[0]
    sink_comp = partition.component_of(sink)
    source = graph.sources()[0]
    source_comp = partition.component_of(source)

    workers = [WorkerStats(worker=i) for i in range(n_workers)]
    cache: List[LRUCache] = [LRUCache(geometry) for _ in range(n_workers)]
    last_run: Dict[int, int] = {idx: -1 for idx in comp_order}
    running: Dict[int, bool] = {idx: False for idx in comp_order}

    def is_ready(idx: int) -> bool:
        if running[idx]:
            return False
        if any(tokens[cid] < M for cid in incoming[idx]):
            return False
        if any(tokens[cid] + pending_out[cid] + M > caps[cid] for cid in outgoing[idx]):
            return False
        return True

    def charge_cache(widx: int, idx: int) -> int:
        """Touch the component's working set through worker widx's cache."""
        c = cache[widx]
        before = c.stats.misses
        for name in comp_topo[idx]:
            region = layout.state_region(name)
            if region.length:
                c.access_range(region.start, region.length)
        # internal buffers (small, hot for the whole run)
        for ch in partition.internal_channels(idx):
            r = layout.buffer_region(ch.cid)
            c.access_range(r.start, min(r.length, 2))
        # M tokens in/out on each cross edge (circular: approximate with the
        # full buffer window, capped at M words)
        for cid in incoming[idx] + outgoing[idx]:
            r = layout.buffer_region(cid)
            c.access_range(r.start, min(r.length, M))
        # external streams for source/sink components
        if idx == source_comp or idx == sink_comp:
            c.access_range((1 << 41) + charge_cache.stream_pos, M)
            charge_cache.stream_pos += M
        return c.stats.misses - before

    charge_cache.stream_pos = 0  # type: ignore[attr-defined]

    heap: List[Tuple[int, int, int]] = []  # (finish, worker, comp)
    idle = list(range(n_workers))
    now = 0
    outputs = 0
    batches = 0
    source_fires = 0
    clock = 0

    def try_dispatch() -> None:
        nonlocal clock
        while idle:
            ready = [idx for idx in comp_order if is_ready(idx)]
            if not ready:
                return
            idx = min(ready, key=lambda i: last_run[i])
            widx = idle.pop()
            clock += 1
            last_run[idx] = clock
            running[idx] = True
            for cid in incoming[idx]:
                tokens[cid] -= M
            for cid in outgoing[idx]:
                pending_out[cid] += M
            heapq.heappush(heap, (now + duration[idx], widx, idx))

    try_dispatch()
    while outputs < target_outputs:
        if not heap:
            raise DeadlockError(
                "all workers idle with no ready component before target met"
            )
        now, widx, idx = heapq.heappop(heap)
        running[idx] = False
        for cid in outgoing[idx]:
            pending_out[cid] -= M
            tokens[cid] += M
        w = workers[widx]
        w.busy_time += duration[idx]
        w.components_run += 1
        w.misses += charge_cache(widx, idx)
        batches += 1
        if idx == sink_comp:
            outputs += M
        if idx == source_comp:
            source_fires += M
        idle.append(widx)
        try_dispatch()

    # drain in-flight completions into the makespan (they were dispatched)
    makespan = now
    total_work = sum(w.busy_time for w in workers)
    return ParallelResult(
        workers=workers,
        makespan=makespan,
        total_work=total_work,
        batches_run=batches,
        source_fires=source_fires,
        total_misses=sum(w.misses for w in workers),
    )
