"""Lower bounds on the cache cost of any schedule (Theorems 3, 7, 10).

The paper's central lower-bound machinery, made computable:

* **Pipelines** (Lemma 1 → Corollary 2 → Theorem 3): take any collection of
  disjoint segments each with total state >= 2M; any schedule producing
  ``T`` (normalized) outputs incurs at least
  ``(T / (2B)) * sum_i gain(gainMin(W_i))`` cache misses.  The factor 1/2
  comes from Lemma 1's "2M(gain(u)/gain(x,y)) firings before Ω(M/B) misses"
  accounting; we expose the explicit constant rather than hiding it in Ω(·).

* **Dags** (Theorem 7, homogeneous; Theorem 10, general): any schedule that
  fires the sink ``T * gain(t) >= B`` times incurs
  ``Ω((T/B) * minBW_3(G))`` misses.  We compute ``minBW_3`` exactly via
  :func:`repro.core.dagpart.exact_min_bandwidth_partition` (small graphs) or
  accept a caller-provided bandwidth bound (any well-ordered 3-bounded
  partition's bandwidth upper-bounds ``minBW_3``, so a heuristic partition
  yields a *conservative* lower bound usable in experiments).

All bounds are returned both as exact :class:`fractions.Fraction` bandwidth
sums and as concrete miss counts for a given ``T``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Tuple

from repro.cache.base import CacheGeometry
from repro.core.dagpart import exact_min_bandwidth_partition
from repro.core.pipeline import gain_min_edge, greedy_state_blocks, pipeline_chain
from repro.errors import GraphError
from repro.graphs.repetition import compute_gains
from repro.graphs.sdf import StreamGraph

__all__ = [
    "PipelineLowerBound",
    "pipeline_lower_bound",
    "dag_lower_bound",
    "DagLowerBound",
]

#: Lemma 1 allows 2M(gain(u)/gain(x,y)) firings per Ω(M/B) misses — an
#: amortized cost of gain(gainMin)/(2B) per normalized output.
PIPELINE_LB_CONSTANT = Fraction(1, 2)

#: Theorem 7's subschedule argument charges each of the K_i boundary
#: messages 1/B; the flush-and-reload amortization costs a further factor
#: of 2, and only every other subschedule boundary is independent, giving a
#: conservative explicit constant of 1/4 for empirical comparisons.
DAG_LB_CONSTANT = Fraction(1, 4)


@dataclass(frozen=True)
class PipelineLowerBound:
    """Theorem 3 instantiated on one pipeline.

    Attributes
    ----------
    segments:
        The disjoint >=2M-state segments used, as (lo, hi) index ranges over
        the chain order.
    min_gains:
        ``gain(gainMin(W_i))`` per segment.
    bandwidth:
        Sum of the minimum gains — the per-input bandwidth term.
    """

    segments: Tuple[Tuple[int, int], ...]
    min_gains: Tuple[Fraction, ...]
    bandwidth: Fraction

    def misses(self, T: int, geometry: CacheGeometry) -> Fraction:
        """Lower bound on total misses for ``T`` source firings."""
        return PIPELINE_LB_CONSTANT * Fraction(T, geometry.block) * self.bandwidth

    def misses_per_input(self, geometry: CacheGeometry) -> Fraction:
        return PIPELINE_LB_CONSTANT * self.bandwidth / geometry.block


def pipeline_lower_bound(graph: StreamGraph, cache_size: int) -> PipelineLowerBound:
    """Build Theorem 3's segment collection for a pipeline.

    Uses the same greedy (2M, 3M] state blocks as the Theorem 5 construction
    (dropping a trailing block that never reaches 2M — Theorem 3 requires
    every segment to have state >= 2M).  Segments with fewer than two
    modules contribute no internal edge and are skipped.

    A graph whose total state is <= 2M yields the trivial bound 0: the whole
    pipeline fits in (2x-augmented) cache, and indeed a schedule exists whose
    per-input cost is only the stream I/O.
    """
    order = graph.pipeline_order()
    if len(order) < 2:
        return PipelineLowerBound(segments=(), min_gains=(), bandwidth=Fraction(0))
    _, chans = pipeline_chain(graph)
    gains = compute_gains(graph)

    blocks = greedy_state_blocks(graph, cache_size)
    segs: List[Tuple[int, int]] = []
    mins: List[Fraction] = []
    for lo, hi in blocks:
        if graph.total_state(order[lo:hi]) < 2 * cache_size:
            continue
        if hi - lo < 2:
            continue
        _, g = gain_min_edge(chans, gains, lo, hi - 1)
        segs.append((lo, hi))
        mins.append(g)
    return PipelineLowerBound(
        segments=tuple(segs), min_gains=tuple(mins), bandwidth=sum(mins, Fraction(0))
    )


@dataclass(frozen=True)
class DagLowerBound:
    """Theorem 7 / Theorem 10 instantiated on one dag."""

    min_bandwidth: Fraction
    exact: bool  # True when min_bandwidth is the true minBW_3, not a bound

    def misses(self, T: int, geometry: CacheGeometry) -> Fraction:
        return DAG_LB_CONSTANT * Fraction(T, geometry.block) * self.min_bandwidth

    def misses_per_input(self, geometry: CacheGeometry) -> Fraction:
        return DAG_LB_CONSTANT * self.min_bandwidth / geometry.block


def dag_lower_bound(
    graph: StreamGraph,
    cache_size: int,
    c: float = 3.0,
    exact_limit: int = 12,
) -> DagLowerBound:
    """Theorem 7/10 lower bound with exact ``minBW_c`` when feasible.

    For graphs with at most ``exact_limit`` modules, run the exact search;
    beyond that, return the trivial bound 0 flagged ``exact=False`` (callers
    needing a nontrivial large-graph bound should derive one structurally —
    e.g. E5 uses graphs small enough for the exact search).

    When the graph's total state is <= 3M the optimal partition is the whole
    graph with bandwidth 0 and the bound is vacuous, mirroring the theory:
    a cache 3x the footprint makes internal traffic free.
    """
    if graph.total_state() <= c * cache_size:
        return DagLowerBound(min_bandwidth=Fraction(0), exact=True)
    if graph.n_modules > exact_limit:
        return DagLowerBound(min_bandwidth=Fraction(0), exact=False)
    p = exact_min_bandwidth_partition(graph, cache_size, c=c, max_modules=exact_limit)
    return DagLowerBound(min_bandwidth=p.bandwidth(), exact=True)
