"""Baseline schedulers the partitioned approach is compared against.

The paper's related-work section (Section 6) situates its contribution
against practice; we implement runnable versions of each point of
comparison:

* :func:`single_appearance_schedule` — the classic SDF compiler output
  (Lee–Messerschmitt [18]): per iteration, fire each module ``r(v)`` times
  consecutively, modules in topological order.  Loads each module's state
  once per iteration but buffers a full iteration of data on every channel.

* :func:`interleaved_schedule` — the minimal-buffer demand-driven schedule:
  push each input through the whole graph before admitting the next.
  Minimal data footprint, maximal state thrash — the natural "naive"
  execution of a streaming interpreter.

* :func:`sermulins_scaled_schedule` — Sermulins et al. [25]: take the
  single-appearance steady-state schedule and replace each invocation by
  ``s`` back-to-back invocations, with the largest ``s`` whose scaled
  buffers still fit in cache ("computes the largest s that avoids
  catastrophic spills").

* :func:`kohli_greedy_schedule` — Kohli [15]: a pipeline heuristic that
  makes local run-length decisions per module: keep firing the current
  module while its input lasts and its output fits a cache-derived batch
  bound, then move to its successor (and wrap around).

All return :class:`repro.runtime.schedule.Schedule` objects with concrete
buffer capacities, directly executable by the simulator.
"""

from __future__ import annotations

from math import ceil
from typing import Dict, List, Optional

from repro.cache.base import CacheGeometry
from repro.errors import GraphError, ScheduleError
from repro.graphs.minbuf import min_buffers
from repro.graphs.repetition import iteration_tokens, repetition_vector
from repro.graphs.sdf import StreamGraph
from repro.runtime.deadlock import demand_driven_schedule
from repro.runtime.schedule import Schedule

__all__ = [
    "single_appearance_schedule",
    "interleaved_schedule",
    "sermulins_scaled_schedule",
    "kohli_greedy_schedule",
    "phased_schedule",
]


def single_appearance_schedule(graph: StreamGraph, n_iterations: int = 1) -> Schedule:
    """Classic single-appearance schedule: topological order, each module
    fired ``r(v)`` times back to back, repeated ``n_iterations`` times.

    Channel buffers must hold a full iteration's traffic
    (``r(u) * out(u, v)`` tokens) because every producer completes all its
    firings before its consumers start."""
    if n_iterations < 1:
        raise ScheduleError(f"n_iterations must be >= 1, got {n_iterations}")
    reps = repetition_vector(graph)
    iter_tok = iteration_tokens(graph, reps)
    order = graph.topological_order()
    one_iter: List[str] = []
    for name in order:
        one_iter.extend([name] * reps[name])
    caps = {
        cid: max(t, 1) + graph.channel(cid).delay for cid, t in iter_tok.items()
    }
    return Schedule(one_iter * n_iterations, capacities=caps, label="single-appearance")


def interleaved_schedule(graph: StreamGraph, n_iterations: int = 1) -> Schedule:
    """Minimal-buffer demand-driven execution: fire the most downstream
    fireable module at every step (so each input is pushed as deep as
    possible before the next is admitted).  Uses ``minBuf`` capacities.

    For a homogeneous pipeline this is exactly "send one item through the
    whole pipeline at a time" — every module's state is re-touched once per
    item, the worst case the paper's partitioning is designed to avoid."""
    if n_iterations < 1:
        raise ScheduleError(f"n_iterations must be >= 1, got {n_iterations}")
    reps = repetition_vector(graph)
    targets = {name: n_iterations * r for name, r in reps.items()}
    caps = min_buffers(graph)
    firings = demand_driven_schedule(graph, targets, capacities=caps)
    return Schedule(firings, capacities=caps, label="interleaved")


def sermulins_scaled_schedule(
    graph: StreamGraph,
    geometry: CacheGeometry,
    n_macro_iterations: int = 1,
    data_fraction: float = 0.5,
) -> Schedule:
    """Sermulins-style execution scaling.

    Scale the steady-state schedule by ``s``: per macro-iteration fire each
    module ``s * r(v)`` times consecutively (topological order).  ``s`` is
    the largest value keeping the scaled channel buffers within
    ``data_fraction * M`` words — the "largest s that avoids catastrophic
    spills".  ``s`` is at least 1 even when one iteration's buffers already
    exceed the budget (the method degrades to single-appearance, as the
    original does)."""
    if n_macro_iterations < 1:
        raise ScheduleError(f"n_macro_iterations must be >= 1, got {n_macro_iterations}")
    reps = repetition_vector(graph)
    iter_tok = iteration_tokens(graph, reps)
    total_iter_tokens = sum(iter_tok.values())
    budget = data_fraction * geometry.size
    s = max(1, int(budget // total_iter_tokens)) if total_iter_tokens else 1

    order = graph.topological_order()
    one_macro: List[str] = []
    for name in order:
        one_macro.extend([name] * (s * reps[name]))
    caps = {
        cid: max(s * t, 1) + graph.channel(cid).delay for cid, t in iter_tok.items()
    }
    return Schedule(
        one_macro * n_macro_iterations,
        capacities=caps,
        label=f"sermulins[s={s}]",
    )


def kohli_greedy_schedule(
    graph: StreamGraph,
    geometry: CacheGeometry,
    target_outputs: int,
    batch_fraction: float = 0.25,
) -> Schedule:
    """Kohli-style greedy pipeline heuristic.

    Walk the chain cyclically; at each module, keep firing while (a) input
    tokens remain and (b) the output buffer has room, but at most
    ``ceil(batch_fraction * M / out_rate)`` consecutive firings — the local
    estimate of how long staying at one module remains profitable before
    its output traffic exceeds the cache.  Buffers are sized to one batch.

    Only local decisions are made, so — as the paper observes — the
    heuristic cannot be asymptotically optimal; experiment E3/E7 exhibit
    the gap."""
    if not graph.is_pipeline():
        raise GraphError("kohli_greedy_schedule requires a pipeline graph")
    if target_outputs < 1:
        raise ScheduleError(f"target_outputs must be >= 1, got {target_outputs}")
    order = graph.pipeline_order()
    sink = order[-1]

    caps: Dict[int, int] = {}
    batch_tokens = max(1, int(batch_fraction * geometry.size))
    for ch in graph.channels():
        caps[ch.cid] = max(batch_tokens, ch.out_rate + ch.in_rate)

    tokens: Dict[int, int] = {ch.cid: 0 for ch in graph.channels()}
    firings: List[str] = []
    sink_fires = 0

    def can_fire(name: str) -> bool:
        for ch in graph.in_channels(name):
            if tokens[ch.cid] < ch.in_rate:
                return False
        for ch in graph.out_channels(name):
            if tokens[ch.cid] + ch.out_rate > caps[ch.cid]:
                return False
        return True

    idx = 0
    stalls = 0
    while sink_fires < target_outputs:
        name = order[idx]
        runs = 0
        max_runs = max(
            1,
            batch_tokens
            // max((ch.out_rate for ch in graph.out_channels(name)), default=1),
        )
        while runs < max_runs and can_fire(name):
            for ch in graph.in_channels(name):
                tokens[ch.cid] -= ch.in_rate
            for ch in graph.out_channels(name):
                tokens[ch.cid] += ch.out_rate
            firings.append(name)
            runs += 1
            if name == sink:
                sink_fires += 1
                if sink_fires >= target_outputs:
                    break
        stalls = stalls + 1 if runs == 0 else 0
        if stalls > len(order):
            raise ScheduleError("kohli heuristic made no progress over a full cycle")
        idx = (idx + 1) % len(order)

    return Schedule(firings, capacities=caps, label=f"kohli[b={batch_tokens}]")


def phased_schedule(graph: StreamGraph, n_iterations: int = 1) -> Schedule:
    """Phased schedule in the style of Karczmarek et al. [13].

    Modules are grouped into *phases* by topological level (longest path
    from the source); one iteration fires every module of phase 0 its
    ``r(v)`` times, then phase 1, and so on.  Compared to the
    single-appearance schedule this interleaves parallel branches level by
    level, which keeps per-edge occupancy at one iteration's traffic but
    touches every module's state once per iteration — the same asymptotic
    cache behaviour, included as the third published point of comparison.
    """
    if n_iterations < 1:
        raise ScheduleError(f"n_iterations must be >= 1, got {n_iterations}")
    reps = repetition_vector(graph)
    iter_tok = iteration_tokens(graph, reps)
    level: Dict[str, int] = {}
    for name in graph.topological_order():
        preds = graph.predecessors(name)
        level[name] = 1 + max((level[p] for p in preds), default=-1)
    by_level: Dict[int, List[str]] = {}
    for name, lv in level.items():
        by_level.setdefault(lv, []).append(name)

    one_iter: List[str] = []
    for lv in sorted(by_level):
        for name in by_level[lv]:
            one_iter.extend([name] * reps[name])
    caps = {
        cid: max(t, 1) + graph.channel(cid).delay for cid, t in iter_tok.items()
    }
    return Schedule(one_iter * n_iterations, capacities=caps, label="phased")
