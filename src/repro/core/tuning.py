"""Batch-granularity and buffer-size tuning (Section 3).

The inhomogeneous partition scheduler works at a granularity of ``T`` source
firings, where ``T`` must satisfy (paper, "Scheduling inhomogeneous
graphs"): for every edge ``(u, v)``, the batch traffic ``T * gain(u, v)`` is
integral, divisible by both ``out(u, v)`` and ``in(u, v)``, and at least
``M``.  Choosing ``T = k * r(s)`` — a multiple of the source's repetition
count — satisfies the divisibility requirements automatically, because one
iteration moves ``r(u) * out(u, v) = r(v) * in(u, v)`` tokens across every
channel; ``k`` then scales batch traffic past ``M``.

:func:`choose_batch` computes the smallest such ``k`` (optionally requiring
the >=M condition only on a partition's cross edges, which the cache bound
actually needs — the strict per-paper "every edge" variant is available for
fidelity experiments).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Dict, Iterable, Optional

from repro.cache.base import CacheGeometry
from repro.core.partition import Partition
from repro.errors import GraphError
from repro.graphs.repetition import iteration_tokens, repetition_vector
from repro.graphs.sdf import StreamGraph

__all__ = ["BatchPlan", "choose_batch", "cross_capacities", "augmented_geometry", "required_geometry"]


@dataclass(frozen=True)
class BatchPlan:
    """One high-level batch of the inhomogeneous scheduler.

    Attributes
    ----------
    k:
        Number of graph iterations per batch.
    source_fires:
        ``T``: source firings per batch (= ``k * r(source)``).
    fires:
        Firings of every module per batch (= ``k * r(v)``).
    channel_tokens:
        Tokens crossing each channel per batch (= ``k *`` iteration tokens);
        this is both the required cross-edge buffer capacity and the batch
        traffic ``T * gain(u, v)`` of the paper.
    """

    k: int
    source_fires: int
    fires: Dict[str, int]
    channel_tokens: Dict[int, int]


def choose_batch(
    graph: StreamGraph,
    cache_size: int,
    cross_cids: Optional[Iterable[int]] = None,
) -> BatchPlan:
    """Smallest batch satisfying the Section-3 conditions.

    ``cross_cids`` restricts the ``>= M`` traffic requirement to those
    channels (a partition's cross edges); ``None`` applies it to every
    channel, exactly as the paper states it.
    """
    reps = repetition_vector(graph)
    iter_tok = iteration_tokens(graph, reps)
    sources = graph.sources()
    if len(sources) != 1:
        raise GraphError(f"batch tuning requires a single source, found {sources}")
    source = sources[0]

    relevant = list(cross_cids) if cross_cids is not None else list(iter_tok)
    if relevant:
        min_traffic = min(iter_tok[cid] for cid in relevant)
        k = max(1, ceil(cache_size / min_traffic))
    else:
        # No cross edges (single-component partition): one iteration per
        # batch is enough; nothing needs amortizing across components.
        k = 1
    return BatchPlan(
        k=k,
        source_fires=k * reps[source],
        fires={name: k * r for name, r in reps.items()},
        channel_tokens={cid: k * t for cid, t in iter_tok.items()},
    )


def cross_capacities(partition: Partition, plan: BatchPlan) -> Dict[int, int]:
    """Buffer capacities for a partition's cross edges under ``plan``:
    exactly the batch traffic ``T * gain(u, v)`` of each cross edge."""
    return {ch.cid: plan.channel_tokens[ch.cid] for ch in partition.cross_channels()}


def required_geometry(
    partition: Partition,
    geometry: CacheGeometry,
    slack: float = 1.25,
    cross_hot_blocks: int = 2,
) -> CacheGeometry:
    """The concrete O(M) cache a partition schedule needs (Lemma 4/8).

    The proofs require each loaded component to co-reside with its internal
    buffers and one or two hot blocks per incident cross edge.  In our
    simulator buffers are block aligned, so the exact footprint of component
    ``V_i`` is::

        state(V_i)
      + sum over internal edges of block_aligned(minBuf(e))
      + cross_hot_blocks * B * degree(V_i)      -- streaming cross buffers
      + 2 * B                                   -- external input/output

    The returned geometry is ``slack`` times the worst component footprint
    (never smaller than the given geometry), rounded up to whole blocks.
    Experiments report the implied augmentation factor — this is the
    explicit constant behind the paper's "cache size O(M)".
    """
    from math import ceil as _ceil

    from repro.graphs.minbuf import min_buffer

    B = geometry.block
    worst = geometry.size
    for idx in range(partition.k):
        footprint = partition.component_state(idx)
        for ch in partition.internal_channels(idx):
            footprint += _ceil(min_buffer(ch) / B) * B
        footprint += cross_hot_blocks * B * partition.component_degree(idx)
        footprint += 2 * B
        worst = max(worst, footprint)
    blocks = max(1, _ceil(worst * slack / B))
    return CacheGeometry(size=blocks * B, block=B)


def augmented_geometry(geometry: CacheGeometry, factor: float) -> CacheGeometry:
    """Geometry with ``factor``-times the cache size (same block size),
    rounded up to a whole number of blocks — the "O(1) memory augmentation"
    knob of Corollaries 6 and 9."""
    blocks = max(1, ceil(geometry.size * factor / geometry.block))
    return CacheGeometry(size=blocks * geometry.block, block=geometry.block)
