"""Partitions of stream graphs (Definitions 2 and 3 of the paper).

A *partition* splits the module set into disjoint *components*.  The paper's
quality measures, all implemented here:

* **well ordered** (Def. 2) — contracting each component yields a dag, so
  components can be scheduled one-at-a-time in a topological order;
* **c-bounded** — every component's total state is at most ``c * M``;
* **bandwidth** (Def. 3) — the sum of gains of *cross* channels: tokens
  crossing component boundaries per source firing.  For homogeneous graphs
  this is just the number of cross channels;
* **degree limited** (Section 5) — every component has O(M/B) incident cross
  channels, so one block per cross buffer fits in cache alongside the
  component.

:class:`Partition` is immutable once constructed and caches derived data
(assignment map, cross-channel set, gain table) because the partition search
algorithms evaluate many candidates.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.errors import NotWellOrderedError, PartitionError
from repro.graphs.repetition import GainTable, compute_gains
from repro.graphs.sdf import Channel, StreamGraph
from repro.graphs.transforms import contract_partition

__all__ = ["Partition", "singleton_partition", "whole_graph_partition"]


class Partition:
    """An immutable partition of a stream graph's modules into components."""

    def __init__(
        self,
        graph: StreamGraph,
        components: Sequence[Iterable[str]],
        gains: Optional[GainTable] = None,
        label: str = "",
    ) -> None:
        self.graph = graph
        self.components: List[Tuple[str, ...]] = [tuple(c) for c in components]
        if not self.components:
            raise PartitionError("partition must have at least one component")
        self.label = label

        self._assignment: Dict[str, int] = {}
        for idx, comp in enumerate(self.components):
            if not comp:
                raise PartitionError(f"component {idx} is empty")
            for name in comp:
                graph.module(name)
                if name in self._assignment:
                    raise PartitionError(
                        f"module {name!r} in components {self._assignment[name]} and {idx}"
                    )
                self._assignment[name] = idx
        missing = [m.name for m in graph.modules() if m.name not in self._assignment]
        if missing:
            raise PartitionError(f"partition does not cover modules: {missing}")

        self._gains = gains if gains is not None else compute_gains(graph)
        self._cross: Optional[List[Channel]] = None
        self._contracted = None  # lazily built

    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        """Number of components."""
        return len(self.components)

    def component_of(self, name: str) -> int:
        try:
            return self._assignment[name]
        except KeyError:
            raise PartitionError(f"module {name!r} not in partition") from None

    def component_state(self, idx: int) -> int:
        return self.graph.total_state(self.components[idx])

    def max_component_state(self) -> int:
        return max(self.component_state(i) for i in range(self.k))

    # ------------------------------------------------------------------
    def cross_channels(self) -> List[Channel]:
        """Channels whose endpoints lie in different components."""
        if self._cross is None:
            self._cross = [
                ch
                for ch in self.graph.channels()
                if self._assignment[ch.src] != self._assignment[ch.dst]
            ]
        return self._cross

    def internal_channels(self, idx: Optional[int] = None) -> List[Channel]:
        """Channels internal to component ``idx`` (or to any component)."""
        out = []
        for ch in self.graph.channels():
            a = self._assignment[ch.src]
            if a == self._assignment[ch.dst] and (idx is None or a == idx):
                out.append(ch)
        return out

    def bandwidth(self) -> Fraction:
        """Definition 3: sum of cross-channel gains (tokens crossing
        component boundaries per source firing)."""
        return self._gains.bandwidth_of_edges(ch.cid for ch in self.cross_channels())

    def component_degree(self, idx: int) -> int:
        """Number of cross channels incident on component ``idx``."""
        deg = 0
        for ch in self.cross_channels():
            if self._assignment[ch.src] == idx or self._assignment[ch.dst] == idx:
                deg += 1
        return deg

    # ------------------------------------------------------------------
    def contracted(self) -> StreamGraph:
        """The component multigraph of Definition 2 (cached)."""
        if self._contracted is None:
            self._contracted, _ = contract_partition(self.graph, self.components)
        return self._contracted

    def is_well_ordered(self) -> bool:
        """Definition 2: the contracted multigraph is a dag."""
        return self.contracted().is_dag()

    def component_order(self) -> List[int]:
        """Topological order of components; raises if not well ordered."""
        if not self.is_well_ordered():
            raise NotWellOrderedError(
                f"partition {self.label or self.components} is not well ordered"
            )
        return [int(n[1:]) for n in self.contracted().topological_order()]

    def is_c_bounded(self, cache_size: int, c: float = 1.0) -> bool:
        """Every component's total state is at most ``c * M``."""
        return all(self.component_state(i) <= c * cache_size for i in range(self.k))

    def is_degree_limited(self, cache_size: int, block: int, factor: float = 1.0) -> bool:
        """Section 5: every component has at most ``factor * M / B`` incident
        cross channels, so one block per cross buffer co-resides with it."""
        limit = factor * cache_size / block
        return all(self.component_degree(i) <= limit for i in range(self.k))

    def validate(self, cache_size: int, c: float = 1.0) -> None:
        """Raise unless well ordered and c-bounded — the preconditions every
        partition scheduler requires."""
        if not self.is_well_ordered():
            raise NotWellOrderedError(f"partition {self.label!r} is not well ordered")
        for i in range(self.k):
            s = self.component_state(i)
            if s > c * cache_size:
                raise PartitionError(
                    f"component {i} has state {s} > {c} * M = {c * cache_size}"
                )

    # ------------------------------------------------------------------
    def gains(self) -> GainTable:
        return self._gains

    def __repr__(self) -> str:
        return (
            f"Partition({self.label or self.graph.name!r}, k={self.k}, "
            f"bandwidth={self.bandwidth()}, max_state={self.max_component_state()})"
        )

    def describe(self) -> str:
        lines = [repr(self)]
        order = self.component_order() if self.is_well_ordered() else range(self.k)
        for i in order:
            comp = self.components[i]
            lines.append(
                f"  C{i}: state={self.component_state(i)}, degree={self.component_degree(i)}, "
                f"modules={list(comp) if len(comp) <= 8 else f'{len(comp)} modules'}"
            )
        return "\n".join(lines)


def singleton_partition(graph: StreamGraph, label: str = "singletons") -> Partition:
    """One component per module — always well ordered; maximal bandwidth."""
    return Partition(graph, [[m.name] for m in graph.modules()], label=label)


def whole_graph_partition(graph: StreamGraph, label: str = "whole") -> Partition:
    """A single component holding everything — zero bandwidth; only
    c-bounded when the whole graph fits in ``c * M``."""
    return Partition(graph, [[m.name for m in graph.modules()]], label=label)
