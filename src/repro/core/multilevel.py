"""Multilevel partitioning of streaming dags.

Section 7: "Another approach is to use a heuristic graph partitioner (see,
for example, [10, 14])" — Hendrickson–Leland and Karypis–Kumar (METIS), the
classic multilevel scheme: *coarsen* the graph by contracting heavy edges,
partition the small coarse graph, then *uncoarsen* and locally refine at
each level.  This module adapts the scheme to the paper's constraints:

* the objective is *bandwidth* (sum of gains of cut channels, Definition 3),
  so matching prefers the highest-gain edges — contracting them guarantees
  they never appear in the cut;
* partitions must be **well ordered** (Definition 2).  Contracting an
  arbitrary dag edge can create cycles, so coarsening only contracts an
  edge ``(u, v)`` when it is *dominating*: ``v`` is ``u``'s only successor
  or ``u`` is ``v``'s only predecessor.  Every path between the endpoints
  then passes through the edge itself, and contraction preserves acyclicity
  (proof: a new cycle would need a second u->v path avoiding the edge);
* components must stay c-bounded, so a match is rejected when the merged
  state exceeds ``c * M``.

The coarsest graph is partitioned with the interval DP (always well
ordered) and the result is projected back level by level, with
:func:`repro.core.dagpart.refine_partition` polishing at each level —
"refinement during uncoarsening", the ingredient that makes multilevel
schemes work.

On pipelines this reduces to near-optimal partitions at a fraction of the
DP's cost for very long chains; on wide dags it beats the single-order
interval DP whenever the good cut does not respect one topological order
(benchmarked as ablation A5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Set, Tuple

from repro.core.dagpart import interval_dp_partition, refine_partition
from repro.core.partition import Partition
from repro.errors import PartitionError
from repro.graphs.repetition import compute_gains
from repro.graphs.sdf import StreamGraph

__all__ = ["multilevel_partition", "coarsen_once"]


@dataclass
class _Coarse:
    """Weighted contraction of a stream graph: groups of original modules."""

    members: List[List[str]]  # group id -> original module names
    state: List[int]  # group id -> total state
    # directed weighted edges between groups: (a, b) -> total gain
    edges: Dict[Tuple[int, int], Fraction]

    @property
    def n(self) -> int:
        return len(self.members)

    def successors(self, a: int) -> List[int]:
        return [b for (x, b) in self.edges if x == a]

    def predecessors(self, b: int) -> List[int]:
        return [a for (a, y) in self.edges if y == b]

    def topological_order(self) -> List[int]:
        indeg = {i: 0 for i in range(self.n)}
        for (_, b) in self.edges:
            indeg[b] += 1
        ready = [i for i in range(self.n) if indeg[i] == 0]
        out: List[int] = []
        adj: Dict[int, List[int]] = {i: [] for i in range(self.n)}
        for (a, b) in self.edges:
            adj[a].append(b)
        head = 0
        while head < len(ready):
            u = ready[head]
            head += 1
            out.append(u)
            for v in adj[u]:
                indeg[v] -= 1
                if indeg[v] == 0:
                    ready.append(v)
        if len(out) != self.n:
            raise PartitionError("coarse graph acquired a cycle (coarsening bug)")
        return out


def _initial_coarse(graph: StreamGraph) -> _Coarse:
    gains = compute_gains(graph)
    idx = {m.name: i for i, m in enumerate(graph.modules())}
    members = [[m.name] for m in graph.modules()]
    state = [m.state for m in graph.modules()]
    edges: Dict[Tuple[int, int], Fraction] = {}
    for ch in graph.channels():
        key = (idx[ch.src], idx[ch.dst])
        edges[key] = edges.get(key, Fraction(0)) + gains.edge_gain(ch.cid)
    return _Coarse(members=members, state=state, edges=edges)


def coarsen_once(coarse: _Coarse, bound: float) -> Tuple[_Coarse, bool]:
    """One matching pass: contract dominating edges, heaviest gain first.

    Returns the contracted graph and whether any contraction happened.
    """
    out_deg: Dict[int, Set[int]] = {i: set() for i in range(coarse.n)}
    in_deg: Dict[int, Set[int]] = {i: set() for i in range(coarse.n)}
    for (a, b) in coarse.edges:
        out_deg[a].add(b)
        in_deg[b].add(a)

    candidates = sorted(coarse.edges.items(), key=lambda kv: (-kv[1], kv[0]))
    matched: Set[int] = set()
    merge_into: Dict[int, int] = {}
    any_match = False
    for (a, b), _w in candidates:
        if a in matched or b in matched:
            continue
        if coarse.state[a] + coarse.state[b] > bound:
            continue
        dominating = len(out_deg[a]) == 1 or len(in_deg[b]) == 1
        if not dominating:
            continue
        matched.add(a)
        matched.add(b)
        merge_into[b] = a
        any_match = True
    if not any_match:
        return coarse, False

    # renumber groups
    new_id: Dict[int, int] = {}
    members: List[List[str]] = []
    state: List[int] = []
    for i in range(coarse.n):
        if i in merge_into:
            continue
        new_id[i] = len(members)
        members.append(list(coarse.members[i]))
        state.append(coarse.state[i])
    for b, a in merge_into.items():
        gid = new_id[a]
        members[gid].extend(coarse.members[b])
        state[gid] += coarse.state[b]

    def resolve(i: int) -> int:
        return new_id[merge_into.get(i, i)]

    edges: Dict[Tuple[int, int], Fraction] = {}
    for (a, b), w in coarse.edges.items():
        ra, rb = resolve(a), resolve(b)
        if ra == rb:
            continue  # contracted away
        edges[(ra, rb)] = edges.get((ra, rb), Fraction(0)) + w
    return _Coarse(members=members, state=state, edges=edges), True


def multilevel_partition(
    graph: StreamGraph,
    cache_size: int,
    c: float = 1.0,
    coarsen_target: int = 24,
    refine_each_level: bool = True,
    max_levels: int = 20,
) -> Partition:
    """Multilevel bandwidth-minimizing well-ordered c-bounded partition.

    Parameters
    ----------
    coarsen_target:
        Stop coarsening once at most this many groups remain (the coarse
        problem is then solved by the interval DP over the coarse
        topological order).
    refine_each_level:
        Run vertex-move refinement after projecting through each level
        (disable to measure how much refinement contributes).
    """
    bound = c * cache_size
    for m in graph.modules():
        if m.state > bound:
            raise PartitionError(f"module {m.name!r} state {m.state} > c*M = {bound}")

    levels: List[_Coarse] = [_initial_coarse(graph)]
    while levels[-1].n > coarsen_target and len(levels) < max_levels:
        nxt, progressed = coarsen_once(levels[-1], bound)
        if not progressed:
            break
        # Each individual dominating-edge contraction preserves acyclicity,
        # but a *simultaneous* matching can rarely interact to form a cycle
        # (A->C via one pair's survivor, C->A via the other's).  Detect and
        # stop coarsening at the previous level rather than propagate a
        # cyclic coarse graph.
        try:
            nxt.topological_order()
        except PartitionError:
            break
        levels.append(nxt)

    # Partition the coarsest level: its groups are already c-bounded, so an
    # interval DP over the coarse topo order (treating each group as atomic)
    # yields a well-ordered, c-bounded grouping of groups.
    coarsest = levels[-1]
    order = coarsest.topological_order()
    comps_groups: List[List[int]] = []
    cur: List[int] = []
    acc = 0
    # first-fit over coarse topo order (the DP below on the real graph's
    # projected partition does the optimization; the coarse cut just seeds)
    for gid in order:
        s = coarsest.state[gid]
        if cur and acc + s > bound:
            comps_groups.append(cur)
            cur, acc = [], 0
        cur.append(gid)
        acc += s
    if cur:
        comps_groups.append(cur)

    components = [
        [name for gid in comp for name in coarsest.members[gid]] for comp in comps_groups
    ]
    partition = Partition(graph, components, label=f"multilevel[c={c},M={cache_size}]")
    if not partition.is_well_ordered():
        # The seed grouping can in rare cases contract to a cyclic order
        # when groups interleave; fall back to interval DP which cannot.
        partition = interval_dp_partition(graph, cache_size, c=c)

    if refine_each_level:
        partition = refine_partition(partition, cache_size, c=c, max_passes=4)
        partition = Partition(
            graph, partition.components, label=f"multilevel[c={c},M={cache_size}]"
        )
    return partition
