"""Partition schedulers — the paper's Section 3 runtime strategies.

Three schedulers, one per graph class the paper treats:

* :func:`homogeneous_partition_schedule` — all rates 1.  Batch granularity
  ``T = M``: load each component once per batch (components in contracted
  topological order) and, once loaded, sweep its modules in topological
  order ``M`` times ("the modules are topologically sorted and are each
  fired just once in order; this lower-level schedule repeats M times").
  Cross edges carry exactly ``M`` tokens per batch, so each buffer needs
  capacity ``M``.

* :func:`inhomogeneous_partition_schedule` — arbitrary rates.  Batch
  granularity ``T`` from :func:`repro.core.tuning.choose_batch`; each
  component is loaded once per batch and run to completion by a
  demand-driven low-level schedule with ``minBuf`` internal buffers.

* :func:`pipeline_dynamic_schedule` — the Section 3/4 dynamic pipeline
  scheduler: Θ(M) buffers on cross edges; a segment is *schedulable* when
  its input buffer is at least half full and its output buffer at most half
  full; it then runs until the input empties or the output fills.  The
  scheduling loop scans cross edges in order and runs the segment before the
  first at-most-half-full edge (the paper's continuity argument guarantees
  this segment is schedulable; the sink's output counts as always empty).

Every scheduler returns a :class:`repro.runtime.schedule.Schedule` carrying
the exact buffer capacities it assumed, and every schedule is feasibility-
checked by construction (tests re-validate with
:func:`repro.runtime.schedule.validate_schedule`).
"""

from __future__ import annotations

from math import ceil
from typing import Dict, List, Optional, Sequence, Set

from repro.cache.base import CacheGeometry
from repro.core.partition import Partition
from repro.core.tuning import BatchPlan, choose_batch, cross_capacities
from repro.errors import DeadlockError, GraphError, PartitionError, ScheduleError
from repro.graphs.minbuf import min_buffers
from repro.graphs.sdf import StreamGraph
from repro.graphs.transforms import induced_subgraph
from repro.runtime.deadlock import demand_driven_schedule
from repro.runtime.schedule import Schedule

__all__ = [
    "homogeneous_partition_schedule",
    "inhomogeneous_partition_schedule",
    "pipeline_dynamic_schedule",
    "component_layout_order",
]


def component_layout_order(partition: Partition) -> List[str]:
    """Module placement order grouping each component contiguously, in
    contracted topological order — the arena layout the scheduler wants so a
    loaded component occupies a contiguous address range."""
    order: List[str] = []
    for idx in partition.component_order():
        comp = list(partition.components[idx])
        sub_order = {n: i for i, n in enumerate(partition.graph.topological_order())}
        comp.sort(key=lambda n: sub_order[n])
        order.extend(comp)
    return order


# ----------------------------------------------------------------------
# homogeneous graphs
# ----------------------------------------------------------------------
def homogeneous_partition_schedule(
    graph: StreamGraph,
    partition: Partition,
    geometry: CacheGeometry,
    n_batches: int = 1,
) -> Schedule:
    """Section 3, "Scheduling homogeneous graphs" (T = M).

    Per batch: components in contracted topological order; per component,
    its modules in topological order, the whole sweep repeated ``M`` times.
    Requires a homogeneous graph and a well-ordered partition.
    """
    if not graph.is_homogeneous():
        raise GraphError("homogeneous_partition_schedule requires in=out=1 on every channel")
    if n_batches < 1:
        raise ScheduleError(f"n_batches must be >= 1, got {n_batches}")
    T = geometry.size

    comp_order = partition.component_order()  # raises if not well ordered
    topo_rank = {n: i for i, n in enumerate(graph.topological_order())}
    comp_topo: List[List[str]] = [
        sorted(partition.components[idx], key=lambda n: topo_rank[n]) for idx in comp_order
    ]

    firings: List[str] = []
    for _ in range(n_batches):
        for modules in comp_topo:
            for _ in range(T):
                firings.extend(modules)

    caps: Dict[int, int] = min_buffers(graph)
    for ch in partition.cross_channels():
        caps[ch.cid] = T
    return Schedule(
        firings,
        capacities=caps,
        label=f"partitioned-homog[{partition.label or partition.k}]",
    )


# ----------------------------------------------------------------------
# inhomogeneous graphs
# ----------------------------------------------------------------------
def _component_low_level(
    graph: StreamGraph,
    component: Sequence[str],
    fires: Dict[str, int],
    max_capacity_doublings: int = 6,
) -> List[str]:
    """Low-level schedule of one component: fire each module its per-batch
    count using minBuf internal buffers.

    The component's incoming cross edges are dropped (the high level
    guarantees their tokens are fully available when the component runs) and
    outgoing cross edges are unbounded within the batch (their buffers are
    sized to exactly the batch traffic), so the induced subgraph with its
    internal channels is the right arena.

    The paper's assumption set guarantees minBuf capacities admit a schedule
    [17]; for robustness against graphs at the assumption's edge we double
    internal capacities on deadlock, up to ``max_capacity_doublings`` times,
    and record nothing — the returned firing order is feasible under the
    *original* minBuf capacities whenever the first attempt succeeds (the
    common case, asserted by tests on the paper's graph classes).
    """
    sub = induced_subgraph(graph, component)
    targets = {n: fires[n] for n in component}
    caps = min_buffers(sub)
    scale = 1
    for attempt in range(max_capacity_doublings + 1):
        try:
            return demand_driven_schedule(sub, targets, capacities=caps)
        except DeadlockError:
            scale *= 2
            caps = {cid: cap * 2 for cid, cap in caps.items()}
    raise DeadlockError(
        f"component {list(component)} cannot complete a batch even with "
        f"{scale}x minBuf internal buffers"
    )


def inhomogeneous_partition_schedule(
    graph: StreamGraph,
    partition: Partition,
    geometry: CacheGeometry,
    n_batches: int = 1,
    plan: Optional[BatchPlan] = None,
    strict_paper_batching: bool = False,
) -> Schedule:
    """Section 3, "Scheduling inhomogeneous graphs".

    Batch ``T`` source firings (``T`` from :func:`choose_batch`); per batch,
    load each component exactly once in contracted topological order and run
    it until all progeny of the batch's source firings have been pushed to
    its outgoing cross edges.

    ``strict_paper_batching`` applies the ``>= M`` batch-traffic condition
    to every channel as the paper literally states; the default applies it
    to cross edges only (sufficient for the cache bound, much smaller
    buffers — an engineering deviation documented in DESIGN.md).
    """
    if n_batches < 1:
        raise ScheduleError(f"n_batches must be >= 1, got {n_batches}")
    comp_order = partition.component_order()
    cross_cids = None if strict_paper_batching else [
        ch.cid for ch in partition.cross_channels()
    ]
    if plan is None:
        plan = choose_batch(graph, geometry.size, cross_cids=cross_cids)

    per_comp: List[List[str]] = []
    for idx in comp_order:
        per_comp.append(_component_low_level(graph, partition.components[idx], plan.fires))

    batch: List[str] = []
    for comp_firings in per_comp:
        batch.extend(comp_firings)
    firings = batch * n_batches

    caps: Dict[int, int] = min_buffers(graph)
    caps.update(cross_capacities(partition, plan))
    return Schedule(
        firings,
        capacities=caps,
        label=f"partitioned-inhomog[k={plan.k},{partition.label or partition.k}]",
    )


# ----------------------------------------------------------------------
# pipelines: the dynamic half-full / half-empty scheduler
# ----------------------------------------------------------------------
def pipeline_dynamic_schedule(
    graph: StreamGraph,
    partition: Partition,
    geometry: CacheGeometry,
    target_outputs: int,
    buffer_factor: int = 2,
    cross_capacity: Optional[int] = None,
) -> Schedule:
    """Section 3, "Scheduling pipelines" — the dynamic schedule that
    Theorem 5's upper bound uses.

    Every cross edge gets a Θ(M) buffer (capacity
    ``buffer_factor * max(M, minBuf)``, or ``max(cross_capacity, 2*minBuf)``
    when ``cross_capacity`` is given — ablation A2 sweeps it to show why
    Θ(M) is the right size); the loop runs until the sink has
    fired ``target_outputs`` times.  Each step scans cross edges in chain
    order for the first at-most-half-full buffer and runs the preceding
    segment until its input is empty or its output full; when every cross
    buffer is more than half full, the last segment runs (the sink's output
    buffer is "always empty").

    The returned schedule is a plain firing list — executing it through
    :class:`repro.runtime.executor.Executor` with the recorded capacities
    reproduces the dynamic execution exactly.
    """
    if target_outputs < 1:
        raise ScheduleError(f"target_outputs must be >= 1, got {target_outputs}")
    if not graph.is_pipeline():
        raise GraphError("pipeline_dynamic_schedule requires a pipeline graph")
    order = graph.pipeline_order()

    # Components must be contiguous segments in chain order.
    comp_order = partition.component_order()
    segments: List[List[str]] = [list(partition.components[i]) for i in comp_order]
    rank = {n: i for i, n in enumerate(order)}
    flat: List[str] = []
    for seg in segments:
        seg.sort(key=lambda n: rank[n])
        flat.extend(seg)
    if flat != order:
        raise PartitionError("pipeline partition components must be contiguous chain segments")

    # Cross edges between consecutive segments, in order.
    seg_of = {n: i for i, seg in enumerate(segments) for n in seg}
    caps: Dict[int, int] = min_buffers(graph)
    cross: List[int] = []  # cid of the edge entering segment i+1
    for ch in graph.channels():
        if seg_of[ch.src] != seg_of[ch.dst]:
            cross.append(ch.cid)
            if cross_capacity is not None:
                caps[ch.cid] = max(cross_capacity, 2 * caps[ch.cid])
            else:
                caps[ch.cid] = buffer_factor * max(geometry.size, caps[ch.cid])
    cross.sort(key=lambda cid: rank[graph.channel(cid).src])

    tokens: Dict[int, int] = {ch.cid: 0 for ch in graph.channels()}
    sink = order[-1]
    firings: List[str] = []
    sink_fires = 0

    def can_fire(name: str) -> bool:
        for ch in graph.in_channels(name):
            if tokens[ch.cid] < ch.in_rate:
                return False
        for ch in graph.out_channels(name):
            if tokens[ch.cid] + ch.out_rate > caps[ch.cid]:
                return False
        return True

    def fire(name: str) -> None:
        nonlocal sink_fires
        for ch in graph.in_channels(name):
            tokens[ch.cid] -= ch.in_rate
        for ch in graph.out_channels(name):
            tokens[ch.cid] += ch.out_rate
        firings.append(name)
        if name == sink:
            sink_fires += 1

    def run_segment(idx: int) -> int:
        """Fire segment ``idx`` downstream-first until stuck; return count."""
        members = segments[idx]
        count = 0
        while sink_fires < target_outputs:
            fired = False
            for name in reversed(members):  # downstream-first
                if can_fire(name):
                    fire(name)
                    count += 1
                    fired = True
                    break
            if not fired:
                break
        return count

    while sink_fires < target_outputs:
        target_seg = len(segments) - 1
        for i, cid in enumerate(cross):
            if tokens[cid] * 2 <= caps[cid]:
                target_seg = i
                break
        progressed = run_segment(target_seg)
        if progressed == 0:
            raise DeadlockError(
                f"dynamic pipeline scheduler stuck: segment {target_seg} cannot fire "
                f"(cross occupancies={[tokens[c] for c in cross]})"
            )

    return Schedule(
        firings,
        capacities=caps,
        label=f"pipeline-dynamic[{partition.label or partition.k}]",
    )
