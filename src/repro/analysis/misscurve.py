"""Miss curves via Mattson stack distances — vectorized.

LRU is a *stack algorithm*: the content of a size-C cache is always a
subset of a size-C' > C cache on the same trace (inclusion).  Mattson's
classic consequence: one pass over a trace yields the miss count for
**every** cache size simultaneously — an access hits in a size-C cache iff
its *stack distance* (number of distinct blocks touched since the previous
access to the same block) is at most C.

This turns the simulator's per-geometry runs into a whole design curve:
``miss_curve(trace)`` gives misses(C) for all C, and experiment E15 plots
the partitioned schedule's curve against the naive schedule's — the
partitioned curve drops to the compulsory floor at C ≈ O(M) (its working
set is one component), while the naive curve stays high until the *entire*
graph fits, which is the paper's whole argument in one figure.

Implementation: fully vectorized in numpy.  Writing ``p_i`` for the
previous occurrence of access ``i``'s block (``-1`` when cold), the stack
distance satisfies

    d_i = (i - p_i) - #{ j < i : p_j > p_i }

because the distinct blocks in the window ``(p_i, i]`` are exactly the
positions whose own previous occurrence falls at or before ``p_i`` (their
first appearance inside the window), and every position ``j`` with
``p_j > p_i`` necessarily lies inside the window (``p_j < j``).  The
correction term is a per-element "count earlier, greater" query, computed
by an iterative merge-sort style pass: at each level the array is sorted
within width-``w`` blocks, per-block offsets turn it into one globally
sorted key array, and a single batched :func:`numpy.searchsorted` ranks
every right-half element against its partner left half.  O(n log^2 n)
total with all per-element work inside numpy.

The pure-Python Fenwick-tree formulation this replaces survives as
:func:`repro.testing.oracles.reference_stack_distances` and backs the
differential tests.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

__all__ = [
    "stack_distances",
    "stack_distances_array",
    "miss_curve",
    "misses_at",
    "opt_miss_curve",
    "experiment_e15_miss_curves",
]


def _previous_occurrences(blocks: np.ndarray) -> np.ndarray:
    """``prev[i]`` = last position before ``i`` touching ``blocks[i]``, else -1."""
    n = blocks.shape[0]
    prev = np.full(n, -1, dtype=np.int64)
    if n < 2:
        return prev
    order = np.argsort(blocks, kind="stable")  # groups equal blocks, positions ascending
    sb = blocks[order]
    same = sb[1:] == sb[:-1]
    prev[order[1:][same]] = order[:-1][same]
    return prev


def _count_earlier_greater(values: np.ndarray) -> np.ndarray:
    """``out[i]`` = #{ j < i : values[j] > values[i] }, fully vectorized.

    Iterative merge counting: pad to a power of two, keep the array sorted
    within width-``w`` blocks, and at each level rank every element of an
    odd (right) block against its even (left) partner block with one
    batched searchsorted over a globally sorted, per-block-offset key
    array.  Padded slots sit past every real index, so they are only ever
    queries (discarded), never counted.
    """
    n = values.shape[0]
    out = np.zeros(n, dtype=np.int64)
    if n < 2:
        return out
    size = 1 << (n - 1).bit_length()
    span = np.int64(n + 3)  # > spread of values (in [-1, n]) incl. the pad sentinel
    a = np.full(size, n, dtype=np.int64)  # pad sentinel sorts last within a block
    a[:n] = values
    idx = np.arange(size, dtype=np.int64)
    counts = np.zeros(size, dtype=np.int64)
    slots = np.arange(size, dtype=np.int64)
    w = 1
    while w < size:
        block = slots // w
        keys = a + block * span
        r_mask = (block & 1) == 1
        l_block = block[r_mask] - 1
        q = a[r_mask] + l_block * span
        pos = np.searchsorted(keys, q, side="right")
        counts[idx[r_mask]] += (l_block + 1) * w - pos
        w *= 2
        if w >= size:
            break  # fully counted; the final full-width merge is never read
        shaped = a.reshape(-1, w)
        order = np.argsort(shaped, axis=1, kind="stable")
        a = np.take_along_axis(shaped, order, axis=1).ravel()
        idx = np.take_along_axis(idx.reshape(-1, w), order, axis=1).ravel()
    out[:] = counts[:n]
    return out


def stack_distances_array(trace: Sequence[int]) -> np.ndarray:
    """Per-access LRU stack distances as an int64 array; 0 marks cold accesses.

    distance d >= 1 means: d distinct blocks (including this one) were
    touched since the previous access to this block, so the access hits in
    any fully-associative LRU cache holding >= d blocks.  Cold (first)
    accesses miss at every size and are encoded as 0.
    """
    blocks = np.ascontiguousarray(trace, dtype=np.int64)
    n = blocks.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    prev = _previous_occurrences(blocks)
    d = np.arange(n, dtype=np.int64) - prev - _count_earlier_greater(prev)
    d[prev < 0] = 0
    return d


def stack_distances(trace: Sequence[int]) -> List[Optional[int]]:
    """Per-access LRU stack distances; ``None`` marks cold (first) accesses.

    Convenience list form of :func:`stack_distances_array` (the vectorized
    kernel); kept for callers that want the historical ``Optional[int]``
    convention.
    """
    d = stack_distances_array(trace)
    return [None if di == 0 else int(di) for di in d]


def miss_curve(trace: Sequence[int], max_blocks: Optional[int] = None) -> np.ndarray:
    """``curve[c]`` = total LRU misses with a cache of ``c`` blocks.

    ``curve[0]`` is every access; the curve is non-increasing and flattens
    at the compulsory-miss floor (number of distinct blocks).  ``max_blocks``
    truncates the returned array (default: enough to reach the floor).
    """
    d = stack_distances_array(trace)
    finite = d[d > 0]
    max_d = int(finite.max()) if finite.size else 0
    size = (max_blocks if max_blocks is not None else max_d) + 1

    # histogram of hit distances; an access with distance d misses at c < d
    hist = np.bincount(np.minimum(finite, size), minlength=size + 1)
    # hits(c) = # accesses with distance <= c;  misses(c) = n - hits(c)
    hits_cum = np.cumsum(hist[: size + 1])[:size]
    return d.shape[0] - hits_cum  # index c: misses with c blocks (c=0 .. size-1)


def misses_at(trace: Sequence[int], blocks: int) -> int:
    """Misses of a ``blocks``-frame LRU on the trace (via the curve)."""
    curve = miss_curve(trace, max_blocks=blocks)
    idx = min(blocks, len(curve) - 1)
    return int(curve[idx])


def opt_miss_curve(trace: Sequence[int], max_blocks: Optional[int] = None) -> np.ndarray:
    """``curve[c]`` = total OPT (Belady) misses with a cache of ``c`` blocks.

    The OPT twin of :func:`miss_curve`: MIN is also a stack algorithm
    (Mattson 1970), so one truncated priority-stack pass
    (:func:`repro.runtime.replay.opt_stack_distances`) yields per-access OPT
    stack distances and hence the miss count of every capacity at once.
    Same conventions as :func:`miss_curve`: ``curve[0]`` is every access,
    the curve is non-increasing, flattens at the compulsory floor, and
    ``max_blocks`` truncates the returned array (default: enough to reach
    the floor).
    """
    from repro.runtime.replay import opt_stack_distances

    blocks = np.ascontiguousarray(trace, dtype=np.int64)
    n = blocks.shape[0]
    if n == 0:
        return np.zeros((max_blocks or 0) + 1, dtype=np.int64)
    # the floor is reached once every distinct block fits, so that depth
    # always suffices when the caller does not truncate
    distinct = int(np.unique(blocks).shape[0])
    size = (max_blocks if max_blocks is not None else distinct) + 1
    d = opt_stack_distances(blocks, max(1, size - 1))
    finite = d[d > 0]
    hist = np.bincount(np.minimum(finite, size), minlength=size + 1)
    hits_cum = np.cumsum(hist[: size + 1])[:size]
    return n - hits_cum


def experiment_e15_miss_curves(seed: int = 53, n_outputs: int = 400):
    """E15 — whole miss curves for partitioned vs naive schedules.

    Compile each schedule to its block trace once
    (:func:`repro.runtime.compiled.compile_trace` — no stepwise cache
    simulation at all), then read misses at EVERY cache size from the stack
    distances.  The paper's argument as a single figure: the partitioned
    schedule's curve collapses to its compulsory floor once the cache holds
    one component (~O(M)); the naive schedule's curve stays high until the
    entire graph fits.  Rows sample the curves at geometrically spaced
    sizes.  The OPT overlay (:func:`opt_miss_curve` on the same two traces)
    bounds how much an omniscient replacement policy could recover: the
    partitioned schedule tracks its own OPT closely — the scheduling, not
    the replacement policy, removed the misses.
    """
    from repro.cache.base import CacheGeometry
    from repro.core.baselines import interleaved_schedule
    from repro.core.partition_sched import (
        component_layout_order,
        pipeline_dynamic_schedule,
    )
    from repro.core.pipeline import optimal_pipeline_partition
    from repro.graphs.topologies import pipeline as make_pipeline
    from repro.runtime.compiled import compile_trace

    g = make_pipeline([32] * 12)  # 384 words of state
    M = 128
    B = 8
    part = optimal_pipeline_partition(g, M, c=1.0)
    geom = CacheGeometry(size=M, block=B)  # partition granularity only; traces are size-independent

    def record(schedule, order=None):
        return compile_trace(g, schedule, B, layout_order=order).blocks

    part_trace = record(
        pipeline_dynamic_schedule(g, part, geom, target_outputs=n_outputs),
        order=component_layout_order(part),
    )
    naive_trace = record(interleaved_schedule(g, n_iterations=n_outputs))

    sample_blocks = (4, 8, 16, 24, 32, 48, 64, 96, 128)
    part_curve = miss_curve(part_trace)
    naive_curve = miss_curve(naive_trace)
    part_opt = opt_miss_curve(part_trace, max_blocks=max(sample_blocks))
    naive_opt = opt_miss_curve(naive_trace, max_blocks=max(sample_blocks))

    rows = []
    for blocks in sample_blocks:
        words = blocks * B
        p = int(part_curve[min(blocks, len(part_curve) - 1)])
        nv = int(naive_curve[min(blocks, len(naive_curve) - 1)])
        rows.append(
            {
                "cache_words": words,
                "cache_over_M": round(words / M, 2),
                "partitioned_misses": p,
                "naive_misses": nv,
                "partitioned_opt": int(part_opt[min(blocks, len(part_opt) - 1)]),
                "naive_opt": int(naive_opt[min(blocks, len(naive_opt) - 1)]),
                "naive_over_partitioned": round(nv / p, 2) if p else float("inf"),
            }
        )
    return rows
