"""Miss curves via Mattson stack distances.

LRU is a *stack algorithm*: the content of a size-C cache is always a
subset of a size-C' > C cache on the same trace (inclusion).  Mattson's
classic consequence: one pass over a trace yields the miss count for
**every** cache size simultaneously — an access hits in a size-C cache iff
its *stack distance* (number of distinct blocks touched since the previous
access to the same block) is at most C.

This turns the simulator's per-geometry runs into a whole design curve:
``miss_curve(trace)`` gives misses(C) for all C, and experiment E15 plots
the partitioned schedule's curve against the naive schedule's — the
partitioned curve drops to the compulsory floor at C ≈ O(M) (its working
set is one component), while the naive curve stays high until the *entire*
graph fits, which is the paper's whole argument in one figure.

Implementation: last-access positions in a dict plus a Fenwick (binary
indexed) tree over trace positions marking which positions are "most recent
for their block"; the stack distance of an access is the count of marked
positions after the block's previous access — O(n log n) total, pure
Python, linear memory.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["stack_distances", "miss_curve", "misses_at", "experiment_e15_miss_curves"]


class _Fenwick:
    """Prefix-sum tree over trace positions (1-based internally)."""

    def __init__(self, n: int) -> None:
        self.n = n
        self.tree = [0] * (n + 1)

    def add(self, i: int, delta: int) -> None:
        i += 1
        while i <= self.n:
            self.tree[i] += delta
            i += i & (-i)

    def prefix(self, i: int) -> int:
        """Sum of [0, i]."""
        i += 1
        s = 0
        while i > 0:
            s += self.tree[i]
            i -= i & (-i)
        return s

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum of [lo, hi]."""
        if hi < lo:
            return 0
        return self.prefix(hi) - (self.prefix(lo - 1) if lo > 0 else 0)


def stack_distances(trace: Sequence[int]) -> List[Optional[int]]:
    """Per-access LRU stack distances; ``None`` marks cold (first) accesses.

    distance d means: d distinct blocks (including this one) were touched
    since the previous access to this block, so the access hits in any
    fully-associative LRU cache holding >= d blocks.
    """
    n = len(trace)
    fen = _Fenwick(n)
    last: Dict[int, int] = {}
    out: List[Optional[int]] = [None] * n
    for i, blk in enumerate(trace):
        prev = last.get(blk)
        if prev is None:
            out[i] = None
        else:
            # distinct blocks touched in (prev, i) = marked positions there,
            # plus this block itself
            out[i] = fen.range_sum(prev + 1, i - 1) + 1
            fen.add(prev, -1)
        fen.add(i, 1)
        last[blk] = i
    return out


def miss_curve(trace: Sequence[int], max_blocks: Optional[int] = None) -> np.ndarray:
    """``curve[c]`` = total LRU misses with a cache of ``c`` blocks.

    ``curve[0]`` is every access; the curve is non-increasing and flattens
    at the compulsory-miss floor (number of distinct blocks).  ``max_blocks``
    truncates the returned array (default: enough to reach the floor).
    """
    dists = stack_distances(trace)
    n_cold = sum(1 for d in dists if d is None)
    finite = [d for d in dists if d is not None]
    max_d = max(finite, default=0)
    size = (max_blocks if max_blocks is not None else max_d) + 1

    # histogram of hit distances; an access with distance d misses at c < d
    hist = np.zeros(size + 1, dtype=np.int64)
    for d in finite:
        hist[min(d, size)] += 1
    # hits(c) = # accesses with distance <= c;  misses(c) = n - hits(c)
    hits_cum = np.cumsum(hist)[:size]
    total = len(trace)
    return total - hits_cum  # index c: misses with c blocks (c=0 .. size-1)


def misses_at(trace: Sequence[int], blocks: int) -> int:
    """Misses of a ``blocks``-frame LRU on the trace (via the curve)."""
    curve = miss_curve(trace, max_blocks=blocks)
    idx = min(blocks, len(curve) - 1)
    return int(curve[idx])


def experiment_e15_miss_curves(seed: int = 53, n_outputs: int = 400):
    """E15 — whole miss curves for partitioned vs naive schedules.

    Record each schedule's block trace once, then read misses at EVERY cache
    size from the stack distances.  The paper's argument as a single figure:
    the partitioned schedule's curve collapses to its compulsory floor once
    the cache holds one component (~O(M)); the naive schedule's curve stays
    high until the entire graph fits.  Rows sample the curves at
    geometrically spaced sizes.
    """
    from repro.cache.base import CacheGeometry
    from repro.cache.lru import LRUCache
    from repro.core.baselines import interleaved_schedule
    from repro.core.partition_sched import (
        component_layout_order,
        pipeline_dynamic_schedule,
    )
    from repro.core.pipeline import optimal_pipeline_partition
    from repro.graphs.topologies import pipeline as make_pipeline
    from repro.mem.trace import TraceRecorder, TracingCache
    from repro.runtime.executor import Executor

    g = make_pipeline([32] * 12)  # 384 words of state
    M = 128
    B = 8
    geom = CacheGeometry(size=M, block=B)
    part = optimal_pipeline_partition(g, M, c=1.0)
    big = CacheGeometry(size=4096, block=B)  # trace-recording geometry only

    def record(schedule, order=None):
        rec = TraceRecorder()
        Executor.measure(g, big, schedule, layout_order=order, cache=TracingCache(LRUCache(big), rec))
        return rec.blocks

    part_trace = record(
        pipeline_dynamic_schedule(g, part, geom, target_outputs=n_outputs),
        order=component_layout_order(part),
    )
    naive_trace = record(interleaved_schedule(g, n_iterations=n_outputs))

    part_curve = miss_curve(part_trace)
    naive_curve = miss_curve(naive_trace)

    rows = []
    for blocks in (4, 8, 16, 24, 32, 48, 64, 96, 128):
        words = blocks * B
        p = int(part_curve[min(blocks, len(part_curve) - 1)])
        nv = int(naive_curve[min(blocks, len(naive_curve) - 1)])
        rows.append(
            {
                "cache_words": words,
                "cache_over_M": round(words / M, 2),
                "partitioned_misses": p,
                "naive_misses": nv,
                "naive_over_partitioned": round(nv / p, 2) if p else float("inf"),
            }
        )
    return rows
