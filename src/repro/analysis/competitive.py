"""Competitive-ratio statistics with bootstrap confidence intervals.

The experiments report point estimates of measured/lower-bound ratios and
scheduler-vs-scheduler wins; this module adds the statistical machinery to
state them with uncertainty:

* :func:`bootstrap_ci` — vectorized nonparametric bootstrap (numpy; no
  Python-level loop over resamples) for any statistic of a ratio sample;
* :func:`competitive_summary` — mean/median/CI summary of a ratio list,
  shaped for :func:`repro.analysis.report.rows_to_table`;
* :func:`paired_win_probability` — for paired (baseline, candidate) cost
  samples, the bootstrap probability that the candidate is at least
  ``factor`` times better.

Used by the E13-style studies; exposed publicly so downstream evaluations of
new schedulers can report comparable statistics.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["bootstrap_ci", "competitive_summary", "paired_win_probability"]


def bootstrap_ci(
    sample: Sequence[float],
    statistic: Callable[[np.ndarray], np.ndarray] = None,
    n_resamples: int = 2000,
    confidence: float = 0.95,
    seed: int = 0,
) -> Tuple[float, float, float]:
    """(point estimate, ci_low, ci_high) for ``statistic`` of ``sample``.

    ``statistic`` maps a (n_resamples, n) matrix to a length-n_resamples
    vector; the default is the row mean.  Fully vectorized: one
    ``rng.integers`` draw and one reduction, no Python loop.
    """
    arr = np.asarray(sample, dtype=float)
    if arr.size == 0:
        raise ValueError("bootstrap_ci needs a non-empty sample")
    if statistic is None:
        statistic = lambda m: m.mean(axis=1)
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, arr.size, size=(n_resamples, arr.size))
    stats = statistic(arr[idx])
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(stats, [alpha, 1.0 - alpha])
    point = float(statistic(arr[None, :])[0])
    return point, float(lo), float(hi)


def competitive_summary(
    ratios: Sequence[float], label: str = "ratio", confidence: float = 0.95
) -> List[Dict[str, Any]]:
    """Table rows summarizing a ratio sample with bootstrap CIs."""
    arr = np.asarray(ratios, dtype=float)
    mean, mlo, mhi = bootstrap_ci(arr, lambda m: m.mean(axis=1), confidence=confidence)
    med, dlo, dhi = bootstrap_ci(
        arr, lambda m: np.median(m, axis=1), confidence=confidence
    )
    return [
        {
            "quantity": f"{label} mean",
            "estimate": round(mean, 3),
            "ci_low": round(mlo, 3),
            "ci_high": round(mhi, 3),
        },
        {
            "quantity": f"{label} median",
            "estimate": round(med, 3),
            "ci_low": round(dlo, 3),
            "ci_high": round(dhi, 3),
        },
        {
            "quantity": f"{label} max",
            "estimate": round(float(arr.max()), 3),
            "ci_low": "",
            "ci_high": "",
        },
    ]


def paired_win_probability(
    baseline_costs: Sequence[float],
    candidate_costs: Sequence[float],
    factor: float = 1.0,
    n_resamples: int = 2000,
    seed: int = 0,
) -> float:
    """Bootstrap P(mean(baseline) >= factor * mean(candidate)) over paired
    samples — "how confident are we the candidate wins by >= factor x".

    Pairs are resampled together (the same workloads drive both costs), so
    workload-difficulty variation cancels.
    """
    base = np.asarray(baseline_costs, dtype=float)
    cand = np.asarray(candidate_costs, dtype=float)
    if base.shape != cand.shape or base.size == 0:
        raise ValueError("need equal-length non-empty paired samples")
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, base.size, size=(n_resamples, base.size))
    wins = base[idx].mean(axis=1) >= factor * cand[idx].mean(axis=1)
    return float(wins.mean())
