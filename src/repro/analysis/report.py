"""Plain-text table/series rendering for experiment output.

The benchmarks print the same rows EXPERIMENTS.md records; keeping the
renderer here (rather than in each bench) guarantees the formats match.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence

__all__ = ["format_table", "format_series", "rows_to_table"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]], title: str = "") -> str:
    """Render an aligned ASCII table."""
    srows = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    out: List[str] = []
    if title:
        out.append(title)
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for row in srows:
        out.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def rows_to_table(rows: Sequence[Dict[str, Any]], title: str = "") -> str:
    """Render a list of uniform dicts as a table (keys of the first row)."""
    if not rows:
        return title + "\n(no rows)" if title else "(no rows)"
    headers = list(rows[0].keys())
    return format_table(headers, [[r.get(h, "") for h in headers] for r in rows], title=title)


def format_series(name: str, xs: Sequence[Any], ys: Sequence[Any]) -> str:
    """Render an (x, y) series as `name: x->y` pairs, one per line."""
    lines = [f"series {name}:"]
    for x, y in zip(xs, ys):
        lines.append(f"  {_fmt(x)} -> {_fmt(y)}")
    return "\n".join(lines)
