"""Closed-form cache-miss predictions for partition schedules.

Lemma 4 (pipelines) and Lemma 8 (dags) bound a partition schedule's cost per
batch by

    sum_i O(M/B)                    -- loading each component V_i's state
  + O((1/B) * T * bandwidth(P))     -- reading/writing cross-edge buffers
  + O(T/B)                          -- external input/output streams

This module computes the *exact constant-free* version of that accounting
for our executor: per batch, each component's state is
``ceil(state(V_i) / B)`` blocks (loaded once — LRU keeps it resident while
the component runs, provided the component plus its working buffers fit);
each cross-edge token is written once and read once in circular buffers, so
a cross edge carrying ``W`` tokens per batch costs about ``2 * W / B``
(cold) block transfers; streams cost ``T/B + T_out/B``.

Experiment E2 compares these predictions to simulation and finds them tight
to small constant factors — the empirical confirmation that the executor
realizes the schedule the lemmas analyze.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import ceil
from typing import Dict, Optional

from repro.cache.base import CacheGeometry
from repro.core.partition import Partition
from repro.graphs.repetition import compute_gains

__all__ = ["PredictedCost", "predict_partition_cost"]


@dataclass(frozen=True)
class PredictedCost:
    """Predicted block transfers for a partition schedule run."""

    state_misses: float
    cross_misses: float
    stream_misses: float

    @property
    def total(self) -> float:
        return self.state_misses + self.cross_misses + self.stream_misses

    def summary(self) -> str:
        return (
            f"predicted misses ~ {self.total:.1f} "
            f"(state={self.state_misses:.1f}, cross={self.cross_misses:.1f}, "
            f"stream={self.stream_misses:.1f})"
        )


def predict_partition_cost(
    partition: Partition,
    geometry: CacheGeometry,
    source_fires: int,
    batch_source_fires: int,
    count_external: bool = True,
) -> PredictedCost:
    """Predict the cost of running a partition schedule.

    Parameters
    ----------
    partition:
        The partition being scheduled.
    geometry:
        Cache geometry (M, B).
    source_fires:
        Total source firings of the run (``T_total``).
    batch_source_fires:
        Source firings per batch (``T``) — each component's state is loaded
        once per batch.
    count_external:
        Include the external stream term (matches the executor's
        ``count_external`` flag).
    """
    B = geometry.block
    n_batches = max(1, ceil(source_fires / batch_source_fires))

    state = 0.0
    for i in range(partition.k):
        state += ceil(max(partition.component_state(i), 1) / B)
    state *= n_batches

    gains = partition.gains()
    cross_tokens_per_fire = Fraction(0)
    for ch in partition.cross_channels():
        cross_tokens_per_fire += gains.edge_gain(ch.cid)
    # each token written once + read once
    cross = 2.0 * float(cross_tokens_per_fire) * source_fires / B

    stream = 0.0
    if count_external:
        sink = partition.graph.sinks()[0]
        out_per_fire = float(gains.gain(sink))
        stream = source_fires / B + source_fires * out_per_fire / B

    return PredictedCost(state_misses=state, cross_misses=cross, stream_misses=stream)
