"""Robustness sweeps beyond the paper's model (E12/E13).

The theorems are stated for an ideal fully associative cache.  Two natural
robustness questions a practitioner asks before adopting the scheduler:

* **E12 — cache organization.**  Does the partitioned schedule's advantage
  survive a direct-mapped cache (conflict misses) or a two-level hierarchy?
  The schedule and layout are unchanged; only the simulator varies.  The
  paper's analysis suggests yes: the partition layout packs each component
  contiguously, so conflict misses stay rare, and a second level only
  filters further.

* **E13 — statistical robustness.**  The competitive-ratio experiments use
  fixed seeds; E13 re-runs the E1 pipeline measurement across many random
  pipelines and reports the distribution (mean/max) of measured/LB ratios.
  Shape: a tight band whose max does not explode — the O(1) constant is a
  real constant, not a lucky seed.

The layout ablations A6/A7 (does placement matter below full
associativity, and how much does conflict-aware placement recover) and the
hierarchy ablation A8 (how much of the L1 miss stream does an inclusive L2
absorb, and how close is the filtered L2 to one that sees everything) live
here too — every driver runs on compiled traces through the vectorized
replay, no stepwise simulation anywhere (see ``docs/REPLAY.md``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.cache.base import CacheGeometry
from repro.cache.hierarchy import TwoLevelGeometry
from repro.core.baselines import single_appearance_schedule
from repro.core.lower_bound import pipeline_lower_bound
from repro.core.partition_sched import component_layout_order, pipeline_dynamic_schedule
from repro.core.pipeline import optimal_pipeline_partition
from repro.core.dagpart import interval_dp_partition
from repro.core.partition_sched import inhomogeneous_partition_schedule
from repro.core.tuning import choose_batch, required_geometry
from repro.graphs.apps import fm_radio
from repro.graphs.repetition import repetition_vector
from repro.graphs.topologies import random_pipeline
from repro.runtime.compiled import compile_trace, measure_compiled, simulate_trace

__all__ = [
    "experiment_e12_cache_models",
    "experiment_e13_seed_distribution",
    "ablation_a6_layout_order",
    "ablation_a7_placement",
    "ablation_a8_inclusion",
    "ablation_a9_cross_geometry",
    "ablation_a12_facility_search",
    "des_partitioned_workload",
    "fm_partitioned_workload",
    "fm_partitioned_traces",
]


def des_partitioned_workload(M: int = 256, B: int = 8, inputs: int = 768):
    """The canonical layout-sensitivity workload (A6/A7): the DES pipeline,
    interval-DP partitioned and batch-scheduled for an M-word cache.

    Shared by :func:`ablation_a6_layout_order`, :func:`ablation_a7_placement`,
    ``tests/test_placement.py``, ``benchmarks/bench_placement.py``, and
    ``examples/layout_tuning.py``, so they all measure the same thing.
    Returns ``(graph, schedule, partition, run_geometry)``.
    """
    from repro.graphs.apps import des_rounds

    g = des_rounds(rounds=8, sbox_state=48)
    geom = CacheGeometry(size=M, block=B)
    part = interval_dp_partition(g, M, c=2.0)
    plan = choose_batch(g, M, cross_cids=[c.cid for c in part.cross_channels()])
    n_batches = max(2, -(-inputs // max(plan.source_fires, 1)))
    sched = inhomogeneous_partition_schedule(g, part, geom, n_batches=n_batches, plan=plan)
    return g, sched, part, required_geometry(part, geom)


def fm_partitioned_workload(M: int = 256, B: int = 8, inputs: int = 1024):
    """The fm_radio twin of :func:`des_partitioned_workload`: interval-DP
    partitioned and batch-scheduled for an M-word cache.  Returns ``(graph,
    schedule, partition, run_geometry)`` — the second workload of the A12
    placement-search comparison, and the source of
    :func:`fm_partitioned_traces`'s partitioned trace.
    """
    g = fm_radio(taps=48, bands=6)
    geom = CacheGeometry(size=M, block=B)
    part = interval_dp_partition(g, M, c=2.0)
    plan = choose_batch(g, M, cross_cids=[c.cid for c in part.cross_channels()])
    n_batches = max(2, -(-inputs // max(plan.source_fires, 1)))
    sched = inhomogeneous_partition_schedule(g, part, geom, n_batches=n_batches, plan=plan)
    return g, sched, part, required_geometry(part, geom)


def fm_partitioned_traces(M: int = 256, B: int = 8):
    """The canonical cache-organization workload (E12/A8): fm_radio,
    interval-DP partitioned and batch-scheduled for an M-word cache, plus
    the matched single-appearance baseline — both compiled to block traces.

    Returns ``(part_trace, base_trace, geom, run_geom)``: the two compiled
    traces, the nominal M-word geometry, and the O(M) execution geometry
    the partition needs.  Shared by :func:`experiment_e12_cache_models` and
    :func:`ablation_a8_inclusion` so their rows measure the same thing.
    """
    g, sched, part, run_geom = fm_partitioned_workload(M=M, B=B)
    geom = CacheGeometry(size=M, block=B)
    order = component_layout_order(part)
    reps = repetition_vector(g)

    part_trace = compile_trace(g, sched, B, layout_order=order)
    iters = max(1, part_trace.source_fires // reps[g.sources()[0]])
    base_sched = single_appearance_schedule(g, n_iterations=iters)
    base_trace = compile_trace(g, base_sched, B)
    return part_trace, base_trace, geom, run_geom


def experiment_e12_cache_models(M: int = 256, B: int = 8) -> List[Dict[str, Any]]:
    """Partitioned vs single-appearance on fm_radio across cache models.

    Cache models: ideal LRU (the paper's), direct-mapped of the same size
    (worst-case associativity), 4-way set-associative in between, and a
    two-level hierarchy (L1 = M, L2 = the partition's O(M); misses counted
    at L2 = memory transfers).  Shape: the partitioned schedule wins under
    every organization; lower associativity adds conflict misses to both
    columns but does not change the verdict.

    Each schedule is compiled once; *every* row — the two-level hierarchy
    included, since PR 4 registered ``policy="two_level"`` — is answered
    from the two compiled traces by the vectorized replay (policy dispatch
    in :func:`repro.runtime.compiled.simulate_trace`).  No stepwise
    simulation anywhere in this sweep.
    """
    part_trace, base_trace, geom, run_geom = fm_partitioned_traces(M=M, B=B)

    # 4-way organization of (at least) the same capacity
    ways = 4
    assoc_geom = run_geom.with_ways(ways)
    # L1 is the un-augmented M; L2 is the O(M) the partition needs.
    # Misses are counted at L2 (memory transfers): the partitioned
    # working set fits L2, the naive schedule's does not.
    two_level_geom = TwoLevelGeometry(
        CacheGeometry(size=geom.size, block=B),
        CacheGeometry(size=run_geom.size, block=B),
    )

    rows: List[Dict[str, Any]] = []
    replayed = [
        ("LRU (paper model)", "lru", run_geom),
        (f"{ways}-way LRU ({assoc_geom.size}w)", "lru", assoc_geom),
        ("direct-mapped", "direct", run_geom),
        ("two-level (L1=M, L2=O(M))", "two_level", two_level_geom),
    ]
    for label, policy, rg in replayed:
        res = simulate_trace(part_trace, [rg], policy=policy)[0]
        base = simulate_trace(base_trace, [rg], policy=policy)[0]
        rows.append(_e12_row(label, res, base))
    return rows


def _e12_row(label: str, res, base) -> Dict[str, Any]:
    return {
        "cache_model": label,
        "partitioned_mpi": round(res.misses_per_source_fire, 3),
        "single_app_mpi": round(base.misses_per_source_fire, 3),
        "win": round(base.misses_per_source_fire / res.misses_per_source_fire, 1)
        if res.misses_per_source_fire
        else float("inf"),
    }


def experiment_e13_seed_distribution(
    n_seeds: int = 16, n: int = 24, M: int = 96, n_outputs: int = 400,
    workers: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """Distribution of measured/LB competitive ratios over random pipelines.

    One summary row per statistic; per-seed ratios are recomputed
    deterministically from the seed range, so the row set is stable.  Every
    measurement is the fully-associative LRU model, so the whole sweep runs
    through the compiled-trace engine instead of stepwise simulation.

    ``workers`` fans the per-seed multi-trace runs (two compilations and
    replays per seed) out over a thread pool; seeds are independent and the
    results are gathered in seed order, so the rows are identical at any
    worker count.
    """
    geom = CacheGeometry(size=M, block=8)

    def run_seed(seed: int):
        # states in [20, 60]: total state (~24 * 40 words) always far
        # exceeds the O(M) execution cache, so no seed degenerates into the
        # everything-resident regime where all schedules tie.
        g = random_pipeline(
            n, 60, seed=seed, min_state=20,
            rate_choices=[(1, 1), (1, 1), (2, 1), (1, 2)],
        )
        part = optimal_pipeline_partition(g, M, c=3.0)
        sched = pipeline_dynamic_schedule(g, part, geom, target_outputs=n_outputs)
        run_geom = required_geometry(part, geom)
        res = measure_compiled(
            g, run_geom, sched, layout_order=component_layout_order(part)
        )
        lb = pipeline_lower_bound(g, M)
        lbm = float(lb.misses(res.source_fires, geom))
        base = measure_compiled(
            g, run_geom, single_appearance_schedule(g, n_iterations=n_outputs)
        )
        ratio = res.misses / lbm if lbm > 0 else None
        win = (
            base.misses_per_source_fire / res.misses_per_source_fire
            if res.misses_per_source_fire > 0
            else None
        )
        return ratio, win

    if workers and workers > 1 and n_seeds > 1:
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=workers) as pool:
            per_seed = list(pool.map(run_seed, range(n_seeds)))
    else:
        per_seed = [run_seed(seed) for seed in range(n_seeds)]
    ratios = [r for r, _ in per_seed if r is not None]
    wins = [w for _, w in per_seed if w is not None]

    arr = np.array(ratios)
    warr = np.array(wins)
    return [
        {"statistic": "seeds", "ratio_to_lb": len(arr), "win_vs_single_app": len(warr)},
        {
            "statistic": "mean",
            "ratio_to_lb": round(float(arr.mean()), 2),
            "win_vs_single_app": round(float(warr.mean()), 2),
        },
        {
            "statistic": "median",
            "ratio_to_lb": round(float(np.median(arr)), 2),
            "win_vs_single_app": round(float(np.median(warr)), 2),
        },
        {
            "statistic": "max",
            "ratio_to_lb": round(float(arr.max()), 2),
            "win_vs_single_app": round(float(warr.max()), 2),
        },
        {
            "statistic": "min",
            "ratio_to_lb": round(float(arr.min()), 2),
            "win_vs_single_app": round(float(warr.min()), 2),
        },
    ]


def ablation_a6_layout_order(M: int = 256, B: int = 8) -> List[Dict[str, Any]]:
    """A6 — does memory layout matter?

    Two findings, one expected and one cautionary:

    * Under the paper's fully associative model, layout is provably
      irrelevant (only the *set* of blocks touched matters) — the LRU
      column must be identical across layouts, and is.  This justifies the
      library's freedom to choose layouts for other reasons.
    * Under a direct-mapped cache, conflict misses are large and
      layout-sensitive, but NOT monotonically in favour of grouping: the
      round-robin "strided" layout can beat the grouped one because
      conflicts depend on addresses modulo the frame count, not on
      contiguity.  The actionable lesson is that low-associativity targets
      need conflict-aware placement (colouring/skewing), which is outside
      the paper's model — the partitioned schedule still wins at every
      layout (compare E12), but its margin varies.

    Both columns come from one compiled trace per layout: LRU via the
    Mattson pass, direct-mapped via the per-frame last-block replay — no
    stepwise simulation anywhere in this sweep.
    """
    g, sched, part, run_geom = des_partitioned_workload(M=M, B=B, inputs=768)

    grouped = component_layout_order(part)
    topo = g.topological_order()
    # adversarial: round-robin across components so each component's state
    # is maximally scattered through the address space
    comps = [list(c) for c in part.components]
    strided: List[str] = []
    idx = 0
    while any(comps):
        comp = comps[idx % len(comps)]
        if comp:
            strided.append(comp.pop(0))
        idx += 1

    rows: List[Dict[str, Any]] = []
    for label, order in (("component-grouped", grouped), ("topological", topo), ("strided", strided)):
        trace = compile_trace(g, sched, B, layout_order=order)
        lru = simulate_trace(trace, [run_geom])[0]
        dm = simulate_trace(trace, [run_geom], policy="direct")[0]
        rows.append(
            {
                "layout": label,
                "lru_misses": lru.misses,
                "direct_mapped_misses": dm.misses,
                "dm_conflict_penalty": round(dm.misses / lru.misses, 2) if lru.misses else 0,
            }
        )
    return rows


def ablation_a7_placement(
    M: int = 256, B: int = 8, inputs: int = 256, budget: int = 300
) -> List[Dict[str, Any]]:
    """A7 — layout sensitivity: seed vs colored vs swap-refined placement.

    A6 diagnosed the disease (direct-mapped misses swing with layout in
    non-obvious ways); A7 measures the cure.  The conflict-aware placement
    subsystem (:mod:`repro.mem.placement`) optimizes the object order for
    the direct-mapped execution geometry — greedy set-coloring of the
    temporal-affinity conflict graph, then FLIP-style pairwise-swap local
    search scored by the exact block-remap cost model — and every candidate
    is evaluated across organizations from the *one* trace compiled under
    the seed layout.

    Shape: the ``direct`` column drops hard (the des workload loses well
    over 80% of its conflict misses to the swap-refined placement), and the
    ``fully_assoc`` column is bit-identical for every placement — the
    paper's model provably cannot see layout, which is exactly why the
    optimizer is free to choose it.  The ``2way``/``4way`` columns carry a
    caution: a placement tuned for the direct-mapped index can *regress*
    at other organizations (conflicts depend on addresses modulo the set
    count), so the target geometry must be the deployment geometry.  Those
    columns run at the nearest valid set indexing — ``with_ways`` snaps the
    frame count up — and every label carries its cache size in words so
    capacity effects are not mistaken for placement effects.
    """
    from repro.mem.placement import build_instance, optimize_instance, placement_cost

    g, sched, _part, run_geom = des_partitioned_workload(M=M, B=B, inputs=inputs)
    # with_ways snaps the frame count up to the nearest valid set indexing,
    # so these columns may run a slightly larger cache than run_geom — the
    # labels carry the word size to keep the comparison honest
    two_way = run_geom.with_ways(2)
    four_way = run_geom.with_ways(4)
    col_direct = f"direct_{run_geom.size}w"
    col_2way = f"2way_{two_way.size}w"
    col_4way = f"4way_{four_way.size}w"

    instance = build_instance(g, sched, B)

    rows: List[Dict[str, Any]] = []
    for strategy in ("topo", "color", "swap"):
        res = optimize_instance(
            instance, run_geom, strategy=strategy, policy="direct", budget=budget
        )
        rows.append(
            {
                "placement": "seed (topo)" if strategy == "topo" else strategy,
                col_direct: res.cost,
                col_2way: placement_cost(instance, res.order, two_way, policy="lru"),
                col_4way: placement_cost(instance, res.order, four_way, policy="lru"),
                "fully_assoc": placement_cost(instance, res.order, run_geom, policy="lru"),
                "direct_vs_seed": round(res.cost / res.seed_cost, 3) if res.seed_cost else 1.0,
            }
        )
    return rows


def ablation_a9_cross_geometry(
    M: int = 256, B: int = 8, inputs: int = 256, budget: int = 300,
    gap_budget: int = 8,
) -> List[Dict[str, Any]]:
    """A9 — deployable placements: single- vs multi-geometry objectives vs
    skewed (xor) indexing, across the A7 workload's organizations.

    A7's caution was that a placement tuned for the direct-mapped index can
    *regress* at 2-way.  A9 measures the cure and its alternative:

    * ``seed (topo)`` — the baseline layout;
    * ``swap@direct`` — the A7 optimizer, tuned only for the direct-mapped
      geometry (may regress at other targets: the disease);
    * ``swap@multi`` — the multi-geometry objective
      (:func:`repro.mem.placement.optimize_instance` with ``targets=`` over
      all three organizations, padding allowed via ``gap_budget``), which
      by contract is **never worse than the seed at any target**;
    * ``xor-index`` — no layout tuning at all: the *seed* order measured on
      xor-indexed (skewed) versions of the same organizations, answering
      "would a skewed cache beat layout tuning?" from the same compiled
      trace.

    All candidates are scored from the *one* seed-compiled trace via the
    block-remap cost model.  Columns carry cache sizes in words (``with_ways``
    snaps frame counts up) so capacity effects are not mistaken for
    placement effects; ``worst_vs_seed`` is the max over targets of
    (cost / seed cost) — the deployability number, ≤ 1.0 for ``swap@multi``.
    """
    from repro.mem.placement import build_instance, optimize_instance, placement_costs

    g, sched, _part, run_geom = des_partitioned_workload(M=M, B=B, inputs=inputs)
    direct = run_geom.with_ways(1)
    two_way = run_geom.with_ways(2)
    four_way = run_geom.with_ways(4)
    targets = [
        (direct, "direct", 1.0),
        (two_way, "lru", 1.0),
        (four_way, "lru", 1.0),
    ]
    cols = [
        f"direct_{direct.size}w",
        f"2way_{two_way.size}w",
        f"4way_{four_way.size}w",
    ]

    instance = build_instance(g, sched, B)
    seed_order = list(instance.objects)
    seed = placement_costs(instance, seed_order, targets)

    def row(label: str, per: List[int], gap_blocks: int = 0) -> Dict[str, Any]:
        out: Dict[str, Any] = {"placement": label}
        out.update({c: int(m) for c, m in zip(cols, per)})
        out["worst_vs_seed"] = round(
            max((m / s if s else 1.0) for m, s in zip(per, seed)), 3
        )
        out["gap_blocks"] = gap_blocks
        return out

    rows: List[Dict[str, Any]] = [row("seed (topo)", seed)]

    single = optimize_instance(
        instance, direct, strategy="swap", policy="direct", budget=budget
    )
    rows.append(
        row("swap@direct",
            placement_costs(instance, single.order, targets, gaps=single.gaps),
            single.gap_blocks)
    )

    multi = optimize_instance(
        instance, strategy="swap", targets=targets, budget=budget,
        gap_budget=gap_budget,
    )
    rows.append(row("swap@multi", list(multi.per_target), multi.gap_blocks))

    xor_targets = [
        (geom.with_index_scheme("xor"), policy, w) for geom, policy, w in targets
    ]
    rows.append(
        row("xor-index", placement_costs(instance, seed_order, xor_targets))
    )
    return rows


def ablation_a8_inclusion(M: int = 256, B: int = 8) -> List[Dict[str, Any]]:
    """A8 — inclusion ratio: L2 miss rate as a function of L1 geometry.

    In the inclusive hierarchy, L2 is consulted only on L1 misses, so its
    recency order is by *last L1-miss time*, not last access time — a block
    hot in L1 never refreshes its L2 position.  How much does that filter
    distortion cost?  One row per L1 geometry (sizes around M, fully
    associative and direct-mapped), all against the fixed O(M) L2 the E12
    hierarchy row uses, all answered from the *one* compiled partitioned
    trace: each row is an L1 pass plus an L2 pass over its miss sub-trace
    (:func:`repro.runtime.replay.hierarchy_level_masks`).

    Columns: ``l1_misses`` (L2 consults), ``mem_misses`` (transfers from
    memory), ``filter_rate`` (fraction of L1 misses that L2 absorbs), and
    ``inclusion_ratio`` — memory misses relative to a *single-level* L2 fed
    the full trace, i.e. the price of the hierarchy only seeing the
    filtered stream.  Shape: growing L1 cuts l1_misses hard while
    mem_misses stay pinned near the single-level floor (inclusion_ratio
    ≈ 1): the hierarchy composes, which is the paper's multi-level claim
    (HMM, cited as [24]) made measurable.
    """
    from repro.runtime.replay import replay_miss_masks, replay_misses

    part_trace, _base_trace, geom, run_geom = fm_partitioned_traces(M=M, B=B)
    l2 = CacheGeometry(size=run_geom.size, block=B)
    (single_level_l2,) = replay_misses(part_trace.blocks, [l2], "lru")

    l1_grid: List[CacheGeometry] = []
    for frac in (4, 2, 1):
        size = max(B, (geom.size // frac) // B * B)
        l1_grid.append(CacheGeometry(size=size, block=B))  # fully associative
        l1_grid.append(CacheGeometry(size=size, block=B, ways=1))  # direct-mapped

    # batched calls so the kernels share their passes: the fully-associative
    # L1 column reads off one Mattson pass, the hierarchy grid reuses one L1
    # pass per distinct L1 organization
    blocks = part_trace.blocks
    fa = [g for g in l1_grid if g.ways is None]
    dm = [g for g in l1_grid if g.ways == 1]
    l1_masks = dict(zip(fa, replay_miss_masks(blocks, fa, "lru")))
    l1_masks.update(zip(dm, replay_miss_masks(blocks, dm, "direct")))
    mem_masks = replay_miss_masks(
        blocks, [TwoLevelGeometry(l1, l2) for l1 in l1_grid], "two_level"
    )

    rows: List[Dict[str, Any]] = []
    for l1, mem_mask in zip(l1_grid, mem_masks):
        l1_misses = int(np.count_nonzero(l1_masks[l1]))
        mem = int(np.count_nonzero(mem_mask))
        org = "direct" if l1.ways == 1 else "full"
        rows.append(
            {
                "l1": f"{l1.size}w/{org}",
                "l1_misses": l1_misses,
                "mem_misses": mem,
                "filter_rate": round(1.0 - mem / l1_misses, 4) if l1_misses else 0.0,
                "inclusion_ratio": round(mem / single_level_l2, 3)
                if single_level_l2
                else float("inf"),
            }
        )
    return rows


def ablation_a12_facility_search(
    M: int = 256, B: int = 8, budget: int = 8000, minimax_budget: int = 300,
    restarts: int = 2, noise: float = 0.5, seed: int = 0,
) -> List[Dict[str, Any]]:
    """A12 — facility-location search quality: multiswap/smoothed vs swap
    at equal eval budget, and minimax vs swap@multi on the A9 geometry set.

    Two questions, two sections of rows:

    * **Search quality.**  On the DES and fm_radio partitioned workloads
      (direct-mapped at the execution geometry — the organization where
      placement matters most), run the FLIP baseline
      (:func:`repro.mem.placement.swap_refine`) and the facility-location
      searches (:func:`repro.mem.facility.multiswap_refine`,
      :func:`repro.mem.facility.smoothed_search`) from the same greedy
      start with the same eval budget.  ``evals`` is read back from the
      scorer (every cost-model invocation counted), so the comparison is
      honest: the claim is better misses at *equal* budget, not more
      search.  ``budget`` sits past FLIP's convergence point on both
      workloads (DES ~4.4k evals, fm_radio ~6.1k) — that is the point:
      swap *cannot* spend more (its move set is exhausted at a local
      optimum, the plateau the smoothed-FLIP analysis predicts), while
      the richer k-object moves and the noise-perturbed restarts keep
      buying misses.  ``vs_swap`` is swap's misses over the row's (> 1 =
      the row wins); the gate asserts multiswap or smoothed beats swap on
      both workloads.
    * **Worst-case deployability.**  On the A9 cross-geometry target set
      (direct / 2-way LRU / 4-way LRU over the DES workload), compare
      ``swap@multi`` (weighted-sum objective) against ``minimax`` (worst
      per-target ratio objective): ``worst_vs_seed`` is the max over
      targets of (cost / seed cost) — minimax's whole purpose is driving
      that number down, and the gate asserts it strictly improves on
      swap@multi's.

    Deterministic end to end: the smoothed restarts derive from ``seed``
    alone (``numpy.random.default_rng``), so rerunning reproduces every
    row bit-for-bit.
    """
    from repro.mem.facility import multiswap_refine, smoothed_search
    from repro.mem.placement import (
        build_instance,
        conflict_graph,
        greedy_color_order,
        optimize_instance,
        placement_costs,
        swap_refine,
    )

    rows: List[Dict[str, Any]] = []
    workloads = [
        ("des", des_partitioned_workload(M=M, B=B, inputs=256)),
        ("fm_radio", fm_partitioned_workload(M=M, B=B, inputs=512)),
    ]
    for name, (g, sched, _part, run_geom) in workloads:
        direct = run_geom.with_ways(1)
        instance = build_instance(g, sched, B)
        weights = conflict_graph(instance)
        start = greedy_color_order(instance, direct, policy="direct",
                                   weights=weights)
        _o, _g2, swap_cost, swap_stats = swap_refine(
            instance, start, direct, policy="direct", budget=budget,
            weights=weights,
        )
        _o, _g2, multi_cost, multi_stats = multiswap_refine(
            instance, start, direct, policy="direct", budget=budget,
            weights=weights,
        )
        _o, _g2, smooth_cost, smooth_stats = smoothed_search(
            instance, direct, policy="direct", budget=budget,
            restarts=restarts, noise=noise, seed=seed,
        )
        for label, cost, stats in (
            ("swap", swap_cost, swap_stats),
            ("multiswap", multi_cost, multi_stats),
            ("smoothed", smooth_cost, smooth_stats),
        ):
            rows.append({
                "workload": name,
                "search": label,
                "misses": int(cost),
                "evals": stats.evals,
                "rounds": stats.rounds,
                "vs_swap": round(swap_cost / cost, 4) if cost else 1.0,
            })

    # worst-case deployability on the A9 geometry set (DES workload);
    # multi-target evals replay every target, so this section runs at
    # A9's budget scale, not the single-target section's
    g, sched, _part, run_geom = workloads[0][1]
    instance = build_instance(g, sched, B)
    targets = [
        (run_geom.with_ways(1), "direct", 1.0),
        (run_geom.with_ways(2), "lru", 1.0),
        (run_geom.with_ways(4), "lru", 1.0),
    ]
    seed_per = placement_costs(instance, list(instance.objects), targets)

    def worst(per: List[int]) -> float:
        return round(
            max((m / s if s else 1.0) for m, s in zip(per, seed_per)), 4
        )

    worsts: Dict[str, float] = {}
    for label, strategy in (("swap@multi", "swap"), ("minimax", "minimax")):
        res = optimize_instance(
            instance, strategy=strategy, targets=targets,
            budget=minimax_budget,
        )
        worsts[label] = worst(list(res.per_target))
        rows.append({
            "workload": "des/a9-targets",
            "search": f"{label} (worst={worsts[label]})",
            "misses": int(sum(res.per_target)),
            "evals": minimax_budget,
            "rounds": 0,
            # > 1 = this row's worst per-target ratio beats swap@multi's
            "vs_swap": round(worsts["swap@multi"] / worsts[label], 4)
            if worsts[label] else 1.0,
        })
    return rows
