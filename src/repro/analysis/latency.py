"""Latency analysis: what cache efficiency costs in responsiveness.

The paper's introduction contrasts the classic streaming objectives —
throughput and *latency* ("the period between the time an input data item
enters the computation and the time it affects an output data item") — with
its own cache-miss objective.  The partitioned schedulers buy cache
efficiency by batching Θ(M) items per component activation, which is
exactly a latency cost.  This module quantifies the trade.

We measure latency in *firing steps* (position in the schedule, the natural
time unit of the uniprocessor model): for output ``j`` of the sink, its
latency is the number of firings between the source firing that admitted
the input it derives from and the sink firing that emitted it.

For pipelines the derivation map is FIFO per stage, so output ``j`` (0-based)
derives from input ``ceil((j+1) / gain(t)) - 1``, where ``gain(t)`` is the
sink's gain — the fractional-progeny accounting of Definition 1 made
concrete.  (For gain 1 this is the identity.)

Experiment E14 sweeps the dynamic scheduler's cross-buffer capacity and
plots (misses/input, mean latency) pairs: the Pareto frontier of the
cache-vs-latency trade the paper's model implies but never measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import ceil
from typing import Any, Dict, List

from repro.errors import GraphError
from repro.graphs.repetition import compute_gains
from repro.graphs.sdf import StreamGraph
from repro.runtime.schedule import Schedule

__all__ = ["LatencyStats", "pipeline_latency", "experiment_e14_latency_tradeoff"]


@dataclass(frozen=True)
class LatencyStats:
    """Latency distribution of one schedule, in firing steps."""

    n_outputs: int
    mean: float
    p50: float
    p95: float
    max: int

    def summary(self) -> str:
        return (
            f"latency over {self.n_outputs} outputs: mean={self.mean:.1f}, "
            f"p50={self.p50:.0f}, p95={self.p95:.0f}, max={self.max}"
        )


def pipeline_latency(graph: StreamGraph, schedule: Schedule) -> LatencyStats:
    """Per-output latency of a pipeline schedule.

    Walks the firing list once, recording the positions of source and sink
    firings; output ``j`` is matched to its originating input through the
    sink-gain derivation map.  Outputs whose originating input lies outside
    the schedule (possible only for malformed schedules) are skipped.
    """
    if not graph.is_pipeline():
        raise GraphError("pipeline_latency requires a pipeline graph")
    order = graph.pipeline_order()
    source, sink = order[0], order[-1]
    gains = compute_gains(graph)
    g_t = gains.gain(sink)  # outputs per source firing

    src_pos: List[int] = []
    snk_pos: List[int] = []
    for pos, name in enumerate(schedule.firings):
        if name == source:
            src_pos.append(pos)
        if name == sink:
            snk_pos.append(pos)
    if source == sink:
        # single-module pipeline: zero latency by definition
        return LatencyStats(n_outputs=len(snk_pos), mean=0.0, p50=0.0, p95=0.0, max=0)

    latencies: List[int] = []
    for j, out_pos in enumerate(snk_pos):
        # output j derives from input ceil((j+1)/g_t) - 1
        i = ceil(Fraction(j + 1) / g_t) - 1
        if 0 <= i < len(src_pos) and out_pos >= src_pos[i]:
            latencies.append(out_pos - src_pos[i])
    if not latencies:
        return LatencyStats(n_outputs=0, mean=0.0, p50=0.0, p95=0.0, max=0)

    latencies.sort()
    n = len(latencies)
    mean = sum(latencies) / n
    return LatencyStats(
        n_outputs=n,
        mean=mean,
        p50=float(latencies[n // 2]),
        p95=float(latencies[min(n - 1, (95 * n) // 100)]),
        max=latencies[-1],
    )


def experiment_e14_latency_tradeoff(
    seed: int = 47, n_outputs: int = 800
) -> List[Dict[str, Any]]:
    """The cache-efficiency / latency Pareto frontier.

    Sweep the dynamic pipeline scheduler's cross-buffer capacity from minimal
    to far beyond Θ(M); for each point measure misses/input (simulator) and
    mean latency (firing steps).  Shape: misses fall and latency rises with
    capacity — the knee sits near Θ(M), which is why the paper's choice of
    buffer size is the right default.  The interleaved baseline anchors the
    minimum-latency end.
    """
    from repro.cache.base import CacheGeometry
    from repro.core.baselines import interleaved_schedule
    from repro.core.partition_sched import (
        component_layout_order,
        pipeline_dynamic_schedule,
    )
    from repro.core.pipeline import optimal_pipeline_partition
    from repro.core.tuning import required_geometry
    from repro.graphs.topologies import random_pipeline
    from repro.runtime.executor import Executor

    g = random_pipeline(14, 40, seed=seed, rate_choices=[(1, 1)])
    M = 128
    geom = CacheGeometry(size=M, block=8)
    part = optimal_pipeline_partition(g, M, c=1.0)
    run_geom = required_geometry(part, geom)
    order = component_layout_order(part)

    rows: List[Dict[str, Any]] = []
    base = interleaved_schedule(g, n_iterations=n_outputs)
    res = Executor.measure(g, run_geom, base, layout_order=order)
    lat = pipeline_latency(g, base)
    rows.append(
        {
            "schedule": "interleaved (min latency)",
            "cross_capacity": 0,
            "misses_per_input": round(res.misses_per_source_fire, 3),
            "mean_latency": round(lat.mean, 1),
            "p95_latency": lat.p95,
        }
    )
    for cap in (8, 32, 128, 256, 512, 1024):
        sched = pipeline_dynamic_schedule(
            g, part, geom, target_outputs=n_outputs, cross_capacity=cap
        )
        res = Executor.measure(g, run_geom, sched, layout_order=order)
        lat = pipeline_latency(g, sched)
        rows.append(
            {
                "schedule": f"partitioned[cap={cap}]",
                "cross_capacity": cap,
                "misses_per_input": round(res.misses_per_source_fire, 3),
                "mean_latency": round(lat.mean, 1),
                "p95_latency": lat.p95,
            }
        )
    return rows
