"""Experiment drivers E1–E10 and ablations A1–A4.

The paper has no empirical tables or figures (it is a theory paper), so the
reproduction treats each theorem/corollary as an experiment — see DESIGN.md
for the index.  Every driver here returns a list of uniform dict rows; the
`benchmarks/` targets time them and print the rows, and EXPERIMENTS.md
records representative output with the paper-predicted shape.

All drivers are deterministic (fixed seeds) and sized to run in seconds, so
`pytest benchmarks/ --benchmark-only` stays fast while still exhibiting the
asymptotic shapes.
"""

from __future__ import annotations

import time
from fractions import Fraction
from typing import Any, Dict, List, Optional

from repro.analysis.model import predict_partition_cost
from repro.cache.base import CacheGeometry
from repro.core.baselines import (
    interleaved_schedule,
    kohli_greedy_schedule,
    sermulins_scaled_schedule,
    single_appearance_schedule,
)
from repro.core.dagpart import (
    exact_min_bandwidth_partition,
    greedy_topological_partition,
    interval_dp_partition,
    refine_partition,
)
from repro.core.lower_bound import dag_lower_bound, pipeline_lower_bound
from repro.core.partition import Partition
from repro.core.partition_sched import (
    component_layout_order,
    homogeneous_partition_schedule,
    inhomogeneous_partition_schedule,
    pipeline_dynamic_schedule,
)
from repro.core.pipeline import (
    gain_min_edge,
    greedy_state_blocks,
    optimal_pipeline_partition,
    pipeline_chain,
    theorem5_partition,
)
from repro.core.tuning import augmented_geometry, choose_batch, required_geometry
from repro.graphs.apps import beamformer, bitonic_sort, des_rounds, filter_bank, fm_radio, mp3_subband
from repro.graphs.repetition import compute_gains, repetition_vector
from repro.graphs.sdf import StreamGraph
from repro.graphs.topologies import (
    butterfly,
    diamond,
    layered_random_dag,
    pipeline,
    random_pipeline,
    rate_matched_random_dag,
    split_join_tree,
)
from repro.runtime.compiled import compile_trace, measure_compiled, simulate_trace
from repro.runtime.executor import Executor
from repro.runtime.schedule import Schedule, validate_schedule

__all__ = [
    "experiment_e1_pipeline_optimality",
    "experiment_e2_miss_model",
    "experiment_e3_lower_bound",
    "experiment_e4_partition_quality",
    "experiment_e5_dag_optimality",
    "experiment_e6_inhomogeneous",
    "experiment_e7_vs_baselines",
    "experiment_e8_augmentation",
    "experiment_e9_block_size",
    "experiment_e10_crossover",
    "ablation_a1_cut_choice",
    "ablation_a2_cross_buffer_size",
    "ablation_a3_lru_vs_opt",
    "ablation_a4_degree_limits",
    "experiment_e11_parallel_scaling",
    "ablation_a5_multilevel",
]

#: Default block size for experiments (words per block).
DEFAULT_B = 8

MIXED_RATES = ((1, 1), (1, 1), (2, 1), (1, 2), (3, 2), (2, 3))


def _measure(
    graph: StreamGraph,
    geometry: CacheGeometry,
    schedule: Schedule,
    layout_order=None,
) -> Dict[str, Any]:
    res = Executor.measure(graph, geometry, schedule, layout_order=layout_order)
    return {
        "schedule": schedule.label,
        "misses": res.misses,
        "inputs": res.source_fires,
        "misses_per_input": res.misses_per_source_fire,
    }


# ----------------------------------------------------------------------
# E1: pipelines are O(1)-competitive with O(1) augmentation (Thm 5 / Cor 6)
# ----------------------------------------------------------------------
def experiment_e1_pipeline_optimality(
    n_outputs: int = 1500, seed: int = 7
) -> List[Dict[str, Any]]:
    """Measured misses of the dynamic partitioned pipeline schedule vs the
    Theorem 3 lower bound.  The paper predicts a bounded ratio independent
    of pipeline length and cache size; the rows let one check exactly that.
    """
    rows: List[Dict[str, Any]] = []
    configs = [
        ("homog-n12", pipeline([16] * 12), 64, n_outputs),
        ("homog-n24", pipeline([24] * 24), 96, n_outputs),
        ("mixed-n16", random_pipeline(16, 40, seed=seed, rate_choices=MIXED_RATES), 128, n_outputs),
        ("mixed-n32", random_pipeline(32, 40, seed=seed + 1, rate_choices=MIXED_RATES), 128, n_outputs),
        (
            "heavy-n20",
            random_pipeline(20, 100, seed=seed + 2, rate_choices=((1, 1), (2, 1), (1, 2))),
            160,
            max(200, n_outputs // 8),
        ),
    ]
    for name, g, M, outs in configs:
        geom = CacheGeometry(size=M, block=DEFAULT_B)
        # c=3 matches the lower bound's 2M segment granularity more closely
        # than c=1 (fewer forced cuts); execution gets the matching 4x cache.
        part = optimal_pipeline_partition(g, M, c=3.0)
        sched = pipeline_dynamic_schedule(g, part, geom, target_outputs=outs)
        run_geom = required_geometry(part, geom)
        res = Executor.measure(
            g, run_geom, sched, layout_order=component_layout_order(part)
        )
        lb = pipeline_lower_bound(g, M)
        lb_misses = float(lb.misses(res.source_fires, geom))
        rows.append(
            {
                "pipeline": name,
                "n": g.n_modules,
                "M": M,
                "bandwidth": float(part.bandwidth()),
                "lb_bandwidth": float(lb.bandwidth),
                "measured_misses": res.misses,
                "lb_misses": lb_misses,
                "ratio_to_lb": res.misses / lb_misses if lb_misses else float("inf"),
                "misses_per_input": res.misses_per_source_fire,
            }
        )
    return rows


# ----------------------------------------------------------------------
# E2: the analytic Lemma 4 model tracks simulation
# ----------------------------------------------------------------------
def experiment_e2_miss_model(seed: int = 11) -> List[Dict[str, Any]]:
    """Predicted (Lemma 4 algebra) vs simulated misses for batch-partitioned
    pipelines across batch counts.  The prediction should track simulation
    within a small constant factor (circular-buffer reuse makes simulation a
    bit cheaper than the write-once/read-once accounting).

    Each batch count is a different schedule (hence a different trace), so
    the sweep compiles one trace per row and evaluates it with the
    vectorized kernel instead of stepwise simulation."""
    rows: List[Dict[str, Any]] = []
    g = random_pipeline(18, 48, seed=seed, rate_choices=((1, 1), (2, 1), (1, 2)))
    M = 128
    geom = CacheGeometry(size=M, block=DEFAULT_B)
    part = optimal_pipeline_partition(g, M, c=1.0)
    plan = choose_batch(g, M, cross_cids=[ch.cid for ch in part.cross_channels()])
    for n_batches in (1, 2, 4, 8, 16):
        sched = inhomogeneous_partition_schedule(g, part, geom, n_batches=n_batches, plan=plan)
        res = measure_compiled(
            g,
            required_geometry(part, geom),
            sched,
            layout_order=component_layout_order(part),
        )
        pred = predict_partition_cost(
            part, geom, source_fires=res.source_fires, batch_source_fires=plan.source_fires
        )
        rows.append(
            {
                "n_batches": n_batches,
                "inputs": res.source_fires,
                "measured": res.misses,
                "predicted": round(pred.total, 1),
                "ratio": res.misses / pred.total if pred.total else float("inf"),
            }
        )
    return rows


# ----------------------------------------------------------------------
# E3: no schedule beats the lower bound (Thm 3)
# ----------------------------------------------------------------------
def experiment_e3_lower_bound(n_outputs: int = 1200, seed: int = 3) -> List[Dict[str, Any]]:
    """Run every scheduler (partitioned and all baselines) on the same
    pipeline and compare with the Theorem 3 lower bound: every row's
    ``measured >= lb`` must hold, and the partitioned row should be the
    closest to it."""
    g = random_pipeline(20, 64, seed=seed, rate_choices=((1, 1), (1, 1), (2, 1), (1, 2)))
    M = 128
    geom = CacheGeometry(size=M, block=DEFAULT_B)
    lb = pipeline_lower_bound(g, M)
    part = optimal_pipeline_partition(g, M, c=1.0)
    aug = required_geometry(part, geom)
    reps = repetition_vector(g)
    sink = g.pipeline_order()[-1]
    iters = max(1, n_outputs // reps[sink])

    schedules = [
        (
            pipeline_dynamic_schedule(g, part, geom, target_outputs=n_outputs),
            component_layout_order(part),
        ),
        (single_appearance_schedule(g, n_iterations=iters), None),
        (interleaved_schedule(g, n_iterations=iters), None),
        (sermulins_scaled_schedule(g, geom, n_macro_iterations=iters), None),
        (kohli_greedy_schedule(g, geom, target_outputs=n_outputs), None),
    ]
    rows: List[Dict[str, Any]] = []
    for sched, order in schedules:
        res = Executor.measure(g, aug, sched, layout_order=order)
        lbm = float(lb.misses(res.source_fires, geom))
        rows.append(
            {
                "schedule": sched.label,
                "inputs": res.source_fires,
                "measured": res.misses,
                "lb": round(lbm, 1),
                "measured_over_lb": res.misses / lbm if lbm else float("inf"),
            }
        )
    return rows


# ----------------------------------------------------------------------
# E4: DP-optimal vs Theorem-5 greedy partitions; both polynomial
# ----------------------------------------------------------------------
def experiment_e4_partition_quality(seed: int = 5) -> List[Dict[str, Any]]:
    """Bandwidth of the optimal DP partition vs the Theorem 5 construction
    across pipeline sizes, with wall-clock timings demonstrating polynomial
    scaling.  The paper: the optimal partition is never worse, but also not
    asymptotically better."""
    rows: List[Dict[str, Any]] = []
    M = 128
    for n in (16, 32, 64, 128, 256):
        g = random_pipeline(n, 48, seed=seed + n, rate_choices=MIXED_RATES)
        t0 = time.perf_counter()
        p_greedy = theorem5_partition(g, M)
        t_greedy = time.perf_counter() - t0
        t0 = time.perf_counter()
        # The Theorem 5 construction is 8M-bounded, so the apples-to-apples
        # optimum is the c=8 DP; the c=3 column shows the bandwidth price of
        # a tighter state bound.
        p_dp8 = optimal_pipeline_partition(g, M, c=8.0)
        t_dp = time.perf_counter() - t0
        p_dp3 = optimal_pipeline_partition(g, M, c=3.0)
        rows.append(
            {
                "n": n,
                "greedy_bw": float(p_greedy.bandwidth()),
                "dp8_bw": float(p_dp8.bandwidth()),
                "dp3_bw": float(p_dp3.bandwidth()),
                "greedy_over_dp8": (
                    float(p_greedy.bandwidth() / p_dp8.bandwidth())
                    if p_dp8.bandwidth()
                    else float("inf")
                ),
                "greedy_ms": round(t_greedy * 1e3, 2),
                "dp_ms": round(t_dp * 1e3, 2),
                "greedy_max_state": p_greedy.max_component_state(),
                "dp8_max_state": p_dp8.max_component_state(),
            }
        )
    return rows


# ----------------------------------------------------------------------
# E5: homogeneous dags — partition schedule vs exact minBW (Thm 7 / Lem 8)
# ----------------------------------------------------------------------
def experiment_e5_dag_optimality(seed: int = 13) -> List[Dict[str, Any]]:
    """Homogeneous dags small enough for the exact minBW_3 search: compare
    the partition schedule's measured misses with the Theorem 7 lower bound
    and record how close the heuristic partition's bandwidth is to optimal
    (Corollary 9's alpha)."""
    rows: List[Dict[str, Any]] = []
    configs = [
        ("diamond2x4", diamond(branch_len=4, ways=2, state=24), 48),
        ("diamond3x3", diamond(branch_len=3, ways=3, state=24), 48),
        ("tree-d1", split_join_tree(1, state=30), 40),
        ("butterfly2", butterfly(2, state=20), 40),
    ]
    for name, g, M in configs:
        geom = CacheGeometry(size=M, block=DEFAULT_B)
        exact = exact_min_bandwidth_partition(g, M, c=3.0, max_modules=16)
        heur = refine_partition(interval_dp_partition(g, M, c=3.0), M, c=3.0)
        sched = homogeneous_partition_schedule(g, heur, geom, n_batches=4)
        res = Executor.measure(
            g,
            required_geometry(heur, geom),
            sched,
            layout_order=component_layout_order(heur),
        )
        lb = dag_lower_bound(g, M, c=3.0, exact_limit=16)
        lbm = float(lb.misses(res.source_fires, geom))
        rows.append(
            {
                "dag": name,
                "n": g.n_modules,
                "minBW3": float(exact.bandwidth()),
                "heur_bw": float(heur.bandwidth()),
                "alpha": (
                    float(heur.bandwidth() / exact.bandwidth())
                    if exact.bandwidth()
                    else 1.0
                ),
                "measured": res.misses,
                "lb": round(lbm, 1),
                "ratio_to_lb": res.misses / lbm if lbm else float("inf"),
            }
        )
    return rows


# ----------------------------------------------------------------------
# E6: inhomogeneous dag scheduling at T granularity
# ----------------------------------------------------------------------
def experiment_e6_inhomogeneous(seed: int = 17) -> List[Dict[str, Any]]:
    """Inhomogeneous (rate-changing) dags: the T-granularity scheduler is
    feasible (validated), its batch plan satisfies the Section 3 conditions,
    and it beats the single-appearance baseline on misses per input."""
    rows: List[Dict[str, Any]] = []
    configs = [
        ("filter-bank4", filter_bank(branches=4, taps=16), 128),
        ("mp3-4band", mp3_subband(subbands=4, taps=24), 128),
        ("rate-dag", rate_matched_random_dag(5, 3, 48, seed=seed, rate_choices=(1, 2)), 96),
    ]
    for name, g, M in configs:
        geom = CacheGeometry(size=M, block=DEFAULT_B)
        part = interval_dp_partition(g, M, c=2.0)
        plan = choose_batch(g, M, cross_cids=[ch.cid for ch in part.cross_channels()])
        n_batches = max(2, -(-512 // max(plan.source_fires, 1)))  # >= ~512 inputs
        sched = inhomogeneous_partition_schedule(g, part, geom, n_batches=n_batches, plan=plan)
        validate_schedule(g, sched, require_drained=True)
        aug = required_geometry(part, geom)
        res = Executor.measure(g, aug, sched, layout_order=component_layout_order(part))
        reps = repetition_vector(g)
        src = g.sources()[0]
        base_iters = max(1, res.source_fires // reps[src])
        base = Executor.measure(g, aug, single_appearance_schedule(g, n_iterations=base_iters))
        rows.append(
            {
                "graph": name,
                "n": g.n_modules,
                "k_components": part.k,
                "partitioned_mpi": res.misses_per_source_fire,
                "single_app_mpi": base.misses_per_source_fire,
                "improvement": base.misses_per_source_fire / res.misses_per_source_fire
                if res.misses_per_source_fire
                else float("inf"),
            }
        )
    return rows


# ----------------------------------------------------------------------
# E7: application graphs — partitioned vs every baseline
# ----------------------------------------------------------------------
def experiment_e7_vs_baselines(M: int = 256) -> List[Dict[str, Any]]:
    """The headline comparison on StreamIt-motivated applications.  Shape to
    check (paper Section 6 cites a >4x cache-miss reduction on a real app;
    our DAM simulation shows the same order): partitioned wins by a growing
    factor as total state / M grows."""
    rows: List[Dict[str, Any]] = []
    apps = [
        ("fm_radio", fm_radio(taps=48, bands=6)),
        ("filter_bank", filter_bank(branches=4, taps=24)),
        ("beamformer", beamformer(channels=6, beams=3, taps=32)),
        ("des_rounds", des_rounds(rounds=8, sbox_state=48)),
        ("mp3_subband", mp3_subband(subbands=4, taps=32)),
        ("bitonic", bitonic_sort(keys_log2=2, state=12)),
    ]
    geom = CacheGeometry(size=M, block=DEFAULT_B)
    for name, g in apps:
        part = refine_partition(interval_dp_partition(g, M, c=2.0), M, c=2.0)
        plan = choose_batch(g, M, cross_cids=[ch.cid for ch in part.cross_channels()])
        n_batches = max(2, -(-1024 // max(plan.source_fires, 1)))
        sched = inhomogeneous_partition_schedule(g, part, geom, n_batches=n_batches, plan=plan)
        aug = required_geometry(part, geom)
        res = Executor.measure(g, aug, sched, layout_order=component_layout_order(part))
        reps = repetition_vector(g)
        src = g.sources()[0]
        iters = max(1, res.source_fires // reps[src])
        sas = Executor.measure(g, aug, single_appearance_schedule(g, n_iterations=iters))
        ser = Executor.measure(g, aug, sermulins_scaled_schedule(g, geom, n_macro_iterations=iters))
        inter = Executor.measure(g, aug, interleaved_schedule(g, n_iterations=min(iters, 64)))
        rows.append(
            {
                "app": name,
                "n": g.n_modules,
                "state": g.total_state(),
                "state_over_M": round(g.total_state() / M, 2),
                "partitioned": round(res.misses_per_source_fire, 3),
                "single_app": round(sas.misses_per_source_fire, 3),
                "sermulins": round(ser.misses_per_source_fire, 3),
                "interleaved": round(inter.misses_per_source_fire, 3),
                "win_vs_single_app": round(
                    sas.misses_per_source_fire / res.misses_per_source_fire, 2
                )
                if res.misses_per_source_fire
                else float("inf"),
            }
        )
    return rows


# ----------------------------------------------------------------------
# E8: cache-augmentation sweep (Cor 6 / Cor 9)
# ----------------------------------------------------------------------
def experiment_e8_augmentation(seed: int = 23, n_outputs: int = 1200) -> List[Dict[str, Any]]:
    """Build the partition for cache M, then execute on caches of size
    c' * M for c' in {1, 1.5, 2, 3, 4, 6}: misses should fall steeply until
    the components (plus working buffers) fit, then plateau — the
    constant-factor augmentation of Corollary 6 made visible.

    The schedule and layout are fixed across the sweep, so its block trace
    is compiled once and every augmented geometry is answered from the same
    stack-distance pass — the canonical single-pass geometry sweep.  The
    OPT columns replay the same trace under Belady's policy (one truncated
    priority-stack pass answers the whole augmentation sweep), showing how
    much of the augmentation need is LRU's, not the schedule's: the paper's
    bounds allow an omniscient policy, and LRU-at-c'M vs OPT-at-M is exactly
    the Sleator-Tarjan trade the ideal-cache assumption leans on."""
    g = random_pipeline(18, 56, seed=seed, rate_choices=((1, 1), (2, 1), (1, 2)))
    M = 128
    geom = CacheGeometry(size=M, block=DEFAULT_B)
    part = optimal_pipeline_partition(g, M, c=1.0)
    sched = pipeline_dynamic_schedule(g, part, geom, target_outputs=n_outputs)
    order = component_layout_order(part)
    factors = (1.0, 1.5, 2.0, 3.0, 4.0, 6.0)
    trace = compile_trace(g, sched, DEFAULT_B, layout_order=order)
    geoms = [augmented_geometry(geom, factor) for factor in factors]
    lru_rows = simulate_trace(trace, geoms)
    opt_rows = simulate_trace(trace, geoms, policy="opt")
    rows: List[Dict[str, Any]] = []
    for factor, g_aug, res, opt in zip(factors, geoms, lru_rows, opt_rows):
        rows.append(
            {
                "augmentation": factor,
                "cache_words": g_aug.size,
                "misses": res.misses,
                "misses_per_input": res.misses_per_source_fire,
                "opt_misses": opt.misses,
                "lru_over_opt": round(res.misses / opt.misses, 3)
                if opt.misses
                else float("inf"),
            }
        )
    return rows


# ----------------------------------------------------------------------
# E9: block-size sweep — every bound carries a 1/B factor
# ----------------------------------------------------------------------
def experiment_e9_block_size(seed: int = 29, n_outputs: int = 1200) -> List[Dict[str, Any]]:
    """Fix the graph, partition and schedule; sweep B.  Misses per input of
    the partitioned schedule should scale close to 1/B (until state loads,
    which also scale 1/B, leave only constant overheads).

    Block size changes the memory layout, so each B needs its own compiled
    trace; each row is still evaluated by the vectorized kernel rather than
    stepwise simulation."""
    g = random_pipeline(16, 48, seed=seed, rate_choices=((1, 1),))
    M = 128
    rows: List[Dict[str, Any]] = []
    base_mpi: Optional[float] = None
    for B in (1, 2, 4, 8, 16, 32):
        geom = CacheGeometry(size=M, block=B)
        part = optimal_pipeline_partition(g, M, c=1.0)
        sched = pipeline_dynamic_schedule(g, part, geom, target_outputs=n_outputs)
        res = measure_compiled(
            g, required_geometry(part, geom), sched, layout_order=component_layout_order(part)
        )
        mpi = res.misses_per_source_fire
        if base_mpi is None:
            base_mpi = mpi
        rows.append(
            {
                "B": B,
                "misses": res.misses,
                "misses_per_input": mpi,
                "speedup_vs_B1": base_mpi / mpi if mpi else float("inf"),
            }
        )
    return rows


# ----------------------------------------------------------------------
# E10: crossover — partitioning matters once state outgrows M
# ----------------------------------------------------------------------
def experiment_e10_crossover(n_outputs: int = 800) -> List[Dict[str, Any]]:
    """Sweep total state relative to M on a homogeneous pipeline.  When the
    whole graph fits in cache, all schedules are equally cheap; the
    partitioned schedule's advantage appears at state ~ M and grows
    linearly — the crossover the partitioning theory predicts."""
    M = 128
    geom = CacheGeometry(size=M, block=DEFAULT_B)
    rows: List[Dict[str, Any]] = []
    for n_modules, per_state in ((6, 8), (6, 16), (8, 24), (12, 32), (16, 48), (24, 64)):
        g = pipeline([per_state] * n_modules)
        part = optimal_pipeline_partition(g, M, c=1.0)
        sched = pipeline_dynamic_schedule(g, part, geom, target_outputs=n_outputs)
        aug = required_geometry(part, geom)
        res = Executor.measure(g, aug, sched, layout_order=component_layout_order(part))
        base = Executor.measure(g, aug, interleaved_schedule(g, n_iterations=n_outputs))
        rows.append(
            {
                "total_state": g.total_state(),
                "state_over_M": round(g.total_state() / M, 2),
                "partitioned_mpi": round(res.misses_per_source_fire, 3),
                "interleaved_mpi": round(base.misses_per_source_fire, 3),
                "advantage": round(
                    base.misses_per_source_fire / res.misses_per_source_fire, 2
                )
                if res.misses_per_source_fire
                else float("inf"),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Ablations
# ----------------------------------------------------------------------
def ablation_a1_cut_choice(seed: int = 31, n_outputs: int = 1000) -> List[Dict[str, Any]]:
    """Theorem 5 cuts each state block at its gain-MINIMIZING edge.  Cut at
    the gain-MAXIMIZING edge instead and both the partition bandwidth and
    the measured misses should degrade — the ablation isolating the one
    non-obvious choice in the construction."""
    g = random_pipeline(24, 48, seed=seed, rate_choices=((1, 1), (4, 1), (1, 4), (2, 1), (1, 2)))
    M = 128
    geom = CacheGeometry(size=M, block=DEFAULT_B)
    gains = compute_gains(g)
    order, chans = pipeline_chain(g)
    blocks = greedy_state_blocks(g, M)

    def build(cut_at_max: bool) -> Partition:
        cuts = []
        for lo, hi in blocks:
            if g.total_state(order[lo:hi]) <= 2 * M or hi - lo < 2:
                continue
            if cut_at_max:
                best_i, best_g = lo, gains.edge_gain(chans[lo].cid)
                for i in range(lo + 1, hi - 1):
                    gg = gains.edge_gain(chans[i].cid)
                    if gg > best_g:
                        best_i, best_g = i, gg
                cuts.append(best_i)
            else:
                i, _ = gain_min_edge(chans, gains, lo, hi - 1)
                cuts.append(i)
        comps, start = [], 0
        for cut in sorted(set(cuts)):
            comps.append(list(order[start : cut + 1]))
            start = cut + 1
        comps.append(list(order[start:]))
        return Partition(g, comps, gains=gains, label="cut-max" if cut_at_max else "cut-min")

    rows: List[Dict[str, Any]] = []
    for cut_at_max in (False, True):
        part = build(cut_at_max)
        sched = pipeline_dynamic_schedule(g, part, geom, target_outputs=n_outputs)
        res = Executor.measure(
            g, required_geometry(part, geom), sched, layout_order=component_layout_order(part)
        )
        rows.append(
            {
                "cut_rule": "gain-max (ablated)" if cut_at_max else "gain-min (paper)",
                "bandwidth": float(part.bandwidth()),
                "misses": res.misses,
                "misses_per_input": round(res.misses_per_source_fire, 3),
            }
        )
    return rows


def ablation_a2_cross_buffer_size(seed: int = 37, n_outputs: int = 1000) -> List[Dict[str, Any]]:
    """Sweep the cross-edge buffer capacity of the dynamic pipeline
    scheduler from tiny to far beyond Θ(M).  Misses should fall as capacity
    approaches Θ(M) (components amortize their state loads over more
    firings) and then plateau — why Θ(M) buffers are the right size."""
    g = random_pipeline(16, 48, seed=seed, rate_choices=((1, 1),))
    M = 128
    geom = CacheGeometry(size=M, block=DEFAULT_B)
    part = optimal_pipeline_partition(g, M, c=1.0)
    order = component_layout_order(part)
    rows: List[Dict[str, Any]] = []
    for cap in (4, 16, 64, 128, 256, 512, 1024):
        sched = pipeline_dynamic_schedule(
            g, part, geom, target_outputs=n_outputs, cross_capacity=cap
        )
        res = Executor.measure(g, required_geometry(part, geom), sched, layout_order=order)
        rows.append(
            {
                "cross_capacity": cap,
                "cap_over_M": round(cap / M, 2),
                "misses": res.misses,
                "misses_per_input": round(res.misses_per_source_fire, 3),
            }
        )
    return rows


def ablation_a3_lru_vs_opt(seed: int = 41, n_outputs: int = 600) -> List[Dict[str, Any]]:
    """Replay the partitioned schedule's block trace under Belady's OPT:
    the LRU/OPT ratio is the constant the ideal-cache assumption hides
    (Sleator-Tarjan predicts a modest constant at equal size).

    The trace is compiled once (no stepwise simulation, no recorder) and
    both policies replay it vectorized — LRU via the Mattson pass, OPT via
    the priority-stack pass — so the ablation now runs entirely on the
    compiled-trace engine."""
    g = random_pipeline(14, 40, seed=seed, rate_choices=((1, 1), (2, 1), (1, 2)))
    M = 128
    geom = CacheGeometry(size=M, block=DEFAULT_B)
    part = optimal_pipeline_partition(g, M, c=1.0)
    sched = pipeline_dynamic_schedule(g, part, geom, target_outputs=n_outputs)
    aug = required_geometry(part, geom)
    trace = compile_trace(
        g, sched, DEFAULT_B, layout_order=component_layout_order(part)
    )
    res = simulate_trace(trace, [aug])[0]
    opt_res = simulate_trace(trace, [aug], policy="opt")[0]
    return [
        {
            "policy": "LRU",
            "misses": res.misses,
            "accesses": res.accesses,
        },
        {
            "policy": "OPT (Belady)",
            "misses": opt_res.misses,
            "accesses": opt_res.accesses,
        },
        {
            "policy": "LRU/OPT ratio",
            "misses": round(res.misses / opt_res.misses, 3) if opt_res.misses else 0,
            "accesses": "",
        },
    ]


def ablation_a4_degree_limits(M: int = 192) -> List[Dict[str, Any]]:
    """Section 5's degree-limited condition on a high-fan-out app
    (beamformer): report each partitioner's worst component degree against
    the M/B limit alongside its measured cost.  Components whose degree
    exceeds M/B cannot keep one block per cross buffer resident, and the
    measured misses show it."""
    g = beamformer(channels=8, beams=4, taps=24)
    geom = CacheGeometry(size=M, block=16)
    limit = geom.size / geom.block
    rows: List[Dict[str, Any]] = []
    reference = refine_partition(interval_dp_partition(g, M, c=2.0), M, c=2.0)
    # Every candidate runs on the SAME cache, sized for the degree-limited
    # reference partition (one hot block per cross edge): partitions whose
    # degree exceeds the limit cannot keep their cross blocks resident and
    # pay for it in misses.
    aug = required_geometry(reference, geom, slack=1.05, cross_hot_blocks=1)
    candidates = [
        ("greedy", greedy_topological_partition(g, M, c=2.0)),
        ("interval-dp", interval_dp_partition(g, M, c=2.0)),
        ("interval-dp+refine", reference),
    ]
    for name, part in candidates:
        max_deg = max(part.component_degree(i) for i in range(part.k))
        sched = inhomogeneous_partition_schedule(g, part, geom, n_batches=2)
        res = Executor.measure(g, aug, sched, layout_order=component_layout_order(part))
        rows.append(
            {
                "partitioner": name,
                "k": part.k,
                "bandwidth": float(part.bandwidth()),
                "max_degree": max_deg,
                "degree_limit_M_over_B": limit,
                "degree_limited": max_deg <= limit,
                "misses_per_input": round(res.misses_per_source_fire, 3),
            }
        )
    return rows


# ----------------------------------------------------------------------
# E11: parallel dynamic scheduling (Section 7 future work, built out)
# ----------------------------------------------------------------------
def experiment_e11_parallel_scaling(target_outputs: int = 1024) -> List[Dict[str, Any]]:
    """Sweep worker count for the parallel dynamic component scheduler on a
    wide homogeneous dag.  Paper-predicted shape: throughput scales with P
    until the component graph's parallelism is exhausted, while total cache
    misses stay within a small factor of the P=1 schedule (the "load
    balancing vs misses" tension of Section 7)."""
    from repro.core.parallel_sched import parallel_dynamic_simulation
    from repro.graphs.topologies import diamond

    g = diamond(branch_len=5, ways=4, state=24)
    M = 96
    geom = CacheGeometry(size=M, block=DEFAULT_B)
    part = refine_partition(interval_dp_partition(g, M, c=2.0), M, c=2.0)
    rows: List[Dict[str, Any]] = []
    base_misses = None
    for p in (1, 2, 4, 8):
        res = parallel_dynamic_simulation(g, part, geom, n_workers=p, target_outputs=target_outputs)
        if base_misses is None:
            base_misses = res.total_misses
        rows.append(
            {
                "P": p,
                "makespan": res.makespan,
                "speedup": round(res.speedup, 2),
                "load_balance": round(res.load_balance, 2),
                "total_misses": res.total_misses,
                "miss_inflation_vs_P1": round(res.total_misses / base_misses, 2),
            }
        )
    return rows


# ----------------------------------------------------------------------
# A5: multilevel partitioner vs interval DP vs greedy
# ----------------------------------------------------------------------
def ablation_a5_multilevel(seed: int = 43) -> List[Dict[str, Any]]:
    """Compare the three practical partitioners the paper's Section 7
    mentions (exact/ILP being exponential): first-fit greedy, the interval
    DP over one topological order, and the multilevel coarsen/refine scheme
    (Hendrickson-Leland / METIS style, refs [10]/[14]).  Columns: bandwidth
    achieved and wall-clock, across topologies."""
    from repro.core.multilevel import multilevel_partition
    from repro.graphs.topologies import layered_random_dag

    configs = [
        ("pipeline-n128", random_pipeline(128, 24, seed=seed, rate_choices=MIXED_RATES), 64),
        ("layered-6x4", layered_random_dag(6, 4, 16, seed=seed), 64),
        ("beamformer", beamformer(channels=6, beams=3, taps=24), 192),
        ("des-16", des_rounds(rounds=16, sbox_state=48), 192),
    ]
    rows: List[Dict[str, Any]] = []
    for name, g, M in configs:
        results = {}
        timings = {}
        for label, fn in (
            ("greedy", lambda: greedy_topological_partition(g, M, c=2.0)),
            ("interval_dp", lambda: interval_dp_partition(g, M, c=2.0)),
            ("multilevel", lambda: multilevel_partition(g, M, c=2.0)),
        ):
            t0 = time.perf_counter()
            part = fn()
            timings[label] = (time.perf_counter() - t0) * 1e3
            results[label] = part
        rows.append(
            {
                "graph": name,
                "n": g.n_modules,
                "greedy_bw": float(results["greedy"].bandwidth()),
                "dp_bw": float(results["interval_dp"].bandwidth()),
                "ml_bw": float(results["multilevel"].bandwidth()),
                "greedy_ms": round(timings["greedy"], 2),
                "dp_ms": round(timings["interval_dp"], 2),
                "ml_ms": round(timings["multilevel"], 2),
            }
        )
    return rows
