"""Analysis layer: closed-form miss models (Lemma 4 / Lemma 8 algebra),
experiment drivers E1–E10 + ablations, and table formatting."""

from repro.analysis.model import PredictedCost, predict_partition_cost
from repro.analysis.report import format_series, format_table
from repro.analysis.sweeps import (
    experiment_e12_cache_models,
    experiment_e13_seed_distribution,
)
from repro.analysis.competitive import (
    bootstrap_ci,
    competitive_summary,
    paired_win_probability,
)
from repro.analysis.misscurve import (
    experiment_e15_miss_curves,
    miss_curve,
    misses_at,
    stack_distances,
    stack_distances_array,
)
from repro.analysis.latency import (
    LatencyStats,
    experiment_e14_latency_tradeoff,
    pipeline_latency,
)

__all__ = [
    "PredictedCost",
    "predict_partition_cost",
    "format_table",
    "format_series",
    "experiment_e12_cache_models",
    "experiment_e13_seed_distribution",
    "LatencyStats",
    "pipeline_latency",
    "experiment_e14_latency_tradeoff",
    "bootstrap_ci",
    "competitive_summary",
    "paired_win_probability",
    "stack_distances",
    "stack_distances_array",
    "miss_curve",
    "misses_at",
    "experiment_e15_miss_curves",
]
