"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``apps``                 list the bundled application graphs
``describe``             print a graph (bundled app name or JSON file)
``partition``            partition a graph and report components/bandwidth
``schedule``             partition + schedule + simulate, print the cost;
                         ``--policy {lru,direct,opt}`` and ``--ways N`` pick
                         the replacement model and associativity, all
                         answered by the vectorized replay over one
                         compiled trace; ``--index-scheme {mod,xor}`` picks
                         the set hash (xor = skewed indexing);
                         ``--l2-frames N`` (plus optional ``--l2-ways``)
                         stacks a second level behind the execution cache
                         and measures memory transfers out of L2
                         (``policy="two_level"``); ``--layout
                         {topo,color,swap,multiswap,smoothed,minimax}`` runs
                         the conflict-aware placement optimizer
                         (:mod:`repro.mem.placement` /
                         :mod:`repro.mem.facility`) before measuring,
                         ``--gap-budget N`` lets it spend up to N blocks of
                         deliberate padding, ``--restarts``/``--noise``/
                         ``--seed`` tune the smoothed multi-restart search
                         (deterministic per seed), and ``--layout-targets
                         POLICY:WAYS[@WEIGHT],...`` switches it to the
                         multi-geometry objective (never worse than the
                         seed at any target);
                         ``--backend {serial,thread,process}`` +
                         ``--workers N`` pick the execution backend
                         (process pools receive compiled traces via shared
                         memory) and ``--cache-dir PATH`` persists compiled
                         traces content-addressed on disk
``experiment``           run one experiment driver (e1..e15, a1..a12) and
                         print its table; accepts the same
                         ``--backend``/``--workers``/``--cache-dir`` flags;
                         both it and ``schedule`` also take ``--metrics-out
                         PATH`` to switch on the :mod:`repro.obs`
                         instrumentation and write a JSON run manifest
                         (stable run ID, git describe, config digest,
                         per-phase wall/CPU times, metric snapshot) plus a
                         span event log beside it
``obs-report``           render a ``--metrics-out`` manifest as a per-phase
                         breakdown table
``export-dot``           write a Graphviz DOT of a (partitioned) graph
``misscurve``            misses-vs-cache-size curve of partitioned and naive
                         schedules (compiled traces + Mattson stack
                         distances; no stepwise simulation)

Examples
--------
::

    python -m repro apps
    python -m repro describe fm_radio
    python -m repro partition fm_radio --cache 256 --c 2.0
    python -m repro schedule fm_radio --cache 256 --block 8 --inputs 2048
    python -m repro schedule fm_radio --cache 256 --policy opt
    python -m repro schedule fm_radio --cache 256 --ways 4
    python -m repro schedule fm_radio --cache 256 --l2-frames 128
    python -m repro schedule des_rounds --cache 256 --ways 1 --policy direct --layout swap
    python -m repro schedule des_rounds --cache 256 --ways 1 --policy direct --index-scheme xor
    python -m repro schedule des_rounds --cache 256 --ways 1 --policy direct \
        --layout swap --layout-targets direct:1@2,lru:2,lru:4 --gap-budget 8
    python -m repro schedule des_rounds --cache 256 --ways 1 --policy direct \
        --layout smoothed --restarts 4 --noise 0.25 --seed 0
    python -m repro schedule des_rounds --cache 256 --ways 1 --policy direct \
        --layout minimax --layout-targets direct:1,lru:2,lru:4
    python -m repro experiment e7
    python -m repro experiment a9
    python -m repro schedule fm_radio --cache 256 --metrics-out run.json
    python -m repro obs-report run.json
    python -m repro export-dot fm_radio --cache 256 -o fm.dot
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.cache.base import CacheGeometry
from repro.graphs.apps import ALL_APPS
from repro.graphs.io import load_graph, save_graph, to_dot
from repro.graphs.sdf import StreamGraph

__all__ = ["main", "build_parser"]


def _resolve_graph(spec: str) -> StreamGraph:
    """A graph spec is either a bundled app name or a JSON file path."""
    if spec in ALL_APPS:
        return ALL_APPS[spec]()
    if spec.endswith(".json"):
        return load_graph(spec)
    raise SystemExit(
        f"unknown graph {spec!r}: expected one of {sorted(ALL_APPS)} or a .json path"
    )


#: Policies a ``--layout-targets`` entry may name (single-level replay).
_TARGET_POLICIES = ("lru", "direct", "opt")


def _parse_layout_targets(spec: str):
    """Parse ``POLICY:WAYS[@WEIGHT],...`` into (policy, ways, weight) triples.

    ``WAYS`` is the associativity the execution geometry is reorganized to
    (0 = fully associative); ``WEIGHT`` defaults to 1.  Raises
    :class:`argparse.ArgumentTypeError` — so argparse reports a usage error
    instead of a traceback — on unknown policies, malformed counts, or
    non-positive weights.
    """
    triples = []
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        body, at_sep, weight_s = chunk.partition("@")
        if at_sep and not weight_s.strip():
            raise argparse.ArgumentTypeError(
                f"target {chunk!r}: '@' must be followed by a weight "
                "(omit it for the default weight 1)"
            )
        policy, sep, ways_s = body.partition(":")
        policy = policy.strip()
        if policy not in _TARGET_POLICIES:
            raise argparse.ArgumentTypeError(
                f"unknown target policy {policy!r} in {chunk!r} "
                f"(choose from {', '.join(_TARGET_POLICIES)})"
            )
        if not sep:
            raise argparse.ArgumentTypeError(
                f"target {chunk!r} needs POLICY:WAYS (0 = fully associative)"
            )
        try:
            ways = int(ways_s)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"target {chunk!r}: ways must be an integer, got {ways_s!r}"
            ) from None
        if ways < 0:
            raise argparse.ArgumentTypeError(
                f"target {chunk!r}: ways must be >= 0, got {ways}"
            )
        weight = 1.0
        if weight_s:
            try:
                weight = float(weight_s)
            except ValueError:
                raise argparse.ArgumentTypeError(
                    f"target {chunk!r}: weight must be a number, got {weight_s!r}"
                ) from None
            if not weight > 0 or weight != weight or weight == float("inf"):
                raise argparse.ArgumentTypeError(
                    f"target {chunk!r}: weight must be positive and finite, "
                    f"got {weight_s}"
                )
        triples.append((policy, ways, weight))
    if not triples:
        raise argparse.ArgumentTypeError(
            "layout targets must name at least one POLICY:WAYS[@WEIGHT] entry"
        )
    return triples


def _apply_runtime_flags(args: argparse.Namespace) -> None:
    """Install ``--backend``/``--workers``/``--cache-dir`` as the process-wide
    runtime defaults (:func:`repro.runtime.backend.configure`,
    :func:`repro.runtime.trace_cache.configure`) so every simulation and
    compilation this command performs — including inside experiment drivers
    that take no backend parameters — inherits them."""
    backend = getattr(args, "backend", None)
    workers = getattr(args, "workers", None)
    chunk_words = getattr(args, "chunk_words", None)
    if backend is not None or workers is not None or chunk_words is not None:
        from repro.runtime.backend import configure as configure_backend

        configure_backend(backend=backend, workers=workers, chunk_words=chunk_words)
    if getattr(args, "cache_dir", None):
        from repro.runtime.trace_cache import configure as configure_cache

        configure_cache(args.cache_dir)


def _partition_for(graph: StreamGraph, cache: int, c: float):
    from repro.core.dagpart import interval_dp_partition, refine_partition
    from repro.core.pipeline import optimal_pipeline_partition

    if graph.is_pipeline():
        return optimal_pipeline_partition(graph, cache, c=c)
    return refine_partition(interval_dp_partition(graph, cache, c=c), cache, c=c)


def cmd_apps(_args: argparse.Namespace) -> int:
    for name, ctor in sorted(ALL_APPS.items()):
        g = ctor()
        print(f"{name:14s} {g.n_modules:3d} modules  {g.n_channels:3d} channels  "
              f"{g.total_state():5d} words state")
    return 0


def cmd_describe(args: argparse.Namespace) -> int:
    g = _resolve_graph(args.graph)
    print(g.describe())
    from repro.graphs.repetition import repetition_vector

    reps = repetition_vector(g)
    interesting = {n: r for n, r in reps.items() if r != 1}
    if interesting:
        print(f"\nnon-unit repetition counts: {interesting}")
    return 0


def cmd_partition(args: argparse.Namespace) -> int:
    g = _resolve_graph(args.graph)
    part = _partition_for(g, args.cache, args.c)
    print(part.describe())
    print(f"\nwell-ordered: {part.is_well_ordered()}")
    print(f"degree-limited at B={args.block}: "
          f"{part.is_degree_limited(args.cache, args.block)}")
    return 0


def cmd_schedule(args: argparse.Namespace) -> int:
    from repro.core.partition_sched import (
        component_layout_order,
        inhomogeneous_partition_schedule,
        pipeline_dynamic_schedule,
    )
    from repro.core.tuning import choose_batch, required_geometry
    from repro.runtime.compiled import measure_compiled

    _apply_runtime_flags(args)
    g = _resolve_graph(args.graph)
    geom = CacheGeometry(size=args.cache, block=args.block)
    part = _partition_for(g, args.cache, args.c)
    if g.is_pipeline():
        sched = pipeline_dynamic_schedule(g, part, geom, target_outputs=args.inputs)
    else:
        plan = choose_batch(g, args.cache, cross_cids=[c.cid for c in part.cross_channels()])
        n_batches = max(1, -(-args.inputs // max(plan.source_fires, 1)))
        sched = inhomogeneous_partition_schedule(g, part, geom, n_batches=n_batches, plan=plan)
    from repro.errors import CacheConfigError, LayoutError

    placement_note = ""
    policy = args.policy
    if args.l2_ways and not args.l2_frames:
        raise SystemExit(
            "--l2-ways organizes the second level; it needs --l2-frames"
        )
    if args.layout_targets and args.layout == "topo":
        raise SystemExit(
            "--layout-targets drives the placement optimizer; combine it "
            "with --layout swap (or color), not the seed topo layout"
        )
    try:
        run_geom = required_geometry(part, geom).with_ways(args.ways)
        run_geom = run_geom.with_index_scheme(args.index_scheme)
        order = component_layout_order(part)
        measure_geom = run_geom
        if args.l2_frames:
            # stack an L2 behind the execution cache: L1 is the (possibly
            # ways-narrowed) run geometry, L2 the requested frame count,
            # snapped up to a valid set indexing like --ways is
            from repro.cache.hierarchy import TwoLevelGeometry

            if policy != "lru":
                raise SystemExit(
                    "--l2-frames builds a two-level LRU hierarchy; combine "
                    "it with --ways/--l2-ways, not --policy "
                    f"{policy!r}"
                )
            if args.layout != "topo":
                raise SystemExit(
                    "--layout optimizes single-level placements; drop "
                    "--l2-frames or use --layout topo"
                )
            l2_geom = CacheGeometry(
                size=args.l2_frames * args.block, block=args.block
            ).with_ways(args.l2_ways)
            measure_geom = TwoLevelGeometry(run_geom, l2_geom)
            policy = "two_level"
        if args.layout != "topo":
            from repro.mem.placement import build_instance, optimize_instance, remap_trace
            from repro.runtime.compiled import simulate_trace

            instance = build_instance(g, sched, run_geom.block, order=order)
            targets = None
            if args.layout_targets:
                # ways=0 means fully associative even when --ways narrowed
                # the execution geometry (with_ways(0) would keep it narrow)
                fully = run_geom if run_geom.is_fully_associative else CacheGeometry(
                    size=run_geom.size, block=run_geom.block,
                    index_scheme=run_geom.index_scheme,
                )
                targets = [
                    (run_geom.with_ways(w) if w else fully, pol, weight)
                    for pol, w, weight in args.layout_targets
                ]
            # a process backend scores candidates in parallel: batch the
            # steepest-descent wide enough to keep every worker busy
            batch = 1
            if args.backend == "process":
                import os as _os

                batch = max(2, args.workers or _os.cpu_count() or 1)
            pres = optimize_instance(
                instance, run_geom, strategy=args.layout, policy=args.policy,
                targets=targets, gap_budget=args.gap_budget,
                budget=args.layout_budget, batch=batch,
                backend=args.backend, workers=args.workers,
                restarts=args.restarts, noise=args.noise, seed=args.seed,
            )
            if targets:
                per = ", ".join(
                    f"{pol}:{tg.size}w {s}->{c}"
                    for (tg, pol, _w), s, c in zip(
                        pres.targets, pres.seed_per_target, pres.per_target
                    )
                )
                placement_note = (
                    f"layout    : {args.layout} placement over "
                    f"{len(pres.targets)} targets ({per}; never worse than "
                    f"the seed at any target"
                    + (f"; {pres.gap_blocks} gap blocks)" if pres.gap_blocks else ")")
                )
            else:
                placement_note = (
                    f"layout    : {args.layout} placement, {args.policy} misses "
                    f"{pres.seed_cost} -> {pres.cost} "
                    f"({pres.improvement:.1%} fewer than the seed layout)"
                )
            # the remapped trace is bit-identical to recompiling under
            # (pres.order, pres.gaps) — no second compilation needed
            res = simulate_trace(
                remap_trace(instance, pres.order, gaps=pres.gaps),
                [run_geom], policy=policy,
            )[0]
        else:
            res = measure_compiled(
                g, measure_geom, sched, layout_order=order, policy=policy
            )
    except CacheConfigError as exc:
        # bad --ways/--l2-ways value, or a --policy/--ways combination the
        # replay rejects (e.g. direct-mapped with ways > 1)
        raise SystemExit(f"invalid cache organization: {exc}")
    except LayoutError as exc:
        # bad placement request (e.g. a negative --gap-budget)
        raise SystemExit(f"invalid placement request: {exc}")
    org = "fully associative" if run_geom.is_fully_associative else (
        f"{run_geom.ways}-way, {run_geom.sets} sets"
    )
    if run_geom.index_scheme != "mod":
        org += f", {run_geom.index_scheme}-indexed"
    print(f"partition : {part.k} components, bandwidth {float(part.bandwidth()):.3f}")
    print(f"cache     : {run_geom.size} words "
          f"({run_geom.size / geom.size:.2f}x of M={geom.size}), B={geom.block}, "
          f"{org}, policy={policy}")
    if args.l2_frames:
        l2g = measure_geom.l2
        l2_org = "fully associative" if l2g.is_fully_associative else (
            f"{l2g.ways}-way, {l2g.sets} sets"
        )
        print(f"L2        : {l2g.size} words ({l2g.n_blocks} frames), {l2_org}; "
              f"misses below are memory transfers out of L2")
    print(f"schedule  : {len(sched)} firings ({sched.label})")
    if placement_note:
        print(placement_note)
    print(f"result    : {res.summary()}")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    from repro.analysis import experiments as E
    from repro.analysis import latency as L
    from repro.analysis import misscurve as MC
    from repro.analysis import sweeps as S
    from repro.analysis.report import rows_to_table

    _apply_runtime_flags(args)
    key = args.id.lower()
    prefix = {
        **{f"e{i}": f"experiment_e{i}_" for i in range(1, 16)},
        **{f"a{i}": f"ablation_a{i}_" for i in range(1, 13)},
    }.get(key)
    if prefix is None:
        raise SystemExit(f"unknown experiment {args.id!r} (use e1..e15 or a1..a12)")
    for module in (E, S, L, MC):
        fn_name = next(
            (n for n in dir(module) if n.startswith(prefix) and callable(getattr(module, n))),
            None,
        )
        if fn_name:
            rows = getattr(module, fn_name)()
            print(rows_to_table(rows, title=fn_name))
            return 0
    raise SystemExit(f"driver for {args.id!r} not found")


def cmd_misscurve(args: argparse.Namespace) -> int:
    from repro.analysis.misscurve import miss_curve
    from repro.analysis.report import rows_to_table
    from repro.core.baselines import single_appearance_schedule
    from repro.core.partition_sched import (
        component_layout_order,
        inhomogeneous_partition_schedule,
        pipeline_dynamic_schedule,
    )
    from repro.core.tuning import choose_batch
    from repro.graphs.repetition import repetition_vector
    from repro.runtime.compiled import compile_trace

    g = _resolve_graph(args.graph)
    geom = CacheGeometry(size=args.cache, block=args.block)
    part = _partition_for(g, args.cache, args.c)

    def record(schedule, order=None):
        # traces are cache-size independent: compile, don't simulate
        return compile_trace(g, schedule, args.block, layout_order=order).blocks

    if g.is_pipeline():
        part_sched = pipeline_dynamic_schedule(g, part, geom, target_outputs=args.inputs)
    else:
        plan = choose_batch(g, args.cache, cross_cids=[c.cid for c in part.cross_channels()])
        n_batches = max(1, -(-args.inputs // max(plan.source_fires, 1)))
        part_sched = inhomogeneous_partition_schedule(g, part, geom, n_batches=n_batches, plan=plan)
    part_trace = record(part_sched, order=component_layout_order(part))
    reps = repetition_vector(g)
    iters = max(1, args.inputs // reps[g.sources()[0]])
    naive_trace = record(single_appearance_schedule(g, n_iterations=iters))

    pc, nc = miss_curve(part_trace), miss_curve(naive_trace)
    rows = []
    blocks = args.cache // args.block
    for mult in (0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0):
        c = int(blocks * mult)
        rows.append(
            {
                "cache_words": c * args.block,
                "x_M": mult,
                "partitioned": int(pc[min(c, len(pc) - 1)]),
                "naive": int(nc[min(c, len(nc) - 1)]),
            }
        )
    print(rows_to_table(rows, title=f"miss curves for {g.name} (M={args.cache}, B={args.block})"))
    return 0


def cmd_export_dot(args: argparse.Namespace) -> int:
    g = _resolve_graph(args.graph)
    part = _partition_for(g, args.cache, args.c) if args.cache else None
    dot = to_dot(g, part)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(dot + "\n")
        print(f"wrote {args.output}")
    else:
        print(dot)
    return 0


def _add_runtime_flags(sub: argparse.ArgumentParser) -> None:
    """Execution-backend flags shared by the simulating subcommands."""
    from repro.runtime.backend import BACKENDS

    sub.add_argument("--backend", default=None, choices=BACKENDS,
                     help="execution backend for replay and placement "
                          "search: serial (no pool), thread (numpy releases "
                          "the GIL in the kernels), or process (fan out over "
                          "a process pool; compiled traces travel via "
                          "shared memory)")
    sub.add_argument("--workers", type=int, default=None,
                     help="pool width, clamped to min(workers, items, "
                          "cores); default: every core for --backend "
                          "process, serial otherwise")
    sub.add_argument("--chunk-words", type=int, default=None, metavar="N",
                     help="replay traces through the out-of-core streaming "
                          "engine in chunks of N accesses (bit-identical "
                          "miss counts, bounded memory); default: the "
                          "monolithic in-memory path")
    sub.add_argument("--cache-dir", default=None, metavar="PATH",
                     help="persistent compiled-trace cache directory: "
                          "identical (graph, schedule, layout, block) "
                          "inputs load off disk instead of recompiling")
    sub.add_argument("--metrics-out", default=None, metavar="PATH",
                     help="enable instrumentation (repro.obs) for this run "
                          "and write a JSON run manifest (stable run ID, "
                          "git describe, config digest, per-phase wall/CPU, "
                          "metric snapshot) to PATH plus a JSON-lines span "
                          "event log beside it; render with "
                          "'python -m repro obs-report PATH'")


def cmd_obs_report(args) -> int:
    """Render a run manifest written by ``--metrics-out`` as a table."""
    import json
    from pathlib import Path

    from repro.obs.report import render_manifest

    path = Path(args.manifest)
    try:
        manifest = json.loads(path.read_text())
    except OSError as exc:
        raise SystemExit(f"cannot read manifest {str(path)!r}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise SystemExit(f"manifest {str(path)!r} is not valid JSON: {exc}") from None
    if not isinstance(manifest, dict):
        raise SystemExit(f"manifest {str(path)!r} is not a JSON object")
    print(render_manifest(manifest))
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Cache-conscious scheduling of streaming applications (SPAA'12)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("apps", help="list bundled application graphs").set_defaults(fn=cmd_apps)

    d = sub.add_parser("describe", help="print a graph")
    d.add_argument("graph")
    d.set_defaults(fn=cmd_describe)

    q = sub.add_parser("partition", help="partition a graph")
    q.add_argument("graph")
    q.add_argument("--cache", type=int, default=256, help="cache size M in words")
    q.add_argument("--block", type=int, default=8, help="block size B in words")
    q.add_argument("--c", type=float, default=2.0, help="state bound factor c")
    q.set_defaults(fn=cmd_partition)

    s = sub.add_parser("schedule", help="partition + schedule + simulate")
    s.add_argument("graph")
    s.add_argument("--cache", type=int, default=256)
    s.add_argument("--block", type=int, default=8)
    s.add_argument("--c", type=float, default=2.0)
    s.add_argument("--inputs", type=int, default=1024, help="target inputs/outputs")
    s.add_argument("--policy", default="lru", choices=("lru", "direct", "opt"),
                   help="replacement policy replayed over the compiled trace")
    s.add_argument("--ways", type=int, default=0,
                   help="associativity (0 = fully associative; the cache is "
                        "snapped up to the nearest valid set count)")
    s.add_argument("--index-scheme", default="mod", choices=("mod", "xor"),
                   help="set-index hash of the execution cache: mod (low "
                        "address bits, default) or xor (folded tag bits — "
                        "skewed indexing; needs a power-of-two set count)")
    s.add_argument("--l2-frames", type=int, default=0,
                   help="stack an L2 of this many block frames behind the "
                        "execution cache and count memory transfers out of "
                        "it (two-level replay; 0 = single level)")
    s.add_argument("--l2-ways", type=int, default=0,
                   help="L2 associativity (0 = fully associative; needs "
                        "--l2-frames)")
    s.add_argument("--layout", default="topo",
                   choices=("topo", "color", "swap", "multiswap", "smoothed",
                            "minimax"),
                   help="memory placement: seed topological order, greedy "
                        "set-coloring, swap-refined local search, k-object "
                        "multiswap with per-set capacity constraints, "
                        "smoothed multi-restart multiswap (see --restarts/"
                        "--noise/--seed), or minimax worst-case-target "
                        "search (conflict-aware, optimized for --policy at "
                        "the execution geometry)")
    s.add_argument("--layout-targets", type=_parse_layout_targets, default=None,
                   metavar="POLICY:WAYS[@WEIGHT],...",
                   help="multi-geometry placement objective: optimize the "
                        "weighted miss sum over these reorganizations of "
                        "the execution cache (ways 0 = fully associative; "
                        "weight defaults to 1) and never return a layout "
                        "worse than the seed at any of them")
    s.add_argument("--gap-budget", type=int, default=0,
                   help="blocks of deliberate padding the placement "
                        "optimizer may insert between objects (0 = pure "
                        "permutation search)")
    s.add_argument("--layout-budget", type=int, default=400,
                   help="cost evaluations the placement local search may "
                        "spend (each one scores a full candidate layout "
                        "through the remap cost model)")
    s.add_argument("--restarts", type=int, default=None,
                   help="restarts of the smoothed placement search "
                        "(--layout smoothed; each gets an equal slice of "
                        "--layout-budget; default 4)")
    s.add_argument("--noise", type=float, default=None,
                   help="relative conflict-weight perturbation per smoothed "
                        "restart (--layout smoothed; 0 disables the "
                        "perturbation; default 0.25)")
    s.add_argument("--seed", type=int, default=None,
                   help="RNG seed of the smoothed restart perturbations; "
                        "the same seed always reproduces the same layout "
                        "(default 0)")
    _add_runtime_flags(s)
    s.set_defaults(fn=cmd_schedule)

    e = sub.add_parser("experiment", help="run an experiment driver")
    e.add_argument("id", help="e1..e15 or a1..a12")
    _add_runtime_flags(e)
    e.set_defaults(fn=cmd_experiment)

    mc = sub.add_parser("misscurve", help="misses-vs-cache-size curves")
    mc.add_argument("graph")
    mc.add_argument("--cache", type=int, default=256)
    mc.add_argument("--block", type=int, default=8)
    mc.add_argument("--c", type=float, default=2.0)
    mc.add_argument("--inputs", type=int, default=512)
    mc.set_defaults(fn=cmd_misscurve)

    r = sub.add_parser("obs-report", help="render a --metrics-out run manifest")
    r.add_argument("manifest", help="manifest JSON written by --metrics-out")
    r.set_defaults(fn=cmd_obs_report)

    x = sub.add_parser("export-dot", help="Graphviz DOT export")
    x.add_argument("graph")
    x.add_argument("--cache", type=int, default=0, help="partition for this M (0 = none)")
    x.add_argument("--block", type=int, default=8)
    x.add_argument("--c", type=float, default=2.0)
    x.add_argument("-o", "--output", default="")
    x.set_defaults(fn=cmd_export_dot)
    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    metrics_out = getattr(args, "metrics_out", None)
    if not metrics_out:
        return args.fn(args)
    # --metrics-out turns instrumentation on for exactly this run and
    # writes the manifest (plus a .events.jsonl span log) beside it, even
    # when the command fails — the manifest then records ok=false.
    from pathlib import Path

    from repro.obs.manifest import capture_run

    config = {
        k: v for k, v in vars(args).items() if k != "fn" and not callable(v)
    }
    with capture_run(command=args.command, config=config, out=Path(metrics_out)):
        rc = args.fn(args)
    return rc


if __name__ == "__main__":
    sys.exit(main())
