"""Two-level inclusive cache hierarchy (extension).

The paper analyzes a single cache level; multi-level memory models (Savage's
HMM extension is cited as [24]) behave the same asymptotically when each
level is analyzed independently.  This simulator stacks two LRU levels so
the robustness experiments can confirm that a partition sized for L1 also
reduces L2 traffic, and one sized for L2 still wins at L1 granularity.

Cost accounting: ``stats`` of the hierarchy counts *L2 misses* (transfers
from memory), matching the DAM cost of the larger cache; the embedded level
objects expose their own stats for per-level inspection.
"""

from __future__ import annotations

from repro.cache.base import CacheGeometry, CacheModel
from repro.cache.lru import LRUCache
from repro.errors import CacheConfigError

__all__ = ["TwoLevelCache"]


class TwoLevelCache(CacheModel):
    """L1 (small) in front of L2 (large), both fully associative LRU.

    An access hits L1, else touches L2 (and is installed in both).  The
    top-level ``stats`` mirror L2: ``misses`` are memory transfers.
    """

    def __init__(self, l1: CacheGeometry, l2: CacheGeometry) -> None:
        if l2.size < l1.size:
            raise CacheConfigError(
                f"L2 ({l2.size}) must be at least as large as L1 ({l1.size})"
            )
        if l2.block % l1.block != 0:
            # both entry points map each L1 block to a single containing L2
            # block, which only exists when L1 blocks tile L2 blocks exactly
            raise CacheConfigError(
                f"L1 block ({l1.block}) must divide L2 block ({l2.block})"
            )
        super().__init__(l2)
        self.l1 = LRUCache(l1)
        self.l2 = LRUCache(l2)

    def access_block(self, block: int) -> bool:
        # `block` is in units of the *hierarchy* geometry, i.e. L2 blocks.
        # When L1 blocks are smaller, one L2 block covers several L1 blocks
        # and touching it must touch all of them — the same accounting
        # access_range produces for the equivalent word range.
        start = block * self.geometry.block
        missed = False
        for l1_blk in self.l1.geometry.blocks_spanned(start, self.geometry.block):
            if self.l1.access_block(l1_blk):
                miss = self.l2.access_block(block)
                self.stats.record(miss)
                missed = missed or miss
            else:
                self.stats.record(False)
        return missed

    def access(self, address: int) -> bool:
        # A single word fills one L1 line (plus its containing L2 block),
        # not every L1 line of the L2 block — the range path is the
        # faithful one, so both word entry points go through it.
        return self.access_range(address, 1) > 0

    def access_range(self, start: int, length: int) -> int:
        """Touch a word range at L1 granularity, filtering through to L2."""
        if length <= 0:
            return 0
        misses = 0
        for l1_blk in self.l1.geometry.blocks_spanned(start, length):
            if self.l1.access_block(l1_blk):
                l2_blk = l1_blk * self.l1.geometry.block // self.l2.geometry.block
                miss = self.l2.access_block(l2_blk)
                self.stats.record(miss)
                if miss:
                    misses += 1
            else:
                self.stats.record(False)
        return misses

    def flush(self) -> None:
        self.l1.flush()
        self.l2.flush()

    def resident_blocks(self) -> int:
        return self.l2.resident_blocks()
