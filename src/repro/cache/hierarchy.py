"""Two-level inclusive cache hierarchy (extension).

The paper analyzes a single cache level; multi-level memory models (Savage's
HMM extension is cited as [24]) behave the same asymptotically when each
level is analyzed independently.  This simulator stacks two LRU levels so
the robustness experiments can confirm that a partition sized for L1 also
reduces L2 traffic, and one sized for L2 still wins at L1 granularity.

Cost accounting: ``stats`` of the hierarchy counts *L2 misses* (transfers
from memory), matching the DAM cost of the larger cache; the embedded level
objects expose their own stats for per-level inspection.
"""

from __future__ import annotations

from repro.cache.base import CacheGeometry, CacheModel
from repro.cache.lru import LRUCache
from repro.errors import CacheConfigError

__all__ = ["TwoLevelCache"]


class TwoLevelCache(CacheModel):
    """L1 (small) in front of L2 (large), both fully associative LRU.

    An access hits L1, else touches L2 (and is installed in both).  The
    top-level ``stats`` mirror L2: ``misses`` are memory transfers.
    """

    def __init__(self, l1: CacheGeometry, l2: CacheGeometry) -> None:
        if l2.size < l1.size:
            raise CacheConfigError(
                f"L2 ({l2.size}) must be at least as large as L1 ({l1.size})"
            )
        super().__init__(l2)
        self.l1 = LRUCache(l1)
        self.l2 = LRUCache(l2)

    def access_block(self, block: int) -> bool:
        # L1 and L2 use their own block sizes; translate through addresses.
        # `block` is in units of the *hierarchy* geometry, i.e. L2 blocks.
        miss_l1 = self.l1.access_block(block * self.geometry.block // self.l1.geometry.block)
        if not miss_l1:
            self.stats.record(False)
            return False
        miss_l2 = self.l2.access_block(block)
        self.stats.record(miss_l2)
        return miss_l2

    def access_range(self, start: int, length: int) -> int:
        """Touch a word range at L1 granularity, filtering through to L2."""
        if length <= 0:
            return 0
        misses = 0
        for l1_blk in self.l1.geometry.blocks_spanned(start, length):
            if self.l1.access_block(l1_blk):
                l2_blk = l1_blk * self.l1.geometry.block // self.l2.geometry.block
                miss = self.l2.access_block(l2_blk)
                self.stats.record(miss)
                if miss:
                    misses += 1
            else:
                self.stats.record(False)
        return misses

    def flush(self) -> None:
        self.l1.flush()
        self.l2.flush()

    def resident_blocks(self) -> int:
        return self.l2.resident_blocks()
