"""Two-level inclusive cache hierarchy (extension).

The paper analyzes a single cache level; multi-level memory models (Savage's
HMM extension is cited as [24]) behave the same asymptotically when each
level is analyzed independently.  This simulator stacks two LRU levels so
the robustness experiments can confirm that a partition sized for L1 also
reduces L2 traffic, and one sized for L2 still wins at L1 granularity.

Cost accounting: ``stats`` of the hierarchy counts *L2 misses* (transfers
from memory), matching the DAM cost of the larger cache; the embedded level
objects expose their own stats for per-level inspection.

Two engines, one policy name (see ``docs/REPLAY.md``):

* :class:`TwoLevelCache` is the *stepwise* engine, registered in
  :mod:`repro.cache.policy` under ``policy="two_level"``.  It stays the
  differential-test oracle.
* The *vectorized* engine lives in :mod:`repro.runtime.replay`: an L1 pass
  (stack distances for LRU, a per-frame scan when L1 is direct-mapped)
  emits the miss sub-trace that feeds a second L2 pass — because L2 only
  ever sees L1 misses, one L1 pass amortizes over every L2 capacity.

A hierarchical sweep point is a :class:`TwoLevelGeometry` — a pair of
per-level :class:`~repro.cache.base.CacheGeometry` (each with its own
``ways``/sets organization) sharing one block size, which is what lets a
single compiled block trace drive both levels.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.base import CacheGeometry, CacheModel
from repro.cache.lru import LRUCache
from repro.cache.policy import ReplacementPolicy, register_policy
from repro.errors import CacheConfigError

__all__ = ["TwoLevelCache", "TwoLevelGeometry"]


@dataclass(frozen=True)
class TwoLevelGeometry:
    """An (L1, L2) geometry pair — the sweep point of ``policy="two_level"``.

    Both levels carry full :class:`~repro.cache.base.CacheGeometry`
    organizations (``ways``/sets per level).  The levels must share one
    block size: the replay path drives both levels from a single compiled
    block trace, whose granularity is that block.  L2 must hold at least as
    many frames as L1 (the usual inclusive-capacity requirement, the same
    one :class:`TwoLevelCache` enforces).
    """

    l1: CacheGeometry
    l2: CacheGeometry

    def __post_init__(self) -> None:
        if not isinstance(self.l1, CacheGeometry) or not isinstance(
            self.l2, CacheGeometry
        ):
            raise CacheConfigError(
                f"TwoLevelGeometry needs CacheGeometry levels, got "
                f"l1={self.l1!r}, l2={self.l2!r}"
            )
        if self.l1.block != self.l2.block:
            raise CacheConfigError(
                f"two-level replay needs one block size at both levels "
                f"(one trace drives both); got L1 block {self.l1.block}, "
                f"L2 block {self.l2.block}"
            )
        if self.l2.size < self.l1.size:
            raise CacheConfigError(
                f"L2 ({self.l2.size}) must be at least as large as L1 "
                f"({self.l1.size})"
            )

    @property
    def block(self) -> int:
        """Shared block size (what ``simulate_trace`` validates against)."""
        return self.l1.block

    def describe(self) -> str:
        def org(g: CacheGeometry) -> str:
            if g.is_fully_associative:
                return f"{g.size}w"
            return f"{g.size}w/{g.ways}-way"

        return f"L1={org(self.l1)}, L2={org(self.l2)}"


class TwoLevelCache(CacheModel):
    """L1 (small) in front of L2 (large), both LRU (set-associative when the
    level's geometry carries an explicit ``ways``; ``ways=1`` makes a level
    direct-mapped).

    An access hits L1, else touches L2 (and is installed in both).  The
    top-level ``stats`` mirror L2: ``misses`` are memory transfers, and one
    L2-block consult records one access — when L1 blocks are smaller than
    L2 blocks, the several L1 lines an L2 block fills within one call are
    one transfer, not several (see ``access_range``).
    """

    def __init__(self, l1: CacheGeometry, l2: CacheGeometry) -> None:
        if l2.size < l1.size:
            raise CacheConfigError(
                f"L2 ({l2.size}) must be at least as large as L1 ({l1.size})"
            )
        if l2.block % l1.block != 0:
            # both entry points map each L1 block to a single containing L2
            # block, which only exists when L1 blocks tile L2 blocks exactly
            raise CacheConfigError(
                f"L1 block ({l1.block}) must divide L2 block ({l2.block})"
            )
        super().__init__(l2)
        self.l1 = LRUCache(l1)
        self.l2 = LRUCache(l2)

    def access_block(self, block: int) -> bool:
        # `block` is in units of the *hierarchy* geometry, i.e. L2 blocks.
        # When L1 blocks are smaller, one L2 block covers several L1 blocks
        # and touching it must touch all of them — the same accounting
        # access_range produces for the equivalent word range.
        return self.access_range(block * self.geometry.block, self.geometry.block) > 0

    def access(self, address: int) -> bool:
        # A single word fills one L1 line (plus its containing L2 block),
        # not every L1 line of the L2 block — the range path is the
        # faithful one, so both word entry points go through it.
        return self.access_range(address, 1) > 0

    def access_range(self, start: int, length: int) -> int:
        """Touch a word range at L1 granularity, filtering through to L2.

        One L2-block consult per call is recorded even when it fills
        several L1 lines: the L1 blocks of a range ascend, so all lines of
        one L2 block are consecutive, and after the first L1 miss fetches
        (or confirms) the L2 block, the remaining lines of that block fill
        from it — same transfer, no extra L2 access, no extra top-level
        record.  Recording each fill separately double-counted the access
        as both an L1 miss and a fresh L2 hit.
        """
        if length <= 0:
            return 0
        misses = 0
        consulted = -1  # L2 block fetched/confirmed earlier in this call
        l1_words = self.l1.geometry.block
        l2_words = self.l2.geometry.block
        for l1_blk in self.l1.geometry.blocks_spanned(start, length):
            if self.l1.access_block(l1_blk):
                l2_blk = l1_blk * l1_words // l2_words
                if l2_blk == consulted:
                    continue  # filled from the block this call just touched
                miss = self.l2.access_block(l2_blk)
                self.stats.record(miss)
                consulted = l2_blk
                if miss:
                    misses += 1
            else:
                self.stats.record(False)
        return misses

    def flush(self) -> None:
        self.l1.flush()
        self.l2.flush()

    def resident_blocks(self) -> int:
        return self.l2.resident_blocks()


def _make_two_level(geometry: object) -> TwoLevelCache:
    """Stepwise-engine factory for ``policy="two_level"``.

    The registry hands the caller's geometry straight through, so this is
    where a plain single-level :class:`CacheGeometry` is rejected with a
    pointer at the right spec type.
    """
    if not isinstance(geometry, TwoLevelGeometry):
        raise CacheConfigError(
            f"policy 'two_level' needs a TwoLevelGeometry (an (L1, L2) pair "
            f"of CacheGeometry), got {geometry!r}"
        )
    return TwoLevelCache(geometry.l1, geometry.l2)


register_policy(
    ReplacementPolicy(
        name="two_level",
        description=(
            "inclusive two-level LRU hierarchy; misses are L2 misses "
            "(memory transfers); takes a TwoLevelGeometry per sweep point"
        ),
        make_model=_make_two_level,
    )
)
