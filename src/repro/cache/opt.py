"""Belady's offline-optimal replacement (OPT / MIN) on a recorded trace.

Used by ablation A3 to measure the constant between LRU and the omniscient
policy the paper's lower bounds implicitly allow.  OPT needs the future, so
it runs over a complete block trace (recorded by
:class:`repro.mem.trace.TraceRecorder` or compiled by
:class:`repro.runtime.compiled.TraceCompiler`) rather than online.

The implementation is the standard two-pass algorithm: precompute, for each
trace position, the next position at which the same block is used
(``next_use``), then simulate with a max-heap of (next_use, block) entries,
evicting the block whose next use is farthest.  Lazy deletion keeps the heap
O(log n) per access; stale heap entries are skipped when popped.

This stepwise loop is the *oracle* path (registered as policy ``"opt"`` in
:mod:`repro.cache.policy`); whole geometry sweeps run through the vectorized
OPT stack-distance replay in :mod:`repro.runtime.replay`, which answers
every capacity in one pass.  :func:`next_occurrences` is the vectorized
next-use precomputation both the replay kernel and anything else needing
forward reuse distances share — the argsort trick of
:func:`repro.analysis.misscurve._previous_occurrences`, reversed.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Sequence

import numpy as np

from repro.cache.base import CacheGeometry
from repro.cache.policy import ReplacementPolicy, register_policy
from repro.cache.stats import CacheStats

__all__ = ["OPTCache", "simulate_opt", "simulate_opt_misses", "next_occurrences"]

_INF = float("inf")


def next_occurrences(blocks: np.ndarray) -> np.ndarray:
    """``nxt[i]`` = first position after ``i`` touching ``blocks[i]``, else ``n``.

    Vectorized via one stable argsort (positions of equal blocks come out
    adjacent and time-ordered) — the mirror image of the previous-occurrence
    pass the stack-distance kernel uses.
    """
    blocks = np.ascontiguousarray(blocks, dtype=np.int64)
    n = blocks.shape[0]
    nxt = np.full(n, n, dtype=np.int64)
    if n < 2:
        return nxt
    order = np.argsort(blocks, kind="stable")
    sb = blocks[order]
    same = sb[1:] == sb[:-1]
    nxt[order[:-1][same]] = order[1:][same]
    return nxt


def _opt_miss_sequence(block_trace: Sequence[int], capacity: int) -> List[bool]:
    """Per-access hit/miss of Belady's OPT with ``capacity`` block frames."""
    n = len(block_trace)
    next_use: List[float] = [0.0] * n
    last_seen: Dict[int, int] = {}
    for i in range(n - 1, -1, -1):
        blk = block_trace[i]
        next_use[i] = last_seen.get(blk, _INF)
        last_seen[blk] = i

    out: List[bool] = []
    resident: Dict[int, float] = {}  # block -> next use position
    heap: List[tuple] = []  # (-next_use, block); lazy entries

    for i, blk in enumerate(block_trace):
        if blk in resident:
            out.append(False)
        else:
            if len(resident) >= capacity:
                while True:
                    neg_nu, victim = heapq.heappop(heap)
                    # Skip entries that are stale (block gone or next-use
                    # changed since the entry was pushed).
                    if victim in resident and resident[victim] == -neg_nu:
                        del resident[victim]
                        break
            out.append(True)
        resident[blk] = next_use[i]
        heapq.heappush(heap, (-next_use[i], blk))
    return out


def simulate_opt_misses(
    block_trace: Sequence[int], geometry: CacheGeometry
) -> List[bool]:
    """Per-access miss sequence of OPT on ``block_trace`` with this geometry.

    Under explicit associativity, OPT runs independently inside each set
    (blocks mapped through the geometry's index scheme — ``block % sets``
    or XOR folding — with ``ways`` frames per set): the offline-optimal
    *within the organization's mapping constraint*.
    """
    if geometry.is_fully_associative:
        return _opt_miss_sequence(block_trace, geometry.n_blocks)
    per_set: Dict[int, List[int]] = {}
    positions: Dict[int, List[int]] = {}
    for i, blk in enumerate(block_trace):
        s = geometry.set_of(blk)
        per_set.setdefault(s, []).append(blk)
        positions.setdefault(s, []).append(i)
    out: List[bool] = [False] * len(block_trace)
    for s, seq in per_set.items():
        for pos, miss in zip(positions[s], _opt_miss_sequence(seq, geometry.ways)):
            out[pos] = miss
    return out


def simulate_opt(block_trace: Sequence[int], geometry: CacheGeometry) -> CacheStats:
    """Number of misses OPT incurs on ``block_trace`` with this geometry."""
    misses = simulate_opt_misses(block_trace, geometry)
    stats = CacheStats()
    for miss in misses:
        stats.record(miss)
    # every miss beyond a set's capacity evicted something (a set's resident
    # count only grows until full, then each further miss replaces)
    if geometry.is_fully_associative:
        stats.evictions = max(0, stats.misses - geometry.n_blocks)
    else:
        per_set_misses: Dict[int, int] = {}
        for blk, miss in zip(block_trace, misses):
            if miss:
                s = geometry.set_of(blk)
                per_set_misses[s] = per_set_misses.get(s, 0) + 1
        stats.evictions = sum(
            max(0, m - geometry.ways) for m in per_set_misses.values()
        )
    return stats


class OPTCache:
    """Convenience wrapper with the shape of :class:`CacheModel` but batch
    semantics: feed the whole trace, read ``stats``.

    (OPT cannot be an online :class:`CacheModel`: its decisions depend on the
    future of the trace.)
    """

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self.stats = CacheStats()

    def run(self, block_trace: Sequence[int]) -> CacheStats:
        self.stats = simulate_opt(block_trace, self.geometry)
        return self.stats


register_policy(
    ReplacementPolicy(
        name="opt",
        description="Belady's offline optimal (farthest next use); per set "
        "under explicit associativity",
        batch_misses=simulate_opt_misses,
        offline=True,
    )
)
