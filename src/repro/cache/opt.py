"""Belady's offline-optimal replacement (OPT / MIN) on a recorded trace.

Used by ablation A3 to measure the constant between LRU and the omniscient
policy the paper's lower bounds implicitly allow.  OPT needs the future, so
it runs over a complete block trace recorded by
:class:`repro.mem.trace.TraceRecorder` rather than online.

The implementation is the standard two-pass algorithm: precompute, for each
trace position, the next position at which the same block is used
(``next_use``), then simulate with a max-heap of (next_use, block) entries,
evicting the block whose next use is farthest.  Lazy deletion keeps the heap
O(log n) per access; stale heap entries are skipped when popped.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Sequence

from repro.cache.base import CacheGeometry, CacheModel
from repro.cache.stats import CacheStats
from repro.errors import CacheConfigError

__all__ = ["OPTCache", "simulate_opt"]

_INF = float("inf")


def simulate_opt(block_trace: Sequence[int], geometry: CacheGeometry) -> CacheStats:
    """Number of misses OPT incurs on ``block_trace`` with this geometry."""
    n = len(block_trace)
    next_use: List[float] = [0.0] * n
    last_seen: Dict[int, int] = {}
    for i in range(n - 1, -1, -1):
        blk = block_trace[i]
        next_use[i] = last_seen.get(blk, _INF)
        last_seen[blk] = i

    stats = CacheStats()
    capacity = geometry.n_blocks
    resident: Dict[int, float] = {}  # block -> next use position
    heap: List[tuple] = []  # (-next_use, block); lazy entries

    for i, blk in enumerate(block_trace):
        if blk in resident:
            stats.record(False)
        else:
            if len(resident) >= capacity:
                while True:
                    neg_nu, victim = heapq.heappop(heap)
                    # Skip entries that are stale (block gone or next-use
                    # changed since the entry was pushed).
                    if victim in resident and resident[victim] == -neg_nu:
                        del resident[victim]
                        stats.record_eviction()
                        break
            stats.record(True)
        resident[blk] = next_use[i]
        heapq.heappush(heap, (-next_use[i], blk))
    return stats


class OPTCache:
    """Convenience wrapper with the shape of :class:`CacheModel` but batch
    semantics: feed the whole trace, read ``stats``.

    (OPT cannot be an online :class:`CacheModel`: its decisions depend on the
    future of the trace.)
    """

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self.stats = CacheStats()

    def run(self, block_trace: Sequence[int]) -> CacheStats:
        self.stats = simulate_opt(block_trace, self.geometry)
        return self.stats
