"""Shared XOR set-index fold: one source of truth for both engines.

The skewed ("xor") set-indexing scheme hashes a block id to a conflict
class by XOR-folding every tag chunk into the low index bits.  Two engines
need that hash: the stepwise simulators
(:meth:`repro.cache.base.CacheGeometry.set_of`) fold one scalar block id at
a time, and the vectorized replay kernels
(:func:`repro.runtime.replay.set_index_array`) fold a whole ``int64`` trace
in a few numpy ops.  The *implementations* stay deliberately distinct —
the differential grids in ``tests/test_properties_indexing.py`` pin two
genuinely different codepaths against each other — but the fold
*parameters* (chunk shift and index mask, :func:`fold_parameters`) live
here, once, so the twins cannot drift apart in what they fold over.
Lint rule R5 (``docs/STATIC_ANALYSIS.md``) statically enforces that both
consumers import their fold from this module and define no private copy.

Example (both engines, same classes)::

    >>> from repro.cache.indexing import xor_fold_index, xor_fold_index_array
    >>> import numpy as np
    >>> [xor_fold_index(b, 4) for b in (0, 5, 21)]
    [0, 0, 1]
    >>> xor_fold_index_array(np.array([0, 5, 21]), 4).tolist()
    [0, 0, 1]
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["fold_parameters", "xor_fold_index", "xor_fold_index_array"]


def fold_parameters(sets: int) -> Tuple[int, int]:
    """``(shift, mask)`` of the XOR fold over ``sets`` conflict classes.

    ``shift`` is the chunk width ``log2(sets)`` (how far the tag moves down
    per fold step) and ``mask`` keeps the low index bits.  ``sets`` must be
    a power of two — geometry validation upstream guarantees it for every
    caller.  Both the scalar and the vectorized fold read their constants
    from here; nothing else in the tree may recompute them.
    """
    return sets.bit_length() - 1, sets - 1


def xor_fold_index(block: int, sets: int) -> int:
    """Set index of ``block`` under XOR folding over ``sets`` (power of two).

    The index starts as the low ``log2(sets)`` bits; every higher chunk of
    the same width is XORed in, so any two blocks differing only in tag bits
    land in different sets more often than under ``mod``.  This is the
    scalar reference the stepwise simulators use; the vectorized twin is
    :func:`xor_fold_index_array` and the differential suite pins the two
    together.
    """
    if sets <= 1:
        return 0
    shift, mask = fold_parameters(sets)
    index = block & mask
    tag = block >> shift
    while tag:
        index ^= tag & mask
        tag >>= shift
    return index


def xor_fold_index_array(blocks: np.ndarray, sets: int) -> np.ndarray:
    """Vectorized twin of :func:`xor_fold_index` over an int64 block array.

    Same fold, same :func:`fold_parameters`, but whole-array numpy ops —
    the loop runs ``max_tag_bits / log2(sets)`` times, not once per access.
    ``sets <= 1`` returns the all-zero class array.
    """
    if sets <= 1:
        return np.zeros(blocks.shape[0], dtype=np.int64)
    shift, mask = fold_parameters(sets)
    idx = blocks & mask
    tag = blocks >> shift
    while bool(tag.any()):
        idx = idx ^ (tag & mask)
        tag = tag >> shift
    return idx
