"""Cache geometry and the simulator interface.

All simulators share :class:`CacheGeometry` (M words, B-word blocks,
optionally ``ways``-associative) and the :class:`CacheModel` interface:
``access(address)`` for a single word and ``access_range(start, length)``
for a contiguous region (a module's state or a slice of a channel buffer).
Ranges are the common case — a firing touches ``s(v)`` contiguous state
words plus short contiguous buffer windows — so ``access_range`` iterates
*blocks*, not words, making simulation cost proportional to block transfers
rather than memory traffic.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

from repro.cache.indexing import xor_fold_index
from repro.cache.stats import CacheStats
from repro.errors import CacheConfigError

__all__ = ["CacheGeometry", "CacheModel", "INDEX_SCHEMES", "xor_fold_index"]

#: Set-index hash functions a geometry may carry.  ``"mod"`` is the classic
#: ``block % sets`` (low address bits); ``"xor"`` folds every tag chunk into
#: the index bits by XOR — the single-hash form of skewed set indexing that
#: spreads power-of-two-strided conflicts across sets.  The fold itself
#: (scalar :func:`~repro.cache.indexing.xor_fold_index`, re-exported here)
#: lives in :mod:`repro.cache.indexing`, the one module both the stepwise
#: engines and the vectorized replay kernels read their fold constants from.
INDEX_SCHEMES = ("mod", "xor")


@dataclass(frozen=True)
class CacheGeometry:
    """Cache of ``size`` words with ``block`` words per block.

    ``size`` need not be a multiple of ``block`` conceptually, but we require
    it (and positivity) to keep block counting exact: the cache holds exactly
    ``size // block`` blocks.

    ``ways`` is the associativity: ``None`` (the default, and the paper's
    model) means fully associative — replacement may evict any resident
    block.  An explicit ``ways`` splits the frames into ``n_blocks // ways``
    sets indexed by ``block_id % sets``; ``ways=1`` is a direct-mapped
    organization.  Explicit associativity is validated the way hardware
    indexes demand: ``ways`` must divide ``n_blocks`` and the resulting set
    count must be a power of two (set indices are address bits — a non
    power-of-two count would silently mis-map them).

    ``index_scheme`` picks the set hash: ``"mod"`` (low index bits, the
    default) or ``"xor"`` (XOR-folded tag bits, the skewed-indexing family).
    The scheme only matters once there is more than one conflict class, and
    ``"xor"`` needs power-of-two classes to fold over: with an explicit
    ``ways`` the power-of-two set count is already enforced above, and a
    ``ways=None`` geometry must bring a power-of-two frame count, because
    the direct-mapped engines treat every frame as its own class.
    """

    size: int
    block: int
    ways: Optional[int] = None
    index_scheme: str = "mod"

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise CacheConfigError(f"cache size must be positive, got {self.size}")
        if self.block <= 0:
            raise CacheConfigError(f"block size must be positive, got {self.block}")
        if self.size % self.block != 0:
            raise CacheConfigError(
                f"cache size {self.size} must be a multiple of block size {self.block}"
            )
        if self.size // self.block < 1:
            raise CacheConfigError("cache must hold at least one block")
        if self.ways is not None:
            n_blocks = self.size // self.block
            if not isinstance(self.ways, int) or self.ways < 1:
                raise CacheConfigError(
                    f"associativity must be a positive integer, got {self.ways!r}"
                )
            if n_blocks % self.ways != 0:
                raise CacheConfigError(
                    f"ways={self.ways} does not divide the frame count "
                    f"n_blocks={n_blocks} (size={self.size} / block={self.block}): "
                    f"sets would be unequal"
                )
            n_sets = n_blocks // self.ways
            if n_sets & (n_sets - 1):
                raise CacheConfigError(
                    f"sets={n_sets} (n_blocks={n_blocks} / ways={self.ways}) "
                    f"is not a power of two — set indices are address bits"
                )
        if self.index_scheme not in INDEX_SCHEMES:
            raise CacheConfigError(
                f"unknown index_scheme {self.index_scheme!r}; "
                f"known: {INDEX_SCHEMES}"
            )
        if self.index_scheme == "xor" and self.ways is None:
            n_blocks = self.size // self.block
            if n_blocks & (n_blocks - 1):
                raise CacheConfigError(
                    f"index_scheme='xor' folds over power-of-two conflict "
                    f"classes; n_blocks={n_blocks} (size={self.size} / "
                    f"block={self.block}) is not one — give an explicit ways "
                    f"or a power-of-two frame count"
                )

    @property
    def n_blocks(self) -> int:
        return self.size // self.block

    @property
    def sets(self) -> int:
        """Number of sets: 1 when fully associative, ``n_blocks // ways``
        under explicit associativity (``n_blocks`` when direct mapped)."""
        if self.ways is None:
            return 1
        return self.n_blocks // self.ways

    @property
    def associativity(self) -> int:
        """Effective ways per set (``n_blocks`` when fully associative)."""
        if self.ways is None:
            return self.n_blocks
        return self.ways

    @property
    def is_fully_associative(self) -> bool:
        return self.ways is None or self.ways == self.n_blocks

    def set_of(self, block: int, sets: Optional[int] = None) -> int:
        """Set index a block id maps to under this geometry's scheme.

        ``sets`` overrides the class count (the direct-mapped engines pass
        ``n_blocks`` — every frame its own class); by default it is the
        geometry's own set count.
        """
        if sets is None:
            sets = self.sets
        if sets <= 1:
            return 0
        if self.index_scheme == "xor":
            return xor_fold_index(block, sets)
        return block % sets

    def frame_of(self, block: int) -> int:
        """Frame a block maps to in a direct-mapped reading of this
        geometry (every frame its own conflict class)."""
        return self.set_of(block, sets=self.n_blocks)

    def with_ways(self, ways: Optional[int]) -> "CacheGeometry":
        """This geometry reorganized as ``ways``-associative, its frame
        count snapped *up* to the nearest ``ways * power-of-two`` so the
        set indexing validates.  ``None``/``0`` returns the geometry
        unchanged (fully associative).  The index scheme is preserved."""
        if not ways:
            return self
        if not isinstance(ways, int) or ways < 1:
            raise CacheConfigError(
                f"associativity must be a positive integer, got {ways!r}"
            )
        sets = 1
        while sets * ways < self.n_blocks:
            sets *= 2
        return CacheGeometry(
            size=sets * ways * self.block, block=self.block, ways=ways,
            index_scheme=self.index_scheme,
        )

    def with_index_scheme(self, scheme: str) -> "CacheGeometry":
        """This geometry under another set-index hash (same size/organization)."""
        if scheme == self.index_scheme:
            return self
        return CacheGeometry(
            size=self.size, block=self.block, ways=self.ways, index_scheme=scheme
        )

    def block_of(self, address: int) -> int:
        return address // self.block

    def blocks_spanned(self, start: int, length: int) -> range:
        """Block ids covered by the word range [start, start+length)."""
        if length <= 0:
            return range(0)
        return range(start // self.block, (start + length - 1) // self.block + 1)


class CacheModel(ABC):
    """Interface shared by all cache simulators."""

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self.stats = CacheStats()

    @abstractmethod
    def access_block(self, block: int) -> bool:
        """Touch one block; return True on a miss."""

    def access(self, address: int) -> bool:
        """Touch the word at ``address``; return True on a miss."""
        return self.access_block(self.geometry.block_of(address))

    def access_range(self, start: int, length: int) -> int:
        """Touch every block of a contiguous word range; return #misses."""
        misses = 0
        for blk in self.geometry.blocks_spanned(start, length):
            if self.access_block(blk):
                misses += 1
        return misses

    @abstractmethod
    def flush(self) -> None:
        """Empty the cache (does not reset statistics)."""

    @abstractmethod
    def resident_blocks(self) -> int:
        """Number of blocks currently cached (for invariant tests)."""

    def reset(self) -> None:
        """Flush and zero the statistics."""
        self.flush()
        self.stats = CacheStats()
