"""Cache geometry and the simulator interface.

All simulators share :class:`CacheGeometry` (M words, B-word blocks) and the
:class:`CacheModel` interface: ``access(address)`` for a single word and
``access_range(start, length)`` for a contiguous region (a module's state or
a slice of a channel buffer).  Ranges are the common case — a firing touches
``s(v)`` contiguous state words plus short contiguous buffer windows — so
``access_range`` iterates *blocks*, not words, making simulation cost
proportional to block transfers rather than memory traffic.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.cache.stats import CacheStats
from repro.errors import CacheConfigError

__all__ = ["CacheGeometry", "CacheModel"]


@dataclass(frozen=True)
class CacheGeometry:
    """Cache of ``size`` words with ``block`` words per block.

    ``size`` need not be a multiple of ``block`` conceptually, but we require
    it (and positivity) to keep block counting exact: the cache holds exactly
    ``size // block`` blocks.
    """

    size: int
    block: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise CacheConfigError(f"cache size must be positive, got {self.size}")
        if self.block <= 0:
            raise CacheConfigError(f"block size must be positive, got {self.block}")
        if self.size % self.block != 0:
            raise CacheConfigError(
                f"cache size {self.size} must be a multiple of block size {self.block}"
            )
        if self.size // self.block < 1:
            raise CacheConfigError("cache must hold at least one block")

    @property
    def n_blocks(self) -> int:
        return self.size // self.block

    def block_of(self, address: int) -> int:
        return address // self.block

    def blocks_spanned(self, start: int, length: int) -> range:
        """Block ids covered by the word range [start, start+length)."""
        if length <= 0:
            return range(0)
        return range(start // self.block, (start + length - 1) // self.block + 1)


class CacheModel(ABC):
    """Interface shared by all cache simulators."""

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self.stats = CacheStats()

    @abstractmethod
    def access_block(self, block: int) -> bool:
        """Touch one block; return True on a miss."""

    def access(self, address: int) -> bool:
        """Touch the word at ``address``; return True on a miss."""
        return self.access_block(self.geometry.block_of(address))

    def access_range(self, start: int, length: int) -> int:
        """Touch every block of a contiguous word range; return #misses."""
        misses = 0
        for blk in self.geometry.blocks_spanned(start, length):
            if self.access_block(blk):
                misses += 1
        return misses

    @abstractmethod
    def flush(self) -> None:
        """Empty the cache (does not reset statistics)."""

    @abstractmethod
    def resident_blocks(self) -> int:
        """Number of blocks currently cached (for invariant tests)."""

    def reset(self) -> None:
        """Flush and zero the statistics."""
        self.flush()
        self.stats = CacheStats()
