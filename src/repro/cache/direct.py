"""Direct-mapped cache — a hardware-flavoured extension.

The paper's model is fully associative; real L1 caches are set-associative
or direct mapped, where *conflict misses* appear.  We provide a direct-mapped
simulator so the robustness experiments can show that the partitioned
schedule's advantage survives (and conflict misses mostly wash out because
the layout packs each component contiguously).

This is the ``ways=1`` corner of the associativity spectrum: every frame is
its own set.  A plain geometry (``ways=None``) is accepted for backward
compatibility and treated as direct mapped over all ``n_blocks`` frames; a
geometry claiming any other associativity is rejected.  The vectorized
counterpart — one per-set last-block scan answering a whole sweep — lives in
:mod:`repro.runtime.replay`; this class remains its oracle.
"""

from __future__ import annotations

from typing import Dict

from repro.cache.base import CacheGeometry, CacheModel
from repro.cache.policy import ReplacementPolicy, register_policy
from repro.errors import CacheConfigError

__all__ = ["DirectMappedCache"]


class DirectMappedCache(CacheModel):
    """Each block maps to one frame (``block % n_blocks`` under the default
    ``"mod"`` scheme, XOR-folded tag bits under ``index_scheme="xor"``); a
    frame holds one block."""

    def __init__(self, geometry: CacheGeometry) -> None:
        if geometry.ways not in (None, 1):
            raise CacheConfigError(
                f"direct-mapped cache needs ways=1 (or an unspecified "
                f"associativity), got ways={geometry.ways}"
            )
        super().__init__(geometry)
        self._frames: Dict[int, int] = {}

    def access_block(self, block: int) -> bool:
        frame = self.geometry.frame_of(block)
        current = self._frames.get(frame)
        if current == block:
            self.stats.record(False)
            return False
        if current is not None:
            self.stats.record_eviction()
        self._frames[frame] = block
        self.stats.record(True)
        return True

    def flush(self) -> None:
        self._frames.clear()

    def resident_blocks(self) -> int:
        return len(self._frames)


register_policy(
    ReplacementPolicy(
        name="direct",
        description="direct mapped: frame = block % n_blocks, one block per frame",
        make_model=DirectMappedCache,
    )
)

