"""Direct-mapped cache — a hardware-flavoured extension.

The paper's model is fully associative; real L1 caches are set-associative
or direct mapped, where *conflict misses* appear.  We provide a direct-mapped
simulator so the robustness experiments can show that the partitioned
schedule's advantage survives (and conflict misses mostly wash out because
the layout packs each component contiguously).
"""

from __future__ import annotations

from typing import Dict

from repro.cache.base import CacheGeometry, CacheModel

__all__ = ["DirectMappedCache"]


class DirectMappedCache(CacheModel):
    """Each block maps to frame ``block % n_blocks``; a frame holds one block."""

    def __init__(self, geometry: CacheGeometry) -> None:
        super().__init__(geometry)
        self._frames: Dict[int, int] = {}

    def access_block(self, block: int) -> bool:
        frame = block % self.geometry.n_blocks
        current = self._frames.get(frame)
        if current == block:
            self.stats.record(False)
            return False
        if current is not None:
            self.stats.record_eviction()
        self._frames[frame] = block
        self.stats.record(True)
        return True

    def flush(self) -> None:
        self._frames.clear()

    def resident_blocks(self) -> int:
        return len(self._frames)
