"""External-memory (I/O model / DAM) cache simulators.

The paper analyzes schedules in the two-level I/O model of Aggarwal &
Vitter: a fast cache of ``M`` words organized in blocks of ``B`` words over
an arbitrarily large memory; the cost of an execution is the number of block
transfers (cache misses).  This package implements that model executably:

* :class:`~repro.cache.lru.LRUCache` — fully associative LRU, the standard
  realization of the ideal-cache model (LRU is O(1)-competitive with OPT
  under constant-factor memory augmentation, so the paper's bounds carry);
* :class:`~repro.cache.opt.OPTCache` — Belady's offline-optimal replacement
  replayed over a recorded trace, used by the A3 ablation;
* :class:`~repro.cache.direct.DirectMappedCache` and
  :class:`~repro.cache.hierarchy.TwoLevelCache` — hardware-flavoured
  extensions for robustness experiments.
"""

from repro.cache.base import CacheModel, CacheGeometry
from repro.cache.stats import CacheStats
from repro.cache.lru import LRUCache
from repro.cache.direct import DirectMappedCache
from repro.cache.opt import OPTCache, simulate_opt
from repro.cache.hierarchy import TwoLevelCache

__all__ = [
    "CacheModel",
    "CacheGeometry",
    "CacheStats",
    "LRUCache",
    "DirectMappedCache",
    "OPTCache",
    "simulate_opt",
    "TwoLevelCache",
]
