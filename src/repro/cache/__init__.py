"""External-memory (I/O model / DAM) cache simulators and the policy registry.

The paper analyzes schedules in the two-level I/O model of Aggarwal &
Vitter: a fast cache of ``M`` words organized in blocks of ``B`` words over
an arbitrarily large memory; the cost of an execution is the number of block
transfers (cache misses).  This package implements that model executably,
with :class:`~repro.cache.base.CacheGeometry` carrying an optional ``ways``
field that narrows the paper's fully-associative ideal down to real
set-associative and direct-mapped organizations, and an ``index_scheme``
field selecting the set hash — classic ``"mod"`` low bits or ``"xor"``
folded tag bits (skewed indexing), honoured identically by the stepwise
oracles here and the vectorized replay kernels.

Every replacement policy is registered by name in
:mod:`repro.cache.policy` (``"lru"``, ``"direct"``, ``"opt"``,
``"two_level"``), which binds the name to its *stepwise* engine; the
*vectorized* engines answering whole geometry sweeps from one compiled
trace live in :mod:`repro.runtime.replay` and dispatch by the same names
(algorithms and complexity: ``docs/REPLAY.md``).  The stepwise engines here
are deliberately simple and stay the differential-test oracles for the
vectorized path:

* :class:`~repro.cache.lru.LRUCache` — LRU, fully associative by default
  (the standard realization of the ideal-cache model; O(1)-competitive with
  OPT under constant-factor augmentation, so the paper's bounds carry) or
  set-associative when the geometry carries an explicit ``ways``;
* :class:`~repro.cache.direct.DirectMappedCache` — the ``ways=1`` corner,
  where conflict misses appear (robustness experiments E12/A6);
* :class:`~repro.cache.opt.OPTCache` / :func:`~repro.cache.opt.simulate_opt`
  — Belady's offline-optimal replacement replayed over a recorded trace
  (ablation A3), per set under explicit associativity;
* :class:`~repro.cache.hierarchy.TwoLevelCache` — an inclusive two-level
  hierarchy (robustness experiment E12, inclusion ablation A8), swept as
  :class:`~repro.cache.hierarchy.TwoLevelGeometry` (L1, L2) pairs under
  ``policy="two_level"``: the replay kernel feeds L1's miss sub-trace to a
  second L2 pass, so one compiled trace answers whole (L1, L2) grids.
"""

from repro.cache.base import INDEX_SCHEMES, CacheGeometry, CacheModel, xor_fold_index
from repro.cache.policy import (
    ReplacementPolicy,
    available_policies,
    get_policy,
    register_policy,
    stepwise_trace_misses,
)
from repro.cache.stats import CacheStats
from repro.cache.lru import LRUCache
from repro.cache.direct import DirectMappedCache
from repro.cache.opt import OPTCache, next_occurrences, simulate_opt, simulate_opt_misses
from repro.cache.hierarchy import TwoLevelCache, TwoLevelGeometry

__all__ = [
    "CacheModel",
    "CacheGeometry",
    "INDEX_SCHEMES",
    "xor_fold_index",
    "CacheStats",
    "ReplacementPolicy",
    "available_policies",
    "get_policy",
    "register_policy",
    "stepwise_trace_misses",
    "LRUCache",
    "DirectMappedCache",
    "OPTCache",
    "simulate_opt",
    "simulate_opt_misses",
    "next_occurrences",
    "TwoLevelCache",
    "TwoLevelGeometry",
]
