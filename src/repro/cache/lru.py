"""LRU cache — the workhorse simulator, fully or set-associative.

The ideal-cache / DAM analyses in the paper assume an omniscient replacement
policy; LRU with a constant-factor larger cache is within a constant factor
of optimal on every trace (Sleator & Tarjan 1985), so simulating LRU
preserves every asymptotic claim.  Experiment A3 quantifies the LRU-vs-OPT
gap empirically on our traces.

The geometry decides the organization: ``ways=None`` (the paper's model) is
fully associative — one recency order over all ``n_blocks`` frames; an
explicit ``ways`` runs LRU independently inside each of ``geometry.sets``
sets, with blocks mapped by ``block % sets`` (so conflict misses appear,
the robustness experiments' subject).

Implementation: an ``OrderedDict`` per associativity domain, keyed by block
id; ``move_to_end`` gives O(1) touch, ``popitem(last=False)`` O(1) eviction.
This is the standard CPython idiom and is fast enough to run millions of
block touches per second, which bounds all benchmark run times.  The
vectorized counterpart is :mod:`repro.runtime.replay`, which answers whole
geometry sweeps from one compiled trace; this class remains its
differential-test oracle (see :mod:`repro.cache.policy`).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.cache.base import CacheGeometry, CacheModel
from repro.cache.policy import ReplacementPolicy, register_policy

__all__ = ["LRUCache"]


class LRUCache(CacheModel):
    """LRU over ``geometry.n_blocks`` block frames.

    Fully associative by default; an explicit ``geometry.ways`` partitions
    the frames into LRU sets of that associativity.
    """

    def __init__(self, geometry: CacheGeometry) -> None:
        super().__init__(geometry)
        self._resident: "OrderedDict[int, None]" = OrderedDict()
        if geometry.is_fully_associative:
            self._set_caches = None
        else:
            # one (OrderedDict, capacity) LRU domain per set, looked up
            # through the geometry's index scheme (mod or xor folding)
            self._set_caches = [OrderedDict() for _ in range(geometry.sets)]
            self._n_sets = geometry.sets
            self._ways = geometry.ways

    def access_block(self, block: int) -> bool:
        if self._set_caches is None:
            resident = self._resident
            capacity = self.geometry.n_blocks
        else:
            resident = self._set_caches[self.geometry.set_of(block)]
            capacity = self._ways
        if block in resident:
            resident.move_to_end(block)
            self.stats.record(False)
            return False
        if len(resident) >= capacity:
            resident.popitem(last=False)
            self.stats.record_eviction()
        resident[block] = None
        self.stats.record(True)
        return True

    def flush(self) -> None:
        self._resident.clear()
        if self._set_caches is not None:
            for s in self._set_caches:
                s.clear()

    def resident_blocks(self) -> int:
        if self._set_caches is None:
            return len(self._resident)
        return sum(len(s) for s in self._set_caches)

    def contains_block(self, block: int) -> bool:
        """Non-mutating residency probe (no recency update, no stats)."""
        if self._set_caches is None:
            return block in self._resident
        return block in self._set_caches[self.geometry.set_of(block)]

    def contains_address(self, address: int) -> bool:
        return self.contains_block(self.geometry.block_of(address))


register_policy(
    ReplacementPolicy(
        name="lru",
        description=(
            "least recently used; fully associative unless the geometry "
            "carries an explicit ways"
        ),
        make_model=LRUCache,
    )
)
