"""Fully associative LRU cache — the workhorse simulator.

The ideal-cache / DAM analyses in the paper assume an omniscient replacement
policy; LRU with a constant-factor larger cache is within a constant factor
of optimal on every trace (Sleator & Tarjan 1985), so simulating LRU
preserves every asymptotic claim.  Experiment A3 quantifies the LRU-vs-OPT
gap empirically on our traces.

Implementation: an ``OrderedDict`` keyed by block id; ``move_to_end`` gives
O(1) touch, ``popitem(last=False)`` O(1) eviction.  This is the standard
CPython idiom and is fast enough to run millions of block touches per second,
which bounds all benchmark run times.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.cache.base import CacheGeometry, CacheModel

__all__ = ["LRUCache"]


class LRUCache(CacheModel):
    """Fully associative LRU over ``geometry.n_blocks`` block frames."""

    def __init__(self, geometry: CacheGeometry) -> None:
        super().__init__(geometry)
        self._resident: "OrderedDict[int, None]" = OrderedDict()

    def access_block(self, block: int) -> bool:
        resident = self._resident
        if block in resident:
            resident.move_to_end(block)
            self.stats.record(False)
            return False
        if len(resident) >= self.geometry.n_blocks:
            resident.popitem(last=False)
            self.stats.record_eviction()
        resident[block] = None
        self.stats.record(True)
        return True

    def flush(self) -> None:
        self._resident.clear()

    def resident_blocks(self) -> int:
        return len(self._resident)

    def contains_block(self, block: int) -> bool:
        """Non-mutating residency probe (no recency update, no stats)."""
        return block in self._resident

    def contains_address(self, address: int) -> bool:
        return self.geometry.block_of(address) in self._resident
