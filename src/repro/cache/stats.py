"""Hit/miss accounting shared by all cache simulators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["CacheStats"]


@dataclass
class CacheStats:
    """Counters for one simulation run.

    ``phase_misses`` lets the executor attribute misses to labelled phases
    (e.g. "state", "input", "output", or per-component labels) so the
    experiments can decompose cost the way the proofs do (state loads vs
    cross-edge traffic, Lemma 4 / Lemma 8).
    """

    accesses: int = 0
    misses: int = 0
    evictions: int = 0
    phase_misses: Dict[str, int] = field(default_factory=dict)
    _phase: str = ""

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def set_phase(self, label: str) -> None:
        self._phase = label

    def record(self, miss: bool) -> None:
        self.accesses += 1
        if miss:
            self.misses += 1
            if self._phase:
                self.phase_misses[self._phase] = self.phase_misses.get(self._phase, 0) + 1

    def record_eviction(self) -> None:
        self.evictions += 1

    def merged_with(self, other: "CacheStats") -> "CacheStats":
        out = CacheStats(
            accesses=self.accesses + other.accesses,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
        )
        for src in (self.phase_misses, other.phase_misses):
            for k, v in src.items():
                out.phase_misses[k] = out.phase_misses.get(k, 0) + v
        return out

    def summary(self) -> str:
        parts = [
            f"accesses={self.accesses}",
            f"misses={self.misses}",
            f"miss_rate={self.miss_rate:.4f}",
            f"evictions={self.evictions}",
        ]
        if self.phase_misses:
            phases = ", ".join(f"{k}={v}" for k, v in sorted(self.phase_misses.items()))
            parts.append(f"phases[{phases}]")
        return " ".join(parts)
