"""Replacement-policy registry: one name per policy, two engines per name.

Every replacement model the library simulates is registered here under a
short policy name (``"lru"``, ``"direct"``, ``"opt"``, ``"two_level"``).  A
registration binds the name to its *stepwise* engine — an online
:class:`CacheModel` factory, or a batch runner for offline policies like
OPT — which stays the differential-test oracle.  The *vectorized* engines
live in :mod:`repro.runtime.replay` and dispatch by the same names, so a
caller can pick a policy string once and get either the reference
simulation or the single-pass replay, and the tests can diff the two.
``docs/REPLAY.md`` documents every registered policy's algorithm on both
engines.

A "geometry" here is whatever the policy sweeps over: a single-level
:class:`CacheGeometry` for most policies, a
:class:`~repro.cache.hierarchy.TwoLevelGeometry` (L1, L2) pair for
``"two_level"`` — ``make_model`` validates and rejects the wrong spec kind.
The trace a policy replays may come from any memory layout, including the
``placement=``-optimized object orders of :mod:`repro.mem.placement`: both
engines see only block ids, never layout objects.

Policies are registered by their defining modules at import time
(:mod:`repro.cache.lru`, :mod:`repro.cache.direct`, :mod:`repro.cache.opt`,
:mod:`repro.cache.hierarchy`); importing :mod:`repro.cache` populates the
registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.cache.base import CacheGeometry, CacheModel
from repro.errors import CacheConfigError

__all__ = [
    "ReplacementPolicy",
    "register_policy",
    "get_policy",
    "available_policies",
    "stepwise_trace_misses",
]


@dataclass(frozen=True)
class ReplacementPolicy:
    """One registered replacement policy.

    ``make_model`` builds the stepwise engine for a geometry (``None`` for
    offline-only policies).  ``batch_misses`` runs the policy over a complete
    block trace and returns the per-access miss sequence — for online
    policies it is derived from ``make_model``; offline policies (OPT) supply
    it directly.  ``offline`` marks policies whose decisions need the future
    of the trace and therefore cannot run inside the stepwise executor.
    """

    name: str
    description: str
    make_model: Optional[Callable[[CacheGeometry], CacheModel]] = None
    batch_misses: Optional[
        Callable[[Sequence[int], CacheGeometry], Sequence[bool]]
    ] = None
    offline: bool = False


_POLICIES: Dict[str, ReplacementPolicy] = {}


def register_policy(policy: ReplacementPolicy) -> ReplacementPolicy:
    """Register (or replace) a policy under its name and return it."""
    _POLICIES[policy.name] = policy
    return policy


def get_policy(name: str) -> ReplacementPolicy:
    try:
        return _POLICIES[name]
    except KeyError:
        raise CacheConfigError(
            f"unknown replacement policy {name!r}; "
            f"registered: {sorted(_POLICIES)}"
        ) from None


def available_policies() -> Tuple[str, ...]:
    return tuple(sorted(_POLICIES))


def stepwise_trace_misses(
    trace: Sequence[int], geometry: CacheGeometry, policy: str = "lru"
) -> Sequence[bool]:
    """Per-access miss sequence of the stepwise engine on a raw block trace.

    The differential-test entry point: whatever the vectorized replay
    answers, this is the reference it must match bit for bit.
    """
    pol = get_policy(policy)
    if pol.batch_misses is not None:
        return pol.batch_misses(trace, geometry)
    if pol.make_model is None:  # pragma: no cover - registry misuse
        raise CacheConfigError(f"policy {policy!r} has no stepwise engine")
    model = pol.make_model(geometry)
    return [model.access_block(int(b)) for b in trace]
