"""Entry point so ``python -m repro.lint`` runs the analyzer (see
:mod:`repro.lint.cli` for flags and exit codes)."""

from __future__ import annotations

import sys

from repro.lint.cli import main

sys.exit(main())
