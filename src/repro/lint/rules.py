"""The project-specific rules: R1–R6, each enforcing one cross-layer
invariant that generic linters cannot see.

========  =======================  ====================================================
id        name                     invariant
========  =======================  ====================================================
``R1``    registry-completeness    every registered cache policy has a replay kernel,
                                   a differential test, a docs/REPLAY.md heading, and
                                   a CLI surface
``R2``    experiment-completeness  every E*/A* experiment driver has a CLI dispatch,
                                   a benchmark reference (or documented exemption),
                                   and a README row
``R3``    hot-path-purity          the vectorized replay/compile modules never import
                                   the stepwise oracle classes
``R4``    dtype-contracts          hot-path numpy constructors pass explicit dtypes
                                   from the module's documented contract
``R5``    twin-fold-pinning        the scalar and vectorized XOR set-index folds both
                                   come from :mod:`repro.cache.indexing`
``R6``    obs-name-registry        every span/metric name emitted under ``src/repro``
                                   comes from :mod:`repro.obs.names`, and the obs
                                   package itself stays import-light at module load
========  =======================  ====================================================

Rationale, suppression syntax, and worked example violations for each rule
live in ``docs/STATIC_ANALYSIS.md``.  All checks are pure AST/text
analysis — nothing here imports or executes the analyzed modules.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.core import Project, Violation, register_rule

__all__ = [
    "BENCH_EXEMPT",
    "DTYPE_CONTRACTS",
    "registered_policies",
    "registered_replay_kernels",
    "experiment_drivers",
    "cli_experiment_ids",
    "obs_registered_names",
]

# ---------------------------------------------------------------------------
# paths the rules are anchored to (repo-relative)
# ---------------------------------------------------------------------------
CACHE_GLOB = "src/repro/cache/*.py"
REPLAY_PATH = "src/repro/runtime/replay.py"
COMPILED_PATH = "src/repro/runtime/compiled.py"
BACKEND_PATH = "src/repro/runtime/backend.py"
TRACE_CACHE_PATH = "src/repro/runtime/trace_cache.py"
STREAMING_PATH = "src/repro/runtime/streaming.py"
CLI_PATH = "src/repro/cli.py"
REPLAY_DOC = "docs/REPLAY.md"
README = "README.md"
TESTS_GLOB = "tests/test_*.py"
ANALYSIS_GLOB = "src/repro/analysis/*.py"
BENCH_GLOB = "benchmarks/bench_*.py"
INDEXING_PATH = "src/repro/cache/indexing.py"
BASE_PATH = "src/repro/cache/base.py"
OBS_NAMES_PATH = "src/repro/obs/names.py"
OBS_GLOB = "src/repro/obs/*.py"
#: Where R6 looks for instrumentation call sites.  ``pathlib.Path.glob``
#: ``*`` does not cross ``/`` (synthetic overlays use :mod:`fnmatch`,
#: where it does), so real and overlay projects both need explicit
#: per-depth patterns; the union is deduplicated.
SRC_GLOBS = ("src/repro/*.py", "src/repro/*/*.py", "src/repro/*/*/*.py")

#: Experiments intentionally not referenced by any ``benchmarks/bench_*.py``
#: driver call.  Every entry needs a reason; the table is mirrored in
#: ``docs/STATIC_ANALYSIS.md`` (rule R2).
BENCH_EXEMPT: Dict[str, str] = {
    "a7": "placement gains are gated end to end by benchmarks/"
    "bench_placement.py (swap_gain / color_gain), not by a driver call",
    "a9": "multi-target and xor-indexing gains are gated by benchmarks/"
    "bench_placement.py (multi_gain / xor_gain), not by a driver call",
    "a12": "facility-search gains are gated by benchmarks/"
    "bench_placement.py (facility_gain / minimax_worst), not by a driver call",
}

#: Per-module dtype contract of the compiled-trace hot path (rule R4):
#: every numpy array constructor in these modules must pass one of the
#: listed dtypes explicitly, and the module docstring must document them.
DTYPE_CONTRACTS: Dict[str, Tuple[str, ...]] = {
    COMPILED_PATH: ("int64", "uint8", "bool"),
    REPLAY_PATH: ("int64", "int16", "bool"),
    STREAMING_PATH: ("int64", "uint8", "bool"),
}

#: numpy callables that materialize arrays and accept a ``dtype=``.
_NP_CONSTRUCTORS = frozenset(
    {"zeros", "empty", "ones", "full", "array", "asarray",
     "ascontiguousarray", "arange", "fromiter"}
)

#: Names of the stepwise engines (rule R3): importing any of these into a
#: hot-path module would let reference code leak into the vectorized path.
_BANNED_NAMES = frozenset(
    {"Executor", "LRUCache", "DirectMappedCache", "TwoLevelCache",
     "OPTCache", "simulate_opt", "simulate_opt_misses",
     "stepwise_trace_misses", "TracingCache"}
)
#: Module prefixes hot-path modules may not import from at all.
_BANNED_MODULE_PREFIXES = ("repro.testing",)

#: Service-path modules that must stay benchmarked (rule R2): if the module
#: exists, some ``benchmarks/bench_*.py`` must reference the named symbol —
#: a backend or cache nobody measures silently rots.  Keyed by path so
#: synthetic overlay projects (which omit these files) are exempt.
SERVICE_BENCH_REQUIRED: Dict[str, str] = {
    BACKEND_PATH: "run_batch",
    TRACE_CACHE_PATH: "TraceCache",
}

#: The :mod:`repro.obs` emitter functions whose first argument is a
#: span/metric name (rule R6).
_OBS_EMITTERS = frozenset({"span", "add", "gauge", "observe", "series"})

#: Module prefixes :mod:`repro.obs` may not import at module load (rule
#: R6): instrumentation must stay importable — and near-free to import —
#: from every layer, so it cannot pull in numpy or the heavy repro
#: packages it instruments (which would also create import cycles).
_OBS_HEAVY_PREFIXES = (
    "numpy",
    "repro.analysis",
    "repro.cache",
    "repro.core",
    "repro.graphs",
    "repro.mem",
    "repro.runtime",
    "repro.testing",
)


# ---------------------------------------------------------------------------
# AST helpers
# ---------------------------------------------------------------------------
def _callee_name(call: ast.Call) -> Optional[str]:
    """Bare name of a call target: ``foo(...)`` or ``mod.foo(...)`` -> foo."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _str_arg(call: ast.Call, position: int = 0) -> Optional[str]:
    if len(call.args) > position:
        node = call.args[position]
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
    return None


def _kw_str(call: ast.Call, name: str) -> Optional[str]:
    for kw in call.keywords:
        if kw.arg == name and isinstance(kw.value, ast.Constant) \
                and isinstance(kw.value.value, str):
            return kw.value.value
    return None


def _string_constants(tree: ast.AST) -> Set[str]:
    return {
        node.value
        for node in ast.walk(tree)
        if isinstance(node, ast.Constant) and isinstance(node.value, str)
    }


def _tree(project: Project, rel: str, rule: str) -> Tuple[Optional[ast.Module], List[Violation]]:
    """Parse ``rel``; a missing or unparsable file is itself a violation."""
    try:
        return project.tree(rel), []
    except FileNotFoundError:
        return None, [
            Violation(rule=rule, path=rel, line=1,
                      message=f"{rel} is missing but required by rule {rule}")
        ]
    except SyntaxError as exc:
        return None, [
            Violation(rule=rule, path=rel, line=exc.lineno or 1,
                      message=f"{rel} does not parse: {exc.msg}")
        ]


def _read(project: Project, rel: str, rule: str) -> Tuple[Optional[str], List[Violation]]:
    try:
        return project.read(rel), []
    except FileNotFoundError:
        return None, [
            Violation(rule=rule, path=rel, line=1,
                      message=f"{rel} is missing but required by rule {rule}")
        ]


# ---------------------------------------------------------------------------
# shared extractors (also used by tests and docs snippets)
# ---------------------------------------------------------------------------
def registered_policies(project: Project) -> List[Tuple[str, str, int]]:
    """``(policy, path, line)`` for every ``register_policy(ReplacementPolicy
    (name=...))`` call under ``src/repro/cache/``."""
    out: List[Tuple[str, str, int]] = []
    for rel in project.glob(CACHE_GLOB):
        try:
            tree = project.tree(rel)
        except (FileNotFoundError, SyntaxError):
            continue  # R1 reports parse problems via its own anchor files
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call) and _callee_name(node) == "register_policy"):
                continue
            for inner in ast.walk(node):
                if isinstance(inner, ast.Call) and _callee_name(inner) == "ReplacementPolicy":
                    name = _kw_str(inner, "name") or _str_arg(inner)
                    if name:
                        out.append((name, rel, node.lineno))
    return out


def registered_replay_kernels(tree: ast.AST) -> Set[str]:
    """Policy names passed to ``register_replay_kernel(...)`` in replay.py."""
    return {
        name
        for node in ast.walk(tree)
        if isinstance(node, ast.Call)
        and _callee_name(node) == "register_replay_kernel"
        and (name := _str_arg(node)) is not None
    }


def experiment_drivers(project: Project) -> List[Tuple[str, str, str, int]]:
    """``(id, driver_name, path, line)`` for every top-level
    ``experiment_eN_*`` / ``ablation_aN_*`` def under ``repro.analysis``."""
    pat = re.compile(r"^(?:experiment_(e\d+)|ablation_(a\d+))_\w+$")
    out: List[Tuple[str, str, str, int]] = []
    for rel in project.glob(ANALYSIS_GLOB):
        try:
            tree = project.tree(rel)
        except (FileNotFoundError, SyntaxError):
            continue
        for node in tree.body:
            if isinstance(node, ast.FunctionDef):
                m = pat.match(node.name)
                if m:
                    out.append((m.group(1) or m.group(2), node.name, rel, node.lineno))
    return out


def cli_experiment_ids(tree: ast.AST) -> Set[str]:
    """Experiment ids the CLI dispatches: recovered from the dict
    comprehensions ``{f"e{i}": ... for i in range(lo, hi)}`` in
    ``cmd_experiment`` — empty when the dispatch shape is unrecognizable
    (which R2 reports as its own violation)."""
    ids: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.DictComp):
            continue
        key = node.key
        if not (isinstance(key, ast.JoinedStr) and key.values
                and isinstance(key.values[0], ast.Constant)
                and isinstance(key.values[0].value, str)):
            continue
        prefix = key.values[0].value
        if prefix not in ("e", "a") or not node.generators:
            continue
        it = node.generators[0].iter
        if (isinstance(it, ast.Call) and isinstance(it.func, ast.Name)
                and it.func.id == "range" and len(it.args) == 2
                and all(isinstance(a, ast.Constant) and isinstance(a.value, int)
                        for a in it.args)):
            lo, hi = it.args[0].value, it.args[1].value  # type: ignore[union-attr]
            ids |= {f"{prefix}{i}" for i in range(lo, hi)}
    return ids


def _heading_lines(text: str) -> List[str]:
    """Markdown heading lines, lowercased with code ticks stripped."""
    return [
        line.lstrip("#").replace("`", "").strip().lower()
        for line in text.splitlines()
        if line.startswith("#")
    ]


# ---------------------------------------------------------------------------
# R1 — registry completeness
# ---------------------------------------------------------------------------
@register_rule(
    "R1",
    "registry-completeness",
    "every registered cache policy has a replay kernel, a differential "
    "test, a docs/REPLAY.md heading, and a CLI surface",
)
def rule_registry_completeness(project: Project) -> Iterator[Violation]:
    policies = registered_policies(project)
    replay_tree, errs = _tree(project, REPLAY_PATH, "R1")
    yield from errs
    kernels = registered_replay_kernels(replay_tree) if replay_tree else set()
    cli_tree, errs = _tree(project, CLI_PATH, "R1")
    yield from errs
    cli_literals = _string_constants(cli_tree) if cli_tree else set()
    doc_text, errs = _read(project, REPLAY_DOC, "R1")
    yield from errs
    headings = _heading_lines(doc_text) if doc_text is not None else []

    tested: Set[str] = set()
    for rel in project.glob(TESTS_GLOB):
        try:
            tree = project.tree(rel)
        except (FileNotFoundError, SyntaxError):
            continue
        names = {
            n.id if isinstance(n, ast.Name) else n.attr
            for n in ast.walk(tree)
            if isinstance(n, (ast.Name, ast.Attribute))
        }
        if "differential_grid" not in names:
            continue
        for node in ast.walk(tree):
            if (isinstance(node, ast.Call)
                    and _callee_name(node) in ("replay_kernel", "stepwise_oracle")
                    and (pol := _str_arg(node)) is not None):
                tested.add(pol)

    for policy, rel, line in policies:
        if replay_tree is not None and policy not in kernels:
            yield Violation(
                rule="R1", path=rel, line=line,
                message=f"policy {policy!r} has no vectorized kernel: add a "
                f"register_replay_kernel({policy!r}, ...) branch in {REPLAY_PATH}",
            )
        if policy not in tested:
            yield Violation(
                rule="R1", path=rel, line=line,
                message=f"policy {policy!r} has no differential test: no "
                f"tests/test_*.py pins replay_kernel({policy!r}) / "
                f"stepwise_oracle({policy!r}) through "
                f"repro.testing.harness.differential_grid",
            )
        if doc_text is not None and not any(policy in h for h in headings):
            yield Violation(
                rule="R1", path=rel, line=line,
                message=f"policy {policy!r} has no {REPLAY_DOC} heading "
                f"documenting its algorithm and oracle contract",
            )
        if cli_tree is not None and policy not in cli_literals:
            yield Violation(
                rule="R1", path=rel, line=line,
                message=f"policy {policy!r} is not reachable from the CLI: "
                f"{CLI_PATH} never names it (add a --policy choice or an "
                f"option that selects it)",
            )


# ---------------------------------------------------------------------------
# R2 — experiment completeness
# ---------------------------------------------------------------------------
@register_rule(
    "R2",
    "experiment-completeness",
    "every E*/A* experiment driver has a CLI dispatch, a benchmark "
    "reference (or documented exemption), and a README row",
)
def rule_experiment_completeness(project: Project) -> Iterator[Violation]:
    drivers = experiment_drivers(project)
    cli_tree, errs = _tree(project, CLI_PATH, "R2")
    yield from errs
    dispatch: Set[str] = set()
    if cli_tree is not None:
        dispatch = cli_experiment_ids(cli_tree)
        if not dispatch:
            yield Violation(
                rule="R2", path=CLI_PATH, line=1,
                message="cannot recover the experiment dispatch ids from "
                "cmd_experiment (expected {f\"e{i}\": ... for i in "
                "range(lo, hi)}-style dict comprehensions)",
            )
    readme_text, errs = _read(project, README, "R2")
    yield from errs
    bench_text = "\n".join(
        project.read(rel) for rel in project.glob(BENCH_GLOB) if project.exists(rel)
    )

    for exp_id, driver, rel, line in drivers:
        if cli_tree is not None and dispatch and exp_id not in dispatch:
            yield Violation(
                rule="R2", path=rel, line=line,
                message=f"experiment {exp_id!r} ({driver}) has no CLI "
                f"dispatch: widen the id ranges in {CLI_PATH} cmd_experiment",
            )
        if driver not in bench_text and exp_id not in BENCH_EXEMPT:
            yield Violation(
                rule="R2", path=rel, line=line,
                message=f"experiment {exp_id!r} ({driver}) is not referenced "
                f"by any benchmarks/bench_*.py and has no documented "
                f"exemption in repro.lint.rules.BENCH_EXEMPT",
            )
        if readme_text is not None and driver not in readme_text:
            yield Violation(
                rule="R2", path=rel, line=line,
                message=f"experiment {exp_id!r} ({driver}) has no {README} "
                f"row: add it to the experiments table",
            )

    # service-path modules carry the same "stays measured" obligation as
    # experiment drivers; only checked where the module actually exists so
    # partial overlay projects stay silent
    for rel, symbol in SERVICE_BENCH_REQUIRED.items():
        if not project.exists(rel):
            continue
        if symbol not in bench_text:
            yield Violation(
                rule="R2", path=rel, line=1,
                message=f"service module {rel} is not exercised by any "
                f"benchmarks/bench_*.py ({symbol!r} is never referenced): "
                f"wire it into benchmarks/bench_service.py",
            )


# ---------------------------------------------------------------------------
# R3 — hot-path purity
# ---------------------------------------------------------------------------
@register_rule(
    "R3",
    "hot-path-purity",
    "vectorized replay/compile modules never import the stepwise "
    "oracle classes",
)
def rule_hot_path_purity(project: Project) -> Iterator[Violation]:
    # the two compile/replay kernels are mandatory; the service-path
    # modules obey the same purity contract wherever they exist (partial
    # overlay projects omit them, which is not a violation)
    targets = [REPLAY_PATH, COMPILED_PATH] + [
        rel
        for rel in (BACKEND_PATH, TRACE_CACHE_PATH, STREAMING_PATH)
        if project.exists(rel)
    ]
    for rel in targets:
        tree, errs = _tree(project, rel, "R3")
        yield from errs
        if tree is None:
            continue
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module.startswith(_BANNED_MODULE_PREFIXES):
                    yield Violation(
                        rule="R3", path=rel, line=node.lineno,
                        message=f"hot-path module imports {module}: oracles "
                        f"and test harnesses stay in tests/repro.testing",
                    )
                    continue
                for alias in node.names:
                    if alias.name in _BANNED_NAMES:
                        yield Violation(
                            rule="R3", path=rel, line=node.lineno,
                            message=f"hot-path module imports stepwise "
                            f"engine {alias.name!r} from {module}: the "
                            f"vectorized path must not depend on its oracle",
                        )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.startswith(_BANNED_MODULE_PREFIXES):
                        yield Violation(
                            rule="R3", path=rel, line=node.lineno,
                            message=f"hot-path module imports {alias.name}: "
                            f"oracles and test harnesses stay in "
                            f"tests/repro.testing",
                        )


# ---------------------------------------------------------------------------
# R4 — dtype/shape contracts
# ---------------------------------------------------------------------------
def _dtype_token(node: ast.expr) -> Optional[str]:
    """Normalize a ``dtype=`` value: ``np.int64`` -> 'int64', ``bool`` ->
    'bool', ``"int64"`` -> 'int64'; None for anything non-literal."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


@register_rule(
    "R4",
    "dtype-contracts",
    "hot-path numpy constructors pass explicit dtypes from the module's "
    "documented contract",
)
def rule_dtype_contracts(project: Project) -> Iterator[Violation]:
    for rel, allowed in DTYPE_CONTRACTS.items():
        # the streaming engine is optional (partial overlay projects omit
        # it); the core compile/replay kernels are mandatory
        if rel == STREAMING_PATH and not project.exists(rel):
            continue
        tree, errs = _tree(project, rel, "R4")
        yield from errs
        if tree is None:
            continue
        doc = ast.get_docstring(tree) or ""
        for dtype in allowed:
            if dtype not in doc:
                yield Violation(
                    rule="R4", path=rel, line=1,
                    message=f"dtype contract not documented: module "
                    f"docstring never mentions {dtype!r} (contract: "
                    f"{', '.join(allowed)})",
                )
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "np"
                    and node.func.attr in _NP_CONSTRUCTORS):
                continue
            dtype_kw = next((kw.value for kw in node.keywords if kw.arg == "dtype"), None)
            if dtype_kw is None:
                yield Violation(
                    rule="R4", path=rel, line=node.lineno,
                    message=f"np.{node.func.attr}(...) without an explicit "
                    f"dtype= in a hot-path module (contract: "
                    f"{', '.join(allowed)})",
                )
                continue
            token = _dtype_token(dtype_kw)
            if token is None or token not in allowed:
                yield Violation(
                    rule="R4", path=rel, line=node.lineno,
                    message=f"np.{node.func.attr}(dtype={token or '<dynamic>'}) "
                    f"is outside the module's documented contract "
                    f"({', '.join(allowed)})",
                )


# ---------------------------------------------------------------------------
# R5 — twin-implementation pinning
# ---------------------------------------------------------------------------
def _imports_from(tree: ast.AST, module: str) -> Set[str]:
    return {
        alias.name
        for node in ast.walk(tree)
        if isinstance(node, ast.ImportFrom) and node.module == module
        for alias in node.names
    }


@register_rule(
    "R5",
    "twin-fold-pinning",
    "the scalar and vectorized XOR set-index folds both come from "
    "repro.cache.indexing",
)
def rule_twin_fold_pinning(project: Project) -> Iterator[Violation]:
    idx_tree, errs = _tree(project, INDEXING_PATH, "R5")
    yield from errs
    if idx_tree is not None:
        defined = {n.name for n in idx_tree.body if isinstance(n, ast.FunctionDef)}
        for required in ("fold_parameters", "xor_fold_index", "xor_fold_index_array"):
            if required not in defined:
                yield Violation(
                    rule="R5", path=INDEXING_PATH, line=1,
                    message=f"shared indexing module does not define "
                    f"{required}() — both engines' folds must come from here",
                )

    consumers = (
        (BASE_PATH, "xor_fold_index", "the stepwise set_of() hash"),
        (REPLAY_PATH, "xor_fold_index_array", "the vectorized set_index_array() hash"),
    )
    for rel, needed, role in consumers:
        tree, errs = _tree(project, rel, "R5")
        yield from errs
        if tree is None:
            continue
        if needed not in _imports_from(tree, "repro.cache.indexing"):
            yield Violation(
                rule="R5", path=rel, line=1,
                message=f"{role} must import {needed} from "
                f"repro.cache.indexing (shared fold constants), found no "
                f"such import",
            )
        for node in ast.walk(tree):
            if isinstance(node, ast.FunctionDef) and "xor_fold" in node.name:
                yield Violation(
                    rule="R5", path=rel, line=node.lineno,
                    message=f"local fold implementation {node.name}() "
                    f"duplicates repro.cache.indexing — the twins must "
                    f"share one fold module",
                )
            if (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "bit_length"):
                yield Violation(
                    rule="R5", path=rel, line=node.lineno,
                    message="recomputing fold parameters via bit_length() — "
                    "import fold_parameters from repro.cache.indexing instead",
                )


# ---------------------------------------------------------------------------
# R6 — obs name registry + import-light obs package
# ---------------------------------------------------------------------------
def obs_registered_names(project: Project) -> Dict[str, str]:
    """``{CONSTANT: value}`` for every module-level upper-case string
    assignment in :mod:`repro.obs.names` — the only names rule R6 lets
    instrumentation emit.  Empty when the module is missing or broken."""
    try:
        tree = project.tree(OBS_NAMES_PATH)
    except (FileNotFoundError, SyntaxError):
        return {}
    out: Dict[str, str] = {}
    for node in tree.body:
        if (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id.isupper()
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)):
            out[node.targets[0].id] = node.value.value
    return out


def _obs_bindings(
    tree: ast.AST,
) -> Tuple[Set[str], Set[str], Set[str], Set[str]]:
    """Names a module binds to the obs API: ``(module_aliases,
    names_aliases, bare_emitters, imported_constants)``.

    ``module_aliases`` are bindings of ``repro.obs`` or ``repro.obs.core``
    (``obs.span(...)`` call bases); ``names_aliases`` bind
    ``repro.obs.names`` (``obs_names.CACHE_HITS`` attribute bases);
    ``bare_emitters`` are emitter functions imported directly; and
    ``imported_constants`` are name constants imported from
    ``repro.obs.names`` (valid as bare first arguments).
    """
    module_aliases: Set[str] = set()
    names_aliases: Set[str] = set()
    bare_emitters: Set[str] = set()
    imported_constants: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.level == 0:
            module = node.module or ""
            for alias in node.names:
                bound = alias.asname or alias.name
                if module == "repro" and alias.name == "obs":
                    module_aliases.add(bound)
                elif module == "repro.obs":
                    if alias.name == "core":
                        module_aliases.add(bound)
                    elif alias.name == "names":
                        names_aliases.add(bound)
                    elif alias.name in _OBS_EMITTERS:
                        bare_emitters.add(bound)
                elif module == "repro.obs.core" and alias.name in _OBS_EMITTERS:
                    bare_emitters.add(bound)
                elif module == "repro.obs.names":
                    imported_constants.add(bound)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name
                if alias.name in ("repro.obs", "repro.obs.core"):
                    module_aliases.add(bound)
                elif alias.name == "repro.obs.names":
                    names_aliases.add(bound)
    return module_aliases, names_aliases, bare_emitters, imported_constants


@register_rule(
    "R6",
    "obs-name-registry",
    "every span/metric name emitted under src/repro comes from "
    "repro.obs.names, and repro.obs itself stays import-light at load",
)
def rule_obs_name_registry(project: Project) -> Iterator[Violation]:
    # --- the obs package must stay cheap and cycle-free to import -------
    for rel in project.glob(OBS_GLOB):
        try:
            tree = project.tree(rel)
        except (FileNotFoundError, SyntaxError):
            continue  # a broken obs module surfaces through the test suite
        for node in tree.body:  # top-level only: lazy imports are fine
            if isinstance(node, ast.Import):
                modules = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                modules = [node.module or ""]
            else:
                continue
            for module in modules:
                if module.startswith(_OBS_HEAVY_PREFIXES):
                    yield Violation(
                        rule="R6", path=rel, line=node.lineno,
                        message=f"repro.obs must stay import-light: "
                        f"module-level import of {module} would make every "
                        f"layer pay for (and cycle with) the code obs "
                        f"instruments — import it lazily inside a function "
                        f"if it is really needed",
                    )

    # --- every emitted name must be registered in repro.obs.names -------
    registered = obs_registered_names(project)
    values = set(registered.values())
    for rel in sorted({f for pat in SRC_GLOBS for f in project.glob(pat)}):
        try:
            tree = project.tree(rel)
        except (FileNotFoundError, SyntaxError):
            continue
        module_aliases, names_aliases, bare_emitters, constants = _obs_bindings(tree)
        if not (module_aliases or bare_emitters):
            continue
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id in module_aliases
                    and func.attr in _OBS_EMITTERS):
                emitter = func.attr
            elif isinstance(func, ast.Name) and func.id in bare_emitters:
                emitter = func.id
            else:
                continue
            if not node.args:
                yield Violation(
                    rule="R6", path=rel, line=node.lineno,
                    message=f"obs.{emitter}(...) without a positional name "
                    f"argument — pass a repro.obs.names constant",
                )
                continue
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                if arg.value not in values:
                    yield Violation(
                        rule="R6", path=rel, line=node.lineno,
                        message=f"obs.{emitter}({arg.value!r}) uses a name "
                        f"not registered in repro.obs.names — add a "
                        f"constant there (one module owns the namespace, "
                        f"so dashboards and tests can enumerate it)",
                    )
            elif (isinstance(arg, ast.Attribute)
                    and isinstance(arg.value, ast.Name)
                    and arg.value.id in names_aliases):
                if arg.attr not in registered:
                    yield Violation(
                        rule="R6", path=rel, line=node.lineno,
                        message=f"obs.{emitter}(...) references "
                        f"{arg.value.id}.{arg.attr}, which repro.obs.names "
                        f"does not define",
                    )
            elif isinstance(arg, ast.Name) and arg.id in constants:
                pass  # imported straight from repro.obs.names
            else:
                yield Violation(
                    rule="R6", path=rel, line=node.lineno,
                    message=f"obs.{emitter}(...) with a dynamic name — "
                    f"metric names must be literal repro.obs.names "
                    f"constants so the namespace stays enumerable "
                    f"(suppress with '# repro-lint: disable=R6' for "
                    f"audited forwarders)",
                )
