"""Lint infrastructure: the project model, rule registry, and runner.

A lint *rule* is a function from a :class:`Project` (a read-only view of
the source tree — real files, or an in-memory overlay for tests) to
:class:`Violation` instances.  Rules register themselves with
:func:`register_rule` under a stable id (``R1``..``R5``); the runner
(:func:`run_lint`) executes any subset, filters violations through the
suppression comments, and returns a :class:`LintReport`.

Suppression syntax (checked on the violation's line *and* the line above,
so a comment can sit on its own line)::

    some_flagged_code()  # repro-lint: disable=R4
    # repro-lint: disable=R3,R5
    other_flagged_code()

and file-wide, anywhere in the file::

    # repro-lint: disable-file=R4

Every rule, with rationale and an example violation, is documented in
``docs/STATIC_ANALYSIS.md``.
"""

from __future__ import annotations

import ast
import fnmatch
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Set, Tuple

__all__ = [
    "Violation",
    "Rule",
    "Project",
    "LintReport",
    "register_rule",
    "get_rule",
    "all_rules",
    "run_lint",
]


@dataclass(frozen=True)
class Violation:
    """One rule finding, anchored at a repo-relative ``path:line``."""

    rule: str
    path: str
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


@dataclass(frozen=True)
class Rule:
    """A registered rule: stable id, short name, one-line summary, check."""

    id: str
    name: str
    summary: str
    check: Callable[["Project"], Iterable[Violation]]


_RULES: Dict[str, Rule] = {}


def register_rule(
    rule_id: str, name: str, summary: str
) -> Callable[[Callable[["Project"], Iterable[Violation]]], Callable]:
    """Decorator registering ``check`` as rule ``rule_id``."""

    def deco(check: Callable[["Project"], Iterable[Violation]]) -> Callable:
        _RULES[rule_id] = Rule(id=rule_id, name=name, summary=summary, check=check)
        return check

    return deco


def get_rule(rule_id: str) -> Rule:
    try:
        return _RULES[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown lint rule {rule_id!r}; registered: {sorted(_RULES)}"
        ) from None


def all_rules() -> Tuple[Rule, ...]:
    """Every registered rule, in id order."""
    return tuple(_RULES[k] for k in sorted(_RULES))


def _default_root() -> Path:
    """The repository root: the ancestor of this file holding ``src/repro``
    (source checkout), falling back to the current working directory."""
    here = Path(__file__).resolve()
    candidates = list(here.parents[3:4]) + [Path.cwd()]
    for cand in candidates:
        if (cand / "src" / "repro").is_dir():
            return cand
    return Path.cwd()


class Project:
    """Read-only view of the tree the rules analyze, with parse caching.

    Real mode (``Project()`` or ``Project(root=...)``) reads from disk.
    Synthetic mode (``Project(files={"src/repro/cli.py": "..."})``) sees
    *only* the given relative-path → source mapping — how ``tests/
    test_lint.py`` exercises each rule on hand-built violations without
    touching the live tree.
    """

    def __init__(
        self,
        root: Optional[Path] = None,
        files: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.root = Path(root) if root is not None else _default_root()
        self._files: Optional[Dict[str, str]] = (
            {str(k).replace("\\", "/"): v for k, v in files.items()}
            if files is not None
            else None
        )
        self._trees: Dict[str, ast.Module] = {}
        self._suppress: Dict[str, Tuple[Set[str], Dict[int, Set[str]]]] = {}

    # -- file access -----------------------------------------------------
    def exists(self, rel: str) -> bool:
        if self._files is not None:
            return rel in self._files
        return (self.root / rel).is_file()

    def read(self, rel: str) -> str:
        """Source text of ``rel``; raises :class:`FileNotFoundError`."""
        if self._files is not None:
            try:
                return self._files[rel]
            except KeyError:
                raise FileNotFoundError(rel) from None
        return (self.root / rel).read_text(encoding="utf-8")

    def tree(self, rel: str) -> ast.Module:
        """Parsed AST of ``rel`` (cached); raises ``SyntaxError`` on bad
        source and :class:`FileNotFoundError` on a missing file."""
        cached = self._trees.get(rel)
        if cached is None:
            cached = self._trees[rel] = ast.parse(self.read(rel), filename=rel)
        return cached

    def glob(self, pattern: str) -> List[str]:
        """Sorted repo-relative paths matching a glob like
        ``src/repro/cache/*.py``."""
        if self._files is not None:
            return sorted(fnmatch.filter(self._files, pattern))
        return sorted(
            str(p.relative_to(self.root)).replace("\\", "/")
            for p in self.root.glob(pattern)
            if p.is_file()
        )

    # -- suppression comments -------------------------------------------
    _LINE_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")
    _FILE_RE = re.compile(r"#\s*repro-lint:\s*disable-file=([A-Za-z0-9_,\s]+)")

    def _suppressions(self, rel: str) -> Tuple[Set[str], Dict[int, Set[str]]]:
        cached = self._suppress.get(rel)
        if cached is not None:
            return cached
        file_wide: Set[str] = set()
        by_line: Dict[int, Set[str]] = {}
        try:
            text = self.read(rel)
        except (FileNotFoundError, OSError, UnicodeDecodeError):
            text = ""
        for lineno, line in enumerate(text.splitlines(), start=1):
            m = self._FILE_RE.search(line)
            if m:
                file_wide |= {t.strip() for t in m.group(1).split(",") if t.strip()}
            m = self._LINE_RE.search(line)
            if m:
                ids = {t.strip() for t in m.group(1).split(",") if t.strip()}
                by_line.setdefault(lineno, set()).update(ids)
        self._suppress[rel] = (file_wide, by_line)
        return file_wide, by_line

    def is_suppressed(self, violation: Violation) -> bool:
        """True when a suppression comment covers this violation: on its
        file (``disable-file=``), its line, or the line directly above."""
        file_wide, by_line = self._suppressions(violation.path)
        if violation.rule in file_wide:
            return True
        for lineno in (violation.line, violation.line - 1):
            if violation.rule in by_line.get(lineno, set()):
                return True
        return False


@dataclass
class LintReport:
    """Outcome of one :func:`run_lint` pass."""

    violations: List[Violation] = field(default_factory=list)
    rules_run: Tuple[str, ...] = ()
    suppressed: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def format(self) -> str:
        lines = [str(v) for v in self.violations]
        note = f" ({self.suppressed} suppressed)" if self.suppressed else ""
        if self.violations:
            lines.append(
                f"repro.lint: FAIL — {len(self.violations)} violation(s) "
                f"across rules {', '.join(self.rules_run)}{note}"
            )
        else:
            lines.append(
                f"repro.lint: ok — rules {', '.join(self.rules_run)} clean{note}"
            )
        return "\n".join(lines)


def run_lint(
    project: Optional[Project] = None,
    rules: Optional[Iterable[str]] = None,
) -> LintReport:
    """Run ``rules`` (default: all registered) over ``project``.

    Violations are sorted by (path, line, rule) and filtered through the
    suppression comments; a rule that crashes is itself reported as a
    violation rather than aborting the pass.
    """
    # rule modules self-register on import; make sure they are loaded even
    # when callers import repro.lint.core directly
    from repro.lint import rules as _rules_module  # noqa: F401

    project = project if project is not None else Project()
    ids = tuple(rules) if rules is not None else tuple(r.id for r in all_rules())
    found: List[Violation] = []
    for rule_id in ids:
        rule = get_rule(rule_id)
        try:
            found.extend(rule.check(project))
        except Exception as exc:  # noqa: BLE001 — a broken rule is a finding
            found.append(
                Violation(
                    rule=rule.id,
                    path="<repro.lint>",
                    line=0,
                    message=f"rule {rule.id} ({rule.name}) crashed: "
                    f"{type(exc).__name__}: {exc}",
                )
            )
    kept = [v for v in found if not project.is_suppressed(v)]
    kept.sort(key=lambda v: (v.path, v.line, v.rule, v.message))
    return LintReport(
        violations=kept, rules_run=ids, suppressed=len(found) - len(kept)
    )
