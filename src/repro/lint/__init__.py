"""repro.lint — project-specific static analysis for the replay codebase.

The library is a web of parallel implementations that must agree
bit-for-bit: every cache policy has a stepwise oracle, a vectorized replay
kernel, a differential test, a docs section, and a CLI surface; every
experiment has a dispatch, a benchmark, and a README row; and the scalar
and vectorized XOR set-index folds are deliberate twins.  Runtime
differential tests catch *behavioral* drift; this package catches
*structural* drift — a policy registered without a kernel, an untyped
hot-path array, an experiment nobody can invoke — statically, at review
time, from the ASTs alone (nothing is imported or executed).

Run it the way CI does::

    python -m repro.lint            # all rules, exit 0 when clean
    python -m repro.lint --list-rules
    python -m repro.lint --rules R1,R5

or programmatically (the :class:`Project` ``files=`` overlay is how the
unit tests feed each rule synthetic violations)::

    >>> from repro.lint import Project, run_lint
    >>> report = run_lint(Project(files={
    ...     "src/repro/runtime/replay.py":
    ...         "from repro.runtime.executor import Executor\\n",
    ...     "src/repro/runtime/compiled.py": "",
    ... }), rules=["R3"])
    >>> print(report.violations[0])
    src/repro/runtime/replay.py:1: R3: hot-path module imports stepwise \
engine 'Executor' from repro.runtime.executor: the vectorized path must \
not depend on its oracle

Rules (R1–R5), rationale, and the suppression syntax
(``# repro-lint: disable=R4``) are documented in
``docs/STATIC_ANALYSIS.md``.
"""

from __future__ import annotations

from repro.lint.core import (
    LintReport,
    Project,
    Rule,
    Violation,
    all_rules,
    get_rule,
    register_rule,
    run_lint,
)
from repro.lint import rules as _rules  # noqa: F401 — rule registration

__all__ = [
    "LintReport",
    "Project",
    "Rule",
    "Violation",
    "all_rules",
    "get_rule",
    "register_rule",
    "run_lint",
    "main",
]

from repro.lint.cli import main
