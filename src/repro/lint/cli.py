"""Command-line front end: ``python -m repro.lint``.

Exit status 0 means every selected rule is clean on the analyzed tree, 1
means violations were reported, 2 is a usage error (argparse).  ``--format
json`` emits a machine-readable violation list for editor integration.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.core import Project, all_rules, run_lint

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro.lint",
        description="project-specific static analysis: registry/kernel/"
        "oracle/docs/CLI consistency (rules R1-R5, see docs/STATIC_ANALYSIS.md)",
    )
    p.add_argument(
        "--root", default=None,
        help="repository root to analyze (default: auto-detected)",
    )
    p.add_argument(
        "--rules", default=None, metavar="R1,R2,...",
        help="comma-separated rule ids to run (default: all)",
    )
    p.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit",
    )
    p.add_argument(
        "--format", default="text", choices=("text", "json"),
        help="violation output format (default: text)",
    )
    return p


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.name:24s} {rule.summary}")
        return 0
    selected: Optional[List[str]] = None
    if args.rules:
        selected = [r.strip() for r in args.rules.split(",") if r.strip()]
        known = {rule.id for rule in all_rules()}
        unknown = [r for r in selected if r not in known]
        if unknown:
            parser.error(
                f"unknown rule id(s) {', '.join(unknown)} "
                f"(registered: {', '.join(sorted(known))})"
            )
    project = Project(root=Path(args.root)) if args.root else Project()
    report = run_lint(project, rules=selected)
    if args.format == "json":
        print(json.dumps(
            [
                {"rule": v.rule, "path": v.path, "line": v.line,
                 "message": v.message}
                for v in report.violations
            ],
            indent=2,
        ))
    else:
        print(report.format())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
