"""Synthetic topology generators for experiments.

These produce the graph families the paper's theorems quantify over:

* **pipelines** (Section 4) — single directed chains, optionally with
  non-unit rates (up/down-samplers) and heterogeneous state sizes;
* **homogeneous dags** (Section 5, Theorem 7 / Lemma 8) — diamonds, trees,
  butterflies, layered random dags with all rates 1;
* **inhomogeneous dags** (Theorem 10) — rate-matched dags with non-unit
  rates placed so every undirected cycle stays balanced.

All generators are deterministic given a seed (`numpy.random.Generator` under
the hood) and return validated single-source/single-sink dags.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import GraphError
from repro.graphs.sdf import StreamGraph

__all__ = [
    "pipeline",
    "random_pipeline",
    "diamond",
    "split_join_tree",
    "butterfly",
    "layered_random_dag",
    "rate_matched_random_dag",
]

SeedLike = Union[int, np.random.Generator, None]


def _rng(seed: SeedLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def pipeline(
    states: Sequence[int],
    rates: Optional[Sequence[Tuple[int, int]]] = None,
    name: str = "pipeline",
) -> StreamGraph:
    """Build a pipeline with the given per-module state sizes.

    Parameters
    ----------
    states:
        ``states[i]`` is the state of module ``m<i>``; the first module is
        the source, the last the sink.
    rates:
        ``rates[i] = (out, in)`` for the channel between modules i and i+1
        (length ``len(states) - 1``); defaults to homogeneous ``(1, 1)``.
    """
    if len(states) < 1:
        raise GraphError("pipeline needs at least one module")
    if rates is not None and len(rates) != len(states) - 1:
        raise GraphError(f"need {len(states) - 1} rate pairs, got {len(rates)}")
    g = StreamGraph(name)
    for i, s in enumerate(states):
        g.add_module(f"m{i}", state=int(s))
    for i in range(len(states) - 1):
        orate, irate = rates[i] if rates is not None else (1, 1)
        g.add_channel(f"m{i}", f"m{i + 1}", out_rate=orate, in_rate=irate)
    return g


def random_pipeline(
    n: int,
    max_state: int,
    seed: SeedLike = None,
    rate_choices: Sequence[Tuple[int, int]] = ((1, 1),),
    min_state: int = 1,
    name: str = "random-pipeline",
) -> StreamGraph:
    """Random pipeline: states uniform in ``[min_state, max_state]``, channel
    rates drawn uniformly from ``rate_choices``.

    Passing e.g. ``rate_choices=[(1, 1), (2, 1), (1, 2), (3, 2)]`` produces
    inhomogeneous pipelines with up/down-samplers — the Section 4 setting
    ("modules form a chain but can have nonunit input and output rates").
    """
    rng = _rng(seed)
    if n < 1:
        raise GraphError("random_pipeline needs n >= 1")
    states = rng.integers(min_state, max_state + 1, size=n).tolist()
    idx = rng.integers(0, len(rate_choices), size=max(n - 1, 0))
    rates = [tuple(rate_choices[i]) for i in idx]
    return pipeline(states, rates, name=name)


def diamond(
    branch_len: int = 2,
    ways: int = 2,
    state: int = 4,
    name: str = "diamond",
) -> StreamGraph:
    """Homogeneous split/join diamond: source -> ``ways`` parallel chains of
    length ``branch_len`` -> sink.  The simplest dag where the well-ordered
    constraint bites: a partition putting one whole branch in each component
    contracts to an acyclic 2-path, but interleaving branch prefixes/suffixes
    across components can create contracted cycles."""
    g = StreamGraph(name)
    g.add_module("src", state=state)
    for w in range(ways):
        prev = "src"
        for i in range(branch_len):
            n = f"b{w}_{i}"
            g.add_module(n, state=state)
            g.add_channel(prev, n)
            prev = n
    g.add_module("snk", state=state)
    for w in range(ways):
        tail = f"b{w}_{branch_len - 1}" if branch_len > 0 else "src"
        g.add_channel(tail, "snk")
    return g


def split_join_tree(depth: int, state: int = 4, name: str = "tree") -> StreamGraph:
    """Complete binary split tree of the given depth followed by its mirror
    join tree — 2^(depth+1) - 1 splitter modules, the same number of joiners,
    homogeneous rates.  Models scatter/gather computations."""
    if depth < 0:
        raise GraphError("depth must be >= 0")
    g = StreamGraph(name)

    def add_split(path: str, d: int) -> List[str]:
        name_ = f"s{path or 'r'}"
        g.add_module(name_, state=state)
        if d == 0:
            return [name_]
        leaves: List[str] = []
        for side in "01":
            sub = add_split(path + side, d - 1)
            g.add_channel(name_, f"s{(path + side) or 'r'}")
            leaves.extend(sub)
        return leaves

    leaves = add_split("", depth)

    def add_join(path: str, d: int) -> str:
        name_ = f"j{path or 'r'}"
        g.add_module(name_, state=state)
        if d == 0:
            return name_
        for side in "01":
            child = add_join(path + side, d - 1)
            g.add_channel(child, name_)
        return name_

    root_join = add_join("", depth)
    for leaf in leaves:
        g.add_channel(leaf, f"j{leaf[1:] or 'r'}")
    return g


def butterfly(stages: int, state: int = 4, name: str = "butterfly") -> StreamGraph:
    """FFT-style butterfly network: ``2**stages`` lanes, ``stages`` layers,
    each layer-k node receiving from its own lane and the lane differing in
    bit k.  Homogeneous rates; single super source/sink added to satisfy the
    paper's endpoint assumption.  This is the canonical "hard to partition"
    streaming dag — every bisection has many crossing edges."""
    if stages < 1:
        raise GraphError("butterfly needs stages >= 1")
    lanes = 1 << stages
    g = StreamGraph(name)
    g.add_module("src", state=0)
    for lane in range(lanes):
        g.add_module(f"n0_{lane}", state=state)
        g.add_channel("src", f"n0_{lane}")
    for k in range(1, stages + 1):
        for lane in range(lanes):
            g.add_module(f"n{k}_{lane}", state=state)
            g.add_channel(f"n{k - 1}_{lane}", f"n{k}_{lane}")
            g.add_channel(f"n{k - 1}_{lane ^ (1 << (k - 1))}", f"n{k}_{lane}")
    g.add_module("snk", state=0)
    for lane in range(lanes):
        g.add_channel(f"n{stages}_{lane}", "snk")
    return g


def layered_random_dag(
    layers: int,
    width: int,
    max_state: int,
    seed: SeedLike = None,
    edge_prob: float = 0.5,
    min_state: int = 1,
    name: str = "layered-dag",
) -> StreamGraph:
    """Random homogeneous layered dag: ``layers`` layers of ``width`` modules,
    edges only between consecutive layers, each present with probability
    ``edge_prob`` (with a forced edge per node to keep everything connected).
    A single source feeds layer 0 and a single sink drains the last layer.
    """
    rng = _rng(seed)
    if layers < 1 or width < 1:
        raise GraphError("need layers >= 1 and width >= 1")
    g = StreamGraph(name)
    g.add_module("src", state=0)
    for layer in range(layers):
        for w in range(width):
            g.add_module(f"n{layer}_{w}", state=int(rng.integers(min_state, max_state + 1)))
    g.add_module("snk", state=0)

    for w in range(width):
        g.add_channel("src", f"n0_{w}")
    for layer in range(1, layers):
        covered = [False] * width  # layer-1 nodes with an outgoing edge
        for w in range(width):
            ins = [u for u in range(width) if rng.random() < edge_prob]
            if not ins:
                ins = [int(rng.integers(0, width))]
            for u in ins:
                g.add_channel(f"n{layer - 1}_{u}", f"n{layer}_{w}")
                covered[u] = True
        for u in range(width):
            # every node must feed the next layer, or it becomes a stray sink
            if not covered[u]:
                g.add_channel(f"n{layer - 1}_{u}", f"n{layer}_{int(rng.integers(0, width))}")
    for w in range(width):
        g.add_channel(f"n{layers - 1}_{w}", "snk")
    return g


def rate_matched_random_dag(
    layers: int,
    width: int,
    max_state: int,
    seed: SeedLike = None,
    rate_choices: Sequence[int] = (1, 2, 3),
    edge_prob: float = 0.5,
    name: str = "rate-dag",
) -> StreamGraph:
    """Random *inhomogeneous* rate-matched layered dag.

    Rate-matching is guaranteed by construction: we first assign every module
    a target per-layer gain ``G(layer)`` (a random positive rational built
    from ``rate_choices``), then set each channel's rates so that
    ``out/in = G(dst_layer) / G(src_layer)``.  Any assignment of this form
    makes every path between two fixed vertices carry the same gain product,
    because the product telescopes over layers.
    """
    rng = _rng(seed)
    from fractions import Fraction

    if layers < 1 or width < 1:
        raise GraphError("need layers >= 1 and width >= 1")

    # Per-layer gains: start at 1, multiply/divide by random small factors.
    gains: List[Fraction] = [Fraction(1)]
    for _ in range(layers):
        f = int(rng.choice(rate_choices))
        if rng.random() < 0.5:
            gains.append(gains[-1] * f)
        else:
            gains.append(gains[-1] / f)

    g = StreamGraph(name)
    g.add_module("src", state=0)
    for layer in range(layers):
        for w in range(width):
            g.add_module(f"n{layer}_{w}", state=int(rng.integers(1, max_state + 1)))
    g.add_module("snk", state=0)

    def connect(src: str, dst: str, gsrc: Fraction, gdst: Fraction) -> None:
        ratio = gdst / gsrc
        g.add_channel(src, dst, out_rate=ratio.numerator, in_rate=ratio.denominator)

    for w in range(width):
        connect("src", f"n0_{w}", gains[0], gains[1])
    for layer in range(1, layers):
        covered = [False] * width
        for w in range(width):
            ins = [u for u in range(width) if rng.random() < edge_prob]
            if not ins:
                ins = [int(rng.integers(0, width))]
            for u in ins:
                connect(f"n{layer - 1}_{u}", f"n{layer}_{w}", gains[layer], gains[layer + 1])
                covered[u] = True
        for u in range(width):
            if not covered[u]:
                connect(
                    f"n{layer - 1}_{u}",
                    f"n{layer}_{int(rng.integers(0, width))}",
                    gains[layer],
                    gains[layer + 1],
                )
    for w in range(width):
        connect(f"n{layers - 1}_{w}", "snk", gains[layers], gains[layers])
    return g
