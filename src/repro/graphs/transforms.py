"""Graph transformations used throughout the paper's constructions.

* :func:`normalize_source_sink` — the w.l.o.g. reduction of Section 2: a
  multi-source (multi-sink) dag is converted to one with a single source
  (sink) by adding a zero-state super-source/super-sink wired with rates that
  preserve rate-matching.
* :func:`induced_subgraph` — the subgraph induced by a vertex subset, used to
  evaluate components of a partition.
* :func:`contract_partition` — contracts every component of a partition into
  one vertex, producing the component multigraph whose acyclicity defines a
  *well-ordered* partition (Definition 2).
* :func:`as_networkx` — optional bridge for tests that use networkx as an
  oracle (the library itself never depends on networkx).
"""

from __future__ import annotations

from fractions import Fraction
from math import lcm
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import GraphError
from repro.graphs.sdf import StreamGraph

__all__ = [
    "normalize_source_sink",
    "induced_subgraph",
    "contract_partition",
    "as_networkx",
]

SUPER_SOURCE = "__source__"
SUPER_SINK = "__sink__"


def normalize_source_sink(graph: StreamGraph) -> StreamGraph:
    """Return a copy with a unique source and a unique sink.

    New modules have zero state (they model the external world, not cached
    computation).  Rates on the new edges are chosen so the resulting graph
    remains rate matched: if the original sources have gains ``g_i`` relative
    to the first source, the super-source sends ``out = num(g_i * L)`` tokens
    consumed ``in = L`` at source ``i``... in practice we hook each original
    source with ``out = r_i``/``in = 1`` where ``r`` restricted to sources is
    derived from a repetition vector of the *component-wise* graph, which is
    the standard construction.

    Graphs that are already single-source/single-sink are returned as an
    unmodified copy (no super nodes added).
    """
    sources = graph.sources()
    sinks = graph.sinks()
    if len(sources) <= 1 and len(sinks) <= 1:
        return graph.copy()

    g = graph.copy()

    # Relative firing frequencies of sources/sinks come from the repetition
    # vector when the graph is connected and rate matched; fall back to 1 for
    # isolated components.
    from repro.graphs.repetition import compute_gains

    gains: Dict[str, Fraction] = {}
    try:
        table = compute_gains(graph)
        gains = dict(table.node)
    except GraphError:
        gains = {m.name: Fraction(1) for m in graph.modules()}

    if len(sources) > 1:
        if SUPER_SOURCE in g:
            raise GraphError("graph already contains a super-source module")
        g.add_module(SUPER_SOURCE, state=0, work=0)
        denom = 1
        for s in sources:
            denom = lcm(denom, gains.get(s, Fraction(1)).denominator)
        for s in sources:
            rate = int(gains.get(s, Fraction(1)) * denom)
            # One super-source firing emits `rate` tokens consumed one-by-one
            # by source s, so s fires `rate` times per super firing, matching
            # its relative gain.
            g.add_channel(SUPER_SOURCE, s, out_rate=max(rate, 1), in_rate=1)

    if len(sinks) > 1:
        if SUPER_SINK in g:
            raise GraphError("graph already contains a super-sink module")
        g.add_module(SUPER_SINK, state=0, work=0)
        denom = 1
        for t in sinks:
            denom = lcm(denom, gains.get(t, Fraction(1)).denominator)
        for t in sinks:
            rate = int(gains.get(t, Fraction(1)) * denom)
            g.add_channel(t, SUPER_SINK, out_rate=1, in_rate=max(rate, 1))

    return g


def induced_subgraph(graph: StreamGraph, names: Iterable[str], name: str = "") -> StreamGraph:
    """Subgraph induced by ``names``: those modules plus every channel whose
    two endpoints both lie in the set.  Channel rates and module state carry
    over unchanged."""
    keep = set(names)
    for n in keep:
        graph.module(n)  # existence check
    sub = StreamGraph(name or f"{graph.name}[{len(keep)}]")
    for m in graph.modules():
        if m.name in keep:
            sub.add_module(m.name, state=m.state, work=m.work)
    for ch in graph.channels():
        if ch.src in keep and ch.dst in keep:
            sub.add_channel(ch.src, ch.dst, out_rate=ch.out_rate, in_rate=ch.in_rate)
    return sub


def contract_partition(
    graph: StreamGraph, components: Sequence[Iterable[str]]
) -> Tuple[StreamGraph, Dict[str, int]]:
    """Contract each component to a single vertex (Definition 2).

    Returns the contracted multigraph — one module per component, named
    ``"C<i>"`` with state equal to the component's total state — plus the
    mapping from original module name to component index.  Cross channels
    become channels between component vertices (parallel channels preserved,
    with their original rates); internal channels disappear.

    Raises :class:`GraphError` if ``components`` is not a partition of the
    graph's vertex set (missing or duplicated modules).
    """
    assignment: Dict[str, int] = {}
    for idx, comp in enumerate(components):
        comp_list = list(comp)
        if not comp_list:
            raise GraphError(f"component {idx} is empty")
        for n in comp_list:
            graph.module(n)
            if n in assignment:
                raise GraphError(f"module {n!r} appears in components {assignment[n]} and {idx}")
            assignment[n] = idx
    missing = [m.name for m in graph.modules() if m.name not in assignment]
    if missing:
        raise GraphError(f"components do not cover modules: {missing}")

    contracted = StreamGraph(f"{graph.name}/contracted")
    totals: Dict[int, int] = {}
    for name, idx in assignment.items():
        totals[idx] = totals.get(idx, 0) + graph.state(name)
    for idx in range(len(components)):
        contracted.add_module(f"C{idx}", state=totals.get(idx, 0))
    for ch in graph.channels():
        a, b = assignment[ch.src], assignment[ch.dst]
        if a != b:
            contracted.add_channel(f"C{a}", f"C{b}", out_rate=ch.out_rate, in_rate=ch.in_rate)
    return contracted, assignment


def as_networkx(graph: StreamGraph):
    """Convert to a ``networkx.MultiDiGraph`` (test oracle only)."""
    import networkx as nx

    g = nx.MultiDiGraph(name=graph.name)
    for m in graph.modules():
        g.add_node(m.name, state=m.state, work=m.work)
    for ch in graph.channels():
        g.add_edge(ch.src, ch.dst, key=ch.cid, out_rate=ch.out_rate, in_rate=ch.in_rate)
    return g
