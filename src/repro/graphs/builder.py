"""Fluent construction API for stream graphs.

:class:`GraphBuilder` lets examples and generators express common streaming
shapes (chains, split/join, round-robin distribution) without repetitive
``add_module``/``add_channel`` calls.  It mirrors the vocabulary of StreamIt
(pipelines, split-joins) because the paper's motivating systems — StreamIt,
GNU Radio, Simulink, LabVIEW — are all built from these combinators.

The builder tracks a *frontier*: the set of modules whose outputs are not yet
connected.  ``then`` extends every frontier module with a new stage; ``split``
fans out; ``join`` fans in.  ``build`` returns the finished
:class:`~repro.graphs.sdf.StreamGraph`.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import GraphError
from repro.graphs.sdf import StreamGraph

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Incremental construction of stream graphs with a moving frontier."""

    def __init__(self, name: str = "stream") -> None:
        self.graph = StreamGraph(name)
        self._frontier: List[str] = []
        self._counter = 0

    # ------------------------------------------------------------------
    def _fresh(self, prefix: str) -> str:
        self._counter += 1
        name = f"{prefix}{self._counter}"
        while self.graph.has_module(name):
            self._counter += 1
            name = f"{prefix}{self._counter}"
        return name

    @property
    def frontier(self) -> List[str]:
        """Names of modules whose outputs are currently unconnected."""
        return list(self._frontier)

    # ------------------------------------------------------------------
    def source(self, name: str = "", state: int = 0) -> "GraphBuilder":
        """Start the graph with a source module (no inputs)."""
        if self._frontier:
            raise GraphError("source() must be the first stage")
        n = name or self._fresh("src")
        self.graph.add_module(n, state=state)
        self._frontier = [n]
        return self

    def then(
        self,
        name: str = "",
        state: int = 0,
        out_rate: int = 1,
        in_rate: int = 1,
        work: int = 1,
    ) -> "GraphBuilder":
        """Append one module consuming from every frontier module.

        Each frontier->new channel gets the given rates (``out_rate`` tokens
        produced per frontier firing, ``in_rate`` consumed per new firing).
        With a multi-module frontier this is a *join*.
        """
        if not self._frontier:
            raise GraphError("then() requires a frontier; call source() first")
        n = name or self._fresh("f")
        self.graph.add_module(n, state=state, work=work)
        for up in self._frontier:
            self.graph.add_channel(up, n, out_rate=out_rate, in_rate=in_rate)
        self._frontier = [n]
        return self

    def chain(
        self,
        count: int,
        state: int = 0,
        out_rate: int = 1,
        in_rate: int = 1,
        prefix: str = "f",
        state_fn: Optional[Callable[[int], int]] = None,
    ) -> "GraphBuilder":
        """Append ``count`` modules in series, all with identical rates.

        ``state_fn(i)`` overrides the state of the i-th appended module; this
        is how generators produce irregular state profiles.
        """
        for i in range(count):
            s = state_fn(i) if state_fn is not None else state
            self.then(name=self._fresh(prefix), state=s, out_rate=out_rate, in_rate=in_rate)
        return self

    def split(
        self,
        ways: int,
        state: int = 0,
        out_rate: int = 1,
        in_rate: int = 1,
        prefix: str = "b",
    ) -> "GraphBuilder":
        """Fan the single frontier module out to ``ways`` parallel branches.

        Every branch module consumes ``in_rate`` of the ``out_rate`` tokens
        the splitter pushes on its own dedicated channel (duplicate-style
        split; round-robin distribution is expressed by giving the splitter
        different per-branch rates via :meth:`split_rates`).
        """
        if len(self._frontier) != 1:
            raise GraphError(f"split() requires exactly one frontier module, have {self._frontier}")
        up = self._frontier[0]
        branches = []
        for _ in range(ways):
            n = self._fresh(prefix)
            self.graph.add_module(n, state=state)
            self.graph.add_channel(up, n, out_rate=out_rate, in_rate=in_rate)
            branches.append(n)
        self._frontier = branches
        return self

    def split_rates(
        self, rates: Sequence[Tuple[int, int]], state: int = 0, prefix: str = "b"
    ) -> "GraphBuilder":
        """Fan out with per-branch ``(out_rate, in_rate)`` pairs."""
        if len(self._frontier) != 1:
            raise GraphError("split_rates() requires exactly one frontier module")
        up = self._frontier[0]
        branches = []
        for orate, irate in rates:
            n = self._fresh(prefix)
            self.graph.add_module(n, state=state)
            self.graph.add_channel(up, n, out_rate=orate, in_rate=irate)
            branches.append(n)
        self._frontier = branches
        return self

    def each(
        self, count: int, state: int = 0, out_rate: int = 1, in_rate: int = 1, prefix: str = "w"
    ) -> "GraphBuilder":
        """Extend *every* frontier branch independently with a chain of
        ``count`` modules (keeps the frontier width unchanged)."""
        new_frontier = []
        for up in self._frontier:
            prev = up
            for _ in range(count):
                n = self._fresh(prefix)
                self.graph.add_module(n, state=state)
                self.graph.add_channel(prev, n, out_rate=out_rate, in_rate=in_rate)
                prev = n
            new_frontier.append(prev)
        self._frontier = new_frontier
        return self

    def map_frontier(
        self, fn: Callable[[int, str], Tuple[str, int, int, int]]
    ) -> "GraphBuilder":
        """Replace each frontier branch with one new module.

        ``fn(i, upstream_name)`` returns ``(name, state, out_rate, in_rate)``
        for branch ``i``; the new module becomes that branch's frontier."""
        new_frontier = []
        for i, up in enumerate(self._frontier):
            name, state, orate, irate = fn(i, up)
            self.graph.add_module(name, state=state)
            self.graph.add_channel(up, name, out_rate=orate, in_rate=irate)
            new_frontier.append(name)
        self._frontier = new_frontier
        return self

    def join(
        self, name: str = "", state: int = 0, out_rate: int = 1, in_rate: int = 1
    ) -> "GraphBuilder":
        """Merge all frontier branches into one module (alias of then())."""
        return self.then(name=name, state=state, out_rate=out_rate, in_rate=in_rate)

    def sink(self, name: str = "", state: int = 0, in_rate: int = 1) -> "GraphBuilder":
        """Terminate the graph with a sink consuming every frontier output."""
        return self.then(name=name or "sink", state=state, in_rate=in_rate)

    # ------------------------------------------------------------------
    def build(self, validate: bool = True) -> StreamGraph:
        """Finish construction, optionally validating Section-2 assumptions."""
        if validate:
            from repro.graphs.validate import validate_graph

            report = validate_graph(self.graph)
            report.raise_if_failed()
        return self.graph
