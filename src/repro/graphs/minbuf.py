"""Minimum channel buffer sizes for deadlock-free scheduling.

The paper (Section 2, "Assumptions") relies on a procedure from Lee &
Messerschmitt [17] to compute ``minBuf(e)``, the minimum buffer capacity a
channel needs so that *some* schedule completes an iteration without
overflow.  For a single SDF channel ``(u, v)`` with production rate
``p = out(u, v)`` and consumption rate ``c = in(u, v)``, the classical tight
bound for a self-timed (data-driven) schedule is

    minBuf(u, v) = p + c - gcd(p, c)

which specializes to ``in(e) + out(e) - 1`` for coprime rates and — matching
the paper's remark — to ``p + c = 2`` (well, ``1`` by the formula; we keep
the paper's additive ``in + out`` convention available via
``convention="paper"``) for homogeneous channels.  The paper only ever uses
``minBuf`` inside O(·) bounds with the stated condition
``sum minBuf(e) = O(sum s(v))``, so either convention preserves every bound;
the executor uses the *paper* convention (``in + out``) by default so that a
producer can always complete a firing before the consumer starts.

:func:`verify_min_buffer` checks, by demand-driven simulation on the two-node
subgraph, that a candidate capacity admits a deadlock-free iteration — used
by tests as an oracle for the closed-form bound.
"""

from __future__ import annotations

from math import gcd, lcm
from typing import Dict, Literal

from repro.errors import GraphError
from repro.graphs.sdf import Channel, StreamGraph

__all__ = ["min_buffer", "min_buffers", "verify_min_buffer"]

Convention = Literal["paper", "tight"]


def min_buffer(channel: Channel, convention: Convention = "paper") -> int:
    """Minimum buffer capacity of one channel.

    ``paper``:  ``in + out`` — the additive convention the paper states for
                pipelines and homogeneous dags ("minBuf(e) = in(e) + out(e)").
                A full producer firing always fits even when the consumer has
                not yet drained its previous batch.
    ``tight``:  ``in + out - gcd(in, out)`` — the classical minimum for
                self-timed execution of a single SDF edge.
    """
    p, c = channel.out_rate, channel.in_rate
    if convention == "paper":
        return p + c + channel.delay
    if convention == "tight":
        return p + c - gcd(p, c) + channel.delay
    raise GraphError(f"unknown minBuf convention {convention!r}")


def min_buffers(graph: StreamGraph, convention: Convention = "paper") -> Dict[int, int]:
    """``minBuf`` for every channel, keyed by channel id."""
    return {ch.cid: min_buffer(ch, convention) for ch in graph.channels()}


def verify_min_buffer(channel: Channel, capacity: int, iterations: int = 1) -> bool:
    """Simulation oracle: can ``iterations`` iterations of the two-module
    producer/consumer system complete with the given channel capacity?

    Uses the self-timed greedy policy that is optimal for a single edge:
    fire the consumer whenever it has enough tokens, otherwise fire the
    producer if the result fits.  Returns False on deadlock (producer blocked
    by a full buffer while the consumer lacks tokens — impossible for a
    correct capacity, but reachable when ``capacity < max(p, c)``).
    """
    p, c = channel.out_rate, channel.in_rate
    period = lcm(p, c)
    prod_needed = iterations * (period // p)
    cons_needed = iterations * (period // c)
    fired_p = fired_c = 0
    tokens = 0
    # Each loop iteration fires exactly one module, so the loop terminates
    # after at most prod_needed + cons_needed steps or reports deadlock.
    while fired_p < prod_needed or fired_c < cons_needed:
        if fired_c < cons_needed and tokens >= c:
            tokens -= c
            fired_c += 1
        elif fired_p < prod_needed and tokens + p <= capacity:
            tokens += p
            fired_p += 1
        else:
            return False
    return True
