"""Stream-graph serialization: JSON round-trip and Graphviz DOT export.

The JSON schema is deliberately minimal and stable so graphs can be shipped
between tools (and checked into experiment configs)::

    {
      "name": "fm-radio",
      "modules": [{"name": "lpf", "state": 80, "work": 1}, ...],
      "channels": [{"src": "reader", "dst": "lpf",
                    "out_rate": 4, "in_rate": 4}, ...]
    }

Channel ids are not serialized — they are assigned in channel-list order on
load, which reproduces the original ids for graphs built through the normal
API (ids are insertion-ordered there too).

DOT export annotates modules with state sizes and channels with their SDF
rates; when a :class:`~repro.core.partition.Partition` is supplied,
components become clusters and cross edges are highlighted — the quickest
way to *see* a partition.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.errors import GraphError
from repro.graphs.sdf import StreamGraph

__all__ = ["graph_to_dict", "graph_from_dict", "save_graph", "load_graph", "to_dot"]


def graph_to_dict(graph: StreamGraph) -> Dict[str, Any]:
    """Plain-dict representation (JSON-serializable)."""
    return {
        "name": graph.name,
        "modules": [
            {"name": m.name, "state": m.state, "work": m.work} for m in graph.modules()
        ],
        "channels": [
            {
                "src": ch.src,
                "dst": ch.dst,
                "out_rate": ch.out_rate,
                "in_rate": ch.in_rate,
                "delay": ch.delay,
            }
            for ch in graph.channels()
        ],
    }


def graph_from_dict(data: Dict[str, Any]) -> StreamGraph:
    """Inverse of :func:`graph_to_dict`; validates structure as it builds."""
    try:
        g = StreamGraph(data.get("name", "stream"))
        for m in data["modules"]:
            g.add_module(m["name"], state=int(m.get("state", 0)), work=int(m.get("work", 1)))
        for ch in data["channels"]:
            g.add_channel(
                ch["src"],
                ch["dst"],
                out_rate=int(ch.get("out_rate", 1)),
                in_rate=int(ch.get("in_rate", 1)),
                delay=int(ch.get("delay", 0)),
            )
        return g
    except (KeyError, TypeError) as exc:
        raise GraphError(f"malformed graph dict: {exc}") from exc


def save_graph(graph: StreamGraph, path: str) -> None:
    """Write the JSON representation to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(graph_to_dict(graph), fh, indent=2, sort_keys=False)
        fh.write("\n")


def load_graph(path: str) -> StreamGraph:
    """Read a graph written by :func:`save_graph`."""
    with open(path, "r", encoding="utf-8") as fh:
        return graph_from_dict(json.load(fh))


def to_dot(graph: StreamGraph, partition: Optional[object] = None) -> str:
    """Graphviz DOT text; components become clusters when a partition is
    given and cross edges are drawn bold red."""
    lines = [f'digraph "{graph.name}" {{', "  rankdir=LR;", '  node [shape=box];']
    if partition is not None:
        assignment = {n: partition.component_of(n) for n in graph.module_names()}
        for idx, comp in enumerate(partition.components):
            lines.append(f"  subgraph cluster_{idx} {{")
            lines.append(f'    label="C{idx} (state={partition.component_state(idx)})";')
            for name in comp:
                m = graph.module(name)
                lines.append(f'    "{name}" [label="{name}\\ns={m.state}"];')
            lines.append("  }")
    else:
        assignment = None
        for m in graph.modules():
            lines.append(f'  "{m.name}" [label="{m.name}\\ns={m.state}"];')
    for ch in graph.channels():
        label = "" if ch.is_homogeneous() else f' [label="{ch.out_rate}:{ch.in_rate}"]'
        style = ""
        if assignment is not None and assignment[ch.src] != assignment[ch.dst]:
            style = ' [color=red, penwidth=2]' if not label else label[:-1] + ", color=red, penwidth=2]"
            lines.append(f'  "{ch.src}" -> "{ch.dst}"{style};')
            continue
        lines.append(f'  "{ch.src}" -> "{ch.dst}"{label};')
    lines.append("}")
    return "\n".join(lines)
