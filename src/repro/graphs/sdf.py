"""Synchronous dataflow (SDF) stream graphs.

This module implements the streaming model of Section 2 of the paper: a
directed acyclic multigraph whose vertices are *modules* and whose edges are
FIFO *channels*.  A module ``v`` carries

* a *state size* ``s(v)`` — the number of memory words that must reside in
  cache for ``v`` to fire, and
* per-channel *rates*: each time ``v`` fires it consumes ``in(u, v)`` tokens
  from every incoming channel ``(u, v)`` and produces ``out(v, w)`` tokens on
  every outgoing channel ``(v, w)``.

Rates are fixed integers known in advance — this is exactly the synchronous
dataflow restriction of Lee and Messerschmitt that the paper assumes.  All
tokens are unit sized (one word), which the paper argues is without loss of
generality.

The graph is a *multigraph*: two modules may be connected by several parallel
channels with different rates (the paper says "directed graph (or
multigraph)").  Channels therefore have their own identity
(:class:`Channel`, keyed by an integer id) rather than being identified by
their endpoint pair.

Nothing in this module enforces acyclicity or rate matching; those are
checked by :mod:`repro.graphs.validate` so that tests can construct broken
graphs on purpose.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import GraphError

__all__ = ["Module", "Channel", "StreamGraph"]


@dataclass(frozen=True)
class Module:
    """A computation module (vertex) in a stream graph.

    Attributes
    ----------
    name:
        Unique identifier within the graph.
    state:
        State size ``s(v)`` in words: the code/data that must be loaded into
        cache in order to execute the module (Section 2).  Must be >= 0; a
        zero-state module models a pure wire/rate-changer.
    work:
        Optional abstract compute cost per firing.  Not used by the cache
        analysis (the paper's cost model counts only block transfers) but
        carried so schedulers can report compute balance.
    """

    name: str
    state: int = 0
    work: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise GraphError("module name must be non-empty")
        if self.state < 0:
            raise GraphError(f"module {self.name!r}: state must be >= 0, got {self.state}")
        if self.work < 0:
            raise GraphError(f"module {self.name!r}: work must be >= 0, got {self.work}")


@dataclass(frozen=True)
class Channel:
    """A directed FIFO channel (edge) between two modules.

    Attributes
    ----------
    cid:
        Integer id, unique within the graph; identifies the channel in a
        multigraph where parallel edges exist.
    src, dst:
        Names of the producing and consuming modules.
    out_rate:
        ``out(src, dst)``: tokens pushed per firing of ``src``.
    in_rate:
        ``in(src, dst)``: tokens popped per firing of ``dst``.
    delay:
        Initial tokens present on the channel before any firing (an SDF
        *delay*).  Delays let downstream modules fire ahead of their
        producers — software pipelining — and are the standard mechanism
        for breaking feedback in SDF; the paper's dag restriction means we
        use them only on forward edges, where they skew schedules without
        changing rates or gains.
    """

    cid: int
    src: str
    dst: str
    out_rate: int = 1
    in_rate: int = 1
    delay: int = 0

    def __post_init__(self) -> None:
        if self.out_rate <= 0 or self.in_rate <= 0:
            raise GraphError(
                f"channel {self.src}->{self.dst}: rates must be positive "
                f"(got out={self.out_rate}, in={self.in_rate})"
            )
        if self.delay < 0:
            raise GraphError(
                f"channel {self.src}->{self.dst}: delay (initial tokens) must "
                f"be >= 0, got {self.delay}"
            )
        if self.src == self.dst:
            raise GraphError(f"self-loop channel on {self.src!r} not allowed (graph must be a dag)")

    @property
    def endpoints(self) -> Tuple[str, str]:
        return (self.src, self.dst)

    def is_homogeneous(self) -> bool:
        """True when the channel carries one token per firing on both ends."""
        return self.out_rate == 1 and self.in_rate == 1


class StreamGraph:
    """A mutable SDF multigraph.

    The class intentionally stays a dumb container: rate-matching, gain
    computation, buffer sizing and scheduling all live in sibling modules and
    take a :class:`StreamGraph` as input.  Mutation is only supported through
    :meth:`add_module` and :meth:`add_channel`; removal is not supported
    (build a new graph via :mod:`repro.graphs.transforms` instead), which
    keeps derived data easy to reason about.
    """

    def __init__(self, name: str = "stream") -> None:
        self.name = name
        self._modules: Dict[str, Module] = {}
        self._channels: Dict[int, Channel] = {}
        self._out: Dict[str, List[int]] = {}
        self._in: Dict[str, List[int]] = {}
        self._next_cid = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_module(self, name: str, state: int = 0, work: int = 1) -> Module:
        """Add a module; raises :class:`GraphError` on duplicate names."""
        if name in self._modules:
            raise GraphError(f"duplicate module name {name!r}")
        mod = Module(name=name, state=state, work=work)
        self._modules[name] = mod
        self._out[name] = []
        self._in[name] = []
        return mod

    def add_channel(
        self, src: str, dst: str, out_rate: int = 1, in_rate: int = 1, delay: int = 0
    ) -> Channel:
        """Add a channel ``src -> dst`` with the given SDF rates and an
        optional delay (initial token count).

        Parallel channels between the same pair are allowed (multigraph).
        """
        if src not in self._modules:
            raise GraphError(f"unknown source module {src!r}")
        if dst not in self._modules:
            raise GraphError(f"unknown destination module {dst!r}")
        ch = Channel(cid=self._next_cid, src=src, dst=dst, out_rate=out_rate,
                     in_rate=in_rate, delay=delay)
        self._next_cid += 1
        self._channels[ch.cid] = ch
        self._out[src].append(ch.cid)
        self._in[dst].append(ch.cid)
        return ch

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def n_modules(self) -> int:
        return len(self._modules)

    @property
    def n_channels(self) -> int:
        return len(self._channels)

    def modules(self) -> Iterator[Module]:
        """Iterate modules in insertion order."""
        return iter(self._modules.values())

    def module_names(self) -> List[str]:
        return list(self._modules.keys())

    def channels(self) -> Iterator[Channel]:
        """Iterate channels in insertion (cid) order."""
        return iter(self._channels.values())

    def module(self, name: str) -> Module:
        try:
            return self._modules[name]
        except KeyError:
            raise GraphError(f"unknown module {name!r}") from None

    def channel(self, cid: int) -> Channel:
        try:
            return self._channels[cid]
        except KeyError:
            raise GraphError(f"unknown channel id {cid}") from None

    def has_module(self, name: str) -> bool:
        return name in self._modules

    def state(self, name: str) -> int:
        """State size ``s(v)`` of a module."""
        return self.module(name).state

    def total_state(self, names: Optional[Iterable[str]] = None) -> int:
        """Sum of state sizes over ``names`` (default: all modules)."""
        if names is None:
            return sum(m.state for m in self._modules.values())
        return sum(self.module(n).state for n in names)

    def out_channels(self, name: str) -> List[Channel]:
        """Channels leaving ``name``, in insertion order."""
        return [self._channels[c] for c in self._out[self.module(name).name]]

    def in_channels(self, name: str) -> List[Channel]:
        """Channels entering ``name``, in insertion order."""
        return [self._channels[c] for c in self._in[self.module(name).name]]

    def successors(self, name: str) -> List[str]:
        """Distinct successor module names, in first-edge order."""
        seen: Dict[str, None] = {}
        for ch in self.out_channels(name):
            seen.setdefault(ch.dst)
        return list(seen)

    def predecessors(self, name: str) -> List[str]:
        seen: Dict[str, None] = {}
        for ch in self.in_channels(name):
            seen.setdefault(ch.src)
        return list(seen)

    def degree(self, name: str) -> int:
        """Total number of channels incident on the module."""
        return len(self._out[name]) + len(self._in[name])

    def sources(self) -> List[str]:
        """Modules with no incoming channels."""
        return [n for n in self._modules if not self._in[n]]

    def sinks(self) -> List[str]:
        """Modules with no outgoing channels."""
        return [n for n in self._modules if not self._out[n]]

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------
    def topological_order(self) -> List[str]:
        """Kahn topological sort; raises :class:`repro.errors.CycleError`
        when the graph has a directed cycle."""
        from repro.errors import CycleError

        indeg = {n: len(self._in[n]) for n in self._modules}
        ready = [n for n, d in indeg.items() if d == 0]
        order: List[str] = []
        head = 0
        while head < len(ready):
            u = ready[head]
            head += 1
            order.append(u)
            for ch in self.out_channels(u):
                indeg[ch.dst] -= 1
                if indeg[ch.dst] == 0:
                    ready.append(ch.dst)
        if len(order) != len(self._modules):
            raise CycleError(f"graph {self.name!r} contains a directed cycle")
        return order

    def is_dag(self) -> bool:
        from repro.errors import CycleError

        try:
            self.topological_order()
            return True
        except CycleError:
            return False

    def is_pipeline(self) -> bool:
        """True when the graph is a single directed chain (Section 4): each
        module has at most one input channel and at most one output channel,
        and the graph is connected with one source and one sink."""
        if self.n_modules == 0:
            return False
        if self.n_modules == 1:
            return True
        for n in self._modules:
            if len(self._out[n]) > 1 or len(self._in[n]) > 1:
                return False
        return len(self.sources()) == 1 and len(self.sinks()) == 1 and self.is_dag()

    def is_homogeneous(self) -> bool:
        """True when every channel has ``in == out == 1`` (Section 2)."""
        return all(ch.is_homogeneous() for ch in self._channels.values())

    def pipeline_order(self) -> List[str]:
        """Module names source->sink for a pipeline graph."""
        if not self.is_pipeline():
            raise GraphError(f"graph {self.name!r} is not a pipeline")
        return self.topological_order()

    def channels_between(self, src: str, dst: str) -> List[Channel]:
        """All parallel channels from ``src`` to ``dst``."""
        return [ch for ch in self.out_channels(src) if ch.dst == dst]

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "StreamGraph":
        g = StreamGraph(name or self.name)
        for m in self.modules():
            g.add_module(m.name, state=m.state, work=m.work)
        for ch in self.channels():
            g.add_channel(ch.src, ch.dst, out_rate=ch.out_rate, in_rate=ch.in_rate,
                          delay=ch.delay)
        return g

    def __contains__(self, name: str) -> bool:
        return name in self._modules

    def __repr__(self) -> str:
        return (
            f"StreamGraph({self.name!r}, modules={self.n_modules}, "
            f"channels={self.n_channels}, state={self.total_state()})"
        )

    def describe(self) -> str:
        """Multi-line human-readable summary (used by examples)."""
        lines = [repr(self)]
        for m in self.modules():
            outs = ", ".join(
                f"{ch.dst}[{ch.out_rate}->{ch.in_rate}]" for ch in self.out_channels(m.name)
            )
            lines.append(f"  {m.name} (s={m.state}) -> {outs or '(sink)'}")
        return "\n".join(lines)
