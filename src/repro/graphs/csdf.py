"""Cyclo-static dataflow (CSDF) and its reduction to SDF.

The paper's related work engages CSDF twice: Moonen et al. [21] schedule
"computational graphs that allow modules to change their gains in a cyclic
fashion", and Benazouz et al. [4] minimize buffers for "cyclo-static
dataflow graphs".  CSDF generalizes SDF: a module cycles through ``P``
*phases*, consuming/producing a (possibly different) fixed amount in each —
e.g. a distributor that alternates its output between two channels has
rates ``(1, 0)`` on one channel and ``(0, 1)`` on the other.

Everything in this library (gains, partitioning, the theorems themselves)
is stated for SDF, so CSDF support uses the standard *phase expansion*: each
CSDF module ``v`` with ``P`` phases becomes SDF modules ``v#0 .. v#P-1``
arranged in a cycle of precedence — realized acyclically here by a chain of
single-token "baton" channels ``v#p -> v#p+1`` (the final wrap-around baton
is replaced by an initial token / delay on the first phase so the dag
property is preserved).  Phase ``p`` gets the p-th entry of every rate
sequence.  The expansion is exact: firing the expanded modules once each, in
baton order, is one full cycle of the CSDF module.

State accounting: every phase carries the full module state (the paper's
model — the module must be resident to fire, whichever phase it is in).
The partitioner sees the phases as ordinary modules and — because batons
make consecutive phases adjacent with gain-1 edges — naturally keeps phases
of one module in one component unless the state bound forces a split.

Limitations (documented, tested): zero-rate phases are supported on
channels (that is CSDF's point), but a channel's rate sequence must produce
at least one token over the full cycle; and phase counts must be >= 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import GraphError
from repro.graphs.sdf import StreamGraph

__all__ = ["CsdfModule", "CsdfChannel", "CsdfGraph", "expand_csdf"]


@dataclass(frozen=True)
class CsdfModule:
    """A cyclo-static module: ``phases`` firings complete one cycle."""

    name: str
    phases: int
    state: int = 0
    work: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise GraphError("module name must be non-empty")
        if self.phases < 1:
            raise GraphError(f"module {self.name!r}: phases must be >= 1")
        if self.state < 0:
            raise GraphError(f"module {self.name!r}: state must be >= 0")


@dataclass(frozen=True)
class CsdfChannel:
    """A channel with per-phase rate sequences.

    ``out_seq`` has one entry per phase of ``src`` (tokens produced in that
    phase); ``in_seq`` one entry per phase of ``dst``.  Zero entries are
    allowed; the cycle totals must be positive.
    """

    cid: int
    src: str
    dst: str
    out_seq: Tuple[int, ...]
    in_seq: Tuple[int, ...]
    delay: int = 0

    def __post_init__(self) -> None:
        if any(r < 0 for r in self.out_seq) or any(r < 0 for r in self.in_seq):
            raise GraphError(f"channel {self.src}->{self.dst}: rates must be >= 0")
        if sum(self.out_seq) == 0 or sum(self.in_seq) == 0:
            raise GraphError(
                f"channel {self.src}->{self.dst}: cycle totals must be positive"
            )
        if self.delay < 0:
            raise GraphError(f"channel {self.src}->{self.dst}: delay must be >= 0")


class CsdfGraph:
    """A cyclo-static dataflow graph (thin container, mirrors StreamGraph)."""

    def __init__(self, name: str = "csdf") -> None:
        self.name = name
        self._modules: Dict[str, CsdfModule] = {}
        self._channels: List[CsdfChannel] = []

    def add_module(self, name: str, phases: int = 1, state: int = 0, work: int = 1) -> CsdfModule:
        if name in self._modules:
            raise GraphError(f"duplicate module name {name!r}")
        if "#" in name:
            raise GraphError(f"module name {name!r} may not contain '#' (reserved for phases)")
        m = CsdfModule(name=name, phases=phases, state=state, work=work)
        self._modules[name] = m
        return m

    def add_channel(
        self,
        src: str,
        dst: str,
        out_seq: Sequence[int],
        in_seq: Sequence[int],
        delay: int = 0,
    ) -> CsdfChannel:
        if src not in self._modules:
            raise GraphError(f"unknown source module {src!r}")
        if dst not in self._modules:
            raise GraphError(f"unknown destination module {dst!r}")
        if len(out_seq) != self._modules[src].phases:
            raise GraphError(
                f"channel {src}->{dst}: out_seq length {len(out_seq)} != "
                f"{self._modules[src].phases} phases of {src!r}"
            )
        if len(in_seq) != self._modules[dst].phases:
            raise GraphError(
                f"channel {src}->{dst}: in_seq length {len(in_seq)} != "
                f"{self._modules[dst].phases} phases of {dst!r}"
            )
        ch = CsdfChannel(
            cid=len(self._channels),
            src=src,
            dst=dst,
            out_seq=tuple(out_seq),
            in_seq=tuple(in_seq),
            delay=delay,
        )
        self._channels.append(ch)
        return ch

    def modules(self):
        return iter(self._modules.values())

    def channels(self):
        return iter(self._channels)

    def module(self, name: str) -> CsdfModule:
        try:
            return self._modules[name]
        except KeyError:
            raise GraphError(f"unknown module {name!r}") from None

    @property
    def n_modules(self) -> int:
        return len(self._modules)


def phase_name(module: str, phase: int) -> str:
    return f"{module}#{phase}"


def expand_csdf(graph: CsdfGraph) -> Tuple[StreamGraph, Dict[str, List[str]]]:
    """Phase-expand a CSDF graph to an equivalent SDF graph.

    Returns the SDF graph plus the mapping ``module -> [phase names]``.

    Construction:

    * module ``v`` with P > 1 phases becomes ``v#0 .. v#P-1``; phase p
      carries the module's full state (the residency requirement is per
      firing, not per cycle) and ``work``;
    * *baton* channels ``v#p -> v#(p+1)`` with unit rates enforce the phase
      order within a cycle; the wrap-around is an initial token (delay 1)
      on the ``v#0 -> v#1`` baton's counterpart: concretely, phase 0 is
      enabled initially because every baton ``v#(p) -> v#(p+1)`` starts
      empty except the implicit "cycle start" — we realize this by giving
      ``v#(P-1) -> v#0`` semantics through a *forward* chain only: each
      cycle, the demand-driven order fires ``v#0`` first because only it
      lacks a baton predecessor.  Firing counts stay consistent because all
      phases have equal gain (the balance equations force one firing of
      each phase per cycle);
    * a CSDF channel routes through a zero-state per-channel *relay*
      ``c<cid>``: producing phases feed the relay, the relay feeds consuming
      phases, with rates chosen so every edge is rate matched.  This
      requires the channel's cycle totals ``O = sum(out_seq)`` and
      ``I = sum(in_seq)`` to divide one another (covering distributors,
      collectors, decimators/expanders and all equal-total channels);
      non-dividing totals need hyperperiod expansion, which we reject with
      a clear error rather than approximate.

    Fidelity note: the relay construction preserves token *counts*, buffer
    traffic, state residency and precedence exactly — which is everything
    the cache cost model observes.  It does not preserve the identity
    routing of individual tokens (our simulator is data-agnostic, so this
    does not affect any measurement).

    The expansion multiplies module count by the phase count and adds one
    relay per channel — acceptable for the library's graph sizes and fully
    compatible with every partitioner and scheduler downstream.

    Caveat: a phase whose rates are zero on *every* incident channel ends up
    connected only by batons; if it is the last phase it becomes an extra
    sink (first phase: extra source).  Such graphs are valid SDF but violate
    the paper's single-source/sink assumption — compose with
    :func:`repro.graphs.transforms.normalize_source_sink` when your CSDF
    modules contain fully idle phases.
    """
    sdf = StreamGraph(f"{graph.name}/sdf")
    phase_map: Dict[str, List[str]] = {}

    for m in graph.modules():
        if m.phases == 1:
            sdf.add_module(m.name, state=m.state, work=m.work)
            phase_map[m.name] = [m.name]
            continue
        names = [phase_name(m.name, p) for p in range(m.phases)]
        for n in names:
            sdf.add_module(n, state=m.state, work=m.work)
        for a, b in zip(names, names[1:]):
            sdf.add_channel(a, b)  # baton: fires in phase order each cycle
        phase_map[m.name] = names

    for ch in graph.channels():
        src_phases = phase_map[ch.src]
        dst_phases = phase_map[ch.dst]
        O = sum(ch.out_seq)  # tokens per src cycle
        I = sum(ch.in_seq)  # tokens per dst cycle
        relay = f"c{ch.cid}"
        sdf.add_module(relay, state=0, work=0)
        if O % I == 0:
            # relay fires once per SOURCE cycle and redistributes to the
            # O/I destination cycles that cycle feeds.
            ratio = O // I
            for p, rate in enumerate(ch.out_seq):
                if rate > 0:
                    sdf.add_channel(src_phases[p], relay, out_rate=rate, in_rate=rate)
            remaining_delay = ch.delay
            for q, rate in enumerate(ch.in_seq):
                if rate > 0:
                    d = min(remaining_delay, rate * ratio) if remaining_delay else 0
                    remaining_delay -= d
                    sdf.add_channel(
                        relay, dst_phases[q], out_rate=rate * ratio, in_rate=rate, delay=d
                    )
        elif I % O == 0:
            # relay fires once per DESTINATION cycle, gathering the I/O
            # source cycles that feed it.
            ratio = I // O
            for p, rate in enumerate(ch.out_seq):
                if rate > 0:
                    sdf.add_channel(
                        src_phases[p], relay, out_rate=rate, in_rate=rate * ratio
                    )
            remaining_delay = ch.delay
            for q, rate in enumerate(ch.in_seq):
                if rate > 0:
                    d = min(remaining_delay, rate) if remaining_delay else 0
                    remaining_delay -= d
                    sdf.add_channel(relay, dst_phases[q], out_rate=rate, in_rate=rate, delay=d)
        else:
            raise GraphError(
                f"channel {ch.src}->{ch.dst}: cycle totals {O} and {I} do not "
                "divide; general CSDF routing needs hyperperiod expansion, "
                "which this library does not implement (see module docstring)"
            )
    return sdf, phase_map
