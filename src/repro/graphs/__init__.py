"""Stream-graph substrate: the SDF model, validation, gains, buffers,
transforms, and generators for topologies and StreamIt-style applications."""

from repro.graphs.sdf import Channel, Module, StreamGraph
from repro.graphs.builder import GraphBuilder
from repro.graphs.repetition import GainTable, compute_gains, repetition_vector
from repro.graphs.minbuf import min_buffer, min_buffers
from repro.graphs.csdf import CsdfChannel, CsdfGraph, CsdfModule, expand_csdf
from repro.graphs.io import graph_from_dict, graph_to_dict, load_graph, save_graph, to_dot
from repro.graphs.validate import (
    check_rate_matched,
    check_single_source_sink,
    check_state_bound,
    validate_graph,
)

__all__ = [
    "Channel",
    "Module",
    "StreamGraph",
    "GraphBuilder",
    "GainTable",
    "compute_gains",
    "repetition_vector",
    "min_buffer",
    "min_buffers",
    "CsdfChannel",
    "CsdfGraph",
    "CsdfModule",
    "expand_csdf",
    "graph_from_dict",
    "graph_to_dict",
    "load_graph",
    "save_graph",
    "to_dot",
    "check_rate_matched",
    "check_single_source_sink",
    "check_state_bound",
    "validate_graph",
]
