"""Validation of the paper's structural assumptions (Section 2).

The paper assumes throughout that the streaming graph

1. is a dag (feedback is future work, Section 7);
2. is *rate matched*: the product of ``out/in`` along every directed path
   between a fixed pair of vertices is identical — necessary and sufficient
   for deadlock-free bounded-buffer scheduling;
3. has a single source and a single sink (w.l.o.g.; see
   :func:`repro.graphs.transforms.normalize_source_sink`);
4. has per-module state at most the cache size ``M`` (necessary so a module
   can be fully loaded to fire);
5. satisfies the buffer-vs-state condition: for any induced subgraph, the
   total ``minBuf`` of internal channels is O(total state) — automatic for
   pipelines and homogeneous dags where ``minBuf(e) = in(e) + out(e)``.

:func:`validate_graph` runs all checks and returns a :class:`ValidationReport`
so callers can treat failures as data; the individual ``check_*`` functions
raise typed exceptions for use as preconditions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import (
    CycleError,
    GraphError,
    RateMismatchError,
    SourceSinkError,
    StateTooLargeError,
)
from repro.graphs.sdf import StreamGraph

__all__ = [
    "ValidationReport",
    "check_rate_matched",
    "check_single_source_sink",
    "check_state_bound",
    "check_buffer_state_condition",
    "validate_graph",
]


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_graph`: per-check pass/fail plus messages."""

    is_dag: bool = False
    rate_matched: bool = False
    single_source: bool = False
    single_sink: bool = False
    state_bounded: bool = True
    buffer_state_ok: bool = True
    errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            self.is_dag
            and self.rate_matched
            and self.single_source
            and self.single_sink
            and self.state_bounded
            and self.buffer_state_ok
        )

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise GraphError("graph validation failed: " + "; ".join(self.errors))


def check_rate_matched(graph: StreamGraph) -> None:
    """Raise :class:`RateMismatchError` if two paths disagree on a gain."""
    from repro.graphs.repetition import compute_gains

    compute_gains(graph)  # raises on mismatch


def check_single_source_sink(graph: StreamGraph) -> None:
    """Raise :class:`SourceSinkError` unless exactly one source and sink."""
    sources = graph.sources()
    sinks = graph.sinks()
    if len(sources) != 1:
        raise SourceSinkError(
            f"graph {graph.name!r} has {len(sources)} sources {sources}; "
            "normalize with repro.graphs.transforms.normalize_source_sink"
        )
    if len(sinks) != 1:
        raise SourceSinkError(
            f"graph {graph.name!r} has {len(sinks)} sinks {sinks}; "
            "normalize with repro.graphs.transforms.normalize_source_sink"
        )


def check_state_bound(graph: StreamGraph, cache_size: int) -> None:
    """Raise :class:`StateTooLargeError` if some module exceeds ``M``.

    Section 2: "the state size of each module is at most M ... necessary to
    allow a module to be fully loaded into cache when fired."
    """
    for m in graph.modules():
        if m.state > cache_size:
            raise StateTooLargeError(
                f"module {m.name!r} has state {m.state} > cache size {cache_size}"
            )


def check_buffer_state_condition(graph: StreamGraph, slack: float = 4.0) -> None:
    """Check the per-channel form of the buffer-vs-state assumption.

    The paper requires, for any induced subgraph, total internal minBuf to
    be O(total state).  The channel-local sufficient condition we check is
    ``minBuf(e) <= slack * max(s(u) + s(v), in(e) + out(e))``: rates lower-
    bound what a firing touches anyway, so under the paper's additive
    ``minBuf = in + out`` convention the condition holds without loss of
    generality (exactly the paper's remark for pipelines and homogeneous
    dags); it can only bind for alternative buffer conventions.
    """
    from repro.graphs.minbuf import min_buffer

    for ch in graph.channels():
        buf = min_buffer(ch)
        endpoint_state = graph.state(ch.src) + graph.state(ch.dst)
        rate_total = ch.out_rate + ch.in_rate
        bound = slack * max(endpoint_state, rate_total, 1)
        if buf > bound:
            raise GraphError(
                f"channel {ch.src!r}->{ch.dst!r} violates the buffer/state "
                f"condition: minBuf {buf} > {slack} * max(endpoint state="
                f"{endpoint_state}, rates={rate_total})"
            )


def validate_graph(
    graph: StreamGraph,
    cache_size: Optional[int] = None,
    require_single_endpoints: bool = True,
) -> ValidationReport:
    """Run every Section-2 check and collect the outcome.

    Parameters
    ----------
    graph:
        Graph under test.
    cache_size:
        When given, also verify ``s(v) <= M`` for all modules.
    require_single_endpoints:
        Multi-source/multi-sink graphs fail validation unless this is False
        (they can be repaired with ``normalize_source_sink``).
    """
    report = ValidationReport()

    try:
        graph.topological_order()
        report.is_dag = True
    except CycleError as exc:
        report.errors.append(str(exc))
        return report  # everything downstream needs a dag

    try:
        check_rate_matched(graph)
        report.rate_matched = True
    except (RateMismatchError, GraphError) as exc:
        report.errors.append(str(exc))

    sources, sinks = graph.sources(), graph.sinks()
    report.single_source = len(sources) == 1
    report.single_sink = len(sinks) == 1
    if require_single_endpoints:
        if not report.single_source:
            report.errors.append(f"{len(sources)} sources: {sources}")
        if not report.single_sink:
            report.errors.append(f"{len(sinks)} sinks: {sinks}")
    else:
        report.single_source = True
        report.single_sink = True

    if cache_size is not None:
        try:
            check_state_bound(graph, cache_size)
        except StateTooLargeError as exc:
            report.state_bounded = False
            report.errors.append(str(exc))

    if report.rate_matched:
        try:
            check_buffer_state_condition(graph)
        except GraphError as exc:
            report.buffer_state_ok = False
            report.errors.append(str(exc))

    return report
