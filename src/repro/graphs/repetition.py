"""Gains and repetition vectors for rate-matched SDF graphs.

Definition 1 of the paper: for a vertex ``v``, ``gain(v)`` is the number of
times ``v`` fires for each firing of the source ``s``; along any path
``s = x0 -> x1 -> ... -> v`` it equals the product of
``out(x_{i-1}, x_i) / in(x_{i-1}, x_i)``.  For an edge,
``gain(u, v) = gain(u) * out(u, v)``: tokens produced on the edge per source
firing.  Gains are only well defined for *rate-matched* graphs, where the
path product is independent of the chosen path.

We compute gains exactly with :class:`fractions.Fraction` by propagating
along a topological order, and simultaneously verify rate-matching: if two
paths disagree on any vertex's gain, :class:`repro.errors.RateMismatchError`
is raised with a description of the conflicting paths.

The *repetition vector* is the classic Lee–Messerschmitt notion: the smallest
positive integer vector ``r`` such that firing every module ``v`` exactly
``r(v)`` times returns every channel to its initial token count
(``r(u) * out(u,v) == r(v) * in(u,v)`` on every channel).  It is the gain
vector scaled by the least common multiple of the gain denominators.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import gcd, lcm
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import GraphError, RateMismatchError
from repro.graphs.sdf import Channel, StreamGraph

__all__ = ["GainTable", "compute_gains", "repetition_vector", "iteration_tokens"]


@dataclass(frozen=True)
class GainTable:
    """Exact gains for every module and channel of a rate-matched graph.

    Attributes
    ----------
    node:
        ``gain(v)`` per module name, relative to the reference module
        (normally the unique source, which has gain 1).
    edge:
        ``gain(u, v) = gain(u) * out(u, v)`` per channel id — the number of
        tokens crossing the channel per source firing (Definition 1).
    reference:
        The module whose gain is normalized to 1.
    """

    node: Dict[str, Fraction]
    edge: Dict[int, Fraction]
    reference: str

    def gain(self, name: str) -> Fraction:
        return self.node[name]

    def edge_gain(self, cid: int) -> Fraction:
        return self.edge[cid]

    def bandwidth_of_edges(self, cids: Iterable[int]) -> Fraction:
        """Sum of edge gains — the bandwidth contribution of a cut set
        (Definition 3)."""
        total = Fraction(0)
        for cid in cids:
            total += self.edge[cid]
        return total

    def rescale(self, new_reference: str) -> "GainTable":
        """Re-express all gains relative to a different reference module."""
        base = self.node[new_reference]
        if base == 0:
            raise GraphError(f"cannot rescale to zero-gain module {new_reference!r}")
        return GainTable(
            node={k: v / base for k, v in self.node.items()},
            edge={k: v / base for k, v in self.edge.items()},
            reference=new_reference,
        )


def compute_gains(graph: StreamGraph, reference: Optional[str] = None) -> GainTable:
    """Compute exact gains, verifying rate-matching along the way.

    Parameters
    ----------
    graph:
        A dag.  Raises :class:`repro.errors.CycleError` otherwise.
    reference:
        Module whose gain is defined as 1.  Defaults to the first module in
        topological order (the source, when there is a single source).

    Raises
    ------
    RateMismatchError
        If two directed paths to the same module imply different gains
        (Section 2, "Assumptions": the graph must be rate matched).
    GraphError
        If the graph is disconnected in a way that leaves some module with
        no defined gain relative to the reference (no directed connection);
        such graphs violate the single-source assumption.
    """
    order = graph.topological_order()
    if not order:
        raise GraphError("cannot compute gains of an empty graph")
    if reference is None:
        reference = order[0]
    else:
        graph.module(reference)  # existence check

    # Balance-equation propagation over the *undirected* channel structure
    # (the standard SDF repetition-vector algorithm): every channel u->v
    # forces gain(v) = gain(u) * out/in, whichever direction we reach it
    # from.  This handles multi-source graphs — where relative source rates
    # are determined by their common consumers — and detects rate mismatches
    # as inconsistent assignments on back/cross channels.
    node: Dict[str, Fraction] = {order[0]: Fraction(1)}
    stack = [order[0]]
    visited_from = {order[0]}
    while stack:
        u = stack.pop()
        gu = node[u]
        for ch in graph.out_channels(u):
            cand = gu * Fraction(ch.out_rate, ch.in_rate)
            if ch.dst in node:
                if node[ch.dst] != cand:
                    raise RateMismatchError(
                        f"module {ch.dst!r} has inconsistent gains: known value "
                        f"{node[ch.dst]} but channel {ch.src!r}->{ch.dst!r} "
                        f"(out={ch.out_rate}, in={ch.in_rate}) implies {cand}"
                    )
            else:
                node[ch.dst] = cand
                stack.append(ch.dst)
        for ch in graph.in_channels(u):
            cand = gu * Fraction(ch.in_rate, ch.out_rate)
            if ch.src in node:
                if node[ch.src] != cand:
                    raise RateMismatchError(
                        f"module {ch.src!r} has inconsistent gains: known value "
                        f"{node[ch.src]} but channel {ch.src!r}->{ch.dst!r} "
                        f"(out={ch.out_rate}, in={ch.in_rate}) implies {cand}"
                    )
            else:
                node[ch.src] = cand
                stack.append(ch.src)
    missing = [m.name for m in graph.modules() if m.name not in node]
    if missing:
        raise GraphError(
            f"graph is disconnected: modules {missing} share no channels with "
            f"{order[0]!r}, so their relative gains are undefined"
        )

    if reference not in node:
        raise GraphError(f"reference module {reference!r} has no defined gain")
    base = node[reference]
    node = {k: v / base for k, v in node.items()}

    edge: Dict[int, Fraction] = {}
    for ch in graph.channels():
        edge[ch.cid] = node[ch.src] * ch.out_rate
        # Cross-check the receiving side: gain(u,v) must also equal
        # gain(v) * in(u,v).  Equality is implied by rate-matching, and
        # asserting it here catches propagation bugs early.
        if edge[ch.cid] != node[ch.dst] * ch.in_rate:
            raise RateMismatchError(
                f"channel {ch.src!r}->{ch.dst!r} violates the balance equation: "
                f"gain({ch.src})*out = {edge[ch.cid]} but "
                f"gain({ch.dst})*in = {node[ch.dst] * ch.in_rate}"
            )
    return GainTable(node=node, edge=edge, reference=reference)


def repetition_vector(graph: StreamGraph) -> Dict[str, int]:
    """Smallest positive integer firing counts balancing every channel.

    ``r(v) = gain(v) * L`` where ``L`` is the lcm of all gain denominators,
    divided by the gcd of the resulting integers.  Firing each module ``r(v)``
    times constitutes one *iteration* of the graph: all channels return to
    their initial occupancy (Lee & Messerschmitt 1987, used by the paper via
    its reference [17]).
    """
    gains = compute_gains(graph)
    denom_lcm = 1
    for f in gains.node.values():
        denom_lcm = lcm(denom_lcm, f.denominator)
    counts = {name: int(f * denom_lcm) for name, f in gains.node.items()}
    g = 0
    for c in counts.values():
        g = gcd(g, c)
    if g == 0:
        raise GraphError("degenerate graph: all repetition counts are zero")
    return {name: c // g for name, c in counts.items()}


def iteration_tokens(graph: StreamGraph, reps: Optional[Dict[str, int]] = None) -> Dict[int, int]:
    """Tokens crossing each channel during one iteration.

    For channel ``(u, v)`` this is ``r(u) * out(u, v)`` which equals
    ``r(v) * in(u, v)`` by the balance equations.  Useful for sizing
    iteration-granularity buffers and for sanity checks in tests.
    """
    if reps is None:
        reps = repetition_vector(graph)
    out: Dict[int, int] = {}
    for ch in graph.channels():
        produced = reps[ch.src] * ch.out_rate
        consumed = reps[ch.dst] * ch.in_rate
        if produced != consumed:
            raise RateMismatchError(
                f"channel {ch.src!r}->{ch.dst!r}: iteration produces {produced} "
                f"but consumes {consumed} tokens"
            )
        out[ch.cid] = produced
    return out
