"""StreamIt-motivated application graphs.

The paper's introduction motivates the model with StreamIt, GNU Radio,
Simulink and LabVIEW workloads.  The original StreamIt benchmarks are C/Java
programs we cannot run; what the scheduling theory consumes is only their
*graph structure* — module state sizes and channel rates — so we re-specify
the well-known benchmark shapes as SDF graphs here.  Shapes and rate
structure follow the published benchmark descriptions (Thies et al., CC'02;
Sermulins et al., LCTES'05); state sizes model filter tap counts and
coefficient tables at one word per coefficient plus a code constant.

These graphs drive experiment E7 ("partitioned vs naive baselines on
application workloads") and the examples.
"""

from __future__ import annotations

from typing import List

from repro.graphs.sdf import StreamGraph

__all__ = [
    "fm_radio",
    "filter_bank",
    "beamformer",
    "bitonic_sort",
    "des_rounds",
    "mp3_subband",
    "ALL_APPS",
]

#: Abstract words of code per module, charged on top of coefficient state.
CODE_WORDS = 16


def fm_radio(taps: int = 64, bands: int = 8, name: str = "fm-radio") -> StreamGraph:
    """Software FM radio: demodulator followed by a multi-band equalizer.

    Structure (after StreamIt's FMRadio): an input front end, a low-pass
    filter with ``taps`` taps that decimates 4:1, an FM demodulator, then a
    ``bands``-way equalizer split where each band runs two band-pass filters
    and a gain stage, re-joined by an adder and emitted.

    The equalizer split duplicates the demodulated signal to every band
    (out_rate 1 per band channel), and the adder consumes one sample from
    each band per output — the graph is homogeneous except for the 4:1
    decimating low-pass filter.
    """
    g = StreamGraph(name)
    g.add_module("reader", state=CODE_WORDS)
    g.add_module("lpf", state=taps + CODE_WORDS)
    g.add_module("demod", state=CODE_WORDS + 4)
    g.add_channel("reader", "lpf", out_rate=4, in_rate=4)  # block reads
    g.add_channel("lpf", "demod", out_rate=1, in_rate=1)  # decimated inside lpf
    for b in range(bands):
        lo, hi, gain = f"bpf_lo{b}", f"bpf_hi{b}", f"gain{b}"
        g.add_module(lo, state=taps + CODE_WORDS)
        g.add_module(hi, state=taps + CODE_WORDS)
        g.add_module(gain, state=CODE_WORDS)
        g.add_channel("demod", lo)
        g.add_channel(lo, hi)
        g.add_channel(hi, gain)
    g.add_module("adder", state=CODE_WORDS + bands)
    for b in range(bands):
        g.add_channel(f"gain{b}", "adder")
    g.add_module("writer", state=CODE_WORDS)
    g.add_channel("adder", "writer")
    return g


def filter_bank(
    branches: int = 8, taps: int = 32, name: str = "filter-bank"
) -> StreamGraph:
    """Multirate analysis/synthesis filter bank (StreamIt FilterBank).

    Each branch: band-pass filter -> ``branches``:1 down-sampler ->
    per-branch processing -> 1:``branches`` up-sampler -> synthesis filter.
    The down/up-samplers make this genuinely *inhomogeneous*: internal branch
    modules fire at 1/branches the source rate, exercising the fractional
    gains of Definition 1 and the Theorem 10 machinery.
    """
    g = StreamGraph(name)
    g.add_module("src", state=CODE_WORDS)
    for b in range(branches):
        analysis, down, proc, up, synth = (
            f"analysis{b}",
            f"down{b}",
            f"proc{b}",
            f"up{b}",
            f"synth{b}",
        )
        g.add_module(analysis, state=taps + CODE_WORDS)
        g.add_module(down, state=CODE_WORDS)
        g.add_module(proc, state=taps // 2 + CODE_WORDS)
        g.add_module(up, state=CODE_WORDS)
        g.add_module(synth, state=taps + CODE_WORDS)
        g.add_channel("src", analysis)
        g.add_channel(analysis, down, out_rate=1, in_rate=branches)  # decimate
        g.add_channel(down, proc)
        g.add_channel(proc, up)
        g.add_channel(up, synth, out_rate=branches, in_rate=1)  # expand
    g.add_module("combine", state=CODE_WORDS + branches)
    for b in range(branches):
        g.add_channel(f"synth{b}", "combine")
    g.add_module("out", state=CODE_WORDS)
    g.add_channel("combine", "out")
    return g


def beamformer(
    channels: int = 12, beams: int = 4, taps: int = 64, name: str = "beamformer"
) -> StreamGraph:
    """Phased-array beamformer (StreamIt Beamformer).

    ``channels`` input channels each run a coarse and a fine decimating FIR;
    every beam then combines all channels (dense cross-connection), runs a
    matched filter and a detector.  The channel->beam cross product makes the
    graph wide and highly connected — the hard case for degree-limited
    partitions (Section 5 "Notes on the upper bound").
    """
    g = StreamGraph(name)
    g.add_module("frontend", state=CODE_WORDS)
    for c in range(channels):
        coarse, fine = f"coarse{c}", f"fine{c}"
        g.add_module(coarse, state=taps + CODE_WORDS)
        g.add_module(fine, state=taps // 2 + CODE_WORDS)
        g.add_channel("frontend", coarse)
        g.add_channel(coarse, fine)
    for b in range(beams):
        bf, mf, det = f"beam{b}", f"match{b}", f"detect{b}"
        g.add_module(bf, state=channels * 2 + CODE_WORDS)
        g.add_module(mf, state=taps + CODE_WORDS)
        g.add_module(det, state=CODE_WORDS)
        for c in range(channels):
            g.add_channel(f"fine{c}", bf)
        g.add_channel(bf, mf)
        g.add_channel(mf, det)
    g.add_module("collect", state=CODE_WORDS + beams)
    for b in range(beams):
        g.add_channel(f"detect{b}", "collect")
    return g


def bitonic_sort(keys_log2: int = 3, state: int = 8, name: str = "bitonic") -> StreamGraph:
    """Bitonic sorting network on ``2**keys_log2`` lanes (StreamIt
    BitonicSort).  Stage (i, j) compares lanes differing in bit j within
    blocks of size 2^(i+1); each comparator is a 2-in/2-out module.  All
    rates are 1 — a large homogeneous dag with butterfly-like connectivity.
    """
    lanes = 1 << keys_log2
    g = StreamGraph(name)
    g.add_module("src", state=0)
    prev: List[str] = []
    for lane in range(lanes):
        n = f"in{lane}"
        g.add_module(n, state=state)
        g.add_channel("src", n)
        prev.append(n)
    stage_idx = 0
    for i in range(keys_log2):
        for j in range(i, -1, -1):
            cur: List[str] = [""] * lanes
            done = set()
            for lane in range(lanes):
                partner = lane ^ (1 << j)
                lo = min(lane, partner)
                if lo in done:
                    continue
                done.add(lo)
                cmpname = f"c{stage_idx}_{lo}"
                g.add_module(cmpname, state=state)
                g.add_channel(prev[lo], cmpname)
                g.add_channel(prev[lo ^ (1 << j)], cmpname)
                cur[lo] = cmpname
                cur[lo ^ (1 << j)] = cmpname
            # comparators emit both lanes; model as 2-token outputs consumed
            # by distinct downstream nodes: insert per-lane taps.
            taps: List[str] = []
            for lane in range(lanes):
                tname = f"t{stage_idx}_{lane}"
                g.add_module(tname, state=0)
                g.add_channel(cur[lane], tname, out_rate=1, in_rate=1)
                taps.append(tname)
            prev = taps
            stage_idx += 1
    g.add_module("snk", state=0)
    for lane in range(lanes):
        g.add_channel(prev[lane], "snk")
    return g


def des_rounds(rounds: int = 16, sbox_state: int = 64, name: str = "des") -> StreamGraph:
    """DES-like block cipher pipeline (StreamIt DES): initial permutation,
    ``rounds`` Feistel rounds (expansion, key mix, S-box lookup with a large
    coefficient table, permutation), final permutation.  Deep pipeline with a
    few large-state modules — exactly the profile where state reuse pays.
    """
    g = StreamGraph(name)
    g.add_module("ip", state=CODE_WORDS)
    prev = "ip"
    for r in range(rounds):
        exp, mix, sbox, perm = f"exp{r}", f"mix{r}", f"sbox{r}", f"perm{r}"
        g.add_module(exp, state=CODE_WORDS)
        g.add_module(mix, state=CODE_WORDS + 2)
        g.add_module(sbox, state=sbox_state + CODE_WORDS)
        g.add_module(perm, state=CODE_WORDS)
        g.add_channel(prev, exp)
        g.add_channel(exp, mix)
        g.add_channel(mix, sbox)
        g.add_channel(sbox, perm)
        prev = perm
    g.add_module("fp", state=CODE_WORDS)
    g.add_channel(prev, "fp")
    return g


def mp3_subband(subbands: int = 4, taps: int = 48, name: str = "mp3") -> StreamGraph:
    """MP3-style subband decoder sketch: Huffman-ish unpacker, dequantizer,
    ``subbands``-way split with per-band inverse MDCT (large state),
    polyphase synthesis join.  Inhomogeneous: the unpacker emits
    ``subbands`` tokens per firing, each band consumes one.
    """
    g = StreamGraph(name)
    g.add_module("unpack", state=CODE_WORDS * 4)
    g.add_module("dequant", state=CODE_WORDS + 32)
    g.add_channel("unpack", "dequant", out_rate=subbands, in_rate=subbands)
    for b in range(subbands):
        imdct, window = f"imdct{b}", f"window{b}"
        g.add_module(imdct, state=taps * 2 + CODE_WORDS)
        g.add_module(window, state=taps + CODE_WORDS)
        g.add_channel("dequant", imdct, out_rate=1, in_rate=1)
        g.add_channel(imdct, window)
    g.add_module("synthesis", state=taps * 2 + CODE_WORDS)
    for b in range(subbands):
        g.add_channel(f"window{b}", "synthesis")
    g.add_module("pcm", state=CODE_WORDS)
    g.add_channel("synthesis", "pcm")
    return g


#: name -> zero-argument constructor with representative default sizes.
ALL_APPS = {
    "fm_radio": fm_radio,
    "filter_bank": filter_bank,
    "beamformer": beamformer,
    "bitonic_sort": bitonic_sort,
    "des_rounds": des_rounds,
    "mp3_subband": mp3_subband,
}
