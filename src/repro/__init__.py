"""repro — reproduction of *Cache-Conscious Scheduling of Streaming
Applications* (Agrawal, Fineman, Krage, Leiserson, Toledo; SPAA 2012).

Public API tour
---------------
Build a stream graph::

    from repro import StreamGraph, GraphBuilder
    g = (GraphBuilder("demo").source(state=8)
         .chain(6, state=32).sink().build())

Partition it and schedule it (pipeline case)::

    from repro import CacheGeometry, theorem5_partition, pipeline_dynamic_schedule
    geom = CacheGeometry(size=128, block=8)
    part = theorem5_partition(g, geom.size)
    sched = pipeline_dynamic_schedule(g, part, geom, target_outputs=1000)

Execute through the I/O-model cache simulator and read the cost::

    from repro import Executor
    result = Executor.measure(g, geom, sched)
    print(result.summary())

Compare against the Theorem 3 lower bound::

    from repro import pipeline_lower_bound
    lb = pipeline_lower_bound(g, geom.size)
    print(result.misses, ">=", float(lb.misses(result.source_fires, geom)))

Or compile the schedule once and sweep whole geometry families — any
registered policy, including two-level hierarchies — with the vectorized
replay::

    from repro import TwoLevelGeometry, compile_trace, simulate_trace
    trace = compile_trace(g, sched, geom.block)
    tg = TwoLevelGeometry(geom, CacheGeometry(size=4 * geom.size, block=geom.block))
    print(simulate_trace(trace, [tg], policy="two_level")[0].misses)

Subpackages: :mod:`repro.graphs` (SDF substrate), :mod:`repro.cache`
(DAM-model simulators), :mod:`repro.mem` (layout / conflict-aware
placement / trace), :mod:`repro.runtime`
(execution engine), :mod:`repro.core` (the paper's algorithms),
:mod:`repro.analysis` (experiment drivers E1–E15, A1–A8, and reporting).
The layered map of all of it lives in ``docs/ARCHITECTURE.md``; the replay
engine's per-policy algorithms in ``docs/REPLAY.md``.
"""

from repro.errors import (
    BufferOverflowError,
    CacheConfigError,
    CycleError,
    DeadlockError,
    GraphError,
    LayoutError,
    NotWellOrderedError,
    PartitionError,
    RateMismatchError,
    ReproError,
    ScheduleError,
    SourceSinkError,
    StateTooLargeError,
)
from repro.graphs import (
    Channel,
    CsdfGraph,
    expand_csdf,
    graph_from_dict,
    graph_to_dict,
    load_graph,
    save_graph,
    to_dot,
    GraphBuilder,
    Module,
    StreamGraph,
    compute_gains,
    min_buffer,
    min_buffers,
    repetition_vector,
    validate_graph,
)
from repro.cache import (
    CacheGeometry,
    CacheStats,
    DirectMappedCache,
    LRUCache,
    OPTCache,
    ReplacementPolicy,
    TwoLevelCache,
    TwoLevelGeometry,
    available_policies,
    get_policy,
    register_policy,
    simulate_opt,
    simulate_opt_misses,
)
from repro.mem import (
    MemoryLayout,
    PlacementInstance,
    PlacementResult,
    Region,
    TraceRecorder,
    TracingCache,
    available_placements,
    build_instance,
    conflict_graph,
    layout_objects,
    optimize_instance,
    optimize_placement,
    placement_cost,
    register_placement,
    remap_trace,
)
from repro.runtime import (
    ChannelBuffer,
    CompiledTrace,
    Loop,
    LoopedSchedule,
    compress_schedule,
    compile_trace,
    ExecutionResult,
    Executor,
    measure_compiled,
    replay_miss_masks,
    replay_misses,
    Schedule,
    simulate_trace,
    demand_driven_schedule,
    fireable_modules,
    validate_schedule,
)
from repro.core import (
    BatchPlan,
    ParallelResult,
    WorkerStats,
    dynamic_dag_schedule,
    multilevel_partition,
    parallel_dynamic_simulation,
    DagLowerBound,
    Partition,
    PipelineLowerBound,
    augmented_geometry,
    choose_batch,
    component_layout_order,
    cross_capacities,
    required_geometry,
    dag_lower_bound,
    exact_min_bandwidth_partition,
    greedy_topological_partition,
    homogeneous_partition_schedule,
    inhomogeneous_partition_schedule,
    interleaved_schedule,
    interval_dp_partition,
    kohli_greedy_schedule,
    min_bandwidth,
    optimal_pipeline_partition,
    phased_schedule,
    pipeline_dynamic_schedule,
    pipeline_lower_bound,
    refine_partition,
    sermulins_scaled_schedule,
    single_appearance_schedule,
    singleton_partition,
    theorem5_partition,
    whole_graph_partition,
)

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError", "GraphError", "CycleError", "RateMismatchError",
    "SourceSinkError", "StateTooLargeError", "PartitionError",
    "NotWellOrderedError", "ScheduleError", "DeadlockError",
    "BufferOverflowError", "CacheConfigError", "LayoutError",
    # graphs
    "Module", "Channel", "StreamGraph", "GraphBuilder", "CsdfGraph",
    "expand_csdf", "compute_gains",
    "repetition_vector", "min_buffer", "min_buffers", "validate_graph",
    # cache
    "CacheGeometry", "CacheStats", "LRUCache", "DirectMappedCache",
    "OPTCache", "simulate_opt", "simulate_opt_misses", "TwoLevelCache",
    "TwoLevelGeometry",
    "ReplacementPolicy", "register_policy", "get_policy", "available_policies",
    # mem
    "MemoryLayout", "Region", "TraceRecorder", "TracingCache",
    "layout_objects", "PlacementInstance", "PlacementResult",
    "build_instance", "conflict_graph", "placement_cost", "remap_trace",
    "optimize_instance", "optimize_placement", "register_placement",
    "available_placements",
    # runtime
    "ChannelBuffer", "Schedule", "validate_schedule", "Executor",
    "ExecutionResult", "fireable_modules", "demand_driven_schedule",
    "Loop", "LoopedSchedule", "compress_schedule",
    "CompiledTrace", "compile_trace", "simulate_trace", "measure_compiled",
    "replay_miss_masks", "replay_misses",
    # core
    "Partition", "singleton_partition", "whole_graph_partition",
    "theorem5_partition", "optimal_pipeline_partition",
    "exact_min_bandwidth_partition", "greedy_topological_partition",
    "interval_dp_partition", "min_bandwidth", "refine_partition",
    "PipelineLowerBound", "DagLowerBound", "pipeline_lower_bound",
    "dag_lower_bound", "homogeneous_partition_schedule",
    "inhomogeneous_partition_schedule", "pipeline_dynamic_schedule",
    "component_layout_order", "single_appearance_schedule",
    "interleaved_schedule", "sermulins_scaled_schedule",
    "kohli_greedy_schedule", "phased_schedule", "BatchPlan", "choose_batch",
    "cross_capacities", "augmented_geometry", "required_geometry",
    "dynamic_dag_schedule", "parallel_dynamic_simulation", "ParallelResult",
    "WorkerStats", "multilevel_partition",
    "graph_to_dict", "graph_from_dict", "save_graph", "load_graph", "to_dot",
    "__version__",
]
