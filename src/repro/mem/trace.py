"""Block-trace recording for offline analysis (OPT replay, debugging).

:class:`TracingCache` wraps any :class:`~repro.cache.base.CacheModel` and
appends every block touch to a :class:`TraceRecorder` before forwarding, so
the identical access sequence can later be replayed under Belady's OPT
(:func:`repro.cache.opt.simulate_opt`) or inspected in tests.

Recorded traces interoperate with the trace-compilation engine: schedules
the compiler can reach directly should use
:func:`repro.runtime.compiled.compile_trace` (no stepwise simulation at
all), while traces that can only be *observed* — e.g. from a non-LRU cache
model or a hand-driven executor — convert via :meth:`TraceRecorder.to_compiled`
and reuse the same vectorized single-pass geometry sweep.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.cache.base import CacheGeometry, CacheModel

if TYPE_CHECKING:  # import cycle: compiled.py is downstream of mem
    from repro.runtime.compiled import CompiledTrace

__all__ = ["TraceRecorder", "TracingCache"]


class TraceRecorder:
    """Append-only record of block ids, with optional phase markers."""

    def __init__(self) -> None:
        self.blocks: List[int] = []
        self.marks: List[tuple] = []  # (position, label)

    def record(self, block: int) -> None:
        self.blocks.append(block)

    def mark(self, label: str) -> None:
        self.marks.append((len(self.blocks), label))

    def as_array(self) -> np.ndarray:
        """The recorded trace as an int64 array (for the vectorized kernels)."""
        return np.asarray(self.blocks, dtype=np.int64)

    def to_compiled(self, block: int, label: str = "recorded") -> "CompiledTrace":
        """Wrap the recording as a :class:`repro.runtime.compiled.CompiledTrace`
        so :func:`repro.runtime.compiled.simulate_trace` can answer every
        LRU geometry of this block size in one pass.  Phase attribution and
        firing counts are unknown for an observed trace and left empty.
        """
        from repro.runtime.compiled import CompiledTrace

        return CompiledTrace(label=label, block=block, blocks=self.as_array())

    def __len__(self) -> int:
        return len(self.blocks)

    def slice_between(self, start_label: str, end_label: str) -> List[int]:
        """Trace segment between the first occurrences of two marks."""
        start = end = None
        for pos, label in self.marks:
            if label == start_label and start is None:
                start = pos
            elif label == end_label and start is not None:
                end = pos
                break
        if start is None or end is None:
            raise ValueError(f"marks {start_label!r}..{end_label!r} not found")
        return self.blocks[start:end]


class TracingCache(CacheModel):
    """Decorator: records every block touch, then delegates to ``inner``."""

    def __init__(self, inner: CacheModel, recorder: Optional[TraceRecorder] = None) -> None:
        super().__init__(inner.geometry)
        self.inner = inner
        self.recorder = recorder if recorder is not None else TraceRecorder()
        # share stats with the inner cache so callers see one set of counters
        self.stats = inner.stats

    def access_block(self, block: int) -> bool:
        self.recorder.record(block)
        return self.inner.access_block(block)

    def flush(self) -> None:
        self.inner.flush()

    def resident_blocks(self) -> int:
        return self.inner.resident_blocks()
