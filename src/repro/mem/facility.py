"""Capacitated facility-location placement strategies.

Assigning hot objects to capacity-limited cache sets *is* hard
capacitated facility location (each set is a facility with ``ways``
slots; each object "opens" in every set its block span covers), and the
pairwise-swap search of :func:`repro.mem.placement.swap_refine` is FLIP
local search — known to stall on plateaus that richer move sets escape.
This module upgrades the search on three axes, all scored against the
same exact block-remap cost model (never an estimator):

* :func:`multiswap_refine` — local search over **k-object moves**
  (k <= 3): pairwise exchanges, 3-rotations along conflict-graph
  triangles, and single-object relocations, interleaved with the same
  ±1 gap moves.  Per-set **capacity is a hard constraint**: a candidate
  whose worst per-set hot-object load exceeds both the primary target's
  ``ways`` and the current state's load is pruned *before* scoring (it
  never consumes an eval; the ``placement.pruned`` counter records how
  many moves the constraint rejected).
* :func:`smoothed_search` — **smoothed-analysis style multi-restart**:
  each restart perturbs the conflict-graph edge weights with seeded
  multiplicative noise (changing the greedy start and the move ranking,
  *never* the objective), runs :func:`multiswap_refine` on a slice of
  the eval budget, and the **unperturbed exact objective picks the
  winner**.  Restart 0 always runs unperturbed, so ``smoothed`` can
  only match or beat single-start ``multiswap`` at the same total
  budget, modulo budget slicing.  Deterministic: one ``seed`` fixes the
  whole noise stream (``numpy.random.default_rng``), so the same
  ``(seed, restarts, noise, budget, batch)`` always returns the same
  layout — CI pins exactly that.
* ``objective="minimax"`` — the fault-tolerant variant: instead of the
  weighted miss sum, minimize the **worst-case per-target ratio versus
  the seed layout** (lexicographically tie-broken by the weighted sum),
  which directly attacks A9's near-1x per-target stragglers.

All three are registered placement strategies (``multiswap``,
``smoothed``, ``minimax``) and flow through
:func:`repro.mem.placement.optimize_instance`'s
never-worse-than-seed-at-every-target contract unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.base import CacheGeometry
from repro.errors import LayoutError
from repro.mem.layout import ObjectKey
from repro.mem.placement import (
    PlacementInstance,
    PlacementTarget,
    RefineStats,
    _conflict_sets,
    _gap_vector,
    _order_ids,
    _placed_starts,
    _primary_target,
    conflict_graph,
    greedy_color_order,
    normalize_targets,
    register_placement,
)
from repro.obs import core as obs
from repro.obs import names as obs_names

__all__ = [
    "multiswap_refine",
    "smoothed_search",
]

#: a move descriptor: ("swap", a, b) | ("rot", a, b, c, dir) |
#: ("move", oid, pos) | ("gap", oid, delta) — oids, not positions,
#: except the relocation target which is a position index
_Move = Tuple

#: caps keeping one round's move list bounded on dense conflict graphs
_MAX_TRIANGLES = 32
_RELOC_OBJECTS = 6
_RELOC_POSITIONS = 6


def _ratio(misses: int, seed: int) -> float:
    """Per-target miss ratio vs the seed layout, inf-safe."""
    if seed:
        return misses / seed
    return 0.0 if misses == 0 else float("inf")


def _conflict_triangles(
    weights: Dict[Tuple[int, int], float],
) -> List[Tuple[int, int, int]]:
    """Top conflict-graph triangles by total edge weight — the 3-rotation
    move sites.  Bounded to the heaviest edges so dense graphs stay cheap."""
    nbr: Dict[int, Dict[int, float]] = {}
    for (a, b), w in weights.items():
        nbr.setdefault(a, {})[b] = w
        nbr.setdefault(b, {})[a] = w
    tris: Dict[Tuple[int, int, int], float] = {}
    heavy = sorted(weights, key=lambda e: (-weights[e], e))[: 2 * _MAX_TRIANGLES]
    for a, b in heavy:
        common = set(nbr[a]) & set(nbr[b])
        for c in common:
            x, y, z = sorted((a, b, c))
            if (x, y, z) not in tris:
                tris[(x, y, z)] = (
                    nbr[x].get(y, 0.0) + nbr[x].get(z, 0.0) + nbr[y].get(z, 0.0)
                )
    return sorted(tris, key=lambda t: (-tris[t], t))[:_MAX_TRIANGLES]


def _max_set_load(
    instance: PlacementInstance,
    starts: np.ndarray,
    hot_ids: Sequence[int],
    geometry: CacheGeometry,
    sets: int,
) -> int:
    """Worst per-set count of hot objects covering that set under
    ``starts`` — the capacitated-facility load the ``ways`` cap bounds."""
    load: Dict[int, int] = {}
    for oid in hot_ids:
        nb = int(instance.nblocks[oid])
        base = int(starts[oid])
        for j in range(min(nb, sets)):
            s = geometry.set_of(base + j, sets)
            load[s] = load.get(s, 0) + 1
    return max(load.values()) if load else 0


def _gen_moves(
    instance: PlacementInstance,
    ranked: Sequence[Tuple[int, int]],
    triangles: Sequence[Tuple[int, int, int]],
    hot: Sequence[int],
    gap_budget: int,
    n_obj: int,
) -> List[_Move]:
    """The move sites of one sweep, strongest first: ranked pairwise swaps
    (the FLIP workhorse), 3-rotations over conflict triangles, hot-object
    relocations, then gap moves.  Gap legality is state-dependent (the
    budget moves under the sweep's feet), so it is rechecked per
    materialization in :func:`_apply_move`, not here."""
    moves: List[_Move] = []
    for a, b in ranked:
        if instance.nblocks[a] == 0 and instance.nblocks[b] == 0:
            continue  # zero-length objects own no blocks: swap is a no-op
        moves.append(("swap", a, b))
    for x, y, z in triangles:
        moves.append(("rot", x, y, z, 1))
        moves.append(("rot", x, y, z, -1))
    step = max(1, n_obj // _RELOC_POSITIONS)
    for oid in hot[:_RELOC_OBJECTS]:
        if instance.nblocks[oid] == 0:
            continue
        for pos in range(0, n_obj, step):
            moves.append(("move", oid, pos))
    if gap_budget:
        for oid in hot:
            moves.append(("gap", oid, 1))
            moves.append(("gap", oid, -1))
    return moves


def _apply_move(
    move: _Move,
    ids: List[int],
    gap_vec: np.ndarray,
    pos_of: Dict[int, int],
    gap_total: int,
    gap_budget: int,
) -> Optional[Tuple[List[int], np.ndarray]]:
    """Materialize one move as a fresh ``(ids, gap_vec)`` pair, or ``None``
    when it is a no-op or illegal in the current state."""
    kind = move[0]
    if kind == "swap":
        _, a, b = move
        new_ids = list(ids)
        i, j = pos_of[a], pos_of[b]
        new_ids[i], new_ids[j] = new_ids[j], new_ids[i]
        return new_ids, gap_vec
    if kind == "rot":
        _, a, b, c, direction = move
        new_ids = list(ids)
        pa, pb, pc = pos_of[a], pos_of[b], pos_of[c]
        if direction > 0:
            new_ids[pa], new_ids[pb], new_ids[pc] = c, a, b
        else:
            new_ids[pa], new_ids[pb], new_ids[pc] = b, c, a
        return new_ids, gap_vec
    if kind == "move":
        _, oid, pos = move
        cur = pos_of[oid]
        if cur == pos:
            return None
        new_ids = list(ids)
        new_ids.pop(cur)
        new_ids.insert(min(pos, len(new_ids)), oid)
        return new_ids, gap_vec
    _, oid, delta = move
    if delta > 0 and gap_total >= gap_budget:
        return None
    if delta < 0 and gap_vec[oid] == 0:
        return None
    new_gap = gap_vec.copy()
    new_gap[oid] += delta
    return list(ids), new_gap


def multiswap_refine(
    instance: PlacementInstance,
    order: Sequence[ObjectKey],
    geometry: Optional[CacheGeometry] = None,
    policy: str = "direct",
    window: int = 8,
    budget: int = 400,
    weights: Optional[Dict[Tuple[int, int], float]] = None,
    targets: Optional[Sequence[PlacementTarget]] = None,
    gap_budget: int = 0,
    gaps: Optional[Dict[ObjectKey, int]] = None,
    batch: int = 1,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    chunk_words: Optional[int] = None,
    objective: str = "sum",
) -> Tuple[List[ObjectKey], Dict[ObjectKey, int], float, RefineStats]:
    """k-object local search (k <= 3) with per-set capacity as a hard
    constraint, on the exact block-remap cost model.

    Same calling convention and return shape as
    :func:`repro.mem.placement.swap_refine`; the differences are the move
    set (3-rotations over conflict triangles and hot-object relocations on
    top of ranked pairwise swaps and gap moves), the capacity prune (a
    candidate whose worst per-set hot-object load exceeds both the primary
    target's ``ways`` and the current state's own load is rejected without
    spending an eval — counted by ``placement.pruned``), and the
    ``objective``: ``"sum"`` is the weighted miss total, ``"minimax"``
    minimizes ``(worst per-target miss ratio vs the seed layout, weighted
    sum)`` lexicographically.  ``RefineStats.evals`` is read back from the
    scorer, so it always equals the number of cost-model invocations the
    search performed — the honest currency of "equal eval budget"
    comparisons.  The trajectory tracks the objective actually optimized
    (weighted sum, or the worst-case ratio under ``"minimax"``).
    """
    if gap_budget < 0:
        raise LayoutError(f"gap_budget must be >= 0, got {gap_budget}")
    if batch < 1:
        raise LayoutError(f"batch must be >= 1, got {batch}")
    if objective not in ("sum", "minimax"):
        raise LayoutError(
            f"objective must be 'sum' or 'minimax', got {objective!r}"
        )
    if targets is None:
        if geometry is None:
            raise LayoutError("multiswap_refine needs a geometry or targets")
        targets_n = [(geometry, policy, 1.0)]
    else:
        targets_n = normalize_targets(targets, block=instance.block)
    if weights is None:
        weights = conflict_graph(instance, window=window)
    ids = _order_ids(instance, order)
    gap_arr = _gap_vector(instance, gaps)
    gap_vec = (
        gap_arr if gap_arr is not None
        else np.zeros(instance.n_objects, dtype=np.int64)
    )
    gap_total = int(gap_vec.sum())
    if gap_total > gap_budget:
        raise LayoutError(
            f"starting gaps use {gap_total} blocks, over gap_budget={gap_budget}"
        )
    n_obj = instance.n_objects
    ranked = sorted(weights, key=lambda e: (-weights[e], e))
    seen = set(ranked)
    ranked += [
        (a, b) for a in range(n_obj) for b in range(a + 1, n_obj)
        if (a, b) not in seen
    ]
    triangles = _conflict_triangles(weights)
    degree = [0.0] * n_obj
    for (a, b), w in weights.items():
        degree[a] += w
        degree[b] += w
    hot = sorted(range(n_obj), key=lambda o: (-degree[o], o))
    hot_ids = [o for o in hot if degree[o] > 0]
    cap_geom, cap_policy, _w = _primary_target(targets_n)
    cap_sets = _conflict_sets(cap_geom, cap_policy)
    cap_ways = 1 if cap_policy == "direct" else cap_geom.ways

    from repro.runtime.backend import CandidateScorer

    pruned = 0
    with obs.span(obs_names.FACILITY_SEARCH, batch=batch), CandidateScorer(
        instance, targets_n, backend=backend, workers=workers,
        chunk_words=chunk_words,
    ) as scorer:
        seed_per: List[int] = []
        if objective == "minimax":
            seed_per = scorer.score_per(
                [_placed_starts(instance, list(range(n_obj)))]
            )[0]

        def key_of(per: Sequence[int]) -> Tuple[float, ...]:
            weighted = sum(w * m for (_g, _p, w), m in zip(targets_n, per))
            if objective == "minimax":
                worst = max(
                    (_ratio(m, s) for m, s in zip(per, seed_per)),
                    default=0.0,
                )
                return (worst, weighted)
            return (weighted,)

        cur_starts = _placed_starts(instance, ids, gap_vec)
        cur_per = scorer.score_per([cur_starts])[0]
        cur_key = key_of(cur_per)
        cur_load = _max_set_load(instance, cur_starts, hot_ids, cap_geom, cap_sets)
        trajectory: List[float] = [cur_key[0]]
        moves = _gen_moves(
            instance, ranked, triangles, hot, gap_budget, n_obj
        )
        # continuous sweep, swap_refine style: improvements apply in place
        # and the sweep keeps going — regenerating the move list after
        # every accepted move would burn the eval budget re-scoring the
        # unimproving head of the list each time
        improved = True
        while improved and scorer.evals < budget:
            improved = False
            pos_of = {oid: p for p, oid in enumerate(ids)}
            pos = 0
            while pos < len(moves) and scorer.evals < budget:
                cands: List[Tuple[_Move, List[int], np.ndarray, np.ndarray, int]] = []
                room = min(batch, budget - scorer.evals)
                while pos < len(moves) and len(cands) < room:
                    move = moves[pos]
                    pos += 1
                    out = _apply_move(
                        move, ids, gap_vec, pos_of, gap_total, gap_budget
                    )
                    if out is None:
                        continue
                    new_ids, new_gap = out
                    starts = _placed_starts(instance, new_ids, new_gap)
                    if cap_sets > 1:
                        load = _max_set_load(
                            instance, starts, hot_ids, cap_geom, cap_sets
                        )
                        if load > max(cap_ways, cur_load):
                            pruned += 1
                            continue
                    else:
                        load = cur_load
                    cands.append((move, new_ids, new_gap, starts, load))
                if not cands:
                    continue
                pers = scorer.score_per([c[3] for c in cands])
                best_k = -1
                best_key = cur_key
                best_per: List[int] = []
                for k, per in enumerate(pers):
                    key = key_of(per)
                    if key < best_key:  # strict: ties keep the earlier state
                        best_k, best_key, best_per = k, key, per
                if best_k >= 0:
                    move, ids, new_gap, _starts, cur_load = cands[best_k]
                    if move[0] == "gap":
                        gap_total += move[2]
                    gap_vec = new_gap
                    cur_key, cur_per = best_key, best_per
                    pos_of = {oid: p for p, oid in enumerate(ids)}
                    improved = True
            if improved:
                trajectory.append(cur_key[0])
        evals = scorer.evals
    stats = RefineStats(
        evals=evals, rounds=len(trajectory) - 1, trajectory=tuple(trajectory)
    )
    obs.add(obs_names.PLACEMENT_EVALS, stats.evals)
    obs.add(obs_names.PLACEMENT_ROUNDS, stats.rounds)
    obs.add(obs_names.PLACEMENT_PRUNED, pruned)
    for point in stats.trajectory:
        obs.series(obs_names.PLACEMENT_COST, point)
    out_gaps = {
        instance.objects[oid]: int(g)
        for oid, g in enumerate(gap_vec.tolist())
        if g
    }
    cost = float(sum(w * m for (_g, _p, w), m in zip(targets_n, cur_per)))
    return [instance.objects[oid] for oid in ids], out_gaps, cost, stats


def smoothed_search(
    instance: PlacementInstance,
    geometry: Optional[CacheGeometry] = None,
    policy: str = "direct",
    window: int = 8,
    budget: int = 400,
    targets: Optional[Sequence[PlacementTarget]] = None,
    gap_budget: int = 0,
    batch: int = 1,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    restarts: int = 4,
    noise: float = 0.25,
    seed: int = 0,
) -> Tuple[List[ObjectKey], Dict[ObjectKey, int], float, RefineStats]:
    """Multi-restart :func:`multiswap_refine` with seeded noise on the
    conflict-graph edge weights (smoothed-analysis style).

    Restart ``r`` scales every edge weight by an independent uniform draw
    from ``[1 - noise, 1 + noise]`` (restart 0 stays unperturbed), rebuilds
    the greedy start order and the move ranking from the perturbed graph,
    and runs :func:`multiswap_refine` with ``budget // restarts`` evals.
    The perturbation never touches the objective: every candidate is still
    scored by the exact remap cost model, so the winner across restarts —
    picked by that unperturbed objective — is a real improvement or the
    unperturbed restart itself.  ``seed`` fixes the whole noise stream
    (``numpy.random.default_rng``), making the result bit-reproducible.
    Returns the winner's ``(order, gaps, cost, stats)`` where
    ``stats.evals`` is the *total* across restarts (the honest budget) and
    the trajectory is the winning restart's.
    """
    if restarts < 1:
        raise LayoutError(f"restarts must be >= 1, got {restarts}")
    if noise < 0:
        raise LayoutError(f"noise must be >= 0, got {noise}")
    if targets is None:
        if geometry is None:
            raise LayoutError("smoothed_search needs a geometry or targets")
        targets_n = [(geometry, policy, 1.0)]
    else:
        targets_n = normalize_targets(targets, block=instance.block)
    base_weights = conflict_graph(instance, window=window)
    pg, pp, _w = _primary_target(targets_n)
    rng = np.random.default_rng(seed)
    per_budget = max(2, budget // restarts)
    best: Optional[Tuple[List[ObjectKey], Dict[ObjectKey, int], float, RefineStats]] = None
    total_evals = 0
    for r in range(restarts):
        if r == 0 or noise == 0:
            w_r = base_weights
        else:
            # multiplicative noise keeps weights positive and preserves the
            # graph's sparsity pattern; only the start order and the move
            # ranking see it — scoring stays exact
            w_r = {
                e: w * float(1.0 + noise * (2.0 * rng.random() - 1.0))
                for e, w in base_weights.items()
            }
        start = greedy_color_order(
            instance, pg, policy=pp, window=window, weights=w_r
        )
        order, gaps, cost, stats = multiswap_refine(
            instance, start, window=window, budget=per_budget, weights=w_r,
            targets=targets_n, gap_budget=gap_budget, batch=batch,
            backend=backend, workers=workers,
        )
        total_evals += stats.evals
        if best is None or cost < best[2]:
            best = (order, gaps, cost, stats)
    assert best is not None  # restarts >= 1
    obs.add(obs_names.PLACEMENT_RESTARTS, restarts)
    win = best[3]
    stats = RefineStats(
        evals=total_evals, rounds=win.rounds, trajectory=win.trajectory
    )
    return best[0], best[1], best[2], stats


# ----------------------------------------------------------------------
# registered strategies
# ----------------------------------------------------------------------
def _setup(
    instance: PlacementInstance,
    geometry: Optional[CacheGeometry],
    policy: str,
    targets: Optional[Sequence[PlacementTarget]],
) -> Optional[List[PlacementTarget]]:
    """Normalized targets, or ``None`` when every target is fully
    associative (placement provably cannot matter — skip the search)."""
    if targets is not None:
        targets_n = normalize_targets(targets, block=instance.block)
    else:
        if geometry is None:
            raise LayoutError("placement strategy needs a geometry or targets")
        targets_n = [(geometry, policy, 1.0)]
    if all(_conflict_sets(g, p) <= 1 for g, p, _w in targets_n):
        return None
    return targets_n


def _multiswap_strategy(
    instance: PlacementInstance, geometry: Optional[CacheGeometry],
    policy: str = "direct", window: int = 8, budget: int = 400,
    targets: Optional[Sequence[PlacementTarget]] = None,
    gap_budget: int = 0, batch: int = 1,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    restarts: Optional[int] = None,
    noise: Optional[float] = None,
    seed: Optional[int] = None,
) -> Tuple[List[ObjectKey], Dict[ObjectKey, int]]:
    targets_n = _setup(instance, geometry, policy, targets)
    if targets_n is None:
        return list(instance.objects), {}
    weights = conflict_graph(instance, window=window)
    pg, pp, _w = _primary_target(targets_n)
    start = greedy_color_order(
        instance, pg, policy=pp, window=window, weights=weights
    )
    order, gaps, _cost, _stats = multiswap_refine(
        instance, start, window=window, budget=budget, weights=weights,
        targets=targets_n, gap_budget=gap_budget, batch=batch,
        backend=backend, workers=workers,
    )
    return order, gaps


def _smoothed_strategy(
    instance: PlacementInstance, geometry: Optional[CacheGeometry],
    policy: str = "direct", window: int = 8, budget: int = 400,
    targets: Optional[Sequence[PlacementTarget]] = None,
    gap_budget: int = 0, batch: int = 1,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    restarts: Optional[int] = None,
    noise: Optional[float] = None,
    seed: Optional[int] = None,
) -> Tuple[List[ObjectKey], Dict[ObjectKey, int]]:
    targets_n = _setup(instance, geometry, policy, targets)
    if targets_n is None:
        return list(instance.objects), {}
    order, gaps, _cost, _stats = smoothed_search(
        instance, window=window, budget=budget, targets=targets_n,
        gap_budget=gap_budget, batch=batch, backend=backend, workers=workers,
        restarts=4 if restarts is None else restarts,
        noise=0.25 if noise is None else noise,
        seed=0 if seed is None else seed,
    )
    return order, gaps


def _minimax_strategy(
    instance: PlacementInstance, geometry: Optional[CacheGeometry],
    policy: str = "direct", window: int = 8, budget: int = 400,
    targets: Optional[Sequence[PlacementTarget]] = None,
    gap_budget: int = 0, batch: int = 1,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    restarts: Optional[int] = None,
    noise: Optional[float] = None,
    seed: Optional[int] = None,
) -> Tuple[List[ObjectKey], Dict[ObjectKey, int]]:
    targets_n = _setup(instance, geometry, policy, targets)
    if targets_n is None:
        return list(instance.objects), {}
    weights = conflict_graph(instance, window=window)
    pg, pp, _w = _primary_target(targets_n)
    start = greedy_color_order(
        instance, pg, policy=pp, window=window, weights=weights
    )
    # two phases: a weighted-sum warmup drives every target down from the
    # greedy start (cheap, broad progress), then the minimax objective
    # spends the rest of the budget on the binding worst-case target —
    # pure minimax from a cold start burns its budget on moves the harsh
    # lexicographic acceptance rejects
    warm = budget // 2
    order, gaps, _cost, _stats = multiswap_refine(
        instance, start, window=window, budget=warm, weights=weights,
        targets=targets_n, gap_budget=gap_budget, batch=batch,
        backend=backend, workers=workers,
    )
    order, gaps, _cost, _stats = multiswap_refine(
        instance, order, window=window, budget=budget - warm,
        weights=weights, targets=targets_n, gap_budget=gap_budget,
        gaps=gaps, batch=batch, backend=backend, workers=workers,
        objective="minimax",
    )
    return order, gaps


register_placement("multiswap", _multiswap_strategy)
register_placement("smoothed", _smoothed_strategy)
register_placement("minimax", _minimax_strategy)
