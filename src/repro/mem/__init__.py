"""Memory layout (address assignment) and access-trace recording."""

from repro.mem.layout import MemoryLayout, Region
from repro.mem.trace import TraceRecorder, TracingCache

__all__ = ["MemoryLayout", "Region", "TraceRecorder", "TracingCache"]
