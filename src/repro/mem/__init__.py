"""Memory layout (address assignment), access-trace recording, and
conflict-aware placement optimization."""

from repro.mem.facility import multiswap_refine, smoothed_search
from repro.mem.layout import MemoryLayout, ObjectKey, Region, layout_objects
from repro.mem.placement import (
    PlacementInstance,
    PlacementResult,
    RefineStats,
    available_placements,
    build_instance,
    conflict_graph,
    get_placement,
    greedy_color_order,
    normalize_targets,
    optimize_instance,
    optimize_placement,
    placement_cost,
    placement_costs,
    register_placement,
    remap_blocks,
    remap_trace,
    swap_refine,
)
from repro.mem.trace import TraceRecorder, TracingCache

__all__ = [
    "MemoryLayout",
    "ObjectKey",
    "Region",
    "layout_objects",
    "TraceRecorder",
    "TracingCache",
    "PlacementInstance",
    "PlacementResult",
    "RefineStats",
    "available_placements",
    "build_instance",
    "conflict_graph",
    "get_placement",
    "greedy_color_order",
    "normalize_targets",
    "optimize_instance",
    "optimize_placement",
    "placement_cost",
    "placement_costs",
    "register_placement",
    "remap_blocks",
    "remap_trace",
    "swap_refine",
    "multiswap_refine",
    "smoothed_search",
]
